// Command-line driver for the QOC training pipeline: pick a task, a
// protocol and hyper-parameters without recompiling. Mirrors how the
// paper's experiments are launched from TorchQuantum scripts.
//
// Usage:
//   train_cli [--task mnist2|mnist4|fashion2|fashion4|vowel4]
//             [--protocol classical|qc|pgp] [--steps N] [--batch N]
//             [--optimizer sgd|momentum|adam] [--ratio R] [--wa N] [--wp N]
//             [--shots N] [--trajectories N] [--noise-scale X]
//             [--seed N] [--threads N] [--save-theta FILE]
//             [--save-history FILE]
//
// Example:
//   ./build/examples/train_cli --task fashion2 --protocol pgp --steps 30

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "qoc/backend/backend.hpp"
#include "qoc/data/images.hpp"
#include "qoc/data/vowel.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/train/checkpoint.hpp"
#include "qoc/train/training_engine.hpp"

namespace {

struct Args {
  std::string task = "mnist2";
  std::string protocol = "pgp";
  int steps = 30;
  std::size_t batch = 6;
  std::string optimizer = "adam";
  double ratio = 0.5;
  int wa = 1;
  int wp = 2;
  int shots = 1024;
  int trajectories = 8;
  double noise_scale = 2.5;
  std::uint64_t seed = 42;
  unsigned threads = 0;
  std::string save_theta;
  std::string save_history;
};

[[noreturn]] void usage_and_exit(const char* msg) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: train_cli [--task mnist2|mnist4|fashion2|fashion4|vowel4]\n"
      "                 [--protocol classical|qc|pgp] [--steps N]\n"
      "                 [--batch N] [--optimizer sgd|momentum|adam]\n"
      "                 [--ratio R] [--wa N] [--wp N] [--shots N]\n"
      "                 [--trajectories N] [--noise-scale X] [--seed N]\n"
      "                 [--threads N] [--save-theta FILE]\n"
      "                 [--save-history FILE]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--task") a.task = next();
    else if (flag == "--protocol") a.protocol = next();
    else if (flag == "--steps") a.steps = std::atoi(next());
    else if (flag == "--batch") a.batch = static_cast<std::size_t>(std::atoi(next()));
    else if (flag == "--optimizer") a.optimizer = next();
    else if (flag == "--ratio") a.ratio = std::atof(next());
    else if (flag == "--wa") a.wa = std::atoi(next());
    else if (flag == "--wp") a.wp = std::atoi(next());
    else if (flag == "--shots") a.shots = std::atoi(next());
    else if (flag == "--trajectories") a.trajectories = std::atoi(next());
    else if (flag == "--noise-scale") a.noise_scale = std::atof(next());
    else if (flag == "--seed") a.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (flag == "--threads") a.threads = static_cast<unsigned>(std::atoi(next()));
    else if (flag == "--save-theta") a.save_theta = next();
    else if (flag == "--save-history") a.save_history = next();
    else if (flag == "--help" || flag == "-h") usage_and_exit(nullptr);
    else usage_and_exit(("unknown flag " + flag).c_str());
  }
  return a;
}

struct TaskBundle {
  qoc::data::Dataset train, val;
  std::string device;
};

TaskBundle load_task(const std::string& task) {
  using namespace qoc::data;
  if (task == "mnist2") {
    auto td = make_mnist2();
    return {std::move(td.train), std::move(td.val), "ibmq_jakarta"};
  }
  if (task == "mnist4") {
    auto td = make_mnist4();
    return {std::move(td.train), std::move(td.val), "ibmq_jakarta"};
  }
  if (task == "fashion2") {
    auto td = make_fashion2();
    return {std::move(td.train), std::move(td.val), "ibmq_santiago"};
  }
  if (task == "fashion4") {
    auto td = make_fashion4();
    return {std::move(td.train), std::move(td.val), "ibmq_manila"};
  }
  if (task == "vowel4") {
    auto vt = make_vowel4();
    return {std::move(vt.train), std::move(vt.val), "ibmq_lima"};
  }
  usage_and_exit(("unknown task " + task).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qoc;
  const Args args = parse_args(argc, argv);

  const qml::QnnModel model = qml::make_task_model(args.task);
  TaskBundle bundle = load_task(args.task);
  std::printf("task %s: %zu train / %zu val, model with %d params, "
              "device %s\n",
              args.task.c_str(), bundle.train.size(), bundle.val.size(),
              model.num_params(), bundle.device.c_str());

  // Backend per protocol.
  std::unique_ptr<backend::Backend> be;
  if (args.protocol == "classical") {
    be = std::make_unique<backend::StatevectorBackend>(0);
  } else if (args.protocol == "qc" || args.protocol == "pgp") {
    backend::NoisyBackendOptions opt;
    opt.trajectories = args.trajectories;
    opt.shots = args.shots;
    opt.noise_scale = args.noise_scale;
    opt.seed = args.seed ^ 0xBACCULL;
    be = std::make_unique<backend::NoisyBackend>(
        noise::DeviceModel::by_name(bundle.device), opt);
  } else {
    usage_and_exit(("unknown protocol " + args.protocol).c_str());
  }

  train::TrainingConfig cfg;
  cfg.steps = args.steps;
  cfg.batch_size = args.batch;
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  cfg.eval_every = std::max(1, args.steps / 6);
  cfg.max_eval_examples = 50;
  if (args.optimizer == "sgd") cfg.optimizer = train::OptimizerKind::Sgd;
  else if (args.optimizer == "momentum") cfg.optimizer = train::OptimizerKind::Momentum;
  else if (args.optimizer == "adam") cfg.optimizer = train::OptimizerKind::Adam;
  else usage_and_exit(("unknown optimizer " + args.optimizer).c_str());
  if (args.protocol == "pgp") {
    cfg.use_pruning = true;
    cfg.pruner.ratio = args.ratio;
    cfg.pruner.accumulation_window = args.wa;
    cfg.pruner.pruning_window = args.wp;
    std::printf("PGP: r=%.2f wa=%d wp=%d -> %.0f%% gradient evals saved\n",
                args.ratio, args.wa, args.wp,
                cfg.pruner.savings_fraction() * 100.0);
  }

  train::TrainingEngine engine(model, *be, *be, bundle.train, bundle.val,
                               cfg);
  engine.set_step_callback([](const train::TrainingRecord& rec) {
    std::printf("  step %3d | inferences %8llu | loss %.4f | acc %.3f\n",
                rec.step, static_cast<unsigned long long>(rec.inferences),
                rec.train_loss, rec.val_accuracy);
  });
  const auto result = engine.run();

  std::printf("final accuracy %.3f (best %.3f), %llu inferences\n",
              result.final_val_accuracy, result.best_val_accuracy,
              static_cast<unsigned long long>(result.total_inferences));

  if (!args.save_theta.empty()) {
    train::save_theta(args.save_theta, result.theta);
    std::printf("saved parameters to %s\n", args.save_theta.c_str());
  }
  if (!args.save_history.empty()) {
    train::save_history_csv(args.save_history, result.history);
    std::printf("saved history to %s\n", args.save_history.c_str());
  }
  return 0;
}
