// Quickstart: build a 4-qubit QNN, train it with in-situ parameter-shift
// gradients on a noise-free simulator backend, and evaluate it.
//
// This walks through the whole public API surface in ~80 lines:
//   dataset -> model -> backend -> TrainingEngine -> accuracy.
//
// Build & run:   ./build/quickstart

#include <cstdio>

#include "qoc/backend/backend.hpp"
#include "qoc/data/images.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/train/training_engine.hpp"

int main() {
  using namespace qoc;

  std::printf("QOC quickstart: 2-class QNN with parameter-shift training\n");
  std::printf("==========================================================\n\n");

  // 1. Data: a synthetic 2-class image task (bar vs ring prototypes),
  //    run through the paper's 28x28 -> crop 24 -> pool 4x4 pipeline.
  data::SyntheticImages gen(data::SyntheticImages::Style::Digits, 2,
                            /*seed=*/42, /*difficulty=*/0.2);
  gen.set_templates({1, 0});
  const data::Dataset train = gen.make_dataset(64);
  data::SyntheticImages val_gen(data::SyntheticImages::Style::Digits, 2,
                                /*seed=*/43, /*difficulty=*/0.2);
  val_gen.set_templates({1, 0});
  const data::Dataset val = val_gen.make_dataset(64);
  std::printf("dataset: %zu train / %zu val examples, %zu features each\n",
              train.size(), val.size(), train.feature_dim());

  // 2. Model: the paper's 2-class architecture -- 16-angle image encoder,
  //    one RZZ ring layer, one RY layer, pair-sum measurement head.
  const qml::QnnModel model = qml::make_mnist2_model();
  std::printf("model: %s, %d trainable parameters, %zu gates, depth %zu\n\n",
              model.name().c_str(), model.num_params(),
              model.circuit().num_ops(), model.circuit().depth());

  // 3. Backend: exact noise-free statevector execution (shots = 0).
  backend::StatevectorBackend backend(/*shots=*/0);

  // 4. Train with Alg. 1 (no pruning here; see mnist4_onchip_pgp for the
  //    full probabilistic-gradient-pruning setup).
  train::TrainingConfig cfg;
  cfg.steps = 60;
  cfg.batch_size = 16;
  cfg.threads = 0;  // parallel gradient evaluation across the batch
  cfg.optimizer = train::OptimizerKind::Adam;
  cfg.lr_start = 0.3;   // cosine schedule, Sec. 4.3
  cfg.lr_end = 0.03;
  cfg.eval_every = 10;
  cfg.seed = 7;

  train::TrainingEngine engine(model, backend, backend, train, val, cfg);
  engine.set_step_callback([](const train::TrainingRecord& rec) {
    std::printf("  step %3d | inferences %6llu | loss %.4f | val acc %.3f | "
                "lr %.3f\n",
                rec.step, static_cast<unsigned long long>(rec.inferences),
                rec.train_loss, rec.val_accuracy, rec.learning_rate);
  });

  std::printf("training (%d steps, batch %zu, Adam, cosine LR %.2f->%.2f):\n",
              cfg.steps, cfg.batch_size, cfg.lr_start, cfg.lr_end);
  const train::TrainingResult result = engine.run();

  std::printf("\nfinal validation accuracy : %.3f\n",
              result.final_val_accuracy);
  std::printf("best validation accuracy  : %.3f\n", result.best_val_accuracy);
  std::printf("total circuit inferences  : %llu\n",
              static_cast<unsigned long long>(result.total_inferences));
  return 0;
}
