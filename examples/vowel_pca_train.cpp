// Vowel-4 pipeline end to end: synthetic formant-style features -> our PCA
// down to the 10 most significant dimensions -> 10-angle rotation encoding
// -> 2x (RZZ + RXX ring) QNN, trained on a simulated ibmq_lima (the device
// the paper uses for Vowel-4).
//
// Build & run:   ./build/examples/vowel_pca_train

#include <cstdio>

#include "qoc/backend/backend.hpp"
#include "qoc/data/vowel.hpp"
#include "qoc/noise/device_model.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/train/training_engine.hpp"

int main() {
  using namespace qoc;

  std::printf("QOC Vowel-4: PCA preprocessing + on-chip training on "
              "ibmq_lima\n");
  std::printf("============================================================"
              "\n\n");

  // Data: Gaussian formant-style clusters in 20-D, PCA'd to 10 dims fitted
  // on the training split only (make_vowel4 reproduces the paper split:
  // 100 train / 300 validation).
  const data::VowelTask task = data::make_vowel4();
  std::printf("vowel data: %zu train / %zu val, %zu PCA components\n",
              task.train.size(), task.val.size(), task.train.feature_dim());

  // Show the PCA spectrum on the raw training pool for context.
  {
    data::SyntheticVowel gen(4, 23);
    const data::Dataset raw = gen.make_raw(100);
    const data::Pca pca(raw.features, 10);
    std::printf("explained variance (top 10): ");
    for (double v : pca.explained_variance()) std::printf("%.2f ", v);
    std::printf("\n\n");
  }

  const qml::QnnModel model = qml::make_vowel4_model();
  std::printf("model: %d params, %zu ops (vowel encoder: 4RY+4RZ+2RX)\n\n",
              model.num_params(), model.circuit().num_ops());

  backend::NoisyBackendOptions opt;
  opt.trajectories = 8;
  opt.shots = 256;
  opt.seed = 5;
  backend::NoisyBackend qc(noise::DeviceModel::ibmq_lima(), opt);

  train::TrainingConfig cfg;
  cfg.steps = 30;
  cfg.batch_size = 6;
  cfg.eval_every = 6;
  cfg.max_eval_examples = 50;
  cfg.seed = 3;
  cfg.use_pruning = true;
  cfg.pruner.ratio = 0.5;
  cfg.pruner.pruning_window = 2;

  train::TrainingEngine engine(model, qc, qc, task.train, task.val, cfg);
  engine.set_step_callback([](const train::TrainingRecord& rec) {
    std::printf("  step %3d | inferences %7llu | loss %.4f | val acc %.3f\n",
                rec.step, static_cast<unsigned long long>(rec.inferences),
                rec.train_loss, rec.val_accuracy);
  });
  const auto result = engine.run();

  std::printf("\nfinal on-chip validation accuracy: %.3f "
              "(4-class chance = 0.25)\n",
              result.final_val_accuracy);
  return 0;
}
