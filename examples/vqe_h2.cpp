// VQE extension example: ground-state energy of molecular hydrogen with
// the QOC machinery -- parameter-shift energy gradients and probabilistic
// gradient pruning -- demonstrating the paper's remark that the techniques
// "can also be applied to other PQCs such as VQE".
//
// The H2 Hamiltonian is the standard 2-qubit tapered encoding; the exact
// ground energy is computed by dense diagonalisation for reference.
//
// Build & run:   ./build/vqe_h2

#include <cstdio>

#include "qoc/vqe/vqe.hpp"

int main() {
  using namespace qoc;
  using namespace qoc::vqe;

  std::printf("QOC VQE: H2 ground state with parameter shift + pruning\n");
  std::printf("=======================================================\n\n");

  const Hamiltonian h2 = Hamiltonian::h2_minimal();
  const double exact = h2.exact_ground_energy();
  std::printf("H2 (2-qubit tapered) exact ground energy: %.6f Ha\n\n", exact);

  const circuit::Circuit ansatz =
      VqeSolver::hardware_efficient_ansatz(2, /*depth=*/2);
  std::printf("ansatz: hardware-efficient, %d parameters, %zu gates\n\n",
              ansatz.num_trainable(), ansatz.num_ops());

  // Run 1: exact estimator, no pruning.
  {
    VqeConfig cfg;
    cfg.steps = 60;
    cfg.seed = 3;
    VqeSolver solver(EnergyEstimator(h2), ansatz, cfg);
    const VqeResult res = solver.run();
    std::printf("exact estimator, no pruning : E = %.6f "
                "(error %.2e, %llu executions)\n",
                res.energy, res.energy - exact,
                static_cast<unsigned long long>(res.total_executions));
  }

  // Run 2: sampled + noisy estimator with PGP (the on-chip setting).
  {
    EstimatorOptions opt;
    opt.shots = 512;
    opt.gate_noise = 2e-3;
    opt.seed = 17;
    VqeConfig cfg;
    cfg.steps = 60;
    cfg.seed = 3;
    cfg.use_pruning = true;
    cfg.pruner.accumulation_window = 1;
    cfg.pruner.pruning_window = 2;
    cfg.pruner.ratio = 0.5;
    VqeSolver solver(EnergyEstimator(h2, opt), ansatz, cfg);
    const VqeResult res = solver.run();
    std::printf("512 shots + noise + PGP     : E = %.6f "
                "(error %.2e, %llu executions)\n",
                res.best_energy, res.best_energy - exact,
                static_cast<unsigned long long>(res.total_executions));
  }

  // Bonus: transverse-field Ising chain on 4 qubits.
  {
    const Hamiltonian ising = Hamiltonian::transverse_ising(4, 1.0, 0.7);
    const double ising_exact = ising.exact_ground_energy();
    VqeConfig cfg;
    cfg.steps = 80;
    cfg.seed = 5;
    VqeSolver solver(EnergyEstimator(ising),
                     VqeSolver::hardware_efficient_ansatz(4, 3), cfg);
    const VqeResult res = solver.run();
    std::printf("\n4-qubit TFIM (J=1, h=0.7)   : E = %.6f vs exact %.6f "
                "(error %.2e)\n",
                res.best_energy, ising_exact, res.best_energy - ising_exact);
  }
  return 0;
}
