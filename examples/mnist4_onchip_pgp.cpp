// On-chip training of the MNIST-4 QNN on a simulated ibmq_jakarta device
// with probabilistic gradient pruning -- the paper's headline workflow
// (QC-Train-PGP, Sec. 4).
//
// Every gradient is obtained by running +-pi/2-shifted circuits on the
// noisy backend; the pruner skips unreliable small-magnitude gradients
// using the accumulated-magnitude distribution (w_a=1, w_p=2, r=0.5).
//
// Build & run:   ./build/examples/mnist4_onchip_pgp   (takes ~1 min)

#include <cstdio>

#include "qoc/backend/backend.hpp"
#include "qoc/data/images.hpp"
#include "qoc/noise/device_model.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/train/training_engine.hpp"
#include "qoc/transpile/transpile.hpp"

int main() {
  using namespace qoc;

  std::printf("QOC on-chip training: MNIST-4 on ibmq_jakarta with PGP\n");
  std::printf("======================================================\n\n");

  // Task data: 4-class synthetic MNIST stand-in, 100 train / 300 val
  // (paper split). Validation is subsampled during training for speed.
  const data::TaskData td = data::make_mnist4();
  const qml::QnnModel model = qml::make_mnist4_model();

  // Device: ibmq_jakarta calibration snapshot driving depolarizing +
  // thermal-relaxation + readout trajectory noise.
  const auto device = noise::DeviceModel::ibmq_jakarta();
  backend::NoisyBackendOptions opt;
  opt.trajectories = 8;
  opt.shots = 256;
  opt.seed = 2022;
  backend::NoisyBackend qc(device, opt);

  // Show what the device actually runs: the transpiled circuit.
  {
    std::vector<double> theta(static_cast<std::size_t>(model.num_params()),
                              0.1);
    std::vector<double> input(16, 0.5);
    const auto t =
        transpile::transpile(model.circuit(), theta, input, device);
    std::printf("device %s: transpiled to %zu CX + %zu SX + %zu RZ "
                "(%zu SWAPs inserted, depth %zu)\n",
                device.name.c_str(), t.stats.n_cx, t.stats.n_sx, t.stats.n_rz,
                t.n_swaps_inserted, t.stats.depth);
    std::printf("estimated circuit success probability: %.3f\n\n",
                transpile::estimated_success_probability(t, device));
  }

  train::TrainingConfig cfg;
  cfg.steps = 30;
  cfg.batch_size = 6;
  cfg.optimizer = train::OptimizerKind::Adam;
  cfg.eval_every = 6;
  cfg.max_eval_examples = 50;  // subsample the 300-example validation set
  cfg.seed = 11;

  // The paper's PGP setting: w_a = 1, w_p = 2, r = 0.5.
  cfg.use_pruning = true;
  cfg.pruner.accumulation_window = 1;
  cfg.pruner.pruning_window = 2;
  cfg.pruner.ratio = 0.5;
  std::printf("PGP saves %.0f%% of gradient evaluations "
              "(r*wp/(wa+wp))\n\n",
              cfg.pruner.savings_fraction() * 100.0);

  train::TrainingEngine engine(model, qc, qc, td.train, td.val, cfg);
  engine.set_step_callback([](const train::TrainingRecord& rec) {
    std::printf("  step %3d | inferences %7llu | loss %.4f | "
                "real-QC val acc %.3f\n",
                rec.step, static_cast<unsigned long long>(rec.inferences),
                rec.train_loss, rec.val_accuracy);
  });

  std::printf("QC-Train-PGP on %s:\n", device.name.c_str());
  const auto result = engine.run();

  std::printf("\nfinal on-chip validation accuracy: %.3f\n",
              result.final_val_accuracy);
  std::printf("best on-chip validation accuracy : %.3f\n",
              result.best_val_accuracy);
  std::printf("total circuit runs on the device : %llu\n",
              static_cast<unsigned long long>(result.total_inferences));
  return 0;
}
