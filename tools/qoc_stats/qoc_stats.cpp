// qoc_stats: offline analyzer for qoc::obs dumps.
//
//   qoc_stats trace <trace.json>     per-layer latency breakdown from a
//                                    Chrome trace_event file written by
//                                    obs::Tracer::chrome_json()
//   qoc_stats metrics <metrics.json> pretty-print a Registry::json_dump()
//   qoc_stats demo <prefix>          run a small traced serve session,
//                                    write <prefix>.trace.json /
//                                    <prefix>.prom / <prefix>.metrics.json,
//                                    self-check the dumps (job spans must
//                                    cross serve -> backend -> kernel and
//                                    the Prometheus counters must
//                                    reconcile with MetricsSnapshot),
//                                    then print the trace breakdown.
//
// The trace parser leans on the emitter's one-event-per-line layout; it
// is a tool for qoc's own dumps, not a general JSON reader. `demo` is
// the CI golden step: a broken exporter, a missing layer span or a
// counter that no longer reconciles exits non-zero.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/circuit/layers.hpp"
#include "qoc/obs/obs.hpp"
#include "qoc/serve/serve.hpp"

namespace {

using namespace qoc;

// ---------------------------------------------------------------------------
// Line-oriented field extraction for the emitter's fixed layout.
// ---------------------------------------------------------------------------

bool find_string_field(const std::string& line, const char* key,
                       std::string& out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

bool find_number_field(const std::string& line, const char* key,
                       double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

// ---------------------------------------------------------------------------
// trace mode
// ---------------------------------------------------------------------------

struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

struct TraceStats {
  // (cat, name) -> aggregate over 'X' complete spans.
  std::map<std::pair<std::string, std::string>, SpanAgg> spans;
  // Async 'b'/'e' pairs stitched by (name, id); deltas in the histogram.
  obs::Histogram async_ns;
  std::uint64_t async_unmatched = 0;
  std::map<std::string, std::uint64_t> events_per_cat;
};

bool analyze_trace_file(const std::string& path, TraceStats& stats) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "qoc_stats: cannot open %s\n", path.c_str());
    return false;
  }
  std::map<std::pair<std::string, std::uint64_t>, double> open_async;
  std::string line;
  while (std::getline(in, line)) {
    std::string name, cat, ph;
    if (!find_string_field(line, "ph", ph)) continue;  // header/footer
    if (!find_string_field(line, "name", name) ||
        !find_string_field(line, "cat", cat))
      continue;
    ++stats.events_per_cat[cat];
    double ts = 0.0;
    find_number_field(line, "ts", ts);
    if (ph == "X") {
      double dur = 0.0;
      find_number_field(line, "dur", dur);
      auto& agg = stats.spans[{cat, name}];
      ++agg.count;
      agg.total_us += dur;
      agg.max_us = std::max(agg.max_us, dur);
    } else if (ph == "b" || ph == "e") {
      std::string id_str;
      if (!find_string_field(line, "id", id_str)) continue;
      const std::uint64_t id = std::strtoull(id_str.c_str(), nullptr, 16);
      if (ph == "b") {
        open_async[{name, id}] = ts;
      } else {
        const auto it = open_async.find({name, id});
        if (it == open_async.end()) {
          ++stats.async_unmatched;
        } else {
          const double delta_us = ts - it->second;
          stats.async_ns.record(static_cast<std::uint64_t>(
              delta_us < 0 ? 0.0 : delta_us * 1000.0));
          open_async.erase(it);
        }
      }
    }
  }
  stats.async_unmatched += open_async.size();
  return true;
}

void print_trace_stats(const TraceStats& stats) {
  std::printf("per-layer latency breakdown (complete spans)\n");
  std::printf("%-10s %-22s %10s %12s %12s %12s\n", "layer", "span", "count",
              "total_ms", "mean_us", "max_us");
  for (const auto& [key, agg] : stats.spans) {
    std::printf("%-10s %-22s %10" PRIu64 " %12.3f %12.3f %12.3f\n",
                key.first.c_str(), key.second.c_str(), agg.count,
                agg.total_us / 1000.0,
                agg.count ? agg.total_us / static_cast<double>(agg.count) : 0.0,
                agg.max_us);
  }
  if (stats.async_ns.count() > 0) {
    std::printf("\nasync job spans (submit -> fulfil)\n");
    std::printf("  count %" PRIu64 "  mean %.1f us  p50 %.1f us  p99 %.1f us",
                stats.async_ns.count(), stats.async_ns.mean_ns() / 1000.0,
                static_cast<double>(stats.async_ns.quantile_ns(0.50)) / 1000.0,
                static_cast<double>(stats.async_ns.quantile_ns(0.99)) /
                    1000.0);
    if (stats.async_unmatched > 0)
      std::printf("  (%" PRIu64 " unmatched)", stats.async_unmatched);
    std::printf("\n");
  }
}

int run_trace_mode(const std::string& path) {
  TraceStats stats;
  if (!analyze_trace_file(path, stats)) return 1;
  print_trace_stats(stats);
  return 0;
}

// ---------------------------------------------------------------------------
// metrics mode
// ---------------------------------------------------------------------------

/// Extracts the {...} body following `"section":{` (flat or one level of
/// nested objects, which is all Registry::json_dump() emits).
std::string json_section(const std::string& doc, const char* section) {
  const std::string needle = std::string("\"") + section + "\":{";
  const auto pos = doc.find(needle);
  if (pos == std::string::npos) return "";
  std::size_t depth = 1;
  const std::size_t start = pos + needle.size();
  for (std::size_t i = start; i < doc.size(); ++i) {
    if (doc[i] == '{') ++depth;
    if (doc[i] == '}' && --depth == 0) return doc.substr(start, i - start);
  }
  return "";
}

/// Yields (key, raw value) pairs of a flat-or-one-level JSON object body.
std::vector<std::pair<std::string, std::string>> json_entries(
    const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  while (i < body.size()) {
    const auto kq = body.find('"', i);
    if (kq == std::string::npos) break;
    const auto kend = body.find('"', kq + 1);
    if (kend == std::string::npos) break;
    const std::string key = body.substr(kq + 1, kend - kq - 1);
    auto vstart = body.find(':', kend);
    if (vstart == std::string::npos) break;
    ++vstart;
    std::size_t vend = vstart;
    if (body[vstart] == '{') {
      std::size_t depth = 0;
      for (; vend < body.size(); ++vend) {
        if (body[vend] == '{') ++depth;
        if (body[vend] == '}' && --depth == 0) {
          ++vend;
          break;
        }
      }
    } else {
      while (vend < body.size() && body[vend] != ',') ++vend;
    }
    out.emplace_back(key, body.substr(vstart, vend - vstart));
    i = vend + 1;
  }
  return out;
}

int run_metrics_mode(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "qoc_stats: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::printf("counters:\n");
  for (const auto& [k, v] : json_entries(json_section(doc, "counters")))
    std::printf("  %-40s %s\n", k.c_str(), v.c_str());
  std::printf("gauges:\n");
  for (const auto& [k, v] : json_entries(json_section(doc, "gauges")))
    std::printf("  %-40s %s\n", k.c_str(), v.c_str());
  std::printf("histograms:\n");
  for (const auto& [k, v] : json_entries(json_section(doc, "histograms"))) {
    double count = 0, mean = 0, p50 = 0, p99 = 0;
    find_number_field(v, "count", count);
    find_number_field(v, "mean_ns", mean);
    find_number_field(v, "p50_ns", p50);
    find_number_field(v, "p99_ns", p99);
    std::printf("  %-40s count %.0f  mean %.1f us  p50 %.1f us  p99 %.1f us\n",
                k.c_str(), count, mean / 1000.0, p50 / 1000.0, p99 / 1000.0);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// demo mode
// ---------------------------------------------------------------------------

std::uint64_t prom_counter(const std::string& prom, const std::string& name) {
  // Match at line start so `foo` never matches `foo_total`'s prefix.
  const std::string needle = "\n" + name + " ";
  auto pos = prom.find(needle);
  if (pos == std::string::npos) {
    if (prom.rfind(name + " ", 0) == 0)
      pos = static_cast<std::size_t>(-1);  // first line
    else
      return static_cast<std::uint64_t>(-1);
  }
  const std::size_t vstart =
      pos == static_cast<std::size_t>(-1) ? name.size() + 1
                                          : pos + needle.size();
  return std::strtoull(prom.c_str() + vstart, nullptr, 10);
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

int run_demo_mode(const std::string& prefix) {
#if !QOC_OBS
  std::fprintf(stderr,
               "qoc_stats demo: built with QOC_OBS=0; nothing to trace\n");
  return 2;
#else
  // Small QNN-shaped workload: rotation encoder + two entangling layers
  // on 4 qubits, 48 jobs from 2 clients through an exact statevector
  // pool so the whole serve -> backend -> kernel path lights up.
  circuit::Circuit qnn(4);
  circuit::add_rotation_encoder(qnn, 6);
  for (int l = 0; l < 2; ++l) {
    circuit::add_rzz_ring_layer(qnn);
    circuit::add_ry_layer(qnn);
  }

  obs::Tracer::instance().start();
  backend::StatevectorBackend backend(0);
  serve::MetricsSnapshot snapshot;
  {
    serve::ServeOptions opt;
    opt.max_batch = 16;
    opt.max_delay = std::chrono::microseconds(200);
    serve::ServeSession session(serve::BackendPool(backend, 1), opt);
    const auto handle = session.register_circuit(qnn);
    const int n_theta = qnn.num_trainable();
    const int n_input = qnn.num_inputs();

    auto c0 = session.client();
    auto c1 = session.client();
    std::vector<std::future<std::vector<double>>> futures;
    for (int j = 0; j < 24; ++j) {
      std::vector<double> theta(static_cast<std::size_t>(n_theta));
      std::vector<double> input(static_cast<std::size_t>(n_input));
      for (int i = 0; i < n_theta; ++i)
        theta[static_cast<std::size_t>(i)] = 0.1 * (i + 1) + 0.01 * j;
      for (int i = 0; i < n_input; ++i)
        input[static_cast<std::size_t>(i)] = 0.05 * i - 0.02 * j;
      futures.push_back(c0.submit(handle, theta, input));
      for (auto& v : theta) v += 0.5;
      futures.push_back(c1.submit(handle, theta, input));
    }
    for (auto& f : futures) f.get();
    snapshot = session.metrics();
    session.shutdown();
  }
  obs::Tracer::instance().stop();

  const std::string trace = obs::Tracer::instance().chrome_json();
  const std::string prom = obs::Registry::global().prometheus_dump();
  const std::string metrics_json = obs::Registry::global().json_dump();

  const std::string trace_path = prefix + ".trace.json";
  const std::string prom_path = prefix + ".prom";
  const std::string json_path = prefix + ".metrics.json";
  for (const auto& [path, body] :
       {std::pair{trace_path, trace}, std::pair{prom_path, prom},
        std::pair{json_path, metrics_json}}) {
    std::ofstream out(path);
    out << body;
    if (!out) {
      std::fprintf(stderr, "qoc_stats: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s, %s, %s\n\n", trace_path.c_str(), prom_path.c_str(),
              json_path.c_str());

  // Self-checks: the acceptance contract of the obs subsystem.
  bool ok = true;
  TraceStats stats;
  if (!analyze_trace_file(trace_path, stats)) return 1;
  std::printf("checks:\n");
  ok &= check(stats.events_per_cat.count("serve") > 0,
              "trace has serve-layer spans");
  ok &= check(stats.events_per_cat.count("backend") > 0,
              "trace has backend-layer spans");
  ok &= check(stats.events_per_cat.count("kernel") > 0,
              "trace has kernel-layer spans");
  ok &= check(stats.async_ns.count() > 0 && stats.async_unmatched == 0,
              "per-job async spans stitch across threads");
  ok &= check(prom_counter(prom, "qoc_serve_jobs_submitted_total") ==
                  snapshot.submitted,
              "prometheus submitted counter reconciles with MetricsSnapshot");
  ok &= check(prom_counter(prom, "qoc_serve_jobs_completed_total") ==
                  snapshot.completed,
              "prometheus completed counter reconciles with MetricsSnapshot");
  ok &= check(prom_counter(prom, "qoc_serve_batches_total") ==
                  snapshot.batches,
              "prometheus batch counter reconciles with MetricsSnapshot");
  ok &= check(obs::Tracer::instance().dropped_events() == 0,
              "no trace events dropped");
  std::printf("\n");
  print_trace_stats(stats);
  return ok ? 0 : 1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "trace") == 0)
    return run_trace_mode(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "metrics") == 0)
    return run_metrics_mode(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "demo") == 0)
    return run_demo_mode(argv[2]);
  std::fprintf(stderr,
               "usage: qoc_stats trace <trace.json>\n"
               "       qoc_stats metrics <metrics.json>\n"
               "       qoc_stats demo <output-prefix>\n");
  return 2;
}
