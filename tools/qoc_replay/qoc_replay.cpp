// qoc_replay -- record/replay driver for the serve layer.
//
//   qoc_replay record <scenario> <out.qoctrace>   capture a golden trace
//   qoc_replay replay <log.qoctrace> [options]    re-serve + bitwise diff
//   qoc_replay diff <a.qoctrace> <b.qoctrace>     compare two logs
//   qoc_replay dump <log.qoctrace>                print the text form
//
// Scenarios (fixed seeds; the backend is reconstructed from the name
// stored in the log, so a recorded trace is self-describing):
//   exact    10-qubit QNN on the exact statevector backend
//   sampled  same structure, shots=256 Born sampling
//   noisy    4-qubit circuit on ibmq_santiago noise trajectories
//   density  4-qubit circuit on exact density-matrix evolution
//   mixed    8-structure catalog + expects + duplicates + result cache
//
// Traffic shapes come from bench/traffic.hpp, so golden traces exercise
// the same streams bench_serve measures. Exit codes: 0 = ok / identical,
// 1 = divergence / logs differ, 2 = usage or log error.

#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/circuit/layers.hpp"
#include "qoc/exec/observable.hpp"
#include "qoc/noise/device_model.hpp"
#include "qoc/replay/replay.hpp"
#include "qoc/serve/serve.hpp"
#include "traffic.hpp"

namespace {

using namespace qoc;

constexpr const char* kScenarios[] = {"exact", "sampled", "noisy", "density",
                                      "mixed"};

/// Small 4-qubit QNN for the transpiling backends (fits the 5-qubit
/// santiago device and keeps trajectory counts CI-cheap).
circuit::Circuit small_qnn() {
  circuit::Circuit c(4);
  circuit::add_rotation_encoder(c, 4);
  circuit::add_rzz_ring_layer(c);
  circuit::add_ry_layer(c);
  return c;
}

/// ZZ-chain + X0 observable on n qubits.
exec::CompiledObservable make_observable(int n) {
  std::vector<exec::ObservableTerm> terms;
  for (int q = 0; q + 1 < n; ++q) {
    std::string p(static_cast<std::size_t>(n), 'I');
    p[static_cast<std::size_t>(q)] = 'Z';
    p[static_cast<std::size_t>(q) + 1] = 'Z';
    terms.push_back({std::move(p), 0.5 + 0.1 * q});
  }
  std::string x0(static_cast<std::size_t>(n), 'I');
  x0[0] = 'X';
  terms.push_back({std::move(x0), 0.25});
  return exec::CompiledObservable::compile(n, terms);
}

/// The backend a scenario records against (and replays against --
/// identical construction both times, fixed seeds).
std::unique_ptr<backend::Backend> make_backend(const std::string& scenario) {
  if (scenario == "exact" || scenario == "mixed")
    return std::make_unique<backend::StatevectorBackend>(0);
  if (scenario == "sampled")
    return std::make_unique<backend::StatevectorBackend>(
        backend::StatevectorBackendOptions{.shots = 256,
                                           .seed = 0xC0FFEE5EEDULL});
  if (scenario == "noisy")
    return std::make_unique<backend::NoisyBackend>(
        noise::DeviceModel::ibmq_santiago(),
        backend::NoisyBackendOptions{.trajectories = 4, .shots = 64,
                                     .seed = 0xD1CE5EEDULL});
  if (scenario == "density")
    return std::make_unique<backend::DensityMatrixBackend>(
        noise::DeviceModel::ibmq_santiago());
  throw replay::TraceError("qoc_replay: unknown scenario '" + scenario +
                           "' (not one of exact/sampled/noisy/density/mixed)");
}

/// Drive a scenario's traffic through a recording session and return
/// the captured log. All futures are drained before the snapshot, so
/// every admitted job carries its result.
replay::TraceLog record_scenario(const std::string& scenario) {
  const auto backend = make_backend(scenario);
  auto recorder = std::make_shared<replay::Recorder>(scenario);
  serve::ServeOptions opt;
  opt.max_batch = 16;
  opt.max_delay = std::chrono::microseconds(200);
  opt.trace_sink = recorder;
  if (scenario == "mixed") opt.result_cache_capacity = 64;

  serve::ServeSession session(*backend, opt);
  const bool small = scenario == "noisy" || scenario == "density";
  const bool cheap = small;  // transpiling backends: keep job counts low

  std::vector<circuit::Circuit> structures;
  if (scenario == "mixed")
    structures = traffic::structure_catalog();
  else
    structures.push_back(small ? small_qnn() : traffic::qnn_circuit());
  std::vector<serve::CircuitHandle> handles;
  for (const auto& c : structures)
    handles.push_back(session.register_circuit(c));
  const auto observable =
      session.register_observable(make_observable(small ? 4 : 10));

  std::vector<std::future<std::vector<double>>> runs;
  std::vector<std::future<double>> expects;
  const int n_clients = scenario == "mixed" ? 3 : 2;
  const std::uint64_t per_client = cheap ? 6 : 16;
  for (int cl = 0; cl < n_clients; ++cl) {
    auto client = session.client();
    for (std::uint64_t serial = 0; serial < per_client; ++serial) {
      const std::size_t s = serial % handles.size();
      std::vector<double> theta = traffic::base_theta(structures[s]);
      const std::vector<double> input = traffic::base_input(structures[s]);
      switch (serial % 4) {
        case 0:  // unique binding, run
          traffic::unique_binding(theta, cl, serial);
          runs.push_back(client.submit(handles[s], theta, input));
          break;
        case 1:  // unique binding, expect
          traffic::unique_binding(theta, cl, serial);
          expects.push_back(
              client.submit_expect(handles[s], observable, theta, input));
          break;
        case 2:  // hot-catalog binding: cacheable across clients
          traffic::hot_binding(theta, serial);
          runs.push_back(client.submit(handles[s], theta, input));
          break;
        default:  // exact duplicate of the previous hot binding: foldable
          traffic::hot_binding(theta, serial - 1);
          runs.push_back(client.submit(handles[s], theta, input));
          break;
      }
    }
  }
  for (auto& f : runs) f.get();
  for (auto& f : expects) f.get();
  return recorder->snapshot();
}

int cmd_record(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: qoc_replay record <scenario> <out>\n");
    return 2;
  }
  const std::string scenario = argv[0];
  const replay::TraceLog log = record_scenario(scenario);
  replay::save(log, argv[1]);
  std::printf("recorded scenario '%s': %zu circuits, %zu observables, "
              "%zu jobs -> %s\n",
              scenario.c_str(), log.circuits.size(), log.observables.size(),
              log.jobs.size(), argv[1]);
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr,
                 "usage: qoc_replay replay <log> [--replicas N] [--fold 0|1] "
                 "[--cache N] [--policy block|shed] [--max-queue N] "
                 "[--paced]\n");
    return 2;
  }
  const replay::TraceLog log = replay::load(argv[0]);
  replay::ReplayOptions opt;
  opt.serve.max_batch = 16;
  opt.serve.max_delay = std::chrono::microseconds(200);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw replay::TraceError("qoc_replay: " + arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--replicas")
      opt.replicas = static_cast<std::size_t>(std::stoul(value()));
    else if (arg == "--fold")
      opt.serve.fold_duplicates = std::stoi(value()) != 0;
    else if (arg == "--cache")
      opt.serve.result_cache_capacity =
          static_cast<std::size_t>(std::stoul(value()));
    else if (arg == "--max-queue")
      opt.serve.max_queue = static_cast<std::size_t>(std::stoul(value()));
    else if (arg == "--policy") {
      const std::string p = value();
      if (p == "block")
        opt.serve.overload = serve::OverloadPolicy::Block;
      else if (p == "shed")
        opt.serve.overload = serve::OverloadPolicy::Shed;
      else
        throw replay::TraceError("qoc_replay: unknown policy '" + p + "'");
    } else if (arg == "--paced")
      opt.paced = true;
    else
      throw replay::TraceError("qoc_replay: unknown option '" + arg + "'");
  }
  const auto backend = make_backend(log.scenario);
  const replay::ReplayReport report = replay::replay(log, *backend, opt);
  std::printf("scenario '%s' x%zu replica(s): %zu jobs, %zu matched, "
              "%zu diverged, %zu skipped\n",
              log.scenario.c_str(), opt.replicas, report.jobs, report.matched,
              report.diverged, report.skipped);
  for (std::size_t i = 0; i < report.divergences.size() && i < 10; ++i) {
    const auto& d = report.divergences[i];
    std::fprintf(stderr, "  DIVERGED client %u seq %llu (%s)%s%s\n", d.client,
                 static_cast<unsigned long long>(d.seq),
                 d.is_expect ? "expect" : "run",
                 d.error.empty() ? "" : ": ", d.error.c_str());
  }
  return report.ok() ? 0 : 1;
}

int cmd_diff(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: qoc_replay diff <a> <b>\n");
    return 2;
  }
  const replay::TraceLog a = replay::load(argv[0]);
  const replay::TraceLog b = replay::load(argv[1]);
  if (replay::logs_equal(a, b)) {
    std::printf("logs are bitwise-identical\n");
    return 0;
  }
  std::printf("logs differ\n");
  return 1;
}

int cmd_dump(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "usage: qoc_replay dump <log>\n");
    return 2;
  }
  const std::string text = replay::write_text(replay::load(argv[0]));
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: qoc_replay <record|replay|diff|dump> ...\n"
               "scenarios:");
  for (const char* s : kScenarios) std::fprintf(stderr, " %s", s);
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
    if (cmd == "dump") return cmd_dump(argc - 2, argv + 2);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qoc_replay: %s\n", e.what());
    return 2;
  }
}
