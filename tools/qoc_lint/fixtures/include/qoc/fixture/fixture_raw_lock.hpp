#pragma once
// qoc_lint self-test fixture: raw standard-library lock primitives
// outside include/qoc/common/mutex.hpp. The raw-mutex rule must fire.
// Never compiled.
#include <mutex>

namespace qoc::fixture {

struct FixtureCounter {
  std::mutex mutex;  // seeded raw-mutex violation
  long value = 0;

  void bump() {
    const std::lock_guard<std::mutex> lock(mutex);  // and another
    ++value;
  }
};

}  // namespace qoc::fixture
