// qoc_lint self-test fixture: wall-clock timestamps in the replay
// layer. Trace logs carry monotonic deltas from the recorded session;
// stamping them from std::chrono::system_clock would make replays
// depend on when they run, so the determinism rule must fire on the
// use below (but NOT on this comment -- comments are stripped before
// matching). Never compiled.
#include <chrono>
#include <cstdint>

namespace qoc::replay {

std::int64_t fixture_wallclock_stamp() {
  const auto now = std::chrono::system_clock::now();  // determinism violation
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace qoc::replay
