// Seeded violation for the obs-clock rule: a library TU reading
// steady_clock directly instead of going through obs::now().
// This file lives under tools/qoc_lint/fixtures/ and never joins a
// build target.

#include <chrono>
#include <cstdint>

namespace qoc::exec {

std::uint64_t fixture_elapsed_ns() {
  const auto t0 = std::chrono::steady_clock::now();  // obs-clock
  return static_cast<std::uint64_t>(
      (std::chrono::steady_clock::now() - t0).count());
}

}  // namespace qoc::exec
