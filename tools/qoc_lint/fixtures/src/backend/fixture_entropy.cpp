// qoc_lint self-test fixture: environment-derived seeding. The
// determinism rule must fire on the random_device and time() uses (but
// NOT on this comment, which mentions std::random_device and rand()
// freely -- comments are stripped before matching). Never compiled.
#include <ctime>
#include <random>

namespace qoc::backend {

unsigned fixture_entropy_seed() {
  std::random_device rd;  // seeded determinism violation
  return rd() ^ static_cast<unsigned>(time(nullptr));  // and another
}

}  // namespace qoc::backend
