// qoc_lint self-test fixture: AVX2 intrinsics in a TU not named
// *_avx2.cpp. The avx2-containment rule must fire. Never compiled.
#include <immintrin.h>

namespace qoc::sim {

void fixture_add4(double* out, const double* a, const double* b) {
  const __m256d va = _mm256_loadu_pd(a);
  const __m256d vb = _mm256_loadu_pd(b);
  _mm256_storeu_pd(out, _mm256_add_pd(va, vb));
}

}  // namespace qoc::sim
