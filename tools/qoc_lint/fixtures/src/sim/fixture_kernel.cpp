// qoc_lint self-test fixture: a kernel-defining TU that (a) is missing
// its QOC_KERNEL_FLAGS stanza in the fixture CMakeLists.txt and (b)
// hand-writes an FMA. The kernel-flags and kernel-fma rules must both
// fire on this file. Never compiled.
#include <cmath>

namespace qoc::sim::kernels {

double fixture_axpy(double a, double x, double y) {
  return std::fma(a, x, y);  // seeded kernel-fma violation
}

}  // namespace qoc::sim::kernels
