// qoc_lint self-test fixture: ad-hoc thread construction outside the
// ThreadPool / serve-lane allowlist. The naked-threads rule must fire
// on the member and the construction, but std::thread::
// hardware_concurrency() is a static query and must NOT trip it.
// Never compiled.
#include <thread>

namespace qoc::serve {

struct FixtureWorker {
  std::thread worker;  // seeded naked-threads violation
};

unsigned fixture_width() {
  return std::thread::hardware_concurrency();  // allowed: static query
}

}  // namespace qoc::serve
