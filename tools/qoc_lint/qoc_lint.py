#!/usr/bin/env python3
"""qoc_lint: repo-invariant linter for the qoc tree.

The repo has a handful of correctness contracts that no compiler flag or
unit test can enforce by itself -- they are properties of *which file
says what*. This linter makes them mechanical:

  kernel-flags        Every kernel-defining TU under src/sim/ (one that
                      defines `namespace qoc::sim::kernels`) must be
                      listed in CMakeLists.txt with a
                      set_source_files_properties stanza applying
                      QOC_KERNEL_FLAGS (-ffp-contract=off). A new kernel
                      TU that silently picks up default flags would
                      contract mul+add into FMA and break the bitwise
                      cross-mode dispatch contract (kernels.hpp).

  avx2-containment    AVX2 intrinsics (_mm256*/__m256*/immintrin.h) may
                      appear only in `*_avx2.cpp` TUs, and every such TU
                      must guard its body with `__AVX2__`. Intrinsics in
                      an unguarded TU either break non-AVX2 builds or,
                      worse, sneak SIMD into a TU the runtime dispatcher
                      does not gate on __builtin_cpu_supports.

  determinism         No wall-clock or entropy seeding in src/ or
                      include/: rand()/srand()/std::random_device/
                      time()/system_clock. The serving determinism
                      contract (submission-pinned PRNG streams,
                      replayable transpile traces) dies the moment any
                      code path draws from the environment.

  naked-threads       `std::thread` construction is confined to the
                      ThreadPool implementation and the serve lanes
                      (dispatcher + per-replica workers). Ad-hoc threads
                      bypass the pool's bounded-concurrency and
                      nested-submission guarantees. `std::thread::`
                      static queries (hardware_concurrency) are fine
                      anywhere.

  kernel-fma          Kernel TUs under src/sim/ must not hand-write FMA
                      (std::fma/__builtin_fma/_mm256_fmadd/-fmsub) or
                      re-enable contraction (#pragma STDC FP_CONTRACT,
                      fast-math). They are compiled with
                      -ffp-contract=off precisely so scalar, blocked and
                      SIMD modes perform identical IEEE arithmetic.

  raw-mutex           std::mutex / std::condition_variable /
                      std::lock_guard / std::unique_lock /
                      std::scoped_lock / std::shared_mutex appear only
                      inside include/qoc/common/mutex.hpp. Everything
                      else must use the annotated wrappers
                      (common::Mutex / MutexLock / UniqueLock / CondVar)
                      so clang -Wthread-safety sees every lock.

  obs-clock           steady_clock reads are confined to qoc::obs
                      (include/qoc/obs/, src/obs/). Library code that
                      wants a timestamp must go through obs::now() /
                      obs::now_ns() (or record into an obs metric), so
                      every clock read is auditable as pure observation
                      -- scattered steady_clock::now() calls are how
                      time leaks into control decisions and breaks the
                      determinism contract. Timeout *arithmetic* on
                      time_points/durations is fine; it is the
                      `steady_clock` spelling that is confined.

Comments and string literals are stripped before pattern matching, so
documentation mentioning a forbidden construct does not trip the rules.

Usage:
  qoc_lint.py --root <repo-root>     lint a tree (exit 1 on violations)
  qoc_lint.py --self-test            run the linter against its seeded
                                     fixture tree and verify every rule
                                     fires exactly where expected
"""

import argparse
import os
import re
import sys

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")


def strip_comments_and_strings(text):
    """Remove //, /* */ comments and "..."/'...' literals, preserving
    newlines so violation line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")  # unterminated literal; keep lines
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def iter_sources(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def find_lines(pattern, text):
    """Yield 1-based line numbers where `pattern` matches `text`."""
    for m in re.finditer(pattern, text):
        yield text.count("\n", 0, m.start()) + 1


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


# ---------------------------------------------------------------------------
# Rules. Each takes (root, files) where files is {relpath: stripped_text},
# and yields Violations.
# ---------------------------------------------------------------------------

KERNEL_NAMESPACE = re.compile(r"namespace\s+qoc::sim::kernels\b")


def kernel_tus(files):
    return [p for p, text in files.items()
            if p.startswith("src/sim/") and p.endswith(".cpp")
            and KERNEL_NAMESPACE.search(text)]


def rule_kernel_flags(root, files):
    cmake_path = os.path.join(root, "CMakeLists.txt")
    try:
        with open(cmake_path, "r", encoding="utf-8", errors="replace") as f:
            cmake = f.read()
    except OSError:
        cmake = ""
    # One stanza per kernel TU:
    #   set_source_files_properties(src/sim/X.cpp
    #     PROPERTIES COMPILE_OPTIONS "${QOC_KERNEL...FLAGS}")
    for tu in kernel_tus(files):
        stanza = re.compile(
            r"set_source_files_properties\s*\(\s*" + re.escape(tu) +
            r"\s+PROPERTIES\s+COMPILE_OPTIONS\s+\"[^\"]*QOC_KERNEL\w*FLAGS",
            re.S)
        if not stanza.search(cmake):
            yield Violation(
                "kernel-flags", tu, 1,
                "kernel-defining TU (defines namespace qoc::sim::kernels) "
                "has no QOC_KERNEL_FLAGS set_source_files_properties stanza "
                "in CMakeLists.txt; it would compile with FP contraction on")


AVX2_USE = re.compile(r"_mm256_\w+|__m256\w*|\bimmintrin\.h\b|_mm_\w+")


def rule_avx2_containment(root, files):
    for path, text in files.items():
        uses = list(find_lines(AVX2_USE, text))
        if not uses:
            continue
        name = os.path.basename(path)
        if not name.endswith("_avx2.cpp"):
            yield Violation(
                "avx2-containment", path, uses[0],
                "AVX2 intrinsics outside a *_avx2.cpp TU; SIMD must live "
                "in dispatch-guarded kernel TUs only")
        elif "__AVX2__" not in text:
            yield Violation(
                "avx2-containment", path, uses[0],
                "*_avx2.cpp TU uses intrinsics without an __AVX2__ guard; "
                "non-AVX2 builds of this TU will not compile")


DETERMINISM = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w:])time\s*\("), "time()"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
]


def rule_determinism(root, files):
    for path, text in files.items():
        for pattern, label in DETERMINISM:
            for line in find_lines(pattern, text):
                yield Violation(
                    "determinism", path, line,
                    label + " draws from the environment; results must be "
                    "a pure function of the submission (seed PRNG streams "
                    "from pinned identifiers instead)")


THREAD_ALLOWLIST = {
    "include/qoc/common/thread_pool.hpp",
    "src/common/thread_pool.cpp",
    "src/serve/serve.cpp",
}
NAKED_THREAD = re.compile(r"\bstd::thread\b(?!\s*::)")


def rule_naked_threads(root, files):
    for path, text in files.items():
        if path in THREAD_ALLOWLIST:
            continue
        for line in find_lines(NAKED_THREAD, text):
            yield Violation(
                "naked-threads", path, line,
                "std::thread outside ThreadPool/serve lanes; route work "
                "through common::ThreadPool so concurrency stays bounded")


KERNEL_FMA = [
    (re.compile(r"\bstd::fma\b|(?<![\w:])fma\s*\("), "explicit fma"),
    (re.compile(r"__builtin_fma\w*"), "__builtin_fma"),
    (re.compile(r"_mm256_fmadd\w*|_mm256_fmsub\w*|_mm256_fnmadd\w*"),
     "AVX2 FMA intrinsic"),
    (re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON"),
     "#pragma STDC FP_CONTRACT ON"),
    (re.compile(r"fast[-_]math"), "fast-math"),
]


def rule_kernel_fma(root, files):
    for path, text in files.items():
        if not (path.startswith("src/sim/") and path.endswith(".cpp")):
            continue
        for pattern, label in KERNEL_FMA:
            for line in find_lines(pattern, text):
                yield Violation(
                    "kernel-fma", path, line,
                    label + " in a kernel TU; kernel TUs are built with "
                    "-ffp-contract=off so every dispatch mode performs "
                    "identical IEEE arithmetic -- no FMA, contracted or "
                    "hand-written")


MUTEX_HOME = "include/qoc/common/mutex.hpp"
RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")


def rule_raw_mutex(root, files):
    for path, text in files.items():
        if path == MUTEX_HOME:
            continue
        for line in find_lines(RAW_MUTEX, text):
            yield Violation(
                "raw-mutex", path, line,
                "raw standard-library lock primitive; use the annotated "
                "wrappers in qoc/common/mutex.hpp (common::Mutex, "
                "MutexLock, UniqueLock, CondVar) so clang -Wthread-safety "
                "sees the lock")


OBS_CLOCK_HOME_PREFIXES = ("include/qoc/obs/", "src/obs/")
OBS_CLOCK = re.compile(r"\bsteady_clock\b")


def rule_obs_clock(root, files):
    for path, text in files.items():
        if path.startswith(OBS_CLOCK_HOME_PREFIXES):
            continue
        for line in find_lines(OBS_CLOCK, text):
            yield Violation(
                "obs-clock", path, line,
                "steady_clock outside qoc::obs; read time through "
                "obs::now()/obs::now_ns() (qoc/obs/clock.hpp) so every "
                "clock read is auditable as pure observation")


RULES = [
    rule_kernel_flags,
    rule_avx2_containment,
    rule_determinism,
    rule_naked_threads,
    rule_kernel_fma,
    rule_raw_mutex,
    rule_obs_clock,
]

RULE_NAMES = [
    "kernel-flags",
    "avx2-containment",
    "determinism",
    "naked-threads",
    "kernel-fma",
    "raw-mutex",
    "obs-clock",
]


def lint(root):
    files = {}
    for path in iter_sources(root, ("src", "include")):
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            files[relpath(root, path)] = strip_comments_and_strings(f.read())
    violations = []
    for rule in RULES:
        violations.extend(rule(root, files))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# ---------------------------------------------------------------------------
# Self-test: lint the seeded fixture tree and verify each rule fires on the
# file seeded for it -- and nowhere else.
# ---------------------------------------------------------------------------

EXPECTED_FIXTURE_HITS = {
    "kernel-flags": {"src/sim/fixture_kernel.cpp"},
    "avx2-containment": {"src/sim/fixture_simd_leak.cpp"},
    "determinism": {"src/backend/fixture_entropy.cpp",
                    "src/replay/fixture_wallclock.cpp"},
    "naked-threads": {"src/serve/fixture_adhoc_thread.cpp"},
    "kernel-fma": {"src/sim/fixture_kernel.cpp"},
    "raw-mutex": {"include/qoc/fixture/fixture_raw_lock.hpp"},
    "obs-clock": {"src/exec/fixture_raw_clock.cpp"},
}


def self_test():
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")
    violations = lint(fixtures)
    hits = {}
    for v in violations:
        hits.setdefault(v.rule, set()).add(v.path)
    ok = True
    for rule in RULE_NAMES:
        expected = EXPECTED_FIXTURE_HITS[rule]
        got = hits.get(rule, set())
        if got == expected:
            print("self-test: rule %-18s fires on %s: OK" %
                  (rule, ", ".join(sorted(expected))))
        else:
            ok = False
            print("self-test: rule %-18s FAILED: expected %s, got %s" %
                  (rule, sorted(expected), sorted(got)))
    unexpected = set(hits) - set(RULE_NAMES)
    if unexpected:
        ok = False
        print("self-test: unknown rules fired: %s" % sorted(unexpected))
    if not ok:
        for v in violations:
            print("  " + str(v))
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded fixture tree and verify "
                             "every rule fires where expected")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.root:
        parser.error("--root is required unless --self-test is given")
    violations = lint(os.path.abspath(args.root))
    for v in violations:
        print(v)
    if violations:
        print("qoc_lint: %d violation(s)" % len(violations))
        return 1
    print("qoc_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
