#!/usr/bin/env bash
# Thread-safety analysis gate: proves the QOC_* annotations are live.
#
# Two checks, both against clang's -Werror=thread-safety:
#   1. tests/compile_fail/thread_safety_clean.cpp    MUST compile
#   2. tests/compile_fail/thread_safety_violation.cpp MUST NOT compile
#
# (1) guards against broken wrapper types or flags (a gate that rejects
# everything proves nothing); (2) guards against the annotations
# degrading to no-ops (e.g. a thread_annotations.hpp macro regression),
# which -Werror on the main build would never notice -- no-op
# annotations produce no warnings.
#
# Usage: tools/check_thread_safety_gate.sh [clang++-binary]
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CXX="${1:-clang++}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "check_thread_safety_gate: '$CXX' not found; skipping (the gate" \
       "only runs where clang is available)" >&2
  exit 0
fi

FLAGS=(-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
       -I "$REPO_ROOT/include")

fail=0

if "$CXX" "${FLAGS[@]}" \
    "$REPO_ROOT/tests/compile_fail/thread_safety_clean.cpp"; then
  echo "gate: clean snippet compiles under -Werror=thread-safety: OK"
else
  echo "gate: FAIL -- the CLEAN snippet was rejected; the annotated" \
       "wrapper types or analysis flags are broken" >&2
  fail=1
fi

if "$CXX" "${FLAGS[@]}" \
    "$REPO_ROOT/tests/compile_fail/thread_safety_violation.cpp" \
    2>/dev/null; then
  echo "gate: FAIL -- the lock-violating snippet COMPILED; the" \
       "thread-safety annotations are no-ops (macro regression?)" >&2
  fail=1
else
  echo "gate: violation snippet rejected under -Werror=thread-safety: OK"
fi

exit "$fail"
