#!/usr/bin/env python3
"""Assert a throughput ratio between two benchmark lines in a BENCH_*.json.

CI bench-smoke guard for the evaluation-major batch path: the k-wide
distinct-binding sweep must beat the scalar loop by a real margin, not
merely tie it. Reads the google-benchmark JSON that `bench_sim_micro
--json` drops (BENCH_sim_micro.json) and compares items_per_second of a
"wide" line against a "scalar" line:

    tools/check_bench_ratio.py BENCH_sim_micro.json \
        --name BM_RunBatchDistinctBindings \
        --scalar 10/1 --wide 10/-1 --min-ratio 1.5

Exit code 0 iff wide/scalar >= min-ratio. Aggregate rows (mean/median/
stddev from --benchmark_repetitions) are skipped; when several plain
rows match (repetitions without aggregates) the best items_per_second
of each side is used, which makes the check robust to a noisy run
being one of the repetitions.
"""

import argparse
import json
import sys


def best_items_per_second(results, name, args_suffix):
    full = f"{name}/{args_suffix}"
    rates = [
        r["items_per_second"]
        for r in results
        if r.get("name") == full
        and r.get("run_type", "iteration") == "iteration"
        and "items_per_second" in r
    ]
    if not rates:
        sys.exit(f"check_bench_ratio: no benchmark line named {full!r}")
    return max(rates)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path", help="BENCH_*.json from a --json bench run")
    ap.add_argument("--name", required=True, help="benchmark family name")
    ap.add_argument("--scalar", required=True,
                    help="arg suffix of the scalar line, e.g. 10/1")
    ap.add_argument("--wide", required=True,
                    help="arg suffix of the wide line, e.g. 10/-1")
    ap.add_argument("--min-ratio", type=float, default=1.5,
                    help="required wide/scalar items_per_second ratio")
    opts = ap.parse_args()

    with open(opts.json_path) as f:
        doc = json.load(f)
    results = doc.get("benchmarks", [])

    scalar = best_items_per_second(results, opts.name, opts.scalar)
    wide = best_items_per_second(results, opts.name, opts.wide)
    ratio = wide / scalar

    status = "OK" if ratio >= opts.min_ratio else "FAIL"
    print(f"{status}: {opts.name} {opts.wide} vs {opts.scalar}: "
          f"{wide:.3g} / {scalar:.3g} items/s = {ratio:.2f}x "
          f"(required >= {opts.min_ratio:.2f}x)")
    if ratio < opts.min_ratio:
        sys.exit(1)


if __name__ == "__main__":
    main()
