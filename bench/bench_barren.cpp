// Extension study: barren plateaus of parameter-shift gradients.
//
// A well-known obstacle to the scalability the paper pursues: for random
// hardware-efficient ansatze, the variance of dE/dtheta decays
// exponentially with qubit count (McClean et al., Nat. Commun. 2018).
// This bench measures Var[dE/dtheta_0] over random initialisations using
// the same exact parameter-shift machinery as the training engine --
// quantifying when gradient pruning's "large gradients are informative"
// assumption starts to strain.
//
// Expected shape: variance drops roughly geometrically as qubits grow.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qoc/circuit/layers.hpp"
#include "qoc/vqe/vqe.hpp"

namespace {

using namespace qoc;

double gradient_variance(int n_qubits, int depth, int samples,
                         std::uint64_t seed) {
  // Fixed two-local observable Z0 Z1 (the barren-plateau setting of
  // McClean et al.): the cost does not grow with n, while the random
  // circuit scrambles over an exponentially larger space.
  std::string zz(static_cast<std::size_t>(n_qubits), 'I');
  zz[0] = 'Z';
  zz[1] = 'Z';
  const vqe::Hamiltonian h(n_qubits, {{zz, 1.0}});
  const circuit::Circuit ansatz =
      vqe::VqeSolver::hardware_efficient_ansatz(n_qubits, depth);
  vqe::EnergyEstimator estimator(h);

  constexpr double kHalfPi = 1.5707963267948966;
  double sum = 0.0, sum_sq = 0.0;
  Prng rng(seed);
  for (int s = 0; s < samples; ++s) {
    std::vector<double> theta(
        static_cast<std::size_t>(ansatz.num_trainable()));
    for (auto& t : theta) t = rng.uniform(-3.14159, 3.14159);
    // dE/dtheta_0 via parameter shift (single parameter suffices for the
    // variance statistic).
    auto plus = theta, minus = theta;
    plus[0] += kHalfPi;
    minus[0] -= kHalfPi;
    const double g = 0.5 * (estimator.energy(ansatz, plus) -
                            estimator.energy(ansatz, minus));
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / samples;
  return sum_sq / samples - mean * mean;
}

}  // namespace

int main() {
  const int samples = qoc::benchutil::fast_mode() ? 30 : 120;
  std::printf("=== Barren-plateau study: Var[dE/dtheta_0] vs #qubits "
              "(Z0Z1 observable, hardware-efficient ansatz, %d samples) ===\n\n",
              samples);
  std::printf("%8s %8s %18s\n", "#qubits", "depth", "grad_variance");
  // Depth scales with n so the random ansatz approaches a 2-design, the
  // regime where the exponential gradient suppression appears.
  for (int n = 2; n <= 8; ++n) {
    const int depth = 2 * n;
    std::printf("%8d %8d %18.6e\n", n, depth,
                gradient_variance(n, depth, samples, 77 + n));
  }
  std::printf("shape check: variance decays with qubit count "
              "(exponential suppression -- the barren plateau).\n");
  return 0;
}
