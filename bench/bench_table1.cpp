// Table 1 reproduction: accuracy comparison among training protocols on the
// five QML tasks, each bound to its paper device.
//
// Paper rows (for reference):
//             Acc on   MNIST-4  MNIST-2  Fashion-4  Fashion-2  Vowel-4
//   Classical Simu.    0.61     0.88     0.73       0.89       0.37
//   Classical QC       0.59     0.79     0.54       0.89       0.31
//   QC-Train  QC       0.59     0.83     0.49       0.84       0.34
//   QC-PGP    QC       0.64     0.86     0.57       0.91       0.36
//
// Expected *shape* (absolute numbers differ -- synthetic data, simulated
// devices): noise-free simulation accuracy is the ceiling; testing the
// classically-trained model on the noisy device loses accuracy; QC-Train-
// PGP recovers most of the gap and beats plain QC-Train.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace qoc;
  using namespace qoc::benchutil;

  const int steps = default_steps(40);
  const std::size_t eval_n = 100;
  std::printf("=== Table 1: accuracy comparison among training protocols "
              "(steps=%d) ===\n\n", steps);
  std::printf("%-22s %-14s", "Method", "Tested on");
  auto tasks = paper_tasks();
  for (const auto& t : tasks) std::printf(" %10s", t.name.c_str());
  std::printf("\n");
  std::printf("%-22s %-14s", "", "");
  for (const auto& t : tasks) std::printf(" %10s", t.device.c_str() + 5);
  std::printf("\n");
  print_rule(96);

  struct Row {
    const char* method;
    const char* tested;
    std::vector<double> acc;
  };
  std::vector<Row> rows = {{"Classical-Train", "Simu.", {}},
                           {"Classical-Train", "QC", {}},
                           {"QC-Train", "QC", {}},
                           {"QC-Train-PGP", "QC", {}}};

  const int n_seeds = default_seeds();
  for (const auto& task : tasks) {
    std::fprintf(stderr, "[table1] %s ...\n", task.name.c_str());
    const qml::QnnModel model = qml::make_task_model(task.model_key);
    backend::StatevectorBackend classical_eval(0);
    backend::NoisyBackend qc_eval(noise::DeviceModel::by_name(task.device),
                                  default_noisy_options(101));

    double acc_cls_simu = 0, acc_cls_qc = 0, acc_plain = 0, acc_pgp = 0;
    for (int s = 0; s < n_seeds; ++s) {
      const std::uint64_t seed = 42 + 1000ull * s;
      const auto classical = train_classical(task, steps, seed);
      acc_cls_simu += eval_accuracy(model, classical_eval, classical.theta,
                                    task.val, eval_n, 1);
      acc_cls_qc += eval_accuracy(model, qc_eval, classical.theta, task.val,
                                  eval_n, 1);
      const auto qc_plain =
          train_on_chip(task, steps, seed, /*use_pgp=*/false);
      acc_plain += eval_accuracy(model, qc_eval, qc_plain.theta, task.val,
                                 eval_n, 1);
      const auto qc_pgp = train_on_chip(task, steps, seed, /*use_pgp=*/true);
      acc_pgp += eval_accuracy(model, qc_eval, qc_pgp.theta, task.val,
                               eval_n, 1);
    }
    rows[0].acc.push_back(acc_cls_simu / n_seeds);
    rows[1].acc.push_back(acc_cls_qc / n_seeds);
    rows[2].acc.push_back(acc_plain / n_seeds);
    rows[3].acc.push_back(acc_pgp / n_seeds);
  }

  for (const auto& row : rows) {
    std::printf("%-22s %-14s", row.method, row.tested);
    for (const double a : row.acc) std::printf(" %10.2f", a);
    std::printf("\n");
  }
  std::printf("\npaper shape check: QC-Train-PGP >= QC-Train on most tasks; "
              "Classical-Train tested on QC degrades vs Simu.\n");
  return 0;
}
