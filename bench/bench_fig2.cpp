// Figure 2 reproduction, three panels:
//
//  (a) theoretical #Ops and #Regs of classical simulation vs quantum
//      execution as qubit count grows -- classical is exponential,
//      quantum ~linear (cost model sweep, 1..40 qubits);
//  (b) the noise-induced accuracy gap: the same 2-class task trained
//      noise-free vs on-chip, validation measured on the noisy device for
//      both -- the QC curve saturates below the classical one;
//  (c) mean relative error of parameter-shift gradients vs gradient
//      magnitude, on two simulated devices (santiago and casablanca):
//      small gradients have much larger relative errors, the observation
//      motivating probabilistic gradient pruning.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "qoc/sim/cost_model.hpp"
#include "qoc/train/param_shift.hpp"

namespace {

using namespace qoc;
using namespace qoc::benchutil;

void panel_a() {
  std::printf("--- Fig. 2(a): theoretical #Ops / #Regs vs #qubits ---\n");
  std::printf("%8s %16s %16s %16s %16s\n", "#qubits", "classical_ops",
              "quantum_ops", "classical_regs", "quantum_regs");
  const sim::ScalingWorkload w;
  for (int n = 4; n <= 40; n += 4)
    std::printf("%8d %16.3e %16.3e %16.3e %16.3e\n", n,
                sim::classical_ops(n, w), sim::quantum_ops(n, w),
                sim::classical_regs(n), sim::quantum_regs(n));
  std::printf("\n");
}

void panel_b() {
  const int steps = default_steps(30);
  std::printf("--- Fig. 2(b): noise-induced accuracy gap (MNIST-4, "
              "steps=%d) ---\n", steps);
  auto tasks = paper_tasks({"MNIST-4"});
  const Task& task = tasks.front();
  const qml::QnnModel model = qml::make_task_model(task.model_key);
  backend::NoisyBackend qc_eval(noise::DeviceModel::by_name(task.device),
                                default_noisy_options(7));

  std::printf("%8s %22s %22s\n", "step", "classical_train_acc",
              "qc_train_acc");
  // Train both protocols with periodic on-device evaluation.
  auto curve = [&](bool on_chip) {
    std::vector<std::pair<int, double>> points;
    auto cfg = default_config(steps, 77);
    cfg.eval_every = std::max(1, steps / 6);
    cfg.max_eval_examples = 50;
    if (on_chip) {
      backend::NoisyBackend qc(noise::DeviceModel::by_name(task.device),
                               default_noisy_options(8));
      train::TrainingEngine engine(model, qc, qc_eval, task.train, task.val,
                                   cfg);
      engine.set_step_callback([&](const train::TrainingRecord& r) {
        points.emplace_back(r.step, r.val_accuracy);
      });
      engine.run();
    } else {
      backend::StatevectorBackend cls(0);
      train::TrainingEngine engine(model, cls, qc_eval, task.train, task.val,
                                   cfg);
      engine.set_step_callback([&](const train::TrainingRecord& r) {
        points.emplace_back(r.step, r.val_accuracy);
      });
      engine.run();
    }
    return points;
  };
  const auto classical = curve(false);
  const auto on_chip = curve(true);
  for (std::size_t i = 0; i < std::min(classical.size(), on_chip.size()); ++i)
    std::printf("%8d %22.3f %22.3f\n", classical[i].first,
                classical[i].second, on_chip[i].second);
  std::printf("(both curves are validated ON the noisy device; the gap "
              "between them is the noise-induced gap)\n\n");
}

void panel_c() {
  std::printf("--- Fig. 2(c): mean relative gradient error vs gradient "
              "magnitude ---\n");
  // Exact Jacobian (noise-free) vs parameter-shift Jacobian measured on
  // two devices; bin |g_exact| logarithmically and report the mean
  // relative error per bin per device.
  const qml::QnnModel model = qml::make_task_model("fashion4");
  backend::StatevectorBackend exact(0);
  train::ParameterShiftEngine exact_engine(exact, model);

  const char* devices[2] = {"ibmq_santiago", "ibmq_casablanca"};
  const double bin_edges[] = {0.0, 0.01, 0.02, 0.04, 0.08, 0.16, 1e9};
  constexpr int n_bins = 6;
  double err_sum[2][n_bins] = {};
  int err_cnt[2][n_bins] = {};

  Prng rng(5);
  const int n_samples = fast_mode() ? 2 : 6;
  for (int s = 0; s < n_samples; ++s) {
    const auto theta = [&] {
      Prng r(100 + s);
      return model.init_params(r);
    }();
    std::vector<double> input(16);
    for (auto& x : input) x = rng.uniform(0, 3.1416);

    const auto jac_exact = exact_engine.jacobian(theta, input);
    for (int d = 0; d < 2; ++d) {
      backend::NoisyBackend noisy(noise::DeviceModel::by_name(devices[d]),
                                  default_noisy_options(300 + s));
      train::ParameterShiftEngine noisy_engine(noisy, model);
      const auto jac_noisy = noisy_engine.jacobian(theta, input);
      for (std::size_t q = 0; q < jac_exact.size(); ++q)
        for (std::size_t i = 0; i < jac_exact[q].size(); ++i) {
          const double g = std::abs(jac_exact[q][i]);
          if (g < 1e-6) continue;  // zero-gradient params: rel err undefined
          const double rel = std::abs(jac_noisy[q][i] - jac_exact[q][i]) / g;
          int bin = 0;
          while (bin + 1 < n_bins && g >= bin_edges[bin + 1]) ++bin;
          err_sum[d][bin] += rel;
          ++err_cnt[d][bin];
        }
    }
  }

  std::printf("%24s %14s %14s\n", "gradient magnitude bin", "santiago",
              "casablanca");
  for (int b = 0; b < n_bins; ++b) {
    char label[64];
    if (b + 1 < n_bins)
      std::snprintf(label, sizeof label, "[%.2f, %.2f)", bin_edges[b],
                    bin_edges[b + 1]);
    else
      std::snprintf(label, sizeof label, ">= %.2f", bin_edges[b]);
    std::printf("%24s", label);
    for (int d = 0; d < 2; ++d) {
      if (err_cnt[d][b] > 0)
        std::printf(" %14.3f", err_sum[d][b] / err_cnt[d][b]);
      else
        std::printf(" %14s", "-");
    }
    std::printf("\n");
  }
  std::printf("(paper shape: relative error decreases monotonically with "
              "magnitude; casablanca > santiago)\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 2 reproduction ===\n\n");
  panel_a();
  panel_b();
  panel_c();
  return 0;
}
