#pragma once
// Shared harness for the paper-reproduction benchmarks: task registry
// (model + data + device per Sec. 4.1), training-protocol runners for
// Classical-Train / QC-Train / QC-Train-PGP, and table printing helpers.
//
// Environment knobs:
//   QOC_BENCH_STEPS  override the per-run optimizer step count
//   QOC_BENCH_FAST   if set (non-empty), quarter-scale everything

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/data/images.hpp"
#include "qoc/data/vowel.hpp"
#include "qoc/noise/device_model.hpp"
#include "qoc/obs/metrics.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/train/training_engine.hpp"

namespace qoc::benchutil {

/// Splices the process-wide metrics registry into an already-written
/// BENCH_<name>.json (as a top-level "qoc_metrics" object before the
/// closing brace), so counters accumulated across the bench run --
/// cache hit rates, batch/flush mix, latency histograms -- travel with
/// the perf lines in the CI artifact.
inline void embed_metrics_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  const auto pos = doc.find_last_of('}');
  if (pos == std::string::npos) return;
  std::ofstream out(path, std::ios::trunc);
  out << doc.substr(0, pos) << ",\n  \"qoc_metrics\": "
      << obs::Registry::global().json_dump() << "\n"
      << doc.substr(pos);
}

/// main() body for google-benchmark binaries that understand `--json`:
/// strips the flag from argv and, when present, appends
/// --benchmark_out=BENCH_<name>.json --benchmark_out_format=json so CI
/// can upload machine-readable results next to the console table.
/// Explicit --benchmark_out flags still win (later flags override).
inline int run_benchmarks_with_json(int argc, char** argv, const char* name) {
  std::vector<char*> args;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json")
      json = true;
    else
      args.push_back(argv[i]);
  }
  std::string out_flag =
      std::string("--benchmark_out=BENCH_") + name + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  args.push_back(nullptr);  // argv[argc] == nullptr, like main's argv
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (json) embed_metrics_json(std::string("BENCH_") + name + ".json");
  return 0;
}

#define QOC_BENCHMARK_JSON_MAIN(name)                                   \
  int main(int argc, char** argv) {                                     \
    return qoc::benchutil::run_benchmarks_with_json(argc, argv, name);  \
  }

struct Task {
  std::string name;          // "MNIST-4", ...
  std::string model_key;     // make_task_model key
  std::string device;        // paper's device for this task
  data::Dataset train;
  data::Dataset val;
  double pgp_ratio = 0.5;    // paper: 0.7 for Fashion-4, 0.5 otherwise
};

inline bool fast_mode() {
  const char* f = std::getenv("QOC_BENCH_FAST");
  return f != nullptr && f[0] != '\0';
}

inline int default_steps(int normal) {
  if (const char* s = std::getenv("QOC_BENCH_STEPS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fast_mode() ? std::max(4, normal / 4) : normal;
}

/// Number of random seeds to average noisy-protocol results over
/// (QOC_BENCH_SEEDS overrides; 1 in fast mode).
inline int default_seeds(int normal = 2) {
  if (const char* s = std::getenv("QOC_BENCH_SEEDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fast_mode() ? 1 : normal;
}

/// The five paper tasks with their paper-assigned devices (Sec. 4.2).
inline std::vector<Task> paper_tasks() {
  std::vector<Task> tasks;
  {
    auto td = data::make_mnist4();
    tasks.push_back({"MNIST-4", "mnist4", "ibmq_jakarta",
                     std::move(td.train), std::move(td.val), 0.5});
  }
  {
    auto td = data::make_mnist2();
    tasks.push_back({"MNIST-2", "mnist2", "ibmq_jakarta",
                     std::move(td.train), std::move(td.val), 0.5});
  }
  {
    auto td = data::make_fashion4();
    tasks.push_back({"Fashion-4", "fashion4", "ibmq_manila",
                     std::move(td.train), std::move(td.val), 0.7});
  }
  {
    auto td = data::make_fashion2();
    tasks.push_back({"Fashion-2", "fashion2", "ibmq_santiago",
                     std::move(td.train), std::move(td.val), 0.5});
  }
  {
    auto vt = data::make_vowel4();
    tasks.push_back({"Vowel-4", "vowel4", "ibmq_lima",
                     std::move(vt.train), std::move(vt.val), 0.5});
  }
  return tasks;
}

/// Subset of the tasks by name (benches that only need image tasks).
inline std::vector<Task> paper_tasks(const std::vector<std::string>& names) {
  std::vector<Task> all = paper_tasks();
  std::vector<Task> out;
  for (const auto& n : names)
    for (auto& t : all)
      if (t.name == n) out.push_back(std::move(t));
  return out;
}

inline backend::NoisyBackendOptions default_noisy_options(std::uint64_t seed) {
  backend::NoisyBackendOptions opt;
  opt.trajectories = fast_mode() ? 4 : 8;
  opt.shots = 1024;  // paper: "we set all the circuits to run 1024 shots"
  opt.seed = seed;
  // Calibrated error rates alone understate real-device damage (coherent
  // errors, crosstalk and drift are not in the depolarizing model), so the
  // benches scale them up to land in the paper's degradation regime.
  opt.noise_scale = 2.5;
  return opt;
}

inline train::TrainingConfig default_config(int steps, std::uint64_t seed) {
  train::TrainingConfig cfg;
  cfg.steps = steps;
  cfg.batch_size = 6;
  cfg.optimizer = train::OptimizerKind::Adam;
  cfg.lr_start = 0.3;
  cfg.lr_end = 0.03;
  cfg.eval_every = 0;  // benches evaluate explicitly where needed
  cfg.max_eval_examples = 50;
  cfg.seed = seed;
  cfg.threads = 0;  // benches use every core; see TrainingConfig::threads
  return cfg;
}

/// Accuracy of trained parameters on `val`, measured on `eval_backend`,
/// optionally subsampled.
inline double eval_accuracy(const qml::QnnModel& model,
                            backend::Backend& eval_backend,
                            const std::vector<double>& theta,
                            const data::Dataset& val,
                            std::size_t max_examples, std::uint64_t seed) {
  if (max_examples > 0 && val.size() > max_examples) {
    Prng rng(seed);
    const data::Dataset sub = val.sample(max_examples, rng);
    return model.accuracy(eval_backend, theta, sub, /*threads=*/0);
  }
  return model.accuracy(eval_backend, theta, val, /*threads=*/0);
}

struct ProtocolResult {
  std::vector<double> theta;
  std::uint64_t train_inferences = 0;
};

/// Classical-Train: Alg. 1 on a noise-free statevector backend.
inline ProtocolResult train_classical(const Task& task, int steps,
                                      std::uint64_t seed) {
  const qml::QnnModel model = qml::make_task_model(task.model_key);
  backend::StatevectorBackend backend(0);
  auto cfg = default_config(steps, seed);
  train::TrainingEngine engine(model, backend, backend, task.train, task.val,
                               cfg);
  auto res = engine.run();
  return {std::move(res.theta), res.total_inferences};
}

/// QC-Train / QC-Train-PGP: Alg. 1 with gradients evaluated on the task's
/// noisy device model.
///
/// The paper compares protocols at an equal *inference* budget ("the
/// accuracy is collected after finishing a certain number of circuit
/// runs", Sec. 4.2): PGP's skipped gradient evaluations buy it extra
/// optimizer steps within the same budget, so when `use_pgp` is set the
/// step count is scaled up by 1/(1 - savings_fraction).
inline ProtocolResult train_on_chip(const Task& task, int steps,
                                    std::uint64_t seed, bool use_pgp,
                                    bool deterministic_pruning = false) {
  const qml::QnnModel model = qml::make_task_model(task.model_key);
  backend::NoisyBackend qc(noise::DeviceModel::by_name(task.device),
                           default_noisy_options(seed));
  auto cfg = default_config(steps, seed);
  cfg.use_pruning = use_pgp;
  cfg.pruner.accumulation_window = 1;
  cfg.pruner.pruning_window = 2;
  cfg.pruner.ratio = task.pgp_ratio;
  cfg.pruner.deterministic = deterministic_pruning;
  if (use_pgp) {
    const double savings = cfg.pruner.savings_fraction();
    cfg.steps = static_cast<int>(std::lround(steps / (1.0 - savings)));
  }
  train::TrainingEngine engine(model, qc, qc, task.train, task.val, cfg);
  auto res = engine.run();
  return {std::move(res.theta), res.total_inferences};
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace qoc::benchutil
