// Figure 7 reproduction: ablations on the three pruning hyper-parameters
// -- pruning ratio r, accumulation window width w_a, pruning window width
// w_p -- on Fashion-4 and MNIST-2, with classical (noise-free) training
// and validation, exactly like the paper's ablation ("Classical Valid.
// Acc" axes).
//
// Expected shapes:
//   * ratio sweep: flat-ish up to r ~ 0.5, dropping toward r -> 1 (too
//     many frozen parameters per step);
//   * w_a sweep: best at 1-2; very large w_a flattens the sampling
//     distribution toward uniform;
//   * w_p sweep: degrades as w_p grows (stale magnitude estimates).

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace qoc;
using namespace qoc::benchutil;

double run_ablation(const Task& task, int steps, double ratio, int wa,
                    int wp, std::uint64_t seed) {
  // Classical ablation runs are cheap: average over seeds so the sweep
  // shape is not dominated by single-run variance.
  const int n_seeds = default_seeds(3);
  const qml::QnnModel model = qml::make_task_model(task.model_key);
  double acc = 0.0;
  for (int s = 0; s < n_seeds; ++s) {
    backend::StatevectorBackend backend(0);
    auto cfg = default_config(steps, seed + 1000ull * s);
    cfg.use_pruning = true;
    cfg.pruner.ratio = ratio;
    cfg.pruner.accumulation_window = wa;
    cfg.pruner.pruning_window = wp;
    train::TrainingEngine engine(model, backend, backend, task.train,
                                 task.val, cfg);
    const auto res = engine.run();
    backend::StatevectorBackend eval_backend(0);
    acc += eval_accuracy(model, eval_backend, res.theta, task.val, 150, 4);
  }
  return acc / n_seeds;
}

}  // namespace

int main() {
  const int steps = default_steps(40);
  std::printf("=== Figure 7: pruning hyper-parameter ablations, classical "
              "train/valid (steps=%d) ===\n\n", steps);
  auto tasks = paper_tasks({"Fashion-4", "MNIST-2"});

  std::printf("--- ablation on pruning ratio r (w_a=1, w_p=2) ---\n");
  std::printf("%8s", "r");
  for (const auto& t : tasks) std::printf(" %12s", t.name.c_str());
  std::printf("\n");
  for (const double r : {0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    std::printf("%8.1f", r);
    for (const auto& task : tasks) {
      std::fprintf(stderr, "[fig7] ratio %.1f %s ...\n", r,
                   task.name.c_str());
      std::printf(" %12.3f", run_ablation(task, steps, r, 1, 2, 19));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n--- ablation on accumulation window w_a (r=0.5, w_p=2) "
              "---\n");
  std::printf("%8s", "w_a");
  for (const auto& t : tasks) std::printf(" %12s", t.name.c_str());
  std::printf("\n");
  for (const int wa : {1, 2, 3, 4, 5}) {
    std::printf("%8d", wa);
    for (const auto& task : tasks) {
      std::fprintf(stderr, "[fig7] wa %d %s ...\n", wa, task.name.c_str());
      std::printf(" %12.3f", run_ablation(task, steps, 0.5, wa, 2, 19));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n--- ablation on pruning window w_p (r=0.5, w_a=1) ---\n");
  std::printf("%8s", "w_p");
  for (const auto& t : tasks) std::printf(" %12s", t.name.c_str());
  std::printf("\n");
  for (const int wp : {1, 2, 3, 4, 5}) {
    std::printf("%8d", wp);
    for (const auto& task : tasks) {
      std::fprintf(stderr, "[fig7] wp %d %s ...\n", wp, task.name.c_str());
      std::printf(" %12.3f", run_ablation(task, steps, 0.5, 1, wp, 19));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nshape check: r=0.4-0.6 competitive with r=0 at a third of "
              "the gradient cost; accuracy drops at r=1 and for very large "
              "windows.\n");
  return 0;
}
