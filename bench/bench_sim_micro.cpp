// Google-benchmark micro-benchmarks for the hot paths of the stack:
// statevector gate application, noisy trajectory execution, transpilation,
// and a full parameter-shift gradient step.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/circuit/layers.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/data/images.hpp"
#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/obs/obs.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/sim/gates.hpp"
#include "qoc/sim/kernels.hpp"
#include "qoc/sim/statevector.hpp"
#include "qoc/train/param_shift.hpp"
#include "qoc/transpile/lowered_cache.hpp"
#include "qoc/transpile/transpile.hpp"

namespace {

using namespace qoc;

/// Cycles a 1q gate over every qubit so all stride regimes (contiguous
/// low-qubit pairs through dim/2-strided high qubits) are averaged in.
void apply_1q_cycle(benchmark::State& state, sim::kernels::KernelMode mode) {
  const int n = static_cast<int>(state.range(0));
  sim::kernels::set_kernel_mode(mode);
  sim::Statevector sv(n);
  const auto g = sim::gate_ry(0.7);
  int q = 0;
  for (auto _ : state) {
    sv.apply_1q(g, q);
    q = (q + 1) % n;
  }
  sim::kernels::set_kernel_mode(sim::kernels::KernelMode::Auto);
  state.SetItemsProcessed(state.iterations() << n);
  state.SetLabel(mode == sim::kernels::KernelMode::Scalar
                     ? "scalar"
                     : sim::kernels::simd_backend());
}

void BM_Apply1q(benchmark::State& state) {
  apply_1q_cycle(state, sim::kernels::KernelMode::Auto);
}
BENCHMARK(BM_Apply1q)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

/// The pre-SIMD reference loops on the same cycle; the n >= 16 lines are
/// the kernel-regression guard (Auto must stay well ahead of Scalar).
void BM_Apply1qScalar(benchmark::State& state) {
  apply_1q_cycle(state, sim::kernels::KernelMode::Scalar);
}
BENCHMARK(BM_Apply1qScalar)->Arg(16)->Arg(20);

/// Observability overhead on a kernel-scale inner loop: the same 1q
/// cycle with one QOC_TRACE_SPAN per gate, tracer disabled (arg 1 = 0,
/// cost of the enabled-flag check) vs enabled (arg 1 = 1, two clock
/// reads + one ring write per span). The production instrumentation
/// spans batches, not gates; this line is the worst-case per-event
/// bound quoted in the docs. QOC_OBS=0 builds compile the span away.
void BM_Apply1qSpanOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool traced = state.range(1) != 0;
  if (traced)
    obs::Tracer::instance().start(1 << 16);
  else
    obs::Tracer::instance().stop();
  sim::Statevector sv(n);
  const auto g = sim::gate_ry(0.7);
  int q = 0;
  for (auto _ : state) {
    QOC_TRACE_SPAN("bench", "apply_1q");
    sv.apply_1q(g, q);
    q = (q + 1) % n;
  }
  if (traced) {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().clear();
  }
  state.SetItemsProcessed(state.iterations() << n);
  state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(BM_Apply1qSpanOverhead)->Args({12, 0})->Args({12, 1});

void apply_2q_cycle(benchmark::State& state, sim::kernels::KernelMode mode) {
  const int n = static_cast<int>(state.range(0));
  sim::kernels::set_kernel_mode(mode);
  sim::Statevector sv(n);
  const auto g = sim::gate_rzz(0.7);
  int q = 0;
  for (auto _ : state) {
    sv.apply_2q(g, q, (q + 1) % n);
    q = (q + 1) % n;
  }
  sim::kernels::set_kernel_mode(sim::kernels::KernelMode::Auto);
  state.SetItemsProcessed(state.iterations() << n);
  state.SetLabel(mode == sim::kernels::KernelMode::Scalar
                     ? "scalar"
                     : sim::kernels::simd_backend());
}

void BM_Apply2q(benchmark::State& state) {
  apply_2q_cycle(state, sim::kernels::KernelMode::Auto);
}
BENCHMARK(BM_Apply2q)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_Apply2qScalar(benchmark::State& state) {
  apply_2q_cycle(state, sim::kernels::KernelMode::Scalar);
}
BENCHMARK(BM_Apply2qScalar)->Arg(16)->Arg(20);

/// Full compiled-plan execution of a hardware-efficient layer stack at
/// n >= 16: the end-to-end statevector run line the blocked/SIMD kernels
/// are meant to move (ry/rz rotations, cz chain, rzz ring).
void statevector_run_large(benchmark::State& state,
                           sim::kernels::KernelMode mode) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit c(n);
  int t = 0;
  for (int layer = 0; layer < 2; ++layer) {
    for (int q = 0; q < n; ++q)
      c.add(circuit::GateKind::Ry, {q}, circuit::ParamRef::trainable(t++));
    for (int q = 0; q + 1 < n; ++q) c.add(circuit::GateKind::Cz, {q, q + 1});
    for (int q = 0; q + 1 < n; q += 2)
      c.add(circuit::GateKind::Rzz, {q, q + 1},
            circuit::ParamRef::trainable(t++));
  }
  const auto plan = exec::CompiledCircuit::compile(c);
  Prng rng(9);
  std::vector<double> theta(static_cast<std::size_t>(c.num_trainable()));
  for (auto& v : theta) v = rng.uniform(-1, 1);
  std::vector<double> angles;
  sim::kernels::set_kernel_mode(mode);
  sim::Statevector sv(n);
  for (auto _ : state) {
    plan.resolve_slots(theta, {}, exec::Evaluation::kNoShift, 0.0, angles);
    sv.reset();
    plan.apply(sv, angles);
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  sim::kernels::set_kernel_mode(sim::kernels::KernelMode::Auto);
  state.SetLabel(mode == sim::kernels::KernelMode::Scalar
                     ? "scalar"
                     : sim::kernels::simd_backend());
}

void BM_StatevectorRunLargeN(benchmark::State& state) {
  statevector_run_large(state, sim::kernels::KernelMode::Auto);
}
BENCHMARK(BM_StatevectorRunLargeN)->Arg(16)->Arg(18)->Arg(20);

void BM_StatevectorRunLargeNScalar(benchmark::State& state) {
  statevector_run_large(state, sim::kernels::KernelMode::Scalar);
}
BENCHMARK(BM_StatevectorRunLargeNScalar)->Arg(16)->Arg(18)->Arg(20);

void BM_ExpectationZAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Prng rng(1);
  sim::Statevector sv(n);
  for (int q = 0; q < n; ++q) sv.apply_1q(sim::gate_ry(rng.uniform(0, 3)), q);
  for (auto _ : state) benchmark::DoNotOptimize(sv.expectation_z_all());
}
BENCHMARK(BM_ExpectationZAll)->Arg(4)->Arg(10)->Arg(16);

void BM_Sample1024Shots(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Prng rng(2);
  sim::Statevector sv(n);
  for (int q = 0; q < n; ++q) sv.apply_1q(sim::gate_h(), q);
  for (auto _ : state) benchmark::DoNotOptimize(sv.sample(1024, rng));
}
BENCHMARK(BM_Sample1024Shots)->Arg(4)->Arg(10)->Arg(16);

void BM_TranspileTaskCircuit(benchmark::State& state) {
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(3);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  const auto device = noise::DeviceModel::ibmq_manila();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        transpile::transpile(model.circuit(), theta, input, device));
}
BENCHMARK(BM_TranspileTaskCircuit);

void BM_NoisyBackendRun(benchmark::State& state) {
  const qml::QnnModel model = qml::make_mnist2_model();
  Prng rng(4);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  backend::NoisyBackendOptions opt;
  opt.trajectories = static_cast<int>(state.range(0));
  opt.shots = 256;
  backend::NoisyBackend qc(noise::DeviceModel::ibmq_santiago(), opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(qc.run(model.circuit(), theta, input));
}
BENCHMARK(BM_NoisyBackendRun)->Arg(1)->Arg(8)->Arg(32);

void BM_ParameterShiftJacobian(benchmark::State& state) {
  const qml::QnnModel model = qml::make_mnist2_model();
  backend::StatevectorBackend backend(0);
  train::ParameterShiftEngine engine(backend, model);
  Prng rng(5);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.jacobian(theta, input));
}
BENCHMARK(BM_ParameterShiftJacobian);

void BM_ParameterShiftJacobianPooled(benchmark::State& state) {
  // Same Jacobian fanned over the persistent thread pool (0 = one worker
  // per hardware core). Before the pool, this configuration spawned and
  // joined fresh std::threads on every ~tens-of-microseconds batch.
  const qml::QnnModel model = qml::make_mnist2_model();
  backend::StatevectorBackend backend(0);
  train::ParameterShiftEngine engine(backend, model);
  engine.set_threads(0);
  Prng rng(5);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.jacobian(theta, input));
}
BENCHMARK(BM_ParameterShiftJacobianPooled);

// ---- Compiled execution plans ----------------------------------------------
// The bind-once-run-many engine vs the generic per-run path, on the same
// circuit and bindings.

void BM_StatevectorRunUncompiled(benchmark::State& state) {
  // The pre-plan hot path: resolve every ParamRef, build every gate
  // matrix, apply through the generic dense kernel.
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(6);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  const auto& c = model.circuit();
  for (auto _ : state) {
    sim::Statevector sv(c.num_qubits());
    for (const auto& op : c.ops()) {
      const double angle = circuit::resolve_angle(op.param, theta, input);
      sv.apply_matrix(circuit::gate_matrix(op.kind, angle), op.qubits);
    }
    benchmark::DoNotOptimize(sv.expectation_z_all());
  }
}
BENCHMARK(BM_StatevectorRunUncompiled);

void BM_StatevectorRunCompiled(benchmark::State& state) {
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(6);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  const auto& plan = model.plan();
  std::vector<double> angles;
  for (auto _ : state) {
    plan.resolve_slots(theta, input, exec::Evaluation::kNoShift, 0.0, angles);
    sim::Statevector sv(plan.num_qubits());
    plan.apply(sv, angles);
    benchmark::DoNotOptimize(sv.expectation_z_all());
  }
}
BENCHMARK(BM_StatevectorRunCompiled);

void BM_StatevectorRunCompiledFused(benchmark::State& state) {
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(6);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  exec::CompileOptions opts;
  opts.fuse_1q = true;
  const auto plan = exec::CompiledCircuit::compile(model.circuit(), opts);
  std::vector<double> angles;
  for (auto _ : state) {
    plan.resolve_slots(theta, input, exec::Evaluation::kNoShift, 0.0, angles);
    sim::Statevector sv(plan.num_qubits());
    plan.apply(sv, angles);
    benchmark::DoNotOptimize(sv.expectation_z_all());
  }
}
BENCHMARK(BM_StatevectorRunCompiledFused);

void BM_RunBatchExact(benchmark::State& state) {
  // One batched submission of `range(0)` evaluations on all cores.
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(7);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  backend::StatevectorBackend backend(0);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<exec::Evaluation> evals(n);
  for (auto& e : evals) {
    e.theta = theta;
    e.input = input;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(backend.run_batch(model.plan(), evals, 0));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_RunBatchExact)->Arg(16)->Arg(64)->Arg(256);

/// The layered ring ansatz the evaluation-major benchmarks share: one
/// RY column, then two RZZ-ring + RY columns, all trainable.
circuit::Circuit layered_ring_ansatz(int n) {
  circuit::Circuit c(n);
  for (int q = 0; q < n; ++q) c.ry(q, circuit::ParamRef::trainable(q));
  for (int l = 0; l < 2; ++l) {
    for (int q = 0; q < n; ++q)
      c.rzz(q, (q + 1) % n, circuit::ParamRef::trainable((q + l) % n));
    for (int q = 0; q < n; ++q)
      c.ry(q, circuit::ParamRef::trainable((q + l + 1) % n));
  }
  return c;
}

/// Distinct per-evaluation bindings for layered_ring_ansatz(n);
/// `thetas` owns the angle storage the evaluations point into.
std::vector<exec::Evaluation> distinct_bindings(
    int n, std::size_t batch, std::vector<std::vector<double>>& thetas) {
  thetas.assign(batch, {});
  std::vector<exec::Evaluation> evals(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    thetas[i].resize(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
      thetas[i][static_cast<std::size_t>(q)] =
          0.01 * static_cast<double>(i) + 0.1 * q;
    evals[i].theta = thetas[i];
  }
  return evals;
}

void BM_RunBatchDistinctBindings(benchmark::State& state) {
  // The evaluation-major acceptance line: 256 DISTINCT bindings of one
  // compiled structure, scalar per-evaluation execution (lanes:1) vs
  // the k-wide SoA lane path (lanes:-1, calibrated width). Same
  // layered ansatz on range(0) qubits; the ratio at equal n is the
  // lane-path speedup. tools/check_bench_ratio.py asserts the n=10
  // ratio from the JSON output in CI (under a pinned
  // QOC_LANE_CALIBRATION so the probe cannot pick a narrow width on a
  // throttled runner).
  const int n = static_cast<int>(state.range(0));
  const int lanes = static_cast<int>(state.range(1));
  const auto plan = exec::CompiledCircuit::compile(layered_ring_ansatz(n));
  constexpr std::size_t kBatch = 256;
  std::vector<std::vector<double>> thetas;
  const auto evals = distinct_bindings(n, kBatch, thetas);
  backend::StatevectorBackend backend(backend::StatevectorBackendOptions{
      .shots = 0, .seed = 1, .batch_lanes = lanes});
  for (auto _ : state)
    benchmark::DoNotOptimize(backend.run_batch(plan, evals, 0));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
  state.SetLabel(lanes == 1 ? "scalar" : "k-wide(auto)");
}
BENCHMARK(BM_RunBatchDistinctBindings)
    ->Args({10, 1})
    ->Args({10, -1})
    ->Args({14, 1})
    ->Args({14, -1});

void BM_RunBatchRaggedTail(benchmark::State& state) {
  // Ragged-tail compaction: per-binding cost of a batch whose size is
  // NOT a lane-width multiple. At k=8 pinned, 132 bindings run 16 full
  // groups plus one half-real padded group (vs 128 = 16 full groups);
  // the items/s lines should agree within ~10% -- before compaction
  // the 4-binding tail fell back to the scalar path and dominated.
  const int n = 10;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const auto plan = exec::CompiledCircuit::compile(layered_ring_ansatz(n));
  std::vector<std::vector<double>> thetas;
  const auto evals = distinct_bindings(n, batch, thetas);
  backend::StatevectorBackend backend(backend::StatevectorBackendOptions{
      .shots = 0, .seed = 1, .batch_lanes = 8});
  for (auto _ : state)
    benchmark::DoNotOptimize(backend.run_batch(plan, evals, 0));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
  state.SetLabel(batch % 8 == 0 ? "aligned" : "ragged");
}
BENCHMARK(BM_RunBatchRaggedTail)->Arg(128)->Arg(132);

void BM_TranspileWithTemplate(benchmark::State& state) {
  // Cached routing (the run_batch path) vs BM_TranspileTaskCircuit's full
  // pipeline.
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(3);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  const auto device = noise::DeviceModel::ibmq_manila();
  const auto tmpl = transpile::route_template(model.circuit(), device);
  std::vector<double> angles;
  for (auto _ : state) {
    model.plan().resolve_source_angles(theta, input,
                                       exec::Evaluation::kNoShift, 0.0,
                                       angles);
    benchmark::DoNotOptimize(
        transpile::transpile_with_angles(tmpl, angles, device));
  }
}
BENCHMARK(BM_TranspileWithTemplate);

void BM_TranspileWithProgramCache(benchmark::State& state) {
  // The zero-angle-pattern lowered-stream cache on top of the routed
  // template (the path NoisyBackend/DensityMatrixBackend batches take):
  // after the first binding of a pattern, per-evaluation work is recipe
  // replay + decision validation instead of lower_to_basis + optimize.
  const qml::QnnModel model = qml::make_fashion4_model();
  Prng rng(3);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  const auto device = noise::DeviceModel::ibmq_manila();
  const transpile::RoutedProgram prog(
      transpile::route_template(model.circuit(), device), device.n_qubits);
  std::vector<double> angles;
  for (auto _ : state) {
    model.plan().resolve_source_angles(theta, input,
                                       exec::Evaluation::kNoShift, 0.0,
                                       angles);
    benchmark::DoNotOptimize(prog.transpile(angles));
  }
}
BENCHMARK(BM_TranspileWithProgramCache);

void BM_NoisyBackendRunBatch(benchmark::State& state) {
  const qml::QnnModel model = qml::make_mnist2_model();
  Prng rng(4);
  const auto theta = model.init_params(rng);
  const std::vector<double> input(16, 0.5);
  backend::NoisyBackendOptions opt;
  opt.trajectories = 32;
  opt.shots = 256;
  backend::NoisyBackend qc(noise::DeviceModel::ibmq_santiago(), opt);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<exec::Evaluation> evals(n);
  for (auto& e : evals) {
    e.theta = theta;
    e.input = input;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(qc.run_batch(model.plan(), evals, 0));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NoisyBackendRunBatch)->Arg(8)->Arg(32);

/// Synthetic n-qubit line device with the default calibration numbers
/// (err_1q 3e-4, err_2q 1e-2, T1/T2 100us, stock readout error): the
/// stock IBMQ snapshots top out at 7 qubits, and the k-wide
/// trajectory acceptance line wants n in the 10-12 range.
noise::DeviceModel noisy_line_device(int n) {
  noise::DeviceModel d;
  d.name = "line" + std::to_string(n);
  d.n_qubits = n;
  for (int q = 0; q + 1 < n; ++q) d.coupling.emplace_back(q, q + 1);
  d.qubits.assign(static_cast<std::size_t>(n), noise::QubitCalibration{});
  d.validate();
  return d;
}

void BM_NoisyBackendRunLanes(benchmark::State& state) {
  // k-wide noisy trajectories (PR 10) vs the scalar trajectory loop:
  // the same 32-trajectory run with batch_lanes pinned to 1 (scalar),
  // 8, or 16 (wider lanes amortize per-event kernel overhead and win
  // monotonically here; k=16 is the measured best). Per-trajectory
  // results are bit-identical at every width (test_backend proves it);
  // this line is the throughput payoff on a depolarizing+relaxation
  // device at the register sizes the lane layout targets.
  const int n = static_cast<int>(state.range(0));
  const int lanes = static_cast<int>(state.range(1));
  const circuit::Circuit c = layered_ring_ansatz(n);
  std::vector<double> theta(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q)
    theta[static_cast<std::size_t>(q)] = 0.2 + 0.1 * q;
  const std::vector<double> input;
  backend::NoisyBackendOptions opt;
  opt.trajectories = 32;
  opt.shots = 256;
  opt.batch_lanes = lanes;
  backend::NoisyBackend qc(noisy_line_device(n), opt);
  for (auto _ : state) benchmark::DoNotOptimize(qc.run(c, theta, input));
  state.SetItemsProcessed(state.iterations() * opt.trajectories);
  state.SetLabel(lanes == 1 ? "scalar" : "k-wide");
}
BENCHMARK(BM_NoisyBackendRunLanes)
    ->Args({10, 1})
    ->Args({10, 8})
    ->Args({10, 16})
    ->Args({12, 1})
    ->Args({12, 8})
    ->Args({12, 16});

void BM_ImagePipeline(benchmark::State& state) {
  data::SyntheticImages gen(data::SyntheticImages::Style::Fashion, 4, 6);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto img = gen.generate(static_cast<int>(i % 4), i);
    benchmark::DoNotOptimize(data::image_to_features(img));
    ++i;
  }
}
BENCHMARK(BM_ImagePipeline);

}  // namespace

QOC_BENCHMARK_JSON_MAIN("sim_micro")
