// VQE benchmarks: Hamiltonian energy evaluation and parameter-shift
// energy sweeps, legacy per-term path vs the compiled expect_batch
// engine (one ansatz state per evaluation, one measured execution per
// commuting group, fanned over the persistent thread pool).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/exec/observable.hpp"
#include "qoc/sim/kernels.hpp"
#include "qoc/vqe/vqe.hpp"

namespace {

using namespace qoc;
using vqe::EnergyEstimator;
using vqe::EstimatorOptions;
using vqe::Hamiltonian;
using vqe::VqeSolver;

constexpr double kHalfPi = 1.5707963267948966;

struct Fixture {
  Hamiltonian h;
  circuit::Circuit ansatz;
  exec::CompiledCircuit plan;
  exec::CompiledObservable obs;
  std::vector<double> theta;

  static Fixture heisenberg(int n_qubits, int depth) {
    Hamiltonian h = Hamiltonian::heisenberg(n_qubits, 1.0);
    circuit::Circuit ansatz =
        VqeSolver::hardware_efficient_ansatz(n_qubits, depth);
    exec::CompiledCircuit plan = exec::CompiledCircuit::compile(ansatz);
    exec::CompiledObservable obs = vqe::compile_observable(h);
    Prng rng(17);
    std::vector<double> theta(
        static_cast<std::size_t>(ansatz.num_trainable()));
    for (auto& t : theta) t = rng.uniform(-1.0, 1.0);
    return {std::move(h), std::move(ansatz), std::move(plan), std::move(obs),
            std::move(theta)};
  }
};

void BM_VqeEnergyExactLegacy(benchmark::State& state) {
  // The pre-batching estimator path: uncompiled state preparation
  // (resolve every ParamRef, build every gate matrix, generic dense
  // kernel) followed by the per-term Hamiltonian loop.
  const auto f = Fixture::heisenberg(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    sim::Statevector psi(f.ansatz.num_qubits());
    for (const auto& op : f.ansatz.ops()) {
      const double angle = circuit::resolve_angle(op.param, f.theta, {});
      psi.apply_matrix(circuit::gate_matrix(op.kind, angle), op.qubits);
    }
    benchmark::DoNotOptimize(f.h.expectation(psi));
  }
}
BENCHMARK(BM_VqeEnergyExactLegacy)->Arg(4)->Arg(8);

void BM_VqeEnergyExactCompiled(benchmark::State& state) {
  // Same energy through the compiled plan + observable (bit-identical
  // results; see tests/test_backend.cpp). The n = 16 line is the
  // large-register statevector path the blocked/SIMD kernels target.
  const auto f = Fixture::heisenberg(static_cast<int>(state.range(0)), 3);
  EnergyEstimator est(f.h);
  for (auto _ : state)
    benchmark::DoNotOptimize(est.energy(f.ansatz, f.theta));
  state.SetLabel(sim::kernels::simd_backend());
}
BENCHMARK(BM_VqeEnergyExactCompiled)->Arg(4)->Arg(8)->Arg(16);

void BM_VqeEnergyExactCompiledScalarKernels(benchmark::State& state) {
  // The same compiled path forced onto the scalar reference kernels:
  // the n = 16 regression guard for the blocked/SIMD layer
  // (bit-identical results, see tests/test_kernels.cpp).
  const auto f = Fixture::heisenberg(static_cast<int>(state.range(0)), 3);
  EnergyEstimator est(f.h);
  sim::kernels::set_kernel_mode(sim::kernels::KernelMode::Scalar);
  for (auto _ : state)
    benchmark::DoNotOptimize(est.energy(f.ansatz, f.theta));
  sim::kernels::set_kernel_mode(sim::kernels::KernelMode::Auto);
  state.SetLabel("scalar");
}
BENCHMARK(BM_VqeEnergyExactCompiledScalarKernels)->Arg(16);

void BM_VqeEnergySampledGrouped(benchmark::State& state) {
  // Finite-shot estimate: one measured execution per commuting group.
  const auto f = Fixture::heisenberg(4, 3);
  EstimatorOptions opt;
  opt.shots = static_cast<int>(state.range(0));
  EnergyEstimator est(f.h, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(est.energy(f.ansatz, f.theta));
}
BENCHMARK(BM_VqeEnergySampledGrouped)->Arg(256)->Arg(1024);

void BM_VqeGradientSweep(benchmark::State& state) {
  // Full parameter-shift energy sweep (2 evaluations per parameter
  // occurrence) submitted as ONE energies() batch; range(0) = worker
  // threads (0 = one per hardware core).
  const auto f = Fixture::heisenberg(4, 3);
  EnergyEstimator est(f.h);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  std::vector<exec::Evaluation> evals;
  for (std::size_t op = 0; op < f.ansatz.num_ops(); ++op) {
    if (!circuit::gate_is_parameterised(f.ansatz.op(op).kind)) continue;
    evals.push_back({f.theta, {}, op, kHalfPi});
    evals.push_back({f.theta, {}, op, -kHalfPi});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(est.energies(f.ansatz, evals, threads));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(evals.size()));
}
BENCHMARK(BM_VqeGradientSweep)->Arg(1)->Arg(0);

void BM_ExpectBatchStatevector(benchmark::State& state) {
  // Backend-level batched expectations: range(0) evaluations per call.
  const auto f = Fixture::heisenberg(4, 3);
  backend::StatevectorBackend qc(0);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<exec::Evaluation> evals(
      n, {f.theta, {}, exec::Evaluation::kNoShift, 0.0});
  for (auto _ : state)
    benchmark::DoNotOptimize(qc.expect_batch(f.plan, f.obs, evals, 0));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExpectBatchStatevector)->Arg(16)->Arg(64);

void BM_VqeStepH2(benchmark::State& state) {
  // One full optimisation step's worth of energy evaluations on H2.
  const Hamiltonian h = Hamiltonian::h2_minimal();
  const auto ansatz = VqeSolver::hardware_efficient_ansatz(2, 2);
  EnergyEstimator est(h);
  Prng rng(19);
  std::vector<double> theta(static_cast<std::size_t>(ansatz.num_trainable()));
  for (auto& t : theta) t = rng.uniform(-0.5, 0.5);
  std::vector<exec::Evaluation> evals;
  evals.push_back({theta, {}, exec::Evaluation::kNoShift, 0.0});
  for (std::size_t op = 0; op < ansatz.num_ops(); ++op) {
    if (!circuit::gate_is_parameterised(ansatz.op(op).kind)) continue;
    evals.push_back({theta, {}, op, kHalfPi});
    evals.push_back({theta, {}, op, -kHalfPi});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(est.energies(ansatz, evals, 1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(evals.size()));
}
BENCHMARK(BM_VqeStepH2);

}  // namespace

QOC_BENCHMARK_JSON_MAIN("vqe")
