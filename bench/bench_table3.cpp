// Table 3 reproduction: optimizer comparison (SGD vs SGD+Momentum(0.8) vs
// Adam) under the cosine LR schedule 0.3 -> 0.03, accuracy tested on
// classical (noise-free) devices, as in Sec. 4.3.
//
// Paper:          MNIST-4  MNIST-2  Fashion-4  Fashion-2
//   SGD           0.50     0.80     0.45       0.76
//   Momentum      0.55     0.83     0.66       0.90
//   Adam          0.61     0.88     0.75       0.91
//
// Expected shape: Adam >= Momentum >= SGD on most tasks.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace qoc;
  using namespace qoc::benchutil;

  const int steps = default_steps(60);
  const std::size_t eval_n = 150;
  auto tasks =
      paper_tasks({"MNIST-4", "MNIST-2", "Fashion-4", "Fashion-2"});
  const train::OptimizerKind kinds[] = {train::OptimizerKind::Sgd,
                                        train::OptimizerKind::Momentum,
                                        train::OptimizerKind::Adam};

  std::printf("=== Table 3: optimizer comparison, classical training & "
              "testing (steps=%d) ===\n\n", steps);
  std::printf("%-12s", "Optimizer");
  for (const auto& t : tasks) std::printf(" %10s", t.name.c_str());
  std::printf("\n");
  print_rule(56);

  const int n_seeds = fast_mode() ? 1 : 3;
  for (const auto kind : kinds) {
    std::printf("%-12s", train::optimizer_name(kind).c_str());
    for (const auto& task : tasks) {
      std::fprintf(stderr, "[table3] %s / %s ...\n",
                   train::optimizer_name(kind).c_str(), task.name.c_str());
      const qml::QnnModel model = qml::make_task_model(task.model_key);
      double acc = 0.0;
      for (int s = 0; s < n_seeds; ++s) {
        backend::StatevectorBackend backend(0);
        auto cfg = default_config(steps, 91 + 10 * s);
        cfg.optimizer = kind;
        train::TrainingEngine engine(model, backend, backend, task.train,
                                     task.val, cfg);
        const auto res = engine.run();
        backend::StatevectorBackend eval_backend(0);
        acc += eval_accuracy(model, eval_backend, res.theta, task.val,
                             eval_n, 3);
      }
      std::printf(" %10.2f", acc / n_seeds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape check: Adam best on every task, SGD worst.\n");
  return 0;
}
