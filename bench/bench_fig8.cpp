// Figure 8 reproduction: runtime and memory scaling of classical
// simulation vs quantum on-chip execution for the paper's workload (50
// circuits, 16 rotation gates + 32 RZZ gates, 1024 shots).
//
// Classical runtime is MEASURED with this repository's statevector
// simulator up to a laptop-friendly qubit count and extrapolated with the
// analytic cost model beyond (the paper does the same: GPU-measured to 22
// qubits, extrapolated after). Quantum numbers come from the device
// latency model (gate durations + readout + reset per shot).
//
// Expected shape: classical curves explode exponentially; quantum stays
// near-linear; crossover in the mid-20s of qubits; classical memory
// reaches thousands of GB while quantum memory is negligible.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/sim/cost_model.hpp"
#include "qoc/sim/gates.hpp"
#include "qoc/sim/statevector.hpp"

namespace {

using namespace qoc;

/// Measured seconds to simulate the Fig. 8 workload circuit shape once
/// (16 1q rotations + 32 RZZ) on n qubits.
double measure_classical_once(int n) {
  Prng rng(n);
  sim::Statevector sv(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (int g = 0; g < 16; ++g)
    sv.apply_1q(sim::gate_ry(rng.uniform(-3, 3)),
                static_cast<int>(rng.uniform_int(n)));
  for (int g = 0; g < 32; ++g) {
    const int a = static_cast<int>(rng.uniform_int(n));
    const int b = (a + 1 + static_cast<int>(rng.uniform_int(
                              static_cast<std::uint64_t>(n - 1)))) % n;
    sv.apply_2q(sim::gate_rzz(rng.uniform(-3, 3)), a, b);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const sim::ScalingWorkload w;
  const int measure_limit = qoc::benchutil::fast_mode() ? 16 : 22;

  std::printf("=== Figure 8: runtime & memory scaling, classical vs "
              "quantum ===\n\n");
  std::printf("workload: %d circuits x (%d rot + %d RZZ gates), %d shots\n\n",
              w.n_circuits, w.n_rot_1q, w.n_rot_2q, w.shots);
  std::printf("%8s %18s %18s %16s %16s %10s\n", "#qubits",
              "classical_rt_s", "quantum_rt_s", "classical_mem_GB",
              "quantum_mem_GB", "source");

  for (int n = 4; n <= 40; n += 2) {
    double classical_rt;
    const char* source;
    if (n <= measure_limit) {
      // Measured: one circuit, scaled to the 50-circuit workload.
      classical_rt = measure_classical_once(n) * w.n_circuits;
      source = "measured";
    } else {
      classical_rt = sim::classical_runtime_s(n, w);
      source = "model";
    }
    std::printf("%8d %18.4e %18.4e %16.4e %16.4e %10s\n", n, classical_rt,
                sim::quantum_runtime_s(n, w), sim::classical_memory_gb(n),
                sim::quantum_memory_gb(n, w), source);
  }

  // Locate the runtime crossover predicted by the model.
  int crossover = -1;
  for (int n = 4; n <= 40; ++n)
    if (sim::classical_runtime_s(n, w) > sim::quantum_runtime_s(n, w)) {
      crossover = n;
      break;
    }
  std::printf("\nmodel-predicted quantum-advantage crossover: %d qubits "
              "(paper observes ~27 on ibmq_toronto)\n", crossover);
  return 0;
}
