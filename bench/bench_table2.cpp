// Table 2 reproduction: probabilistic vs deterministic gradient pruning.
//
// Paper:             MNIST-4  MNIST-2  Fashion-4  Fashion-2
//   Deterministic    0.61     0.82     0.72       0.89
//   Probabilistic    0.62     0.85     0.79       0.90
//
// Expected shape: probabilistic sampling (the paper's method) matches or
// beats keep-top-k deterministic pruning, which suffers from gradient
// sampling bias (frozen parameters can never re-enter the update set
// within a stage).

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace qoc;
  using namespace qoc::benchutil;

  const int steps = default_steps(30);
  const std::size_t eval_n = 100;
  auto tasks =
      paper_tasks({"MNIST-4", "MNIST-2", "Fashion-4", "Fashion-2"});

  std::printf("=== Table 2: probabilistic vs deterministic pruning "
              "(steps=%d) ===\n\n", steps);
  std::printf("%-16s", "Method");
  for (const auto& t : tasks) std::printf(" %10s", t.name.c_str());
  std::printf("\n");
  print_rule(60);

  const int n_seeds = default_seeds();
  std::vector<double> det, prob;
  for (const auto& task : tasks) {
    std::fprintf(stderr, "[table2] %s ...\n", task.name.c_str());
    const qml::QnnModel model = qml::make_task_model(task.model_key);
    backend::NoisyBackend qc_eval(noise::DeviceModel::by_name(task.device),
                                  default_noisy_options(202));
    double acc_det = 0, acc_prob = 0;
    for (int s = 0; s < n_seeds; ++s) {
      const std::uint64_t seed = 57 + 1000ull * s;
      const auto r_det = train_on_chip(task, steps, seed, /*use_pgp=*/true,
                                       /*deterministic=*/true);
      const auto r_prob = train_on_chip(task, steps, seed, /*use_pgp=*/true,
                                        /*deterministic=*/false);
      acc_det +=
          eval_accuracy(model, qc_eval, r_det.theta, task.val, eval_n, 2);
      acc_prob +=
          eval_accuracy(model, qc_eval, r_prob.theta, task.val, eval_n, 2);
    }
    det.push_back(acc_det / n_seeds);
    prob.push_back(acc_prob / n_seeds);
  }

  std::printf("%-16s", "Deterministic");
  for (const double a : det) std::printf(" %10.2f", a);
  std::printf("\n%-16s", "Probabilistic");
  for (const double a : prob) std::printf(" %10.2f", a);
  std::printf("\n\npaper shape check: probabilistic >= deterministic on "
              "most tasks (paper reports 1-7%% gains).\n");
  return 0;
}
