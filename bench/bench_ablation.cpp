// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own ablations in Fig. 7):
//
//  (1) noise-component ablation: how much each modelled noise source
//      (gate depolarizing / thermal relaxation / readout) contributes to
//      the on-device accuracy drop of a classically-trained model;
//  (2) shot-budget ablation: parameter-shift gradient fidelity vs number
//      of measurement shots (the sqrt(shots) SNR law that interacts with
//      pruning);
//  (3) routing ablation: transpiled CX/SWAP cost of each task circuit on
//      each device topology -- why ring layers hurt more on line devices.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qoc/train/param_shift.hpp"
#include "qoc/transpile/transpile.hpp"

namespace {

using namespace qoc;
using namespace qoc::benchutil;

void noise_component_ablation() {
  std::printf("--- (1) noise-component ablation (MNIST-4 / jakarta) "
              "---\n");
  auto tasks = paper_tasks({"MNIST-4"});
  const Task& task = tasks.front();
  const qml::QnnModel model = qml::make_task_model(task.model_key);

  // Train once, noise-free.
  const auto trained = train_classical(task, default_steps(40), 42);

  struct Setting {
    const char* name;
    bool gate, relax, readout;
  };
  const Setting settings[] = {
      {"noise-free (reference)", false, false, false},
      {"gate depolarizing only", true, false, false},
      {"thermal relaxation only", false, true, false},
      {"readout error only", false, false, true},
      {"all sources", true, true, true},
  };
  std::printf("%-28s %10s\n", "noise sources enabled", "val_acc");
  for (const auto& s : settings) {
    auto opt = default_noisy_options(404);
    opt.enable_gate_noise = s.gate;
    opt.enable_relaxation = s.relax;
    opt.enable_readout_error = s.readout;
    backend::NoisyBackend qc(noise::DeviceModel::by_name(task.device), opt);
    const double acc =
        eval_accuracy(model, qc, trained.theta, task.val, 100, 5);
    std::printf("%-28s %10.3f\n", s.name, acc);
  }
  std::printf("\n");
}

void shot_budget_ablation() {
  std::printf("--- (2) gradient error vs shot budget (MNIST-2 encoder "
              "circuit) ---\n");
  const qml::QnnModel model = qml::make_task_model("mnist2");
  backend::StatevectorBackend exact_backend(0);
  train::ParameterShiftEngine exact_engine(exact_backend, model);
  Prng rng(6);
  const auto theta = model.init_params(rng);
  std::vector<double> input(16);
  for (auto& x : input) x = rng.uniform(0, 3.1416);
  const auto jac_exact = exact_engine.jacobian(theta, input);

  std::printf("%10s %22s\n", "shots", "mean_abs_grad_error");
  for (const int shots : {64, 256, 1024, 4096, 16384}) {
    backend::StatevectorBackend sampled(shots, 777);
    train::ParameterShiftEngine engine(sampled, model);
    const auto jac = engine.jacobian(theta, input);
    double err = 0.0;
    int count = 0;
    for (std::size_t q = 0; q < jac.size(); ++q)
      for (std::size_t i = 0; i < jac[q].size(); ++i) {
        err += std::abs(jac[q][i] - jac_exact[q][i]);
        ++count;
      }
    std::printf("%10d %22.5f\n", shots, err / count);
  }
  std::printf("(expected: error ~ 1/sqrt(shots))\n\n");
}

void routing_ablation() {
  std::printf("--- (3) transpiled cost of each task circuit per device "
              "---\n");
  std::printf("%-12s %-16s %8s %8s %8s %8s\n", "task", "device", "CX",
              "SWAPs", "depth", "est_success");
  auto tasks = paper_tasks();
  for (const auto& task : tasks) {
    const qml::QnnModel model = qml::make_task_model(task.model_key);
    Prng rng(7);
    const auto theta = model.init_params(rng);
    const std::vector<double> input(
        static_cast<std::size_t>(model.num_inputs()), 0.5);
    for (const auto& dev_name :
         {std::string("ibmq_manila"), task.device,
          std::string("ibmq_jakarta")}) {
      const auto device = noise::DeviceModel::by_name(dev_name);
      const auto t =
          transpile::transpile(model.circuit(), theta, input, device);
      std::printf("%-12s %-16s %8zu %8zu %8zu %11.3f\n", task.name.c_str(),
                  dev_name.c_str(), t.stats.n_cx, t.n_swaps_inserted,
                  t.stats.depth,
                  transpile::estimated_success_probability(t, device));
    }
  }
  std::printf("(line devices pay SWAP overhead for ring layers; richer "
              "coupling maps route cheaper)\n");
}

}  // namespace

int main() {
  std::printf("=== Design-choice ablations ===\n\n");
  noise_component_ablation();
  shot_budget_ablation();
  routing_ablation();
  return 0;
}
