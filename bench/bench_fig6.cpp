// Figure 6 reproduction: real-QC validation accuracy vs #inferences for
// the three protocols on (a) Fashion-2 / santiago and (b) Fashion-4 /
// manila.
//
// The x-axis is the number of circuits run on the training backend --
// PGP's pruned steps consume fewer inferences, so its curve advances
// "left of" QC-Train at equal accuracy. The paper reports PGP reaching
// peak accuracy in ~13.9k inferences where Classical-Train needs >30k,
// and a 2-3.6% accuracy edge at fixed budget.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace qoc;
using namespace qoc::benchutil;

struct CurvePoint {
  std::uint64_t inferences;
  double acc;
};

std::vector<CurvePoint> run_curve(const Task& task, const char* protocol,
                                  int steps, std::uint64_t seed) {
  const qml::QnnModel model = qml::make_task_model(task.model_key);
  backend::NoisyBackend qc_eval(noise::DeviceModel::by_name(task.device),
                                default_noisy_options(1000 + seed));
  std::vector<CurvePoint> curve;

  auto cfg = default_config(steps, seed);
  cfg.eval_every = std::max(1, steps / 8);
  cfg.max_eval_examples = 50;

  const std::string p = protocol;
  if (p == "classical") {
    backend::StatevectorBackend cls(0);
    train::TrainingEngine engine(model, cls, qc_eval, task.train, task.val,
                                 cfg);
    engine.set_step_callback([&](const train::TrainingRecord& r) {
      curve.push_back({r.inferences, r.val_accuracy});
    });
    engine.run();
  } else {
    backend::NoisyBackend qc(noise::DeviceModel::by_name(task.device),
                             default_noisy_options(seed));
    cfg.use_pruning = (p == "pgp");
    cfg.pruner.accumulation_window = 1;
    cfg.pruner.pruning_window = 2;
    cfg.pruner.ratio = task.pgp_ratio;
    train::TrainingEngine engine(model, qc, qc_eval, task.train, task.val,
                                 cfg);
    engine.set_step_callback([&](const train::TrainingRecord& r) {
      curve.push_back({r.inferences, r.val_accuracy});
    });
    engine.run();
  }
  return curve;
}

void panel(const Task& task, int steps) {
  std::fprintf(stderr, "[fig6] %s on %s ...\n", task.name.c_str(),
               task.device.c_str());
  std::printf("--- %s on %s ---\n", task.name.c_str(), task.device.c_str());
  const auto pgp = run_curve(task, "pgp", steps, 31);
  const auto plain = run_curve(task, "plain", steps, 31);
  const auto classical = run_curve(task, "classical", steps, 31);

  std::printf("%-14s %12s %10s\n", "protocol", "#inference", "val_acc");
  auto dump = [](const char* name, const std::vector<CurvePoint>& c) {
    for (const auto& p : c)
      std::printf("%-14s %12llu %10.3f\n", name,
                  static_cast<unsigned long long>(p.inferences), p.acc);
  };
  dump("QC-Train-PGP", pgp);
  dump("QC-Train", plain);
  dump("Classical", classical);

  double best_pgp = 0, best_plain = 0;
  for (const auto& p : pgp) best_pgp = std::max(best_pgp, p.acc);
  for (const auto& p : plain) best_plain = std::max(best_plain, p.acc);
  std::printf("best: PGP %.3f (%llu inferences) vs QC-Train %.3f (%llu)\n\n",
              best_pgp,
              static_cast<unsigned long long>(pgp.back().inferences),
              best_plain,
              static_cast<unsigned long long>(plain.back().inferences));
}

}  // namespace

int main() {
  using namespace qoc::benchutil;
  const int steps = default_steps(30);
  std::printf("=== Figure 6: validation accuracy vs #inferences "
              "(steps=%d) ===\n\n", steps);
  auto tasks = paper_tasks({"Fashion-2", "Fashion-4"});
  for (const auto& task : tasks) panel(task, steps);
  std::printf("shape check: at the end of training, PGP has consumed fewer "
              "inferences than QC-Train for the same step count, with equal "
              "or better accuracy.\n");
  return 0;
}
