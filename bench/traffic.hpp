#pragma once
// Shared seeded traffic generators for the serve layer.
//
// bench_serve.cpp and the qoc_replay golden-corpus generator submit the
// SAME streams through these helpers, so a trace recorded from a corpus
// scenario exercises exactly the binding shapes the benchmarks measure
// -- no drifting copies. Everything here is a pure function of its
// arguments (no global state, no entropy), so two processes calling the
// same sequence produce bit-identical bindings.

#include <cstdint>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/circuit/layers.hpp"

namespace qoc::traffic {

inline constexpr int kQubits = 10;
inline constexpr int kLayers = 2;
inline constexpr int kStructures = 8;

/// The canonical 10-qubit QNN-shaped workload circuit: rotation encoder
/// + kLayers x (RZZ ring + RY layer), 50 ops.
inline circuit::Circuit qnn_circuit() {
  circuit::Circuit c(kQubits);
  circuit::add_rotation_encoder(c, kQubits);
  for (int l = 0; l < kLayers; ++l) {
    circuit::add_rzz_ring_layer(c);
    circuit::add_ry_layer(c);
  }
  return c;
}

/// Eight distinct 10-qubit structures (encoder widths 3..10), so
/// structure-affinity routing has something to spread across replicas.
inline std::vector<circuit::Circuit> structure_catalog() {
  std::vector<circuit::Circuit> out;
  for (int s = 0; s < kStructures; ++s) {
    circuit::Circuit c(kQubits);
    circuit::add_rotation_encoder(c, 3 + s);
    for (int l = 0; l < kLayers; ++l) {
      circuit::add_rzz_ring_layer(c);
      circuit::add_ry_layer(c);
    }
    out.push_back(std::move(c));
  }
  return out;
}

inline std::vector<double> base_theta(const circuit::Circuit& c) {
  std::vector<double> v(static_cast<std::size_t>(c.num_trainable()));
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 0.1 * static_cast<double>(i % 7) - 0.3;
  return v;
}

inline std::vector<double> base_input(const circuit::Circuit& c) {
  std::vector<double> v(static_cast<std::size_t>(c.num_inputs()));
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 0.05 * static_cast<double>(i) + 0.1;
  return v;
}

/// Unique binding per (thread, request serial): every request differs,
/// nothing is cacheable or foldable.
inline void unique_binding(std::vector<double>& theta, int thread,
                           std::uint64_t serial) {
  theta[0] = 1e-4 * static_cast<double>(serial) +
             0.13 * static_cast<double>(thread);
}

/// Shared hot catalog: every request hits one of kHotSet popular
/// bindings, identical across threads -- the
/// millions-of-users-few-models traffic shape the result cache (and,
/// with the cache off, duplicate folding) absorbs.
inline constexpr std::uint64_t kHotSet = 64;
inline void hot_binding(std::vector<double>& theta, std::uint64_t serial) {
  theta[0] = 1e-3 * static_cast<double>(serial % kHotSet);
}

}  // namespace qoc::traffic
