// Serving-layer benchmark: multi-client throughput and latency of
// qoc::serve's coalesced execution vs the naive one-run()-per-request
// baseline (every client thread owning its own blocking call into a
// shared backend).
//
// Workload: an n = 10 qubit QNN-shaped circuit (rotation encoder +
// 2 x (RZZ ring + RY layer), 50 ops) on the exact statevector backend.
// Three traffic shapes:
//   * NaiveRunPerRequest  -- each client thread calls backend.run(...)
//     once per request (the pre-serve architecture: per-request plan
//     cache probe, per-request statevector, all clients contending).
//   * ServeCoalesced      -- each client keeps a window of kWindow
//     requests in flight through ServeSession::submit and drains the
//     futures; every binding unique, so every job executes (pure
//     coalescing win: batched drains, reused scratch, no per-request
//     backend contention).
//   * ServeHotSet         -- same submission pattern, but clients query
//     a shared catalog of popular bindings (the
//     millions-of-users-few-models traffic shape); the deterministic
//     result cache serves repeats without touching the backend.
//   * ServeShardedMultiStructure -- clients spread unique-binding
//     traffic across 8 circuit structures against a BackendPool of
//     1 vs 4 statevector replicas; structure affinity pins each
//     structure to one replica's drain lane, so the replicas:4 /
//     replicas:1 ratio is the sharding speedup on multi-core hardware
//     (parity on one core: the lanes contend for the same cycles).
//   * ServeHotDuplicates  -- all clients hammer one popular binding per
//     window with the result cache off; fold:1 vs fold:0 isolates the
//     in-flight duplicate-folding win (one execution per batch fans
//     out to every duplicate).
//
// items_per_second counts served requests, so the serve/naive ratio at
// equal thread counts is the coalescing speedup. The serve lines also
// export batch occupancy and p50/p99 latency from the service metrics.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "traffic.hpp"

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/obs/obs.hpp"
#include "qoc/serve/serve.hpp"

namespace {

using namespace qoc;
// Traffic shapes are shared with the qoc_replay golden corpus
// (bench/traffic.hpp) so recorded traces and these benchmarks exercise
// identical streams.
using traffic::base_input;
using traffic::base_theta;
using traffic::hot_binding;
using traffic::unique_binding;

constexpr std::size_t kWindow = 32;  // in-flight requests per client

circuit::Circuit make_qnn10() { return traffic::qnn_circuit(); }

struct ServeRig {
  circuit::Circuit qnn = make_qnn10();
  backend::StatevectorBackend backend{0};
  serve::ServeSession session;
  serve::CircuitHandle handle;

  explicit ServeRig(serve::ServeOptions opt)
      : session(backend, opt), handle(session.register_circuit(qnn)) {}
};

serve::ServeOptions serve_opts(std::size_t cache_capacity) {
  serve::ServeOptions opt;
  opt.max_batch = 256;
  opt.max_delay = std::chrono::microseconds(200);
  opt.result_cache_capacity = cache_capacity;
  return opt;
}

/// One rig per (cache capacity, thread count) so each benchmark line's
/// session-lifetime metrics (occupancy, latency window) describe only
/// its own configuration instead of accumulating across lines.
ServeRig& rig_for(std::size_t cache_capacity, int threads) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, int>, std::unique_ptr<ServeRig>>
      rigs;
  const std::lock_guard<std::mutex> lock(mutex);
  auto& slot = rigs[{cache_capacity, threads}];
  if (!slot) slot = std::make_unique<ServeRig>(serve_opts(cache_capacity));
  return *slot;
}

void export_serve_counters(benchmark::State& state,
                           const serve::ServeSession& session) {
  if (state.thread_index() != 0) return;
  const auto m = session.metrics();
  state.counters["batch_occupancy"] = m.mean_batch_occupancy;
  state.counters["p50_us"] = m.p50_latency_us;
  state.counters["p99_us"] = m.p99_latency_us;
  state.counters["cache_hit_pct"] =
      m.submitted ? 100.0 * static_cast<double>(m.cache_hits) /
                        static_cast<double>(m.submitted)
                  : 0.0;
}

/// Baseline: the pre-serve architecture. Shared state across client
/// threads is just the backend; each request is one blocking run().
void BM_NaiveRunPerRequest(benchmark::State& state) {
  static circuit::Circuit qnn = make_qnn10();
  static backend::StatevectorBackend backend(0);
  std::vector<double> theta = base_theta(qnn);
  const std::vector<double> input = base_input(qnn);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    for (std::size_t w = 0; w < kWindow; ++w) {
      unique_binding(theta, state.thread_index(), serial++);
      benchmark::DoNotOptimize(backend.run(qnn, theta, input));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_NaiveRunPerRequest)->Threads(1)->Threads(8)->UseRealTime();

/// Same per-request traffic shape as the baseline, but each client also
/// pays the naive architecture's per-request latency coupling: kWindow
/// requests submitted asynchronously, then drained.
void BM_ServeCoalesced(benchmark::State& state) {
  auto& rig = rig_for(0, state.threads());
  auto client = rig.session.client();
  std::vector<double> theta = base_theta(rig.qnn);
  const std::vector<double> input = base_input(rig.qnn);
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kWindow);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    futures.clear();
    for (std::size_t w = 0; w < kWindow; ++w) {
      unique_binding(theta, state.thread_index(), serial++);
      futures.push_back(client.submit(rig.handle, theta, input));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
  export_serve_counters(state, rig.session);
}
BENCHMARK(BM_ServeCoalesced)->Threads(1)->Threads(8)->UseRealTime();

/// ServeRig variant keyed on the backend's batch_lanes knob, so the
/// coalesced unique-binding traffic can be measured against the scalar
/// per-evaluation path (lanes:1) and the evaluation-major k-wide path
/// (lanes:8). Coalesced batches are full of DISTINCT bindings of one
/// 10-qubit structure -- exactly the shape the SoA lane kernels target
/// -- so the lanes:8 / lanes:1 ratio is the speedup the serve layer
/// inherits for free from the backend.
struct LaneRig {
  circuit::Circuit qnn = make_qnn10();
  backend::StatevectorBackend backend;
  serve::ServeSession session;
  serve::CircuitHandle handle;

  LaneRig(int lanes, serve::ServeOptions opt)
      : backend(backend::StatevectorBackendOptions{
            .shots = 0, .seed = 0x51A7E7EC7ULL, .batch_lanes = lanes}),
        session(backend, opt), handle(session.register_circuit(qnn)) {}
};

LaneRig& lane_rig_for(int lanes, int threads) {
  static std::mutex mutex;
  static std::map<std::pair<int, int>, std::unique_ptr<LaneRig>> rigs;
  const std::lock_guard<std::mutex> lock(mutex);
  auto& slot = rigs[{lanes, threads}];
  if (!slot) slot = std::make_unique<LaneRig>(lanes, serve_opts(0));
  return *slot;
}

void BM_ServeDistinctBindingsLanes(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  auto& rig = lane_rig_for(lanes, state.threads());
  auto client = rig.session.client();
  std::vector<double> theta = base_theta(rig.qnn);
  const std::vector<double> input = base_input(rig.qnn);
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kWindow);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    futures.clear();
    for (std::size_t w = 0; w < kWindow; ++w) {
      unique_binding(theta, state.thread_index(), serial++);
      futures.push_back(client.submit(rig.handle, theta, input));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
  state.SetLabel(lanes == 1 ? "scalar" : "k-wide(auto)");
  export_serve_counters(state, rig.session);
}
BENCHMARK(BM_ServeDistinctBindingsLanes)
    ->Arg(1)
    ->Arg(-1)  // -1 = cost-model auto (full-width lane groups here)
    ->Threads(8)
    ->UseRealTime();

/// Millions-of-users traffic: clients query a shared catalog of popular
/// bindings; the deterministic result cache absorbs repeats.
void BM_ServeHotSet(benchmark::State& state) {
  auto& rig = rig_for(4096, state.threads());
  auto client = rig.session.client();
  std::vector<double> theta = base_theta(rig.qnn);
  const std::vector<double> input = base_input(rig.qnn);
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kWindow);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    futures.clear();
    for (std::size_t w = 0; w < kWindow; ++w) {
      hot_binding(theta, serial++);
      futures.push_back(client.submit(rig.handle, theta, input));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
  export_serve_counters(state, rig.session);
}
BENCHMARK(BM_ServeHotSet)->Threads(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Sharded traffic shapes
// ---------------------------------------------------------------------------

constexpr int kStructures = traffic::kStructures;

std::vector<circuit::Circuit> make_structure_catalog() {
  return traffic::structure_catalog();
}

struct ShardedRig {
  std::vector<circuit::Circuit> qnns = make_structure_catalog();
  backend::StatevectorBackend primary{0};
  serve::ServeSession session;
  std::vector<serve::CircuitHandle> handles;

  ShardedRig(std::size_t replicas, serve::ServeOptions opt)
      : session(serve::BackendPool(primary, replicas), opt) {
    for (const auto& c : qnns) handles.push_back(session.register_circuit(c));
  }
};

ShardedRig& sharded_rig_for(std::size_t replicas, int threads) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, int>, std::unique_ptr<ShardedRig>>
      rigs;
  const std::lock_guard<std::mutex> lock(mutex);
  auto& slot = rigs[{replicas, threads}];
  if (!slot) slot = std::make_unique<ShardedRig>(replicas, serve_opts(0));
  return *slot;
}

/// Multi-structure unique-binding traffic against 1 vs N replicas:
/// every structure's batches drain through its affinity replica's lane,
/// so with N replicas up to N batches execute concurrently.
void BM_ServeShardedMultiStructure(benchmark::State& state) {
  auto& rig = sharded_rig_for(static_cast<std::size_t>(state.range(0)),
                              state.threads());
  auto client = rig.session.client();
  std::vector<std::vector<double>> thetas, inputs;
  for (const auto& c : rig.qnns) {
    thetas.push_back(base_theta(c));
    inputs.push_back(base_input(c));
  }
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kWindow);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    futures.clear();
    for (std::size_t w = 0; w < kWindow; ++w) {
      const std::size_t s = serial % kStructures;
      unique_binding(thetas[s], state.thread_index(), serial++);
      futures.push_back(
          client.submit(rig.handles[s], thetas[s], inputs[s]));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
  export_serve_counters(state, rig.session);
  if (state.thread_index() == 0) {
    const auto m = rig.session.metrics();
    double active = 0;
    for (const auto& r : m.replicas)
      if (r.batches > 0) active += 1.0;
    state.counters["replicas_active"] = active;
  }
}
BENCHMARK(BM_ServeShardedMultiStructure)
    ->Arg(1)
    ->Arg(4)
    ->Threads(8)
    ->UseRealTime();

ServeRig& fold_rig_for(bool fold, int threads) {
  static std::mutex mutex;
  static std::map<std::pair<bool, int>, std::unique_ptr<ServeRig>> rigs;
  const std::lock_guard<std::mutex> lock(mutex);
  auto& slot = rigs[{fold, threads}];
  if (!slot) {
    serve::ServeOptions opt = serve_opts(0);  // cache off: isolate folding
    opt.fold_duplicates = fold;
    slot = std::make_unique<ServeRig>(opt);
  }
  return *slot;
}

/// Hot-duplicate traffic: every client submits the same popular binding
/// for a whole window (rotating through a small catalog across
/// windows), result cache off. With folding each coalesced batch
/// executes one evaluation and fans it out; without, every duplicate
/// hits the backend.
void BM_ServeHotDuplicates(benchmark::State& state) {
  auto& rig = fold_rig_for(state.range(0) != 0, state.threads());
  auto client = rig.session.client();
  std::vector<double> theta = base_theta(rig.qnn);
  const std::vector<double> input = base_input(rig.qnn);
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kWindow);
  std::uint64_t window = 0;
  for (auto _ : state) {
    futures.clear();
    hot_binding(theta, window++);
    for (std::size_t w = 0; w < kWindow; ++w)
      futures.push_back(client.submit(rig.handle, theta, input));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
  export_serve_counters(state, rig.session);
  if (state.thread_index() == 0) {
    const auto m = rig.session.metrics();
    state.counters["folded_pct"] =
        m.completed ? 100.0 * static_cast<double>(m.folded_jobs) /
                          static_cast<double>(m.completed)
                    : 0.0;
  }
}
BENCHMARK(BM_ServeHotDuplicates)->Arg(0)->Arg(1)->Threads(8)->UseRealTime();

/// Observability overhead on the serve hot path: identical coalesced
/// unique-binding traffic with the span tracer off (arg 0) vs on
/// (arg 1). The delta between the two lines bounds the cost of
/// QOC_OBS=1 instrumentation (spans, async job events, counters) per
/// submit->fulfil roundtrip; a QOC_OBS=0 build compiles it all away.
/// Negative rig keys keep these sessions' lifetime metrics separate
/// from the throughput lines.
void BM_ServeObsOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  auto& rig = rig_for(0, traced ? -1 : -2);
  if (traced)
    obs::Tracer::instance().start(1 << 20);
  else
    obs::Tracer::instance().stop();
  auto client = rig.session.client();
  std::vector<double> theta = base_theta(rig.qnn);
  const std::vector<double> input = base_input(rig.qnn);
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kWindow);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    futures.clear();
    for (std::size_t w = 0; w < kWindow; ++w) {
      unique_binding(theta, state.thread_index(), serial++);
      futures.push_back(client.submit(rig.handle, theta, input));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWindow));
  if (traced) {
    obs::Tracer::instance().stop();
    state.counters["trace_events"] = static_cast<double>(
        obs::Tracer::instance().recorded_events());
    obs::Tracer::instance().clear();
  }
  export_serve_counters(state, rig.session);
}
BENCHMARK(BM_ServeObsOverhead)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace

QOC_BENCHMARK_JSON_MAIN("serve")
