#pragma once
// Execution backends.
//
// A Backend runs a bound PQC and returns the Pauli-Z expectation value of
// every (logical) qubit -- the f(theta) of Eq. 1. Two implementations:
//
//  * StatevectorBackend -- the paper's "Classical-Train" baseline: exact
//    amplitudes, optional shot sampling ("sample based on the amplitude
//    vector to simulate quantum measurement", Sec. 4.1).
//
//  * NoisyBackend -- the stand-in for the real IBM devices: the circuit is
//    routed + lowered for the device, then executed as stochastic noise
//    trajectories with depolarizing gate errors, thermal relaxation and
//    readout bit-flips, and finally sampled with a finite shot budget.
//
// Both count every run() as one "inference", the x-axis of Fig. 6.
//
// The bind-once-run-many entry point is run_batch(): callers compile a
// circuit into an exec::CompiledCircuit once (per model) and submit many
// evaluations -- different (theta, input) bindings, optionally with a
// single-op parameter shift -- in one call. Backends amortise all
// structure-dependent work (plan compilation, device routing) across the
// batch and fan evaluations over worker threads. Batched results are
// bit-identical to the equivalent sequence of run() calls: exact paths
// are deterministic, and stochastic paths assign per-evaluation RNG
// streams in submission order exactly as sequential run() calls would.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/common/mutex.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/common/thread_annotations.hpp"
#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/exec/observable.hpp"
#include "qoc/noise/channels.hpp"
#include "qoc/noise/device_model.hpp"
#include "qoc/obs/obs.hpp"
#include "qoc/sim/density_matrix.hpp"
#include "qoc/transpile/lowered_cache.hpp"
#include "qoc/transpile/transpile.hpp"

namespace qoc::backend {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Execute the circuit with the given trainable parameters and encoder
  /// inputs; returns <Z_q> in [-1, 1] for each logical qubit q.
  std::vector<double> run(const circuit::Circuit& c,
                          std::span<const double> theta,
                          std::span<const double> input) {
    add_inferences(1);
    return execute(c, theta, input);
  }

  /// Single evaluation of a pre-compiled plan.
  std::vector<double> run(const exec::CompiledCircuit& plan,
                          std::span<const double> theta,
                          std::span<const double> input) {
    add_inferences(1);
    return execute_single(plan, theta, input);
  }

  /// Execute every evaluation of the batch against the compiled plan.
  /// `threads` fans evaluations across workers of the shared pool:
  /// 1 = sequential (default), 0 = one per hardware core.
  ///
  /// Determinism contract (shared by expect_batch and everything built
  /// on them, e.g. vqe::EnergyEstimator::energies): results[k] is
  /// bit-identical to the k-th call of the equivalent sequence of
  /// run() invocations, for every thread count. Exact paths are
  /// deterministic outright; stochastic paths derive one PRNG stream
  /// per evaluation *in submission order* before any worker starts,
  /// and each evaluation consumes only its own stream sequentially —
  /// so scheduling order can never reorder draws.
  ///
  /// An evaluation may instead pin its stream explicitly via
  /// Evaluation::rng_stream, making its draws a pure function of
  /// (backend seed, stream id) -- independent of batch composition,
  /// position and the backend's internal serial state. The bundled
  /// stochastic backends derive the stream as
  /// Prng(seed + 0x9E3779B97F4A7C15 * (stream_id + 1)); qoc::serve
  /// relies on this to coalesce jobs from many clients into arbitrary
  /// batches without changing any job's outcome.
  /// Each evaluation counts as one inference.
  std::vector<std::vector<double>> run_batch(
      const exec::CompiledCircuit& plan,
      std::span<const exec::Evaluation> evals, unsigned threads = 1) {
    add_inferences(evals.size());
    QOC_TRACE_SPAN_ARG("backend", "run_batch", "evals", evals.size());
    QOC_METRIC_SCOPED_TIMER_NS("qoc_backend_run_batch_ns");
    return execute_batch(plan, evals, threads);
  }

  /// Batched Hamiltonian expectations: one energy per evaluation,
  /// <H> = observable.constant() + sum of term expectations of the
  /// ansatz state ansatz(theta)|0>. Sampling backends measure once per
  /// commuting group (not once per term), applying the group's
  /// basis-change suffix to the prepared state; exact backends evaluate
  /// every term analytically from one execution. Exact statevector
  /// results are bit-identical to the per-term loop
  /// (vqe::Hamiltonian::expectation). The run_batch determinism
  /// contract applies verbatim: per-evaluation PRNG streams are
  /// assigned in submission order and consumed sequentially inside
  /// each evaluation (per measured group), so sampled energies are
  /// bit-reproducible and thread-count invariant. Inference
  /// accounting: one count per measured execution (evals x groups
  /// when sampling, evals when exact).
  std::vector<double> expect_batch(const exec::CompiledCircuit& plan,
                                   const exec::CompiledObservable& observable,
                                   std::span<const exec::Evaluation> evals,
                                   unsigned threads = 1) {
    if (observable.num_qubits() != plan.num_qubits())
      throw std::invalid_argument("expect_batch: qubit count mismatch");
    QOC_TRACE_SPAN_ARG("backend", "expect_batch", "evals", evals.size());
    QOC_METRIC_SCOPED_TIMER_NS("qoc_backend_expect_batch_ns");
    return execute_expect_batch(plan, observable, evals, threads);
  }

  virtual std::string name() const = 0;

  /// True when this backend's results are a pure function of the
  /// submitted bindings: no shot sampling, no noise trajectories, no
  /// internal RNG state. Consumers may memoise results keyed on
  /// bindings (qoc::serve's result cache does) only when this holds.
  virtual bool deterministic() const { return false; }

  /// Stamp out a fresh, independently-usable backend with this
  /// backend's construction-time configuration (shots, seed, device
  /// model, noise options...). Replica contract: an evaluation that
  /// pins Evaluation::rng_stream produces bit-identical results on the
  /// original and on any replica (the stream derivation is a pure
  /// function of the configured seed and the stream id), so a replica
  /// pool (serve::BackendPool) may route pinned-stream jobs to any
  /// replica without changing their outcome. Replicas do NOT share
  /// mutable state: inference counters, plan/transpile caches and
  /// auto-stream serials start fresh, so auto-stream (unpinned)
  /// stochastic evaluations may diverge from a backend that has already
  /// consumed draws. Returns nullptr when the backend cannot replicate
  /// itself (custom backends wrapping exclusive resources); pool
  /// constructors that need clones throw in that case.
  virtual std::unique_ptr<Backend> clone_replica() const { return nullptr; }

  /// Total number of circuit executions since construction / last reset.
  /// This is the "#Inference" axis of Figure 6.
  ///
  /// Accounting contract: every executed evaluation counts exactly
  /// once, through the single add_inferences() path, no matter which
  /// entry point submitted it -- run(), a run_batch() of any size, or a
  /// serve-coalesced batch. The run paths count at the public wrapper
  /// (one per evaluation); the expect paths count inside the backend
  /// implementation because the cost is backend-dependent (one per
  /// *measured execution*: evals x commuting groups when sampling,
  /// evals when a single execution yields every term analytically).
  /// Cache hits that never execute (plan caches, serve's result cache)
  /// are not inferences and must not count.
  std::uint64_t inference_count() const {
    return inferences_.load(std::memory_order_relaxed);
  }
  void reset_inference_count() { inferences_.store(0); }

 protected:
  virtual std::vector<double> execute(const circuit::Circuit& c,
                                      std::span<const double> theta,
                                      std::span<const double> input) = 0;

  /// Batched execution. The default implementation materialises each
  /// evaluation as a (shifted) circuit and loops over execute(), so
  /// custom backends that only implement execute() still support the
  /// batched API; the bundled backends override this with amortised
  /// implementations.
  virtual std::vector<std::vector<double>> execute_batch(
      const exec::CompiledCircuit& plan,
      std::span<const exec::Evaluation> evals, unsigned threads);

  /// Batched Hamiltonian expectation. Joint Pauli products cannot be
  /// reconstructed from execute()'s per-qubit <Z>, so there is no
  /// generic fallback: the default throws, and backends with native
  /// state access override. Implementations do their own inference
  /// accounting via add_inferences (one per measured execution).
  virtual std::vector<double> execute_expect_batch(
      const exec::CompiledCircuit& plan,
      const exec::CompiledObservable& observable,
      std::span<const exec::Evaluation> evals, unsigned threads);

  /// Inference-count bump for paths that bypass the run()/run_batch()
  /// wrappers (execute_expect_batch implementations).
  void add_inferences(std::uint64_t n) {
    inferences_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Compile-or-reuse a plan for `c`, keyed on its structural signature.
  /// Lets the circuit-based run() path share all plan-level caching. The
  /// cache is cleared when it outgrows a fixed cap, so callers that
  /// generate unbounded families of circuits cannot leak.
  std::shared_ptr<const exec::CompiledCircuit> plan_cached(
      const circuit::Circuit& c);

  /// One evaluation of a plan through execute_batch (no inference count;
  /// shared by the bundled backends' circuit-based execute() paths).
  std::vector<double> execute_single(const exec::CompiledCircuit& plan,
                                     std::span<const double> theta,
                                     std::span<const double> input) {
    const exec::Evaluation eval{theta, input, exec::Evaluation::kNoShift, 0.0};
    return std::move(execute_batch(
        plan, std::span<const exec::Evaluation>(&eval, 1), 1)[0]);
  }

 private:
  std::atomic<std::uint64_t> inferences_{0};
  common::Mutex plan_cache_mutex_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<const exec::CompiledCircuit>>>
      plan_cache_ QOC_GUARDED_BY(plan_cache_mutex_);
  std::size_t plan_cache_entries_ QOC_GUARDED_BY(plan_cache_mutex_) = 0;
};

/// Construction options for StatevectorBackend.
struct StatevectorBackendOptions {
  int shots = 0;
  std::uint64_t seed = 0x51A7E7EC7ULL;
  /// Evaluation-major (k-wide) lane policy for the batch paths:
  /// -1 defers to the cost model (default), 0 or 1 forces the scalar
  /// per-evaluation path (kill switch), >= 2 pins the lane width
  /// (clamped even, <= 32). The QOC_BATCH_LANES environment variable
  /// overrides this knob; see sim::batch_lane_width.
  int batch_lanes = -1;
};

/// Noise-free statevector execution. shots == 0 means exact expectation
/// values; shots > 0 samples the Born distribution like a real readout.
/// Exact mode touches no shared mutable state (in particular, no RNG
/// mutex), so batched exact runs scale linearly with threads.
///
/// Batches of >= k distinct bindings on small registers execute k
/// evaluations at a time on a sim::BatchedStatevector lane group
/// (vectorizing across bindings); the scalar path handles the tail and
/// remains the bitwise oracle -- lane-grouped results are bit-identical
/// to per-evaluation execution, and sampled mode draws from the same
/// submission-order-pinned streams either way.
class StatevectorBackend final : public Backend {
 public:
  explicit StatevectorBackend(int shots = 0,
                              std::uint64_t seed = 0x51A7E7EC7ULL);
  explicit StatevectorBackend(const StatevectorBackendOptions& options);

  std::string name() const override { return "statevector"; }
  /// Exact mode (shots == 0) is a pure function of the bindings.
  bool deterministic() const override { return shots_ == 0; }
  std::unique_ptr<Backend> clone_replica() const override {
    return std::make_unique<StatevectorBackend>(
        StatevectorBackendOptions{shots_, seed_, batch_lanes_});
  }
  int shots() const { return shots_; }
  int batch_lanes() const { return batch_lanes_; }

 protected:
  std::vector<double> execute(const circuit::Circuit& c,
                              std::span<const double> theta,
                              std::span<const double> input) override;
  std::vector<std::vector<double>> execute_batch(
      const exec::CompiledCircuit& plan,
      std::span<const exec::Evaluation> evals, unsigned threads) override;
  std::vector<double> execute_expect_batch(
      const exec::CompiledCircuit& plan,
      const exec::CompiledObservable& observable,
      std::span<const exec::Evaluation> evals, unsigned threads) override;

 private:
  /// Stream for an evaluation that pinned Evaluation::rng_stream: pure
  /// function of (constructor seed, stream id), same derivation as
  /// NoisyBackend::execution_rng. Auto evaluations instead split from
  /// the shared rng_ in submission order (the legacy behaviour).
  Prng stream_rng(std::uint64_t stream) const {
    return Prng(seed_ + 0x9E3779B97F4A7C15ULL * (stream + 1));
  }

  int shots_;
  std::uint64_t seed_;
  int batch_lanes_ = -1;
  common::Mutex rng_mutex_;  // sampled mode only; exact mode never locks
  Prng rng_ QOC_GUARDED_BY(rng_mutex_);
};

/// Options controlling the noisy-device simulation fidelity/cost trade.
struct NoisyBackendOptions {
  /// Independent noise realisations per execution. Total measurement
  /// samples = shots; each trajectory contributes shots / trajectories.
  int trajectories = 64;
  /// Total measurement shots per execution (paper uses 1024).
  int shots = 1024;
  std::uint64_t seed = 0xD0C0FEE1ULL;
  bool enable_gate_noise = true;
  bool enable_relaxation = true;
  bool enable_readout_error = true;
  /// Global multiplier on calibrated error rates (1.0 = calibrated).
  double noise_scale = 1.0;
  /// Fuse CX.RZ.CX triples of the transpiled trajectory stream (the
  /// lowered RZZ core) into one diagonal 2q kernel. Applies only when
  /// the configured noise injects nothing between physical gates (noise
  /// events are barriers a fused block may not straddle); results are
  /// bit-identical either way, this is purely a speed knob / kill
  /// switch.
  bool fuse_trajectory_gates = true;
  /// Evaluation-major (k-wide) lane policy for the TRAJECTORY loop:
  /// each execution evolves k noise trajectories in lockstep on a
  /// sim::BatchedStatevector lane group (uniform gates, per-lane Kraus
  /// draws from each trajectory's own pinned stream). Same semantics as
  /// StatevectorBackendOptions::batch_lanes: -1 defers to the cost
  /// model, 0 or 1 forces the scalar trajectory loop, >= 2 pins the
  /// width; QOC_BATCH_LANES overrides. Per-trajectory results are
  /// bit-identical at every width.
  int batch_lanes = -1;
};

/// Device routing computed once per circuit structure and reused for
/// every binding (see transpile::RoutedTemplate), bundled with the
/// per-zero-angle-pattern lowered-stream cache
/// (transpile::RoutedProgram). Shared by the two transpiling backends.
class TranspileCache {
 public:
  /// Routed program for the plan's structure, computing it on miss.
  std::shared_ptr<const transpile::RoutedProgram> get(
      const exec::CompiledCircuit& plan, const noise::DeviceModel& device)
      QOC_EXCLUDES(mutex_);

 private:
  common::Mutex mutex_;
  // Probed by the cheap structure_hash, but every hash hit is verified
  // against the full signature string before a template is served: the
  // exec header explicitly allows hash collisions, and serving a
  // colliding entry would route the wrong circuit. Bounded by clearing
  // wholesale at a fixed cap.
  std::unordered_map<
      std::uint64_t,
      std::vector<std::pair<std::string,
                            std::shared_ptr<const transpile::RoutedProgram>>>>
      cache_ QOC_GUARDED_BY(mutex_);
  std::size_t entries_ QOC_GUARDED_BY(mutex_) = 0;
};

/// Exact noisy execution via density-matrix evolution: the same device
/// model and transpile pipeline as NoisyBackend, but noise channels are
/// applied exactly (no trajectory sampling, no shot noise). Memory is
/// O(4^n) so it is limited to devices with <= 12 qubits; it serves as the
/// ground truth the trajectory backend is validated against, and as a
/// deterministic noisy-expectation oracle for tests and analysis.
class DensityMatrixBackend final : public Backend {
 public:
  struct Options {
    bool enable_gate_noise = true;
    bool enable_relaxation = true;
    bool enable_readout_error = true;
    double noise_scale = 1.0;
  };

  explicit DensityMatrixBackend(noise::DeviceModel device)
      : DensityMatrixBackend(std::move(device), Options{}) {}
  DensityMatrixBackend(noise::DeviceModel device, Options options);

  std::string name() const override { return "density:" + device_.name; }
  /// Exact channel evolution: no sampling anywhere.
  bool deterministic() const override { return true; }
  std::unique_ptr<Backend> clone_replica() const override {
    return std::make_unique<DensityMatrixBackend>(device_, options_);
  }
  const noise::DeviceModel& device() const { return device_; }

 protected:
  std::vector<double> execute(const circuit::Circuit& c,
                              std::span<const double> theta,
                              std::span<const double> input) override;
  std::vector<std::vector<double>> execute_batch(
      const exec::CompiledCircuit& plan,
      std::span<const exec::Evaluation> evals, unsigned threads) override;
  std::vector<double> execute_expect_batch(
      const exec::CompiledCircuit& plan,
      const exec::CompiledObservable& observable,
      std::span<const exec::Evaluation> evals, unsigned threads) override;

 private:
  sim::DensityMatrix evolve_transpiled(const transpile::Transpiled& t) const;
  std::vector<double> run_transpiled(const transpile::Transpiled& t,
                                     int n_logical) const;

  noise::DeviceModel device_;
  Options options_;
  TranspileCache transpile_cache_;
};

/// Simulated NISQ device: transpiles to the device and runs noise
/// trajectories. Thread-safe for concurrent run() calls (each execution
/// derives its own RNG stream).
class NoisyBackend final : public Backend {
 public:
  NoisyBackend(noise::DeviceModel device, NoisyBackendOptions options = {});

  std::string name() const override { return "noisy:" + device_.name; }
  std::unique_ptr<Backend> clone_replica() const override {
    return std::make_unique<NoisyBackend>(device_, options_);
  }
  const noise::DeviceModel& device() const { return device_; }
  const NoisyBackendOptions& options() const { return options_; }

  /// Expected per-shot duration of the last-seen circuit shape (seconds);
  /// used by the Fig. 8 scalability bench.
  double estimate_duration_s(const circuit::Circuit& c,
                             std::span<const double> theta,
                             std::span<const double> input) const;

 protected:
  std::vector<double> execute(const circuit::Circuit& c,
                              std::span<const double> theta,
                              std::span<const double> input) override;
  std::vector<std::vector<double>> execute_batch(
      const exec::CompiledCircuit& plan,
      std::span<const exec::Evaluation> evals, unsigned threads) override;
  std::vector<double> execute_expect_batch(
      const exec::CompiledCircuit& plan,
      const exec::CompiledObservable& observable,
      std::span<const exec::Evaluation> evals, unsigned threads) override;

 private:
  /// Batch-invariant noise model tables (depolarizing rates, per-qubit
  /// relaxation channels and readout-error models): built once per
  /// run_batch / expect_batch call instead of once per evaluation.
  /// Defined in backend.cpp.
  struct NoiseTables;

  /// Independent RNG stream for one execution; trajectories split from
  /// it so concurrent executions do not interleave draws. Shared by the
  /// run and expect paths -- their serials come from the same
  /// run_serial_ counter, which is what keeps batched results
  /// deterministic in submission order. Evaluations that pin
  /// Evaluation::rng_stream pass the pinned id through this same map,
  /// so a streamed result is reproducible on any NoisyBackend with the
  /// same device, options and seed.
  Prng execution_rng(std::uint64_t serial) const {
    return Prng(options_.seed + 0x9E3779B97F4A7C15ULL * (serial + 1));
  }

  std::vector<double> run_transpiled(const transpile::Transpiled& t,
                                     const NoiseTables& tables, int n_logical,
                                     std::uint64_t serial) const;
  double expect_transpiled(const transpile::Transpiled& t,
                           const NoiseTables& tables,
                           const exec::CompiledObservable& observable,
                           std::uint64_t serial) const;

  noise::DeviceModel device_;
  NoisyBackendOptions options_;
  std::atomic<std::uint64_t> run_serial_{0};
  TranspileCache transpile_cache_;
};

}  // namespace qoc::backend
