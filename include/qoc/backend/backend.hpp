#pragma once
// Execution backends.
//
// A Backend runs a bound PQC and returns the Pauli-Z expectation value of
// every (logical) qubit -- the f(theta) of Eq. 1. Two implementations:
//
//  * StatevectorBackend -- the paper's "Classical-Train" baseline: exact
//    amplitudes, optional shot sampling ("sample based on the amplitude
//    vector to simulate quantum measurement", Sec. 4.1).
//
//  * NoisyBackend -- the stand-in for the real IBM devices: the circuit is
//    routed + lowered for the device, then executed as stochastic noise
//    trajectories with depolarizing gate errors, thermal relaxation and
//    readout bit-flips, and finally sampled with a finite shot budget.
//
// Both count every run() as one "inference", the x-axis of Fig. 6.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/noise/channels.hpp"
#include "qoc/noise/device_model.hpp"
#include "qoc/transpile/transpile.hpp"

namespace qoc::backend {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Execute the circuit with the given trainable parameters and encoder
  /// inputs; returns <Z_q> in [-1, 1] for each logical qubit q.
  std::vector<double> run(const circuit::Circuit& c,
                          std::span<const double> theta,
                          std::span<const double> input) {
    inferences_.fetch_add(1, std::memory_order_relaxed);
    return execute(c, theta, input);
  }

  virtual std::string name() const = 0;

  /// Total number of circuit executions since construction / last reset.
  /// This is the "#Inference" axis of Figure 6.
  std::uint64_t inference_count() const {
    return inferences_.load(std::memory_order_relaxed);
  }
  void reset_inference_count() { inferences_.store(0); }

 protected:
  virtual std::vector<double> execute(const circuit::Circuit& c,
                                      std::span<const double> theta,
                                      std::span<const double> input) = 0;

 private:
  std::atomic<std::uint64_t> inferences_{0};
};

/// Noise-free statevector execution. shots == 0 means exact expectation
/// values; shots > 0 samples the Born distribution like a real readout.
class StatevectorBackend final : public Backend {
 public:
  explicit StatevectorBackend(int shots = 0,
                              std::uint64_t seed = 0x51A7E7EC7ULL);

  std::string name() const override { return "statevector"; }
  int shots() const { return shots_; }

 protected:
  std::vector<double> execute(const circuit::Circuit& c,
                              std::span<const double> theta,
                              std::span<const double> input) override;

 private:
  int shots_;
  Prng rng_;
  std::mutex rng_mutex_;  // sampled mode only; exact mode is stateless
};

/// Options controlling the noisy-device simulation fidelity/cost trade.
struct NoisyBackendOptions {
  /// Independent noise realisations per execution. Total measurement
  /// samples = shots; each trajectory contributes shots / trajectories.
  int trajectories = 64;
  /// Total measurement shots per execution (paper uses 1024).
  int shots = 1024;
  std::uint64_t seed = 0xD0C0FEE1ULL;
  bool enable_gate_noise = true;
  bool enable_relaxation = true;
  bool enable_readout_error = true;
  /// Global multiplier on calibrated error rates (1.0 = calibrated).
  double noise_scale = 1.0;
};

/// Exact noisy execution via density-matrix evolution: the same device
/// model and transpile pipeline as NoisyBackend, but noise channels are
/// applied exactly (no trajectory sampling, no shot noise). Memory is
/// O(4^n) so it is limited to devices with <= 12 qubits; it serves as the
/// ground truth the trajectory backend is validated against, and as a
/// deterministic noisy-expectation oracle for tests and analysis.
class DensityMatrixBackend final : public Backend {
 public:
  struct Options {
    bool enable_gate_noise = true;
    bool enable_relaxation = true;
    bool enable_readout_error = true;
    double noise_scale = 1.0;
  };

  explicit DensityMatrixBackend(noise::DeviceModel device)
      : DensityMatrixBackend(std::move(device), Options{}) {}
  DensityMatrixBackend(noise::DeviceModel device, Options options);

  std::string name() const override { return "density:" + device_.name; }
  const noise::DeviceModel& device() const { return device_; }

 protected:
  std::vector<double> execute(const circuit::Circuit& c,
                              std::span<const double> theta,
                              std::span<const double> input) override;

 private:
  noise::DeviceModel device_;
  Options options_;
};

/// Simulated NISQ device: transpiles to the device and runs noise
/// trajectories. Thread-safe for concurrent run() calls (each execution
/// derives its own RNG stream).
class NoisyBackend final : public Backend {
 public:
  NoisyBackend(noise::DeviceModel device, NoisyBackendOptions options = {});

  std::string name() const override { return "noisy:" + device_.name; }
  const noise::DeviceModel& device() const { return device_; }
  const NoisyBackendOptions& options() const { return options_; }

  /// Expected per-shot duration of the last-seen circuit shape (seconds);
  /// used by the Fig. 8 scalability bench.
  double estimate_duration_s(const circuit::Circuit& c,
                             std::span<const double> theta,
                             std::span<const double> input) const;

 protected:
  std::vector<double> execute(const circuit::Circuit& c,
                              std::span<const double> theta,
                              std::span<const double> input) override;

 private:
  noise::DeviceModel device_;
  NoisyBackendOptions options_;
  std::atomic<std::uint64_t> run_serial_{0};
};

}  // namespace qoc::backend
