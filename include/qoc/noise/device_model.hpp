#pragma once
// Calibration snapshots of the IBM superconducting devices the paper runs
// on: ibmq_jakarta, ibmq_manila, ibmq_santiago, ibmq_lima, plus
// ibmq_casablanca (Fig. 2c) and ibmq_toronto (Fig. 8 scalability study).
//
// The real machines are unavailable offline, so each DeviceModel carries
// representative calibration data from the 2021/22 era of those chips:
// coupling map, single-/two-qubit gate error rates, readout error, T1/T2
// and gate durations. The NoisyBackend turns these into depolarizing +
// thermal-relaxation trajectory noise. See DESIGN.md "substitutions" for
// why this preserves the phenomena the paper studies.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace qoc::noise {

/// One edge of the device coupling map (undirected).
using CouplingEdge = std::pair<int, int>;

struct QubitCalibration {
  double t1_s = 100e-6;            // relaxation time
  double t2_s = 100e-6;            // dephasing time
  double readout_err_0to1 = 0.01;  // P(read 1 | state 0)
  double readout_err_1to0 = 0.02;  // P(read 0 | state 1)
};

struct DeviceModel {
  std::string name;
  int n_qubits = 0;
  std::vector<CouplingEdge> coupling;
  std::vector<QubitCalibration> qubits;

  double err_1q = 3e-4;          // average single-qubit gate error
  double err_2q = 1e-2;          // average CNOT error
  double gate_time_1q_s = 35e-9;
  double gate_time_2q_s = 300e-9;
  double readout_time_s = 5e-6;

  /// True if (a, b) or (b, a) is in the coupling map.
  bool connected(int a, int b) const;

  /// Adjacency list view of the coupling map.
  std::vector<std::vector<int>> adjacency() const;

  /// BFS shortest path between two physical qubits (inclusive of both
  /// endpoints); empty if disconnected.
  std::vector<int> shortest_path(int from, int to) const;

  /// Uniform validation: indices in range, calibrations present, etc.
  void validate() const;

  // ---- Calibration snapshot factories ------------------------------------
  static DeviceModel ibmq_jakarta();     // 7 qubits, heavy-hex fragment
  static DeviceModel ibmq_manila();      // 5 qubits, line
  static DeviceModel ibmq_santiago();    // 5 qubits, line
  static DeviceModel ibmq_lima();        // 5 qubits, T shape
  static DeviceModel ibmq_casablanca();  // 7 qubits, heavy-hex fragment
  static DeviceModel ibmq_toronto();     // 27 qubits, heavy-hex

  /// Fictitious noise-free device with all-to-all coupling (for tests).
  static DeviceModel ideal(int n_qubits);

  /// Look up a device by name ("ibmq_jakarta", ...). Throws on unknown.
  static DeviceModel by_name(const std::string& name);

  /// Names of all bundled calibration snapshots.
  static std::vector<std::string> available();
};

}  // namespace qoc::noise
