#pragma once
// Quantum noise channels for trajectory (quantum-jump) simulation.
//
// Real-device noise is modelled the standard NISQ way:
//   * every gate carries a depolarizing error with the calibrated error
//     rate of that gate class on that device,
//   * idle periods accrue thermal relaxation (amplitude + phase damping
//     derived from T1/T2 and the gate duration), and
//   * measurement flips each readout bit with the calibrated probability.
//
// Channels are represented by their Kraus operators {K_i} with
// sum_i K_i^dagger K_i = I. A trajectory step samples branch i with
// probability ||K_i |psi>||^2 and renormalises -- an unbiased unravelling
// of the density-matrix evolution that keeps memory at O(2^n) instead of
// O(4^n).

#include <span>
#include <string>
#include <vector>

#include "qoc/common/prng.hpp"
#include "qoc/linalg/matrix.hpp"
#include "qoc/sim/batched_statevector.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::noise {

using linalg::Matrix;

/// A CPTP channel on one or two qubits, given by Kraus operators.
class KrausChannel {
 public:
  KrausChannel() = default;
  KrausChannel(std::string name, std::vector<Matrix> kraus_ops);

  const std::string& name() const { return name_; }
  const std::vector<Matrix>& kraus() const { return kraus_; }
  int arity() const { return arity_; }
  bool empty() const { return kraus_.empty(); }

  /// Verifies sum K^dagger K == I within tol.
  bool is_trace_preserving(double tol = 1e-9) const;

  /// Sample one Kraus branch according to the Born weights on `sv` and
  /// apply it (renormalising). `qubits` must have size arity().
  /// Returns the sampled branch index.
  std::size_t sample_and_apply(sim::Statevector& sv,
                               const std::vector<int>& qubits,
                               qoc::Prng& rng) const;

  /// k-wide trajectory step: one Born draw and branch application per
  /// lane of a batched state, each lane using its own stream.
  /// `lane_rngs` must have sv.lanes() entries; a nullptr entry marks a
  /// padding lane (ragged trajectory tail): it consumes no randomness
  /// and gets branch 0, staying a valid discarded state. Per ACTIVE
  /// lane the weights, the draw, the branch walk, the applied matrix
  /// and the renormalization are bit-identical to sample_and_apply on
  /// that lane's state -- the weight passes and the normalization just
  /// run k accumulator chains at once, which is what makes per-gate
  /// relaxation affordable in the k-wide trajectory path.
  /// Single-qubit channels only (the trajectory noise model's
  /// relaxation channels); throws for arity 2.
  void sample_and_apply_lanes(sim::BatchedStatevector& sv, int qubit,
                              std::span<qoc::Prng* const> lane_rngs) const;

 private:
  std::string name_;
  std::vector<Matrix> kraus_;
  int arity_ = 0;
};

/// Single-qubit depolarizing channel: with probability p the state is
/// replaced by the maximally mixed state; Kraus form applies X/Y/Z each
/// with probability p/4 (and I with 1 - 3p/4).
KrausChannel depolarizing_1q(double p);

/// Two-qubit depolarizing channel over the 15 non-identity Pauli pairs.
KrausChannel depolarizing_2q(double p);

/// Amplitude damping with decay probability gamma (T1 relaxation toward
/// |0>).
KrausChannel amplitude_damping(double gamma);

/// Pure phase damping with dephasing probability lambda.
KrausChannel phase_damping(double lambda);

/// Combined thermal relaxation for an idle/gate window of `duration`
/// seconds given T1, T2 (seconds). Composes amplitude damping
/// (gamma = 1 - exp(-t/T1)) and the extra pure dephasing needed to hit
/// T2 (requires T2 <= 2*T1; clipped otherwise).
KrausChannel thermal_relaxation(double t1, double t2, double duration);

/// Classical readout error: independently flips each measured bit.
struct ReadoutError {
  double prob_flip_0to1 = 0.0;  // P(read 1 | prepared 0)
  double prob_flip_1to0 = 0.0;  // P(read 0 | prepared 1)

  /// Apply to a measured bit value.
  int apply(int bit, qoc::Prng& rng) const {
    if (bit == 0) return rng.bernoulli(prob_flip_0to1) ? 1 : 0;
    return rng.bernoulli(prob_flip_1to0) ? 0 : 1;
  }
};

}  // namespace qoc::noise
