#pragma once
// Measurement-error mitigation by calibration-matrix inversion -- the
// standard NISQ technique the paper's software stack (Qiskit) applies on
// real devices. Provided as an extension: benches can quantify how much
// of the on-device accuracy drop readout error explains, and how much a
// mitigated readout recovers.
//
// The tensored model calibrates each qubit independently: qubit q's
// confusion matrix is
//     A_q = [ P(read 0|0)  P(read 0|1) ]  =  [ 1-e01   e10  ]
//           [ P(read 1|0)  P(read 1|1) ]     [  e01   1-e10 ]
// and a measured per-qubit distribution p_meas is corrected by applying
// A_q^{-1}. Expectation values <Z_q> are corrected in closed form.

#include <vector>

#include "qoc/noise/device_model.hpp"

namespace qoc::noise {

class ReadoutMitigator {
 public:
  /// Build from a device's per-qubit calibrated readout errors.
  explicit ReadoutMitigator(const DeviceModel& device);

  /// Build from explicit per-qubit flip probabilities (e01[q], e10[q]).
  ReadoutMitigator(std::vector<double> e01, std::vector<double> e10);

  int num_qubits() const { return static_cast<int>(e01_.size()); }

  /// Correct a measured <Z_q>:
  /// z_true = (z_meas - (e10 - e01)) / (1 - e01 - e10).
  double mitigate_expectation_z(int qubit, double z_measured) const;

  /// Correct a whole expectation vector (per logical qubit, given the
  /// physical layout used at measurement time).
  std::vector<double> mitigate_all(const std::vector<double>& z_measured,
                                   const std::vector<int>& layout) const;

  /// Correct a single-qubit probability-of-one estimate.
  double mitigate_probability_one(int qubit, double p1_measured) const;

 private:
  std::vector<double> e01_;  // P(read 1 | prepared 0)
  std::vector<double> e10_;  // P(read 0 | prepared 1)
};

}  // namespace qoc::noise
