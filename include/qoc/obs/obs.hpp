#pragma once
// Umbrella header for the qoc::obs observability layer: the sanctioned
// clock, the metrics registry (counters / gauges / histograms +
// Prometheus and JSON exporters) and the span tracer (Chrome
// trace_event JSON). See src/README.md "Observability".

#include "qoc/obs/clock.hpp"
#include "qoc/obs/metrics.hpp"
#include "qoc/obs/trace.hpp"
