#pragma once
// qoc::obs span tracer: lock-light structured tracing into per-thread
// ring buffers, collected into Chrome trace_event JSON
// (chrome://tracing / Perfetto).
//
// Model:
//   * QOC_TRACE_SPAN opens an RAII scope span; the single ring entry is
//     written at scope exit with both timestamps (a Chrome "X"
//     complete event), so a span costs two clock reads and one
//     uncontended lock when tracing is on, and one relaxed atomic load
//     when tracing is off.
//   * QOC_TRACE_ASYNC_BEGIN/END emit id-linked "b"/"e" events for
//     spans that cross threads (a serve job travels submitter ->
//     dispatcher -> drain lane; its stable id is the PRNG stream id).
//   * QOC_TRACE_COUNTER emits a "C" sample (queue depths, occupancy)
//     that Chrome renders as a stacked time series.
//
// Each recording thread owns a fixed-capacity ring guarded by its own
// common::Mutex -- uncontended on the hot path (only the collector
// ever takes it from another thread), TSAN-clean, and visible to the
// clang thread-safety leg. When a ring wraps, the oldest events are
// overwritten and counted in dropped_events().
//
// All name/cat strings passed to the tracer must be string literals
// (events store the pointers, not copies).
//
// The tracer is pure observation: tier-1 results are bitwise identical
// with tracing on or off, and with QOC_OBS=0 the macros compile away
// entirely.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qoc/common/mutex.hpp"
#include "qoc/common/thread_annotations.hpp"
#include "qoc/obs/clock.hpp"

#ifndef QOC_OBS
#define QOC_OBS 1
#endif

namespace qoc::obs {

/// One trace event. `phase` uses the Chrome trace_event phase letters:
/// 'X' complete span, 'b'/'e' async begin/end (linked by `id`),
/// 'C' counter sample, 'i' instant.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;   // 'X' only
  std::uint64_t id = 0;       // 'b'/'e' only
  double value = 0.0;         // 'C' only
  const char* arg_key = nullptr;  // optional single annotation
  std::int64_t arg_val = 0;
  char phase = 'X';
};

class Tracer {
 public:
  static Tracer& instance();

  /// Clears all rings and enables recording. `ring_capacity` is per
  /// recording thread (events, not bytes).
  void start(std::size_t ring_capacity = 1 << 16);
  /// Disables recording; collected rings stay readable.
  void stop();
  /// Drops all recorded events (rings stay registered).
  void clear();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Events overwritten by ring wrap-around since start().
  std::uint64_t dropped_events() const;
  /// Events currently held across all rings.
  std::uint64_t recorded_events() const;

  /// Stitches every thread's ring into one Chrome trace_event JSON
  /// document ({"traceEvents":[...]}), events sorted by timestamp,
  /// one event per line, timestamps rebased to the earliest event.
  std::string chrome_json() const;

  // Static record entry points (what the QOC_TRACE_* macros call).
  // No-ops while disabled.
  static void complete(const char* cat, const char* name,
                       std::uint64_t ts_ns, std::uint64_t dur_ns,
                       const char* arg_key = nullptr,
                       std::int64_t arg_val = 0) noexcept;
  static void async_begin(const char* cat, const char* name,
                          std::uint64_t id) noexcept;
  static void async_end(const char* cat, const char* name,
                        std::uint64_t id) noexcept;
  static void counter(const char* name, double value) noexcept;
  static void instant(const char* cat, const char* name) noexcept;

 private:
  struct ThreadBuffer;

  Tracer() = default;
  void push(const TraceEvent& e) noexcept;
  std::shared_ptr<ThreadBuffer> local_buffer();
  std::vector<std::shared_ptr<ThreadBuffer>> snapshot_buffers() const
      QOC_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  mutable common::Mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ QOC_GUARDED_BY(mu_);
  std::size_t capacity_ QOC_GUARDED_BY(mu_) = 1 << 16;
  std::uint32_t next_tid_ QOC_GUARDED_BY(mu_) = 1;
};

/// RAII complete-span scope. Reads the clock only while the tracer is
/// enabled; records one 'X' event at destruction.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name) noexcept
      : cat_(cat), name_(name), active_(Tracer::instance().enabled()) {
    if (active_) t0_ = now_ns();
  }
  SpanGuard(const char* cat, const char* name, const char* arg_key,
            std::int64_t arg_val) noexcept
      : SpanGuard(cat, name) {
    arg_key_ = arg_key;
    arg_val_ = arg_val;
  }
  ~SpanGuard() {
    if (active_)
      Tracer::complete(cat_, name_, t0_, now_ns() - t0_, arg_key_, arg_val_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attach (or overwrite) the span's single key/value annotation.
  void annotate(const char* key, std::int64_t value) noexcept {
    arg_key_ = key;
    arg_val_ = value;
  }

 private:
  const char* cat_;
  const char* name_;
  const char* arg_key_ = nullptr;
  std::int64_t arg_val_ = 0;
  std::uint64_t t0_ = 0;
  bool active_;
};

/// What QOC_TRACE_SPAN_NAMED declares when QOC_OBS=0: an empty object
/// whose annotate() inlines to nothing, so annotation call sites
/// compile in both modes.
struct NullSpan {
  void annotate(const char*, std::int64_t) noexcept {}
};

}  // namespace qoc::obs

#define QOC_OBS_CONCAT_INNER(a, b) a##b
#define QOC_OBS_CONCAT(a, b) QOC_OBS_CONCAT_INNER(a, b)

#if QOC_OBS

/// Complete span covering the enclosing scope.
#define QOC_TRACE_SPAN(cat, name) \
  ::qoc::obs::SpanGuard QOC_OBS_CONCAT(qoc_obs_span_, __LINE__)(cat, name)

/// Complete span with one integer annotation rendered in args{}.
#define QOC_TRACE_SPAN_ARG(cat, name, key, val)                         \
  ::qoc::obs::SpanGuard QOC_OBS_CONCAT(qoc_obs_span_, __LINE__)(        \
      cat, name, key, static_cast<std::int64_t>(val))

/// Named span variable, for spans that annotate mid-scope:
///   QOC_TRACE_SPAN_NAMED(span, "serve", "drain");
///   ... span.annotate("jobs", batch.size());
#define QOC_TRACE_SPAN_NAMED(var, cat, name) \
  ::qoc::obs::SpanGuard var(cat, name)

#define QOC_TRACE_ASYNC_BEGIN(cat, name, id) \
  ::qoc::obs::Tracer::async_begin(cat, name, static_cast<std::uint64_t>(id))
#define QOC_TRACE_ASYNC_END(cat, name, id) \
  ::qoc::obs::Tracer::async_end(cat, name, static_cast<std::uint64_t>(id))
#define QOC_TRACE_COUNTER(name, value) \
  ::qoc::obs::Tracer::counter(name, static_cast<double>(value))
#define QOC_TRACE_INSTANT(cat, name) ::qoc::obs::Tracer::instant(cat, name)

#else  // !QOC_OBS

#define QOC_TRACE_SPAN(cat, name) ((void)0)
#define QOC_TRACE_SPAN_ARG(cat, name, key, val) ((void)0)
#define QOC_TRACE_SPAN_NAMED(var, cat, name) ::qoc::obs::NullSpan var

#define QOC_TRACE_ASYNC_BEGIN(cat, name, id) ((void)0)
#define QOC_TRACE_ASYNC_END(cat, name, id) ((void)0)
#define QOC_TRACE_COUNTER(name, value) ((void)0)
#define QOC_TRACE_INSTANT(cat, name) ((void)0)

#endif  // QOC_OBS
