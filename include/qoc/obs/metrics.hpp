#pragma once
// qoc::obs metrics: named counters, gauges and log-scale latency
// histograms behind a process-wide registry, with Prometheus
// text-exposition and JSON dumps.
//
// Design rules:
//   * Recording is wait-free (one relaxed atomic RMW per event for
//     counters/gauges, three for histograms). The registry mutex is
//     touched only on first lookup of a name -- call sites cache the
//     returned reference (the QOC_METRIC_* macros do this with a
//     function-local static).
//   * Metric objects are never destroyed: Registry hands out stable
//     references for the life of the process, so a cached reference
//     can outlive the session that first resolved it.
//   * Metrics are pure observation. Nothing may read a metric to make
//     a control decision that changes numerical results (the
//     determinism contract).
//
// Naming scheme: `qoc_<layer>_<what>[_total|_ns]`, Prometheus-safe
// ([a-z0-9_]) so the text exposition needs no escaping. `_total` for
// monotonic counters, `_ns` for nanosecond histograms.
//
// Histogram shape: HDR-style log-linear buckets, 8 sub-buckets per
// octave (kSubBits = 3). Values 0..7 are exact; above that the bucket
// width is lower/8, so any recorded value -- and any quantile
// estimated from the bucket midpoints -- is within 6.25% relative
// error of the true value. 496 fixed buckets cover the full u64 range
// (no clamping, no allocation on the record path).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "qoc/common/mutex.hpp"
#include "qoc/common/thread_annotations.hpp"

namespace qoc::obs {

/// Monotonic event counter. add() is wait-free and safe from any
/// thread; value() is a relaxed read (exact once writers quiesce).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, in-flight jobs, lane
/// occupancy). set() for sampled values, add() for +/- deltas.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log-linear histogram over u64 nanosecond values.
class Histogram {
 public:
  /// Sub-bucket resolution: 1 << kSubBits buckets per octave.
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Buckets 0..7 are the exact values 0..7; each further octave
  /// (exponents 3..63) contributes 8 sub-buckets.
  static constexpr std::size_t kBuckets = kSubBuckets * (64 - kSubBits + 1);

  Histogram() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Index of the bucket containing `v`. Pure function; exposed (with
  /// bucket_lower/bucket_upper) so tests can pin the boundary math.
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int e = std::bit_width(v) - 1;  // >= kSubBits
    const std::uint64_t sub = (v >> (e - kSubBits)) & (kSubBuckets - 1);
    return static_cast<std::size_t>(e - kSubBits + 1) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  /// Smallest value mapping to bucket `idx`.
  static std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const std::size_t block = idx >> kSubBits;  // >= 1
    const std::uint64_t sub = idx & (kSubBuckets - 1);
    return (kSubBuckets + sub) << (block - 1);
  }

  /// One past the largest value mapping to bucket `idx` (saturating at
  /// the top of the u64 range).
  static std::uint64_t bucket_upper(std::size_t idx) noexcept {
    if (idx + 1 >= kBuckets) return ~std::uint64_t{0};
    return bucket_lower(idx + 1);
  }

  void record(std::uint64_t ns) noexcept {
    counts_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_ns() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t idx) const noexcept {
    return counts_[idx].load(std::memory_order_relaxed);
  }

  /// Quantile estimate in ns. Rank convention matches indexing a
  /// sorted window at floor((count-1) * q); the returned value is the
  /// midpoint of the bucket holding that rank (exact below 8 ns,
  /// within 6.25% relative error above). Returns 0 on an empty
  /// histogram. Concurrent recording makes the result approximate but
  /// never out of the recorded range.
  std::uint64_t quantile_ns(double q) const noexcept;

  double mean_ns() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
  }

  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Name -> metric registry. `global()` is the process-wide instance
/// every QOC_METRIC_* macro resolves against; separate instances exist
/// for tests and tools that need isolated golden dumps.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  static Registry& global();

  /// Find-or-create. The returned reference is stable for the life of
  /// the registry; resolving an existing name never allocates.
  Counter& counter(const std::string& name) QOC_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) QOC_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) QOC_EXCLUDES(mu_);

  /// Prometheus text exposition (one `# TYPE` line per metric, only
  /// occupied histogram buckets emitted, cumulative `le` + `+Inf`).
  /// Deterministic: metrics sorted by name.
  std::string prometheus_dump() const QOC_EXCLUDES(mu_);

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with per-histogram count/sum/mean/p50/p90/p99. Deterministic
  /// ordering; embeddable into BENCH_*.json by bench_util.hpp.
  std::string json_dump() const QOC_EXCLUDES(mu_);

 private:
  struct Impl;
  Impl* impl_or_create() const QOC_EXCLUDES(mu_);

  mutable common::Mutex mu_;
  mutable Impl* impl_ QOC_GUARDED_BY(mu_) = nullptr;
};

}  // namespace qoc::obs

// ---- Compile-time gated convenience macros ---------------------------------
//
// QOC_OBS is a PUBLIC compile definition (CMake option QOC_OBS, default
// ON). With it OFF every macro below expands to `((void)0)` -- no
// clock reads, no atomics, no statics -- which is the "disabled
// overhead is zero" half of the observability contract.
//
// The `name` argument must be a string literal (it seeds a
// function-local static, resolved against Registry::global() once).
// Macro arguments must be side-effect-free: they are not evaluated
// when QOC_OBS=0.

#ifndef QOC_OBS
#define QOC_OBS 1
#endif

#define QOC_OBS_CONCAT_INNER(a, b) a##b
#define QOC_OBS_CONCAT(a, b) QOC_OBS_CONCAT_INNER(a, b)

#if QOC_OBS

namespace qoc::obs {
/// RAII helper for QOC_METRIC_SCOPED_TIMER_NS: records the scope's
/// elapsed ns into a histogram at destruction.
class HistogramTimer {
 public:
  explicit HistogramTimer(Histogram& h) noexcept;
  ~HistogramTimer();
  HistogramTimer(const HistogramTimer&) = delete;
  HistogramTimer& operator=(const HistogramTimer&) = delete;

 private:
  Histogram& h_;
  std::uint64_t t0_;
};
}  // namespace qoc::obs

#define QOC_METRIC_COUNTER_ADD(name, n)                                   \
  do {                                                                    \
    static ::qoc::obs::Counter& QOC_OBS_CONCAT(qoc_obs_ctr_, __LINE__) =  \
        ::qoc::obs::Registry::global().counter(name);                     \
    QOC_OBS_CONCAT(qoc_obs_ctr_, __LINE__)                                \
        .add(static_cast<std::uint64_t>(n));                              \
  } while (0)

#define QOC_METRIC_GAUGE_SET(name, v)                                     \
  do {                                                                    \
    static ::qoc::obs::Gauge& QOC_OBS_CONCAT(qoc_obs_gau_, __LINE__) =    \
        ::qoc::obs::Registry::global().gauge(name);                       \
    QOC_OBS_CONCAT(qoc_obs_gau_, __LINE__)                                \
        .set(static_cast<std::int64_t>(v));                               \
  } while (0)

#define QOC_METRIC_GAUGE_ADD(name, d)                                     \
  do {                                                                    \
    static ::qoc::obs::Gauge& QOC_OBS_CONCAT(qoc_obs_gau_, __LINE__) =    \
        ::qoc::obs::Registry::global().gauge(name);                       \
    QOC_OBS_CONCAT(qoc_obs_gau_, __LINE__)                                \
        .add(static_cast<std::int64_t>(d));                               \
  } while (0)

#define QOC_METRIC_HISTOGRAM_NS(name, ns)                                 \
  do {                                                                    \
    static ::qoc::obs::Histogram& QOC_OBS_CONCAT(qoc_obs_his_,            \
                                                 __LINE__) =              \
        ::qoc::obs::Registry::global().histogram(name);                   \
    QOC_OBS_CONCAT(qoc_obs_his_, __LINE__)                                \
        .record(static_cast<std::uint64_t>(ns));                          \
  } while (0)

/// Records the elapsed ns of the enclosing scope into histogram
/// `name`. Block scope only (declares locals).
#define QOC_METRIC_SCOPED_TIMER_NS(name)                                  \
  static ::qoc::obs::Histogram& QOC_OBS_CONCAT(qoc_obs_his_, __LINE__) =  \
      ::qoc::obs::Registry::global().histogram(name);                     \
  ::qoc::obs::HistogramTimer QOC_OBS_CONCAT(qoc_obs_tmr_, __LINE__)(      \
      QOC_OBS_CONCAT(qoc_obs_his_, __LINE__))

#else  // !QOC_OBS

#define QOC_METRIC_COUNTER_ADD(name, n) ((void)0)
#define QOC_METRIC_GAUGE_SET(name, v) ((void)0)
#define QOC_METRIC_GAUGE_ADD(name, d) ((void)0)
#define QOC_METRIC_HISTOGRAM_NS(name, ns) ((void)0)
#define QOC_METRIC_SCOPED_TIMER_NS(name) ((void)0)

#endif  // QOC_OBS
