#pragma once
// The one sanctioned monotonic clock for qoc timing code.
//
// Every wall-clock read in src/ and include/ must flow through this
// header: the qoc_lint "obs-clock" rule bans naked
// std::chrono::steady_clock outside qoc::obs so that (a) tracing and
// metrics timestamps are guaranteed mutually comparable and (b) a
// future switch to a cheaper raw-TSC source is a one-file change.
// bench/ and tools/ are exempt (they time from the outside).
//
// Timing is pure observation: nothing in the stack may branch on a
// clock value in a way that changes numerical results (the determinism
// contract -- see qoc_lint "determinism").

#include <chrono>
#include <cstdint>

namespace qoc::obs {

using Clock = std::chrono::steady_clock;

inline Clock::time_point now() noexcept { return Clock::now(); }

/// Monotonic nanoseconds since an arbitrary process-stable epoch.
/// The raw unit for every obs histogram and trace timestamp.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace qoc::obs
