#pragma once
// Principal component analysis, implemented on top of the Jacobi
// eigensolver in qoc::linalg. The paper's Vowel-4 task performs "PCA for
// the vowel features and take[s] the 10 most significant dimensions"
// (Sec. 4.1); Pca reproduces that preprocessing exactly.

#include <cstddef>
#include <vector>

#include "qoc/data/dataset.hpp"

namespace qoc::data {

class Pca {
 public:
  /// Fit on rows of `samples` (each a d-dim feature vector), keeping the
  /// `n_components` directions of largest variance.
  Pca(const std::vector<std::vector<double>>& samples,
      std::size_t n_components);

  std::size_t input_dim() const { return mean_.size(); }
  std::size_t num_components() const { return components_.size(); }

  /// Per-component variance (eigenvalues of the covariance matrix),
  /// descending.
  const std::vector<double>& explained_variance() const { return variance_; }

  /// Orthonormal principal directions, descending variance order.
  const std::vector<std::vector<double>>& components() const {
    return components_;
  }

  /// Project one feature vector: y_k = <x - mean, component_k>.
  std::vector<double> transform(const std::vector<double>& x) const;

  /// Reconstruct from a projection (inverse transform onto the subspace).
  std::vector<double> inverse_transform(const std::vector<double>& y) const;

  /// Transform every feature vector of a dataset (labels preserved).
  Dataset transform(const Dataset& d) const;

 private:
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;
  std::vector<double> variance_;
};

}  // namespace qoc::data
