#pragma once
// Dataset container and mini-batch sampling shared by all five QML tasks.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "qoc/common/prng.hpp"

namespace qoc::data {

/// A labelled classification dataset: features[i] is the feature vector of
/// example i, labels[i] its integer class.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;

  std::size_t size() const { return features.size(); }
  std::size_t feature_dim() const {
    return features.empty() ? 0 : features.front().size();
  }
  int num_classes() const;

  void push(std::vector<double> x, int y) {
    features.push_back(std::move(x));
    labels.push_back(y);
  }

  /// First `n` examples (paper: "use the front 500 images as the training
  /// set").
  Dataset front(std::size_t n) const;

  /// `n` examples sampled without replacement (paper: "randomly sampled
  /// 300 images as the validation set").
  Dataset sample(std::size_t n, Prng& rng) const;

  void validate() const;
};

/// Uniform mini-batch sampler with replacement across calls (paper line:
/// "Sample a mini-batch I ~ D_trn").
class BatchSampler {
 public:
  BatchSampler(const Dataset& dataset, std::size_t batch_size,
               std::uint64_t seed);

  /// Indices of the next mini-batch (shuffled epoch order, reshuffling at
  /// each epoch boundary).
  std::vector<std::size_t> next();

  std::size_t batch_size() const { return batch_size_; }

 private:
  void reshuffle();

  const Dataset& dataset_;
  std::size_t batch_size_;
  Prng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace qoc::data
