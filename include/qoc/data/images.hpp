#pragma once
// Synthetic stand-ins for MNIST and Fashion-MNIST plus the paper's exact
// preprocessing pipeline (28x28 -> center-crop 24x24 -> average-pool to
// 4x4 -> 16 rotation angles).
//
// The real datasets are unavailable offline; SyntheticImages draws
// class-structured 28x28 grayscale images from per-class template patterns
// (distinct oriented strokes/blobs per class, in the spirit of digit /
// garment silhouettes) with per-example jitter and pixel noise. The
// difficulty knob controls inter-class separation so tasks land in the
// paper's accuracy regimes (2-class "easy", 4-class "hard"). See DESIGN.md
// for why this substitution preserves the studied behaviour.

#include <cstdint>
#include <vector>

#include "qoc/common/prng.hpp"
#include "qoc/data/dataset.hpp"

namespace qoc::data {

/// A 28x28 grayscale image with values in [0, 1].
struct Image {
  static constexpr int kSize = 28;
  std::vector<double> pixels;  // row-major, kSize * kSize

  Image() : pixels(kSize * kSize, 0.0) {}
  double& at(int row, int col) { return pixels[row * kSize + col]; }
  double at(int row, int col) const { return pixels[row * kSize + col]; }
};

/// Paper pipeline step 1: center-crop 28x28 -> 24x24.
std::vector<double> center_crop(const Image& img, int crop = 24);

/// Paper pipeline step 2: average-pool a square image down to out x out
/// (24x24 -> 4x4 uses 6x6 pooling windows).
std::vector<double> downsample(const std::vector<double>& img, int in_size,
                               int out_size);

/// Full pipeline: 28x28 image -> 16 features scaled to [0, pi] rotation
/// angles (the paper puts the classical values directly into the phases
/// of the 16 encoder rotation gates).
std::vector<double> image_to_features(const Image& img,
                                      double angle_scale = 3.14159265358979);

/// Deterministic class-structured image source.
class SyntheticImages {
 public:
  enum class Style {
    Digits,   // MNIST stand-in: stroke-like class templates
    Fashion,  // Fashion stand-in: blockier garment-like silhouettes
  };

  /// difficulty in [0,1]: 0 = well-separated classes, 1 = heavy template
  /// overlap + noise. The per-style defaults used by the benches are
  /// chosen so accuracies land in the paper's reported ranges.
  SyntheticImages(Style style, int n_classes, std::uint64_t seed,
                  double difficulty = 0.35);

  /// Remap class labels to specific template prototypes (e.g. the paper's
  /// MNIST-2 task is digits {3, 6}). templates.size() must equal
  /// n_classes; entries index the style's prototype set (0..9).
  void set_templates(std::vector<int> templates);

  /// Generate the i-th image of class `label` (deterministic in (seed,
  /// label, index)).
  Image generate(int label, std::uint64_t index) const;

  /// Build a dataset of `n` examples with (approximately) balanced round-
  /// robin classes, already run through the 16-feature pipeline.
  Dataset make_dataset(std::size_t n) const;

  int num_classes() const { return n_classes_; }
  Style style() const { return style_; }

 private:
  void paint_template(Image& img, int label, Prng& rng) const;

  Style style_;
  int n_classes_;
  std::uint64_t seed_;
  double difficulty_;
  std::vector<int> templates_;  // label -> prototype id
};

/// Convenience factories matching the five paper tasks' image datasets.
/// The class counts/splits mirror Sec. 4.1: 2-class tasks use 500 train /
/// 300 validation, 4-class tasks 100 train / 300 validation.
struct TaskData {
  Dataset train;
  Dataset val;
};

TaskData make_mnist2(std::uint64_t seed = 7);    // digits 3 vs 6
TaskData make_mnist4(std::uint64_t seed = 11);   // digits 0..3
TaskData make_fashion2(std::uint64_t seed = 13); // dress vs shirt
TaskData make_fashion4(std::uint64_t seed = 17); // 4 garment classes

}  // namespace qoc::data
