#pragma once
// Synthetic stand-in for the Vowel-4 dataset (hid / hId / had / hOd).
//
// The real dataset is 10 formant-derived features per utterance. We model
// each vowel class as a Gaussian cluster in a 20-dimensional raw feature
// space (formants + deltas), then apply our own PCA down to the 10 most
// significant dimensions -- the same preprocessing the paper describes.
// Cluster centres are placed with controllable separation so the task
// difficulty matches the paper's regime (Vowel-4 is the hardest task:
// 0.31-0.37 accuracy at 4 classes).

#include <cstdint>

#include "qoc/data/dataset.hpp"
#include "qoc/data/pca.hpp"

namespace qoc::data {

class SyntheticVowel {
 public:
  /// raw_dim-dimensional Gaussian clusters; separation controls the
  /// distance between class means relative to the cluster spread.
  SyntheticVowel(int n_classes, std::uint64_t seed, int raw_dim = 20,
                 double separation = 1.1);

  /// Raw (pre-PCA) dataset of n examples, round-robin classes.
  Dataset make_raw(std::size_t n) const;

  int num_classes() const { return n_classes_; }
  int raw_dim() const { return raw_dim_; }

 private:
  int n_classes_;
  std::uint64_t seed_;
  int raw_dim_;
  double separation_;
};

/// Paper Vowel-4 pipeline: 100 train / 300 validation examples, PCA fitted
/// on the training set and applied to both splits, keeping 10 components,
/// features scaled into rotation-angle range.
struct VowelTask {
  Dataset train;
  Dataset val;
};
VowelTask make_vowel4(std::uint64_t seed = 23);

}  // namespace qoc::data
