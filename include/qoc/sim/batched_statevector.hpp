#pragma once
// Evaluation-major (k-wide) statevector: k independent n-qubit states in
// one SoA buffer, amps[row * lanes + lane], so a single gate application
// streams every lane of each amplitude row through the vector units.
// This is the layout behind StatevectorBackend's lane-grouped run_batch /
// expect_batch path: the serving stack coalesces many same-structure
// bindings into one batch, and PR 3's SIMD kernels — which vectorize
// *within* one state — leave that cross-binding parallelism on the table
// for small n. Here each lane carries one binding's state, and
// parameter-dependent matrices are built once per op per lane group.
//
// Bit convention matches Statevector (qubit 0 = most significant bit);
// row indices and strides are identical. Lanes are fully independent:
// the per-lane arithmetic of every kernel is the single-state scalar
// reference operation-for-operation (see kernels.hpp), so lane L evolves
// bit-identically to a Statevector fed the same gates.
//
// Uniform methods (apply_1q(const Matrix&...), apply_cx, ...) apply one
// gate to all lanes; the *_lanes methods take ENTRY-MAJOR per-lane
// buffers (m[entry * lanes + lane]) for parameterized ops whose matrix
// differs per binding. Measurement (expectation_z_all, sample) is
// per-lane and replicates Statevector's exact loops — same association,
// same draw sequence per Prng.

#include <cstdint>
#include <vector>

#include "qoc/common/prng.hpp"
#include "qoc/linalg/matrix.hpp"

namespace qoc::sim {

using linalg::cplx;
using linalg::Matrix;

class BatchedStatevector {
 public:
  /// Widest supported lane group. The cost model picks 8 (one cache line
  /// of doubles per row); wider is allowed for experiments.
  static constexpr std::size_t kMaxLanes = 32;

  /// All lanes initialised to |0...0>. Throws for n_qubits outside
  /// [1, 30] or lanes odd / outside [2, kMaxLanes] (even lanes keep the
  /// AVX2 forms free of remainder handling).
  BatchedStatevector(int n_qubits, std::size_t lanes);

  int num_qubits() const { return n_qubits_; }
  std::size_t lanes() const { return lanes_; }
  /// Rows (amplitudes per lane), 2^n. Matches Statevector::dim().
  std::size_t dim() const { return dim_; }

  /// Row-major SoA buffer: amplitudes()[row * lanes() + lane].
  const std::vector<cplx>& amplitudes() const { return amps_; }

  /// Reset every lane to |0...0>.
  void reset();

  // ---- Uniform gate application (same gate, all lanes) -------------------

  void apply_1q(const Matrix& m, int qubit);
  void apply_1q(const cplx* m, int qubit);  // row-major m[4]
  void apply_2q(const Matrix& m, int qubit_a, int qubit_b);
  void apply_2q(const cplx* m, int qubit_a, int qubit_b);  // row-major m[16]
  void apply_diag_1q(cplx d0, cplx d1, int qubit);
  void apply_diag_2q(cplx d00, cplx d01, cplx d10, cplx d11, int qubit_a,
                     int qubit_b);
  void apply_cx(int control, int target);
  void apply_cz(int qubit_a, int qubit_b);
  void apply_swap(int qubit_a, int qubit_b);
  void apply_pauli_x(int qubit);
  void apply_pauli_y(int qubit);
  void apply_pauli_z(int qubit);

  /// Generic 2^k x 2^k matrix on an ordered qubit list (k <= 6), applied
  /// per lane via the same gather/matmul/scatter arithmetic as
  /// Statevector::apply_matrix. Rarely hot (CCX only); kept simple.
  void apply_matrix(const Matrix& m, const std::vector<int>& qubits);

  // ---- Per-lane gate application (entry-major buffers) -------------------
  // m[e * lanes() + lane] = entry e of lane `lane`'s matrix. Buffers must
  // hold 4 (1q), 16 (2q), 2 (diag 1q) or 4 (diag 2q) entries per lane.

  void apply_1q_lanes(const cplx* m, int qubit);

  /// Two dense per-lane 1q gates on distinct qubits (gate A on qubit_a,
  /// then gate B on qubit_b) fused into one pass over the lane group.
  /// Bit-identical to two apply_1q_lanes calls -- the 4-row blocks the
  /// gates close over chain both butterflies in registers -- while
  /// streaming the k-wide buffer once instead of twice; this is the
  /// dense-layer analogue of apply_diag_run_lanes.
  void apply_1q_pair_lanes(const cplx* m_a, int qubit_a, const cplx* m_b,
                           int qubit_b);

  /// One member of a dense pair run (see apply_1q_pair_run_lanes):
  /// gate A on qubit_a then gate B on qubit_b, entry-major matrices.
  struct Pair1qOp {
    const cplx* m_a = nullptr;
    int qubit_a = -1;
    const cplx* m_b = nullptr;
    int qubit_b = -1;
  };

  /// Apply `count` dense 1q pairs in order, bit-identical to one
  /// apply_1q_pair_lanes call per element. Where the kernel supports
  /// it, the small-stride tail of the run is cache-blocked: a tile of
  /// the k-wide buffer takes several pair passes while resident, so a
  /// full rotation layer costs ~2 sweeps of the buffer instead of one
  /// per pair. Runs longer than kernels::kMaxPairRun are chunked
  /// (which only forgoes tiling across the boundary).
  void apply_1q_pair_run_lanes(const Pair1qOp* ops, std::size_t count);

  void apply_2q_lanes(const cplx* m, int qubit_a, int qubit_b);
  void apply_diag_1q_lanes(const cplx* d, int qubit);
  void apply_diag_2q_lanes(const cplx* d, int qubit_a, int qubit_b);

  /// One member of a fused diagonal run. `d` is entry-major per lane
  /// (2 entries per lane for 1q ops, 4 for 2q); qubit_b < 0 marks 1q.
  struct DiagRunOp {
    const cplx* d = nullptr;
    int qubit_a = -1;
    int qubit_b = -1;
  };

  /// Apply `count` consecutive diagonal ops in one pass over the state.
  /// Bit-identical to calling apply_diag_1q_lanes / apply_diag_2q_lanes
  /// once per op (the per-amplitude product chain is unchanged; only the
  /// intermediate loads/stores disappear), but touches the k-wide buffer
  /// once instead of `count` times -- the evaluation-major layout's
  /// working set is k states, so collapsing passes is what keeps runs of
  /// diagonal gates (RZZ entangling rings) from paying k times the
  /// memory traffic of the scalar path.
  void apply_diag_run_lanes(const DiagRunOp* ops, std::size_t count);

  /// A diagonal run immediately followed by a fused dense 1q pair
  /// (apply_1q_pair_lanes semantics), all in one pass over the state
  /// where the kernel supports it. Bit-identical to
  /// apply_diag_run_lanes(ops, count) then apply_1q_pair_lanes(m_a,
  /// qubit_a, m_b, qubit_b); runs longer than kMaxDiagRun chunk as in
  /// apply_diag_run_lanes, with only the final chunk fusing into the
  /// pair. This is the ring/rotation-layer boundary of a layered
  /// circuit -- fusing it deletes one full sweep per entangling ring.
  void apply_diag_run_then_1q_pair_lanes(const DiagRunOp* ops,
                                         std::size_t count, const cplx* m_a,
                                         int qubit_a, const cplx* m_b,
                                         int qubit_b);

  // ---- Single-lane mutation (trajectory noise) ---------------------------
  // The k-wide noisy-trajectory path evolves k trajectories in lockstep:
  // gates are lane-uniform and Kraus branches per-lane-batched, but a
  // depolarizing hit injects a Pauli into ONE trajectory's lane. Each
  // call is bit-identical on lane `lane` to the matching Statevector
  // method and leaves every other lane's bits untouched.

  void apply_pauli_x_lane(int qubit, std::size_t lane);
  void apply_pauli_y_lane(int qubit, std::size_t lane);
  void apply_pauli_z_lane(int qubit, std::size_t lane);

  /// Sum of |amp|^2 over one lane; replicates Statevector::norm_squared
  /// (same std::norm terms in the same row-ascending order).
  double norm_squared(std::size_t lane) const;

  /// Normalize every lane independently, bit-identical per lane to
  /// Statevector::normalize: the same row-ascending norm sum, the same
  /// sqrt, the same inv = 1/n multiply per amplitude. All lane norms
  /// are checked before any lane is scaled; an underflowing lane throws
  /// like the scalar does, leaving the buffer unscaled. Unlike the
  /// scalar, the norm sums of all lanes accumulate in one k-wide pass
  /// (k independent accumulator chains), which is what makes the
  /// trajectory path's per-gate renormalization profitable k-wide.
  void normalize_lanes();

  // ---- Per-lane measurement ----------------------------------------------

  /// Exact <Z> for every qubit of one lane; replicates
  /// Statevector::expectation_z_all bit-for-bit (same accumulation
  /// order, same skip-zero branch).
  std::vector<double> expectation_z_all(std::size_t lane) const;

  /// Exact <Z> for every qubit of every lane in one fused pass:
  /// out[q * lanes() + lane]. Per lane the result is bit-identical to
  /// expectation_z_all(lane) -- same |amp|^2 values consumed in the same
  /// i-ascending order per qubit; the scalar loop's skip-zero branch is
  /// unobservable because adding +-0 never changes an accumulator that
  /// cannot itself be -0. Unlike the per-lane method, the serial
  /// add-latency chain of each (qubit, lane) accumulator runs across all
  /// lanes (and several qubits) at once, which is where the k-wide
  /// layout actually pays off: measurement drops from ~half of scalar
  /// evaluation cost to noise.
  void expectation_z_all_lanes(std::vector<double>& out);

  /// Draw `shots` basis samples from one lane; replicates
  /// Statevector::sample (inverse-CDF in index order, same rng draws).
  std::vector<std::uint64_t> sample(std::size_t lane, int shots,
                                    Prng& rng) const;

 private:
  std::size_t stride_of(int qubit) const {
    return std::size_t{1} << (n_qubits_ - 1 - qubit);
  }
  void check_qubit(int qubit, const char* what) const;
  void check_pair(int qubit_a, int qubit_b, const char* what) const;

  int n_qubits_;
  std::size_t lanes_;
  std::size_t dim_;
  std::vector<cplx> amps_;
  // Scratch for broadcasting uniform gate entries into the entry-major
  // form the batched kernels consume (16 entries x lanes covers 2q).
  std::vector<cplx> bcast_;
  // |amp|^2 buffer for expectation_z_all_lanes (dim x lanes doubles),
  // kept across calls so the per-group hot path never allocates.
  std::vector<double> norm_scratch_;
};

}  // namespace qoc::sim
