#pragma once
// Canonical gate matrices for every gate kind used by QOC circuits.
//
// Conventions:
//  * Qubit 0 is the most significant bit of a basis-state index (so for a
//    two-qubit matrix acting on (q_a, q_b), q_a indexes the higher bit).
//    This matches the kron_all ordering used in tests.
//  * All rotation gates follow the physics convention U = exp(-i/2 * theta * H)
//    with Hermitian generator H whose eigenvalues are +-1 -- exactly the
//    family for which the paper's parameter-shift rule (Eq. 2) is exact.

#include "qoc/linalg/matrix.hpp"

namespace qoc::sim {

using linalg::cplx;
using linalg::Matrix;

// ---- Fixed single-qubit gates -------------------------------------------
Matrix gate_i();
Matrix gate_x();
Matrix gate_y();
Matrix gate_z();
Matrix gate_h();
Matrix gate_s();
Matrix gate_sdg();
Matrix gate_t();
Matrix gate_tdg();
Matrix gate_sx();   // sqrt(X), an IBM basis gate

// ---- Parameterised single-qubit rotations -------------------------------
Matrix gate_rx(double theta);  // exp(-i theta X / 2)
Matrix gate_ry(double theta);  // exp(-i theta Y / 2)
Matrix gate_rz(double theta);  // exp(-i theta Z / 2)
Matrix gate_p(double lambda);  // diag(1, e^{i lambda})
Matrix gate_u3(double theta, double phi, double lambda);

// ---- Fixed two-qubit gates ----------------------------------------------
Matrix gate_cx();    // control = first (higher) qubit
Matrix gate_cz();
Matrix gate_swap();

// ---- Parameterised two-qubit rotations ----------------------------------
Matrix gate_rxx(double theta);  // exp(-i theta X(x)X / 2)
Matrix gate_ryy(double theta);  // exp(-i theta Y(x)Y / 2)
Matrix gate_rzz(double theta);  // exp(-i theta Z(x)Z / 2)
Matrix gate_rzx(double theta);  // exp(-i theta Z(x)X / 2)

// ---- Controlled rotations (control = first/higher qubit) ----------------
// NOTE: their generators have eigenvalues {0, +-1}, so the simple +-pi/2
// parameter-shift rule does NOT apply to them (a 4-term rule would be
// needed); the circuit layer marks them shift-unsupported.
Matrix gate_crx(double theta);
Matrix gate_cry(double theta);
Matrix gate_crz(double theta);
Matrix gate_cp(double lambda);  // controlled phase

// ---- Three-qubit ----------------------------------------------------------
Matrix gate_ccx();  // Toffoli; controls = first two qubits

// ---- Pauli helpers -------------------------------------------------------
/// Pauli by index: 0 -> I, 1 -> X, 2 -> Y, 3 -> Z.
Matrix pauli(int index);

}  // namespace qoc::sim
