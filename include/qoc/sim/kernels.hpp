#pragma once
// Vectorized, cache-blocked statevector kernels.
//
// Every Statevector gate application funnels through this layer. A gate on
// qubit q touches amplitude pairs separated by stride = 2^(n-1-q), which
// splits the qubit range into two regimes:
//
//   * the "low" regime (the qubit -- or for 2q kernels the lower
//     operand -- has stride 1): paired amplitudes are adjacent in
//     memory, so one SIMD register spans a whole amplitude group. Each
//     kernel has a dedicated stride==1 (2q: min-stride==1) path using
//     shuffle/broadcast forms of the complex arithmetic.
//   * the "high" regime (every other stride): the pairs are far apart,
//     but each group decomposes into *contiguous runs* of length
//     min-stride (>= 2, so full vector width). The blocked enumeration
//     walks base blocks so the kernel streams 2 (1q) or 4 (2q)
//     sequential runs at a time -- L1/L2-friendly and SIMD-vectorizable
//     along the run -- instead of scanning the full index space with a
//     skip-mask branch per element.
//
// Dispatch policy (see also src/README.md, "Kernel dispatch"):
//   * KernelMode::Scalar   -- the scalar reference loops (the pre-SIMD
//                             implementation, kept as the parity oracle).
//   * KernelMode::Blocked  -- blocked enumeration, portable C++ only.
//   * KernelMode::Simd     -- blocked enumeration with the AVX2 inner
//                             loops when (a) the build enabled them
//                             (CMake compiles kernels_avx2.cpp with
//                             -mavx2 when the compiler supports it) and
//                             (b) the CPU reports AVX2 at runtime;
//                             otherwise falls back to Blocked.
//   * KernelMode::Auto     -- Simd. The default.
//
// Bit-exactness contract: for every kernel and every mode, the arithmetic
// performed on each amplitude is IDENTICAL (same IEEE operations in the
// same order) to the scalar reference -- the SIMD forms only batch
// independent groups, never re-associate sums, and the kernel TUs are
// compiled with -ffp-contract=off so no path contracts to FMA. Results
// are therefore bit-identical across modes (up to the sign of zeros,
// which probabilities and expectation values cannot see). Asserted for
// n = 16/18/20 in tests/test_kernels.cpp.

#include <complex>
#include <cstddef>

#include "qoc/linalg/matrix.hpp"

namespace qoc::sim::kernels {

using linalg::cplx;

enum class KernelMode { Auto, Scalar, Blocked, Simd };

/// Process-wide kernel mode (atomic; Auto by default). Intended for
/// tests and benchmarks -- production code leaves it at Auto.
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();

/// Name of the SIMD backend Simd/Auto dispatches to on this build+CPU:
/// "avx2", or "portable" when no vector ISA path is available.
const char* simd_backend();

// ---- Kernels ---------------------------------------------------------------
// All strides are in units of cplx elements and are powers of two; `dim`
// is the full amplitude count (2^n). Matrices are row-major stack
// buffers. Callers validate qubit indices; kernels assume valid input.

/// amps[i0], amps[i1=i0+stride] <- 2x2 m applied to each pair.
void apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
              const cplx* m);

/// 4x4 m applied to each (sa, sb) group; sa indexes the higher matrix bit.
void apply_2q(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb,
              const cplx* m);

/// diag(d0, d1) on the stride-`stride` qubit.
void apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride, cplx d0,
                   cplx d1);

/// diag(d[0..3]) over the (sa, sb) pair; d indexed by (bit_a << 1) | bit_b.
void apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                   std::size_t sb, const cplx* d);

/// CX: swap the target pair where the control bit is set.
void apply_cx(cplx* amps, std::size_t dim, std::size_t sc, std::size_t st);

/// CZ: negate amplitudes where both bits are set.
void apply_cz(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb);

/// SWAP: exchange the |01> and |10> amplitudes of each group.
void apply_swap(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb);

void apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride);
void apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride);
void apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride);

namespace detail {

/// Function table for one SIMD ISA. Entries may be null (kernel has no
/// ISA-specific form; the portable blocked loop is used instead).
struct SimdVTable {
  const char* name = nullptr;
  void (*apply_1q)(cplx*, std::size_t, std::size_t, const cplx*) = nullptr;
  void (*apply_2q)(cplx*, std::size_t, std::size_t, std::size_t,
                   const cplx*) = nullptr;
  void (*apply_diag_1q)(cplx*, std::size_t, std::size_t, cplx,
                        cplx) = nullptr;
  void (*apply_diag_2q)(cplx*, std::size_t, std::size_t, std::size_t,
                        const cplx*) = nullptr;
  void (*apply_pauli_y)(cplx*, std::size_t, std::size_t) = nullptr;
};

/// Defined in kernels_avx2.cpp: the AVX2 table when that TU was built
/// with -mavx2, nullptr otherwise. Runtime CPU support is checked by the
/// dispatcher, not here.
const SimdVTable* avx2_vtable();

}  // namespace detail

}  // namespace qoc::sim::kernels
