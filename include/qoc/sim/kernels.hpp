#pragma once
// Vectorized, cache-blocked statevector kernels.
//
// Every Statevector gate application funnels through this layer. A gate on
// qubit q touches amplitude pairs separated by stride = 2^(n-1-q), which
// splits the qubit range into two regimes:
//
//   * the "low" regime (the qubit -- or for 2q kernels the lower
//     operand -- has stride 1): paired amplitudes are adjacent in
//     memory, so one SIMD register spans a whole amplitude group. Each
//     kernel has a dedicated stride==1 (2q: min-stride==1) path using
//     shuffle/broadcast forms of the complex arithmetic.
//   * the "high" regime (every other stride): the pairs are far apart,
//     but each group decomposes into *contiguous runs* of length
//     min-stride (>= 2, so full vector width). The blocked enumeration
//     walks base blocks so the kernel streams 2 (1q) or 4 (2q)
//     sequential runs at a time -- L1/L2-friendly and SIMD-vectorizable
//     along the run -- instead of scanning the full index space with a
//     skip-mask branch per element.
//
// Dispatch policy (see also src/README.md, "Kernel dispatch"):
//   * KernelMode::Scalar   -- the scalar reference loops (the pre-SIMD
//                             implementation, kept as the parity oracle).
//   * KernelMode::Blocked  -- blocked enumeration, portable C++ only.
//   * KernelMode::Simd     -- blocked enumeration with the AVX2 inner
//                             loops when (a) the build enabled them
//                             (CMake compiles kernels_avx2.cpp with
//                             -mavx2 when the compiler supports it) and
//                             (b) the CPU reports AVX2 at runtime;
//                             otherwise falls back to Blocked.
//   * KernelMode::Auto     -- Simd. The default.
//
// Bit-exactness contract: for every kernel and every mode, the arithmetic
// performed on each amplitude is IDENTICAL (same IEEE operations in the
// same order) to the scalar reference -- the SIMD forms only batch
// independent groups, never re-associate sums, and the kernel TUs are
// compiled with -ffp-contract=off so no path contracts to FMA. Results
// are therefore bit-identical across modes (up to the sign of zeros,
// which probabilities and expectation values cannot see). Asserted for
// n = 16/18/20 in tests/test_kernels.cpp.

#include <complex>
#include <cstddef>

#include "qoc/linalg/matrix.hpp"

namespace qoc::sim::kernels {

using linalg::cplx;

enum class KernelMode { Auto, Scalar, Blocked, Simd };

/// Process-wide kernel mode (atomic; Auto by default). Intended for
/// tests and benchmarks -- production code leaves it at Auto.
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();

/// Name of the SIMD backend Simd/Auto dispatches to on this build+CPU:
/// "avx2", or "portable" when no vector ISA path is available.
const char* simd_backend();

// ---- Kernels ---------------------------------------------------------------
// All strides are in units of cplx elements and are powers of two; `dim`
// is the full amplitude count (2^n). Matrices are row-major stack
// buffers. Callers validate qubit indices; kernels assume valid input.

/// amps[i0], amps[i1=i0+stride] <- 2x2 m applied to each pair.
void apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
              const cplx* m);

/// 4x4 m applied to each (sa, sb) group; sa indexes the higher matrix bit.
void apply_2q(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb,
              const cplx* m);

/// diag(d0, d1) on the stride-`stride` qubit.
void apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride, cplx d0,
                   cplx d1);

/// diag(d[0..3]) over the (sa, sb) pair; d indexed by (bit_a << 1) | bit_b.
void apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                   std::size_t sb, const cplx* d);

/// CX: swap the target pair where the control bit is set.
void apply_cx(cplx* amps, std::size_t dim, std::size_t sc, std::size_t st);

/// CZ: negate amplitudes where both bits are set.
void apply_cz(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb);

/// SWAP: exchange the |01> and |10> amplitudes of each group.
void apply_swap(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb);

void apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride);
void apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride);
void apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride);

// ---- Evaluation-major (batched) kernels ------------------------------------
// k-wide SoA layout: `k` independent states interleaved lane-contiguous,
// amps[row * k + lane], so one gate application streams every lane of a
// row through the vector units at once (PR 3 vectorized *within* one
// state; these vectorize *across* states -- the distinct-binding
// run_batch traffic the serve coalescer produces). `dim` and the strides
// are in rows (amplitude indices of one state), exactly as in the
// single-state kernels above; `k` must be even so the AVX2 forms can
// process two complex lanes per register.
//
// Matrices and diagonals are ENTRY-MAJOR per-lane buffers: m[e * k + lane]
// holds entry e of lane `lane`'s matrix, so a vector load of consecutive
// lanes picks up one matrix entry across states. Uniform (lane-invariant)
// gates simply broadcast their entries into such a buffer.
//
// Bit-exactness: lanes are fully independent, and the per-lane arithmetic
// of every mode is the single-state scalar reference operation-for-
// operation, so lane L of a batched application is bit-identical to the
// scalar per-evaluation path (same caveats as above: finite values, sign
// of zeros). Asserted end-to-end in tests/test_batch_kernels.cpp.
//
// The AVX2 dense forms take two shortcuts that live entirely inside the
// sign-of-zeros caveat:
//  - All-zero blocks are skipped: a dense 1q butterfly maps an all-zero
//    block to an all-zero block, so skipping leaves the input's zeros in
//    place where the arithmetic could produce -0. This makes the first
//    dense layer on |0...0> (support grows from 1 row) nearly free
//    instead of a full sweep of the k-wide buffer, at one or-tree +
//    ptest per block on dense data.
//  - Purely real gate matrices (ry, h -- i.e. every rotation-layer
//    gate) use real butterflies that drop the im-part products. Those
//    products are exact zeros (x*0 = +-0), and adding or subtracting
//    them can only change the sign of a zero result, never a nonzero
//    one -- at less than half the vector ops of the complex form.
// Neither shortcut is observable through probabilities, expectation
// values, or samples, since norm(+-0) = +0 and zeros never become
// nonzero; the bitwise parity tests assert exactly that end-to-end.

/// 2x2 per-lane matrices applied to each (stride-separated) row pair.
void batched_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                      std::size_t k, const cplx* m);

/// Two dense 2x2 per-lane gates on DISTINCT qubits fused into one pass:
/// gate A (stride sa, matrices m_a) then gate B (stride sb, matrices
/// m_b), exactly as two batched_apply_1q calls would. The two gates'
/// orbits close over 4-row blocks {i, i+sb, i+sa, i+sa+sb}, so both
/// butterflies chain in registers per block; each amplitude sees the
/// identical IEEE operation sequence as the two-pass form (bit-identical
/// result) while the state streams through memory once instead of twice
/// -- the dominant cost of the k-wide layout on dense gate layers.
/// Requires sa != sb.
void batched_apply_1q_pair(cplx* amps, std::size_t dim, std::size_t sa,
                           const cplx* m_a, std::size_t sb, const cplx* m_b,
                           std::size_t k);

/// 4x4 per-lane matrices over each (sa, sb) row group.
void batched_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb, std::size_t k, const cplx* m);

/// Per-lane diag(d[0*k+l], d[1*k+l]) on the stride-`stride` qubit.
void batched_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k, const cplx* d);

/// Per-lane diag(d[0..3]) over the (sa, sb) pair.
void batched_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                           std::size_t sb, std::size_t k, const cplx* d);

/// One member of a dense 1q pair run (see batched_apply_1q_pair_run):
/// gate A (stride sa, entry-major matrices m_a) then gate B (stride sb,
/// m_b), exactly as one batched_apply_1q_pair call.
struct BatchedPairOp {
  std::size_t sa = 0;
  std::size_t sb = 0;
  const cplx* m_a = nullptr;
  const cplx* m_b = nullptr;
};

/// Longest pair run batched_apply_1q_pair_run accepts in one call
/// (callers split; a split only costs the tiling opportunity, never
/// correctness). 8 pairs covers a full rotation layer up to 16 qubits.
inline constexpr std::size_t kMaxPairRun = 8;

/// Tile footprint target for cache-blocked pair runs: a tile of the
/// k-wide buffer at most this large stays resident while several pair
/// passes run over it (one quarter of the 2 MiB L2 this targets).
inline constexpr std::size_t kPairTileBytes = 512 * 1024;

/// Apply `count` dense 1q pairs in order, bit-identical to one
/// batched_apply_1q_pair call per element. Pairs whose 4-row blocks
/// span more than a kPairTileBytes tile stream the buffer once each;
/// the trailing small-span pairs are cache-blocked -- every pair's
/// blocks sit inside an aligned tile, so the tile takes all their
/// passes while resident. Only the iteration order of disjoint blocks
/// changes, never any amplitude's operation sequence. A rotation layer
/// (strides descending) thus costs ~2 full-buffer sweeps instead of
/// one per pair -- the k-wide layout's dominant cost at the top of the
/// supported size range.
void batched_apply_1q_pair_run(cplx* amps, std::size_t dim,
                               const BatchedPairOp* pairs, std::size_t count,
                               std::size_t k);

/// One member of a fused diagonal run (see batched_apply_diag_run).
/// `d` is an entry-major per-lane buffer like the standalone diag
/// kernels: 2 entries per lane when sb == 0 (1q, indexed by the sa bit),
/// 4 entries per lane otherwise (2q, indexed (bit_a << 1) | bit_b).
struct BatchedDiagOp {
  const cplx* d = nullptr;
  std::size_t sa = 0;  // row stride of qubit a
  std::size_t sb = 0;  // row stride of qubit b; 0 marks a 1q diagonal
};

/// Longest run batched_apply_diag_run accepts in one call; callers split
/// longer runs (chunk boundaries don't change the per-element product
/// chain, so splitting is invisible in the results).
inline constexpr std::size_t kMaxDiagRun = 32;

/// Apply `count` consecutive diagonal ops in ONE pass over the k-wide
/// state. Diagonals are elementwise, so for each amplitude the ops chain
/// in registers: amp <- d_count * (... * (d_1 * amp)). Every intermediate
/// product is rounded to double exactly as the stored intermediate of
/// `count` separate passes would be, so the result is bit-identical to
/// calling batched_apply_diag_1q/_2q once per op -- the fusion only
/// deletes the O(count * dim * k) intermediate loads and stores, which
/// is where the evaluation-major layout (k times the working set of one
/// state) otherwise pays for its extra memory traffic.
void batched_apply_diag_run(cplx* amps, std::size_t dim,
                            const BatchedDiagOp* ops, std::size_t count,
                            std::size_t k);

/// A diagonal run immediately followed by a fused dense 1q pair
/// (batched_apply_1q_pair semantics: gate A stride sa then gate B
/// stride sb, sa != sb), all in ONE pass: each 4-row block's amplitudes
/// run their diag product chains in registers and feed straight into
/// the two butterflies. Per amplitude the IEEE operation sequence
/// equals batched_apply_diag_run followed by batched_apply_1q_pair
/// (bit-identical), with one sweep of the k-wide buffer instead of two.
/// This is the boundary a circuit of alternating entangling rings and
/// rotation layers crosses once per ring, so fusing it deletes one of
/// the layer-count-many passes per ring. count must be <= kMaxDiagRun
/// (callers chunk; only the final chunk fuses with the pair).
void batched_apply_diag_run_then_1q_pair(cplx* amps, std::size_t dim,
                                         const BatchedDiagOp* ops,
                                         std::size_t count, std::size_t sa,
                                         const cplx* m_a, std::size_t sb,
                                         const cplx* m_b, std::size_t k);

/// Structured lane-invariant row permutations / sign flips.
void batched_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                      std::size_t st, std::size_t k);
void batched_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb, std::size_t k);
void batched_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                        std::size_t sb, std::size_t k);
void batched_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k);
void batched_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k);
void batched_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k);

// ---- Single-lane kernels (trajectory noise on a k-wide state) --------------
// Touch exactly ONE lane of the SoA buffer, leaving every other lane's
// bits untouched. The k-wide noisy-trajectory path needs these: gates
// and Kraus branch applications are lane-uniform or per-lane-batched,
// but a depolarizing hit injects a Pauli into a single trajectory's
// lane. The per-lane arithmetic is the single-state scalar reference
// (swaps, negations and +-i rotations), so lane `lane` after a call is
// bit-identical to the scalar state after the matching apply_pauli_*.
// Strided single-lane access has no SIMD form; all modes share the
// portable loop.

void lane_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride,
                        std::size_t k, std::size_t lane);
void lane_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride,
                        std::size_t k, std::size_t lane);
void lane_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride,
                        std::size_t k, std::size_t lane);

// ---- Trajectory-noise weight and renormalization kernels -------------------
// The per-gate relaxation step of a noisy trajectory is dominated not by
// the gate butterflies but by the Born weight pass ||K_i |psi>||^2 per
// Kraus branch and the renormalization that follows the sampled branch.
// These kernels give that inner loop the same dispatch treatment as the
// gates above.
//
// Weight reference arithmetic (one 2x2 branch m, row-major, uniform
// across lanes -- candidate branches are lane-invariant, only the
// SAMPLED branch differs per lane): one accumulator per state receives,
// per (base, off) row pair in the blocked order,
//   w += |m00*a0 + m01*a1|^2 + |m10*a0 + m11*a1|^2
// with every complex product expanded to real mul/add (no __muldc3
// libcalls). Matrices with structural zeros (the relaxation channels'
// Kraus operators are real diagonal or real anti-diagonal) take
// shortcut forms that drop the all-zero products -- exact zeros, inside
// the sign-of-zeros caveat above, and the weights are sums of squares
// so not even a zero sign can change. The scalar and k-wide forms share
// the per-element expression tree AND the shortcut classification, so
// lane L of the batched pass is bit-identical to the scalar pass on
// state L.

/// ||m |psi>||^2 on the stride-`stride` qubit of one state.
double kraus_weight(const cplx* amps, std::size_t dim, std::size_t stride,
                    const cplx* m);

/// k-wide weight pass: w[l] = ||m |psi_l>||^2 for each lane.
void batched_kraus_weight(const cplx* amps, std::size_t dim,
                          std::size_t stride, std::size_t k, const cplx* m,
                          double* w);

/// Per-lane squared norms: sums[l] receives Statevector::norm_squared's
/// accumulation chain (std::norm terms, row ascending) for lane l.
/// `sums` must hold k doubles.
void batched_norms(const cplx* amps, std::size_t dim, std::size_t k,
                   double* sums);

/// row[l] *= scale[l] for every row of a k-wide buffer: the per-lane
/// renormalization scaling pass (complex times real, elementwise).
void batched_scale(cplx* amps, std::size_t dim, std::size_t k,
                   const double* scale);

namespace detail {

/// Function table for one SIMD ISA. Entries may be null (kernel has no
/// ISA-specific form; the portable blocked loop is used instead).
struct SimdVTable {
  const char* name = nullptr;
  void (*apply_1q)(cplx*, std::size_t, std::size_t, const cplx*) = nullptr;
  void (*apply_2q)(cplx*, std::size_t, std::size_t, std::size_t,
                   const cplx*) = nullptr;
  void (*apply_diag_1q)(cplx*, std::size_t, std::size_t, cplx,
                        cplx) = nullptr;
  void (*apply_diag_2q)(cplx*, std::size_t, std::size_t, std::size_t,
                        const cplx*) = nullptr;
  void (*apply_pauli_y)(cplx*, std::size_t, std::size_t) = nullptr;
  // Evaluation-major forms (k lanes, entry-major matrices). Null entries
  // fall back to the portable per-lane loops.
  void (*batched_apply_1q)(cplx*, std::size_t, std::size_t, std::size_t,
                           const cplx*) = nullptr;
  void (*batched_apply_1q_pair)(cplx*, std::size_t, std::size_t, const cplx*,
                                std::size_t, const cplx*,
                                std::size_t) = nullptr;
  void (*batched_apply_1q_pair_run)(cplx*, std::size_t, const BatchedPairOp*,
                                    std::size_t, std::size_t) = nullptr;
  void (*batched_apply_2q)(cplx*, std::size_t, std::size_t, std::size_t,
                           std::size_t, const cplx*) = nullptr;
  void (*batched_apply_diag_1q)(cplx*, std::size_t, std::size_t, std::size_t,
                                const cplx*) = nullptr;
  void (*batched_apply_diag_2q)(cplx*, std::size_t, std::size_t, std::size_t,
                                std::size_t, const cplx*) = nullptr;
  void (*batched_apply_diag_run_then_1q_pair)(cplx*, std::size_t,
                                              const BatchedDiagOp*,
                                              std::size_t, std::size_t,
                                              const cplx*, std::size_t,
                                              const cplx*,
                                              std::size_t) = nullptr;
  void (*batched_apply_diag_run)(cplx*, std::size_t, const BatchedDiagOp*,
                                 std::size_t, std::size_t) = nullptr;
  void (*batched_apply_pauli_y)(cplx*, std::size_t, std::size_t,
                                std::size_t) = nullptr;
  void (*batched_kraus_weight)(const cplx*, std::size_t, std::size_t,
                               std::size_t, const cplx*, double*) = nullptr;
  void (*batched_norms)(const cplx*, std::size_t, std::size_t,
                        double*) = nullptr;
  void (*batched_scale)(cplx*, std::size_t, std::size_t,
                        const double*) = nullptr;
};

/// Defined in kernels_avx2.cpp: the AVX2 table when that TU was built
/// with -mavx2, nullptr otherwise. Runtime CPU support is checked by the
/// dispatcher, not here.
const SimdVTable* avx2_vtable();

}  // namespace detail

}  // namespace qoc::sim::kernels
