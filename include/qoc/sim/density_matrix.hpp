#pragma once
// Density-matrix simulator: exact mixed-state evolution under gates and
// CPTP noise channels.
//
// The NoisyBackend unravels noise into stochastic trajectories (memory
// O(2^n), but Monte-Carlo error in the result). This simulator evolves
// rho directly (memory O(4^n), exact noise averages), serving two roles:
//   * ground truth for validating the trajectory sampler (tests assert
//     trajectory means converge to the density-matrix result), and
//   * the exact-expectation DensityMatrixBackend for small circuits.
//
// Same bit convention as Statevector: qubit 0 is the most significant bit
// of a basis index. rho is stored row-major, dim x dim.

#include <vector>

#include "qoc/linalg/matrix.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::sim {

class DensityMatrix {
 public:
  /// Initialises to |0...0><0...0|. n_qubits limited to 12 (4^12 entries).
  explicit DensityMatrix(int n_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_statevector(const Statevector& psi);

  int num_qubits() const { return n_qubits_; }
  std::size_t dim() const { return dim_; }

  linalg::cplx element(std::size_t row, std::size_t col) const {
    return rho_[row * dim_ + col];
  }

  void reset();

  /// rho <- U rho U^dagger, U acting on the given qubits (k <= 3).
  void apply_unitary(const linalg::Matrix& u, const std::vector<int>& qubits);

  /// rho <- sum_i K_i rho K_i^dagger for a Kraus set on the given qubits.
  void apply_channel(const std::vector<linalg::Matrix>& kraus,
                     const std::vector<int>& qubits);

  // ---- Observables ----------------------------------------------------------
  double trace_real() const;
  /// Tr(rho^2) in [1/2^n, 1]; 1 iff pure.
  double purity() const;
  /// <Z_q> = sum over diagonal with parity sign.
  double expectation_z(int qubit) const;
  std::vector<double> expectation_z_all() const;
  /// Diagonal of rho (basis-state populations).
  std::vector<double> probabilities() const;

 private:
  /// Expand an operator on `qubits` to the full 2^n x 2^n matrix indexes
  /// lazily: we apply on the flattened rho via index arithmetic instead.
  void apply_one_side(const linalg::Matrix& m, const std::vector<int>& qubits,
                      bool left);

  int n_qubits_;
  std::size_t dim_;
  std::vector<linalg::cplx> rho_;
};

}  // namespace qoc::sim
