#pragma once
// N-qubit statevector simulator.
//
// This is the substrate the paper calls "Classical-Train": amplitudes are
// held in a 2^n complex vector, gates are applied by in-place sparse
// updates, and measurement is simulated by sampling from |amplitude|^2
// (exactly the baseline described in Sec. 4.1 of the paper). The same
// engine also powers the noisy-device trajectory simulation in
// qoc::backend::NoisyBackend, which is why apply_matrix supports
// non-unitary operators (Kraus branches) followed by renormalisation.
//
// Bit convention: qubit 0 is the MOST significant bit of the basis index.
// |q0 q1 ... q_{n-1}> corresponds to index (q0 << (n-1)) | ... | q_{n-1}.
//
// Gate applications dispatch through the vectorized, cache-blocked
// kernel layer in qoc/sim/kernels.hpp (scalar reference / portable
// blocked / AVX2 paths, bit-identical across modes); the methods here
// validate operands and compute strides.

#include <cstdint>
#include <vector>

#include "qoc/common/prng.hpp"
#include "qoc/linalg/matrix.hpp"

namespace qoc::sim {

using linalg::cplx;
using linalg::Matrix;

class Statevector {
 public:
  /// Initialises to |0...0>. Throws for n_qubits outside [1, 30].
  explicit Statevector(int n_qubits);

  int num_qubits() const { return n_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  const std::vector<cplx>& amplitudes() const { return amps_; }
  cplx amplitude(std::size_t basis_index) const { return amps_[basis_index]; }

  /// Reset to |0...0>.
  void reset();

  /// Set an arbitrary state (must have dim() entries); not normalised
  /// automatically -- call normalize() if needed.
  void set_amplitudes(std::vector<cplx> amps);

  // ---- Gate application --------------------------------------------------

  /// Apply a 2x2 matrix to `qubit`. Works for non-unitary matrices too
  /// (used for Kraus trajectory branches).
  void apply_1q(const Matrix& m, int qubit);

  /// Same, from a row-major stack buffer m[4]; avoids the heap-backed
  /// Matrix on hot paths (compiled-plan execution).
  void apply_1q(const cplx* m, int qubit);

  /// Apply a 4x4 matrix to the ordered pair (qubit_a, qubit_b), where
  /// qubit_a indexes the higher bit of the 4x4 matrix.
  void apply_2q(const Matrix& m, int qubit_a, int qubit_b);

  /// Same, from a row-major stack buffer m[16].
  void apply_2q(const cplx* m, int qubit_a, int qubit_b);

  // Specialized kernels for structured gates. Each computes exactly the
  // arithmetic of the generic dense path with the known-zero terms
  // dropped, so results are bit-identical (up to the sign of zeros, which
  // cannot affect probabilities or expectation values).

  /// diag(d0, d1) on one qubit (RZ, phase, S/T family).
  void apply_diag_1q(cplx d0, cplx d1, int qubit);

  /// diag(d00, d01, d10, d11) on an ordered pair (RZZ, CP cores).
  void apply_diag_2q(cplx d00, cplx d01, cplx d10, cplx d11, int qubit_a,
                     int qubit_b);

  /// Controlled-X: swaps the target pair where the control bit is 1.
  void apply_cx(int control, int target);

  /// Controlled-Z: negates amplitudes where both bits are 1.
  void apply_cz(int qubit_a, int qubit_b);

  /// SWAP: exchanges the |01> and |10> amplitudes of the pair.
  void apply_swap(int qubit_a, int qubit_b);

  /// Apply a 2^k x 2^k matrix to an ordered list of k distinct qubits.
  /// qubits[0] is the highest bit of the matrix index. k <= 6.
  void apply_matrix(const Matrix& m, const std::vector<int>& qubits);

  /// Fast Pauli applications (used heavily by the stochastic noise
  /// trajectory sampler; avoids the generic matrix path).
  void apply_pauli_x(int qubit);
  void apply_pauli_y(int qubit);
  void apply_pauli_z(int qubit);

  // ---- Measurement & observables -----------------------------------------

  /// <Z_qubit> in [-1, 1], computed exactly from amplitudes.
  double expectation_z(int qubit) const;

  /// Exact <Z> for every qubit at once (single pass over amplitudes).
  std::vector<double> expectation_z_all() const;

  /// Probability of each basis state (|amp|^2).
  std::vector<double> probabilities() const;

  /// Probability that `qubit` reads 1.
  double probability_one(int qubit) const;

  /// Draw `shots` full-register samples; returns basis-state indices.
  std::vector<std::uint64_t> sample(int shots, Prng& rng) const;

  /// Destructively measure one qubit in the Z basis: collapses the state
  /// and returns the outcome (0 or 1).
  int measure_qubit(int qubit, Prng& rng);

  // ---- Norm management ----------------------------------------------------
  double norm() const;          // sqrt(sum |amp|^2)
  double norm_squared() const;  // sum |amp|^2
  void normalize();             // divide by norm(); throws if norm ~ 0

  /// |<other|this>|^2; states must have matching dimension.
  double fidelity(const Statevector& other) const;

 private:
  int n_qubits_;
  std::vector<cplx> amps_;
};

}  // namespace qoc::sim
