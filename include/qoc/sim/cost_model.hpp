#pragma once
// Analytic cost models behind Figure 2(a) and Figure 8 of the paper:
// classical statevector simulation costs grow as O(2^n) in both time and
// memory, while execution on a quantum device scales roughly linearly in
// the number of qubits (more qubits -> slightly deeper routed circuits and
// a constant per-shot readout cost).
//
// The classical numbers are derived from the simulator in this repository:
// a g-gate circuit on n qubits performs ~g * 2^n complex multiply-adds and
// holds 2^n complex amplitudes. The quantum numbers use a simple
// superconducting-device latency model (per-gate durations + readout +
// per-shot reset) matching the scale reported for IBM machines.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qoc::sim {

// ---- Evaluation-major (k-wide) lane policy ---------------------------------
// StatevectorBackend's and NoisyBackend's batch paths switch to the
// BatchedStatevector SoA layout when a compiled structure receives
// enough distinct bindings (or trajectories) on a small register. The
// crossover is a cost-model call so the policy is testable and shared
// by every dispatch site.

/// Largest register the k-wide path pays off on under the STATIC
/// fallback table (used when no measured or pinned calibration is
/// available). Above this the per-state working set (2^n amplitudes)
/// leaves L2 and the lane-interleaved layout loses to PR 3's
/// within-state SIMD kernels.
inline constexpr int kBatchedLaneMaxQubits = 14;

/// Default lane-group width: 8 states, one 64-byte cache line of doubles
/// per amplitude row component, matching the AVX2 register budget.
inline constexpr std::size_t kBatchedLanes = 8;

/// Parse a QOC_BATCH_LANES override (same testable pattern as
/// parse_thread_count, and the same validation core --
/// common::parse_env_uint -- so every numeric env knob rejects garbage
/// identically): 0 when missing/non-numeric (strictly decimal digits;
/// signs, whitespace and trailing junk are garbage)/non-positive/absurd
/// (no override). 1 forces the scalar path; otherwise the value must be
/// even and <= BatchedStatevector::kMaxLanes (32) or it is rejected.
unsigned parse_batch_lanes(const char* s);

/// Where the process-wide lane calibration came from. Exported as the
/// qoc_sim_lane_calibration_source gauge (the numeric values below).
enum class LaneCalibrationSource : int {
  kDefault = 0,   // static fallback table (flat n <= 14 -> 8 lanes)
  kMeasured = 1,  // in-process micro-probe (qoc::sim::calibrate)
  kEnv = 2,       // QOC_LANE_CALIBRATION env string
  kFile = 3,      // QOC_LANE_CALIBRATION=@/path serialized file
  kPinned = 4,    // set_lane_calibration (tests/CI pinning)
};

/// Per-host lane-width table: width[n] is the lane width the k-wide
/// path should use for an n-qubit register (1 = scalar, otherwise even
/// and <= BatchedStatevector::kMaxLanes). Resolved once per process --
/// from the QOC_LANE_CALIBRATION knob when set, else measured by a
/// micro-probe at first use -- and consulted by batch_lane_width when
/// neither QOC_BATCH_LANES nor the per-backend pin decides.
///
/// The calibration only ever changes WHICH width a dispatch picks,
/// never what any width computes: per-lane results are bit-identical
/// across lane widths (the batched-kernel contract), so a noisy or
/// host-dependent probe cannot perturb numerical results.
struct LaneCalibration {
  static constexpr int kMaxQubits = 30;  // Statevector's own register cap

  /// width[n] for n in [1, kMaxQubits]; index 0 unused. Values are 1 or
  /// even in [2, 32].
  std::array<std::uint8_t, kMaxQubits + 1> width{};
  LaneCalibrationSource source = LaneCalibrationSource::kDefault;

  /// Static fallback: `lanes` wide for n <= max_wide_qubits, scalar
  /// above (the pre-calibration flat rule).
  static LaneCalibration flat(int max_wide_qubits, std::size_t lanes);

  /// Largest n with width[n] > 1, or 0 when everything is scalar.
  int max_wide_qubits() const;

  /// Serialized run-length form, e.g. "v1;1-14:8" (ascending,
  /// non-overlapping `lo-hi:k` / `n:k` tokens, ','-separated; n absent
  /// from every range means scalar). parse() round-trips serialize().
  std::string serialize() const;

  /// Strict parse of the serialized form. Any malformed token, bad
  /// width (odd > 1 or > 32), out-of-range qubit count or overlapping
  /// range rejects the WHOLE string (nullopt) -- a mistyped CI pin must
  /// fail loudly, not half-apply.
  static std::optional<LaneCalibration> parse(std::string_view s);
};

/// The process-wide calibration, resolving it on first call:
/// QOC_LANE_CALIBRATION (inline string, or "@/path" naming a file with
/// the serialized form; unparseable values are ignored with the probe
/// as fallback) -> micro-probe. Thread-safe; later calls return the
/// cached table.
LaneCalibration lane_calibration();

/// Force a fresh micro-probe now (ignoring QOC_LANE_CALIBRATION),
/// install the result as the process-wide calibration and return it.
/// The probe times scalar Statevector vs k-wide BatchedStatevector on a
/// representative layered workload over a small (n, k) grid and keeps
/// k-wide only where it measures faster per evaluation.
LaneCalibration calibrate();

/// Pin the process-wide calibration (tests/CI). Source is recorded as
/// kPinned regardless of `cal.source`.
void set_lane_calibration(const LaneCalibration& cal);

/// Drop the cached process-wide calibration: the next lane_calibration()
/// re-resolves from scratch (env/file knob, then the probe). For tests
/// and long-lived processes whose environment changed.
void reset_lane_calibration();

/// Lane width for one batch dispatch: 1 means scalar per-evaluation
/// execution, k >= 2 means lane groups of k. Priority: QOC_BATCH_LANES
/// env override, then `pinned_lanes` (the per-backend options knob: -1
/// defer, 0/1 force scalar, >= 2 pin the width), then the calibrated
/// model (lane_calibration().width[n]). Any requested width is clamped
/// to even and <= 32. A width k is kept only when 2 * batch_size >= k:
/// with ragged-tail compaction a part-filled group still beats the
/// scalar path once it is at least half full, so k no longer requires k
/// full evaluations.
std::size_t batch_lane_width(int n_qubits, std::size_t batch_size,
                             int pinned_lanes = -1);

/// How one batch dispatch splits into lane groups. Produced by
/// partition_lanes and shared by every k-wide dispatch site so the
/// wide/padded/scalar split is decided (and tested) exactly once.
struct LanePartition {
  std::size_t lanes = 1;        // 1 = everything scalar
  std::size_t full_groups = 0;  // groups whose every lane is a real eval
  /// Real evaluations riding the padded final group (0 = no padded
  /// group). The group's remaining lanes repeat the last real
  /// evaluation and their results are discarded.
  std::size_t padded_evals = 0;
  /// First evaluation index NOT covered by lane groups; [tail_start,
  /// batch_size) runs the scalar path.
  std::size_t tail_start = 0;

  std::size_t groups() const { return full_groups + (padded_evals ? 1 : 0); }
};

/// Partition `batch_size` evaluations on an n-qubit register into
/// full-width lane groups, at most one padded group, and a scalar
/// tail. The tail [full_groups * lanes, batch_size) is compacted into a
/// padded group when it fills at least half the lanes (2 * tail >=
/// lanes) -- below that the padding's wasted lanes cost more than the
/// scalar path -- and otherwise runs scalar.
LanePartition partition_lanes(int n_qubits, std::size_t batch_size,
                              int pinned_lanes = -1);

/// Workload description used by the paper's scalability study: "50 circuits
/// of different #qubits with 16 rotation gates and 32 RZZ gates".
struct ScalingWorkload {
  int n_circuits = 50;
  int n_rot_1q = 16;   // single-qubit rotations per circuit
  int n_rot_2q = 32;   // RZZ gates per circuit
  int shots = 1024;
};

/// Theoretical operation count to simulate one circuit classically.
/// Each k-qubit gate on an n-qubit register costs 2^k * 2^n complex MACs.
double classical_ops(int n_qubits, const ScalingWorkload& w);

/// Theoretical number of complex registers (amplitudes) a classical
/// simulator must hold for an n-qubit state.
double classical_regs(int n_qubits);

/// Classical memory cost in gigabytes (16 bytes per complex double).
double classical_memory_gb(int n_qubits);

/// Estimated classical runtime in seconds for the workload, given a
/// sustained rate of complex MACs per second (default ~5e9, a single GPU /
/// vectorised CPU core scale, matching the paper's RTX 2080 Ti curve shape).
double classical_runtime_s(int n_qubits, const ScalingWorkload& w,
                           double macs_per_second = 5e9);

/// Quantum device ops: one physical gate is one "op" regardless of n.
double quantum_ops(int n_qubits, const ScalingWorkload& w);

/// Quantum "registers": the information lives in n physical qubits.
double quantum_regs(int n_qubits);

/// Estimated wall-clock for running the workload on a superconducting
/// device: (circuit duration + reset) * shots * circuits + per-job overhead.
/// Durations: 1q gate ~35ns, 2q gate ~300ns, readout ~5us, reset ~250us.
double quantum_runtime_s(int n_qubits, const ScalingWorkload& w);

/// Quantum memory cost in GB: classical control electronics bookkeeping
/// only (counts histogram), effectively negligible and linear in shots.
double quantum_memory_gb(int n_qubits, const ScalingWorkload& w);

}  // namespace qoc::sim
