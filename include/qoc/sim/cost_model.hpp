#pragma once
// Analytic cost models behind Figure 2(a) and Figure 8 of the paper:
// classical statevector simulation costs grow as O(2^n) in both time and
// memory, while execution on a quantum device scales roughly linearly in
// the number of qubits (more qubits -> slightly deeper routed circuits and
// a constant per-shot readout cost).
//
// The classical numbers are derived from the simulator in this repository:
// a g-gate circuit on n qubits performs ~g * 2^n complex multiply-adds and
// holds 2^n complex amplitudes. The quantum numbers use a simple
// superconducting-device latency model (per-gate durations + readout +
// per-shot reset) matching the scale reported for IBM machines.

#include <cstddef>
#include <cstdint>

namespace qoc::sim {

// ---- Evaluation-major (k-wide) lane policy ---------------------------------
// StatevectorBackend's batch paths switch to the BatchedStatevector SoA
// layout when a compiled structure receives enough distinct bindings on
// a small register. The crossover is a cost-model call so the policy is
// testable and shared by run_batch / expect_batch.

/// Largest register the k-wide path pays off on. Above this the per-state
/// working set (2^n amplitudes) leaves L2 and the lane-interleaved layout
/// loses to PR 3's within-state SIMD kernels.
inline constexpr int kBatchedLaneMaxQubits = 14;

/// Default lane-group width: 8 states, one 64-byte cache line of doubles
/// per amplitude row component, matching the AVX2 register budget.
inline constexpr std::size_t kBatchedLanes = 8;

/// Parse a QOC_BATCH_LANES override (same testable pattern as
/// parse_thread_count, and the same validation core --
/// common::parse_env_uint -- so every numeric env knob rejects garbage
/// identically): 0 when missing/non-numeric (strictly decimal digits;
/// signs, whitespace and trailing junk are garbage)/non-positive/absurd
/// (no override). 1 forces the scalar path; otherwise the value must be
/// even and <= BatchedStatevector::kMaxLanes (32) or it is rejected.
unsigned parse_batch_lanes(const char* s);

/// Lane width for one batch dispatch: 1 means scalar per-evaluation
/// execution, k >= 2 means lane groups of k. Priority: QOC_BATCH_LANES
/// env override, then `pinned_lanes` (the StatevectorBackendOptions
/// knob: -1 defer to cost model, 0/1 force scalar, >= 2 pin the width),
/// then the cost model (kBatchedLanes when n_qubits <=
/// kBatchedLaneMaxQubits and the batch has at least that many
/// evaluations). Any requested width is clamped to even, <= 32, and to
/// batch_size (a group needs k evaluations to fill its lanes).
std::size_t batch_lane_width(int n_qubits, std::size_t batch_size,
                             int pinned_lanes = -1);

/// Workload description used by the paper's scalability study: "50 circuits
/// of different #qubits with 16 rotation gates and 32 RZZ gates".
struct ScalingWorkload {
  int n_circuits = 50;
  int n_rot_1q = 16;   // single-qubit rotations per circuit
  int n_rot_2q = 32;   // RZZ gates per circuit
  int shots = 1024;
};

/// Theoretical operation count to simulate one circuit classically.
/// Each k-qubit gate on an n-qubit register costs 2^k * 2^n complex MACs.
double classical_ops(int n_qubits, const ScalingWorkload& w);

/// Theoretical number of complex registers (amplitudes) a classical
/// simulator must hold for an n-qubit state.
double classical_regs(int n_qubits);

/// Classical memory cost in gigabytes (16 bytes per complex double).
double classical_memory_gb(int n_qubits);

/// Estimated classical runtime in seconds for the workload, given a
/// sustained rate of complex MACs per second (default ~5e9, a single GPU /
/// vectorised CPU core scale, matching the paper's RTX 2080 Ti curve shape).
double classical_runtime_s(int n_qubits, const ScalingWorkload& w,
                           double macs_per_second = 5e9);

/// Quantum device ops: one physical gate is one "op" regardless of n.
double quantum_ops(int n_qubits, const ScalingWorkload& w);

/// Quantum "registers": the information lives in n physical qubits.
double quantum_regs(int n_qubits);

/// Estimated wall-clock for running the workload on a superconducting
/// device: (circuit duration + reset) * shots * circuits + per-job overhead.
/// Durations: 1q gate ~35ns, 2q gate ~300ns, readout ~5us, reset ~250us.
double quantum_runtime_s(int n_qubits, const ScalingWorkload& w);

/// Quantum memory cost in GB: classical control electronics bookkeeping
/// only (counts histogram), effectively negligible and linear in shots.
double quantum_memory_gb(int n_qubits, const ScalingWorkload& w);

}  // namespace qoc::sim
