#pragma once
// Analytic cost models behind Figure 2(a) and Figure 8 of the paper:
// classical statevector simulation costs grow as O(2^n) in both time and
// memory, while execution on a quantum device scales roughly linearly in
// the number of qubits (more qubits -> slightly deeper routed circuits and
// a constant per-shot readout cost).
//
// The classical numbers are derived from the simulator in this repository:
// a g-gate circuit on n qubits performs ~g * 2^n complex multiply-adds and
// holds 2^n complex amplitudes. The quantum numbers use a simple
// superconducting-device latency model (per-gate durations + readout +
// per-shot reset) matching the scale reported for IBM machines.

#include <cstdint>

namespace qoc::sim {

/// Workload description used by the paper's scalability study: "50 circuits
/// of different #qubits with 16 rotation gates and 32 RZZ gates".
struct ScalingWorkload {
  int n_circuits = 50;
  int n_rot_1q = 16;   // single-qubit rotations per circuit
  int n_rot_2q = 32;   // RZZ gates per circuit
  int shots = 1024;
};

/// Theoretical operation count to simulate one circuit classically.
/// Each k-qubit gate on an n-qubit register costs 2^k * 2^n complex MACs.
double classical_ops(int n_qubits, const ScalingWorkload& w);

/// Theoretical number of complex registers (amplitudes) a classical
/// simulator must hold for an n-qubit state.
double classical_regs(int n_qubits);

/// Classical memory cost in gigabytes (16 bytes per complex double).
double classical_memory_gb(int n_qubits);

/// Estimated classical runtime in seconds for the workload, given a
/// sustained rate of complex MACs per second (default ~5e9, a single GPU /
/// vectorised CPU core scale, matching the paper's RTX 2080 Ti curve shape).
double classical_runtime_s(int n_qubits, const ScalingWorkload& w,
                           double macs_per_second = 5e9);

/// Quantum device ops: one physical gate is one "op" regardless of n.
double quantum_ops(int n_qubits, const ScalingWorkload& w);

/// Quantum "registers": the information lives in n physical qubits.
double quantum_regs(int n_qubits);

/// Estimated wall-clock for running the workload on a superconducting
/// device: (circuit duration + reset) * shots * circuits + per-job overhead.
/// Durations: 1q gate ~35ns, 2q gate ~300ns, readout ~5us, reset ~250us.
double quantum_runtime_s(int n_qubits, const ScalingWorkload& w);

/// Quantum memory cost in GB: classical control electronics bookkeeping
/// only (counts histogram), effectively negligible and linear in shots.
double quantum_memory_gb(int n_qubits, const ScalingWorkload& w);

}  // namespace qoc::sim
