#pragma once
// Tiny text checkpoint format for trained parameters and training history
// so example runs and long on-chip sessions (queue time on real devices is
// hours) can be resumed and their results inspected offline.
//
// Format: a line "qoc-theta v1 <n>" followed by n parameter values, one
// per line, printed with 17 significant digits (round-trip exact for
// IEEE-754 doubles).

#include <string>
#include <vector>

#include "qoc/train/training_engine.hpp"

namespace qoc::train {

/// Write theta to `path`; throws std::runtime_error on I/O failure.
void save_theta(const std::string& path, const std::vector<double>& theta);

/// Read theta back; throws std::runtime_error on I/O or format errors.
std::vector<double> load_theta(const std::string& path);

/// Write a training history as CSV: step,inferences,train_loss,val_acc,lr.
void save_history_csv(const std::string& path,
                      const std::vector<TrainingRecord>& history);

}  // namespace qoc::train
