#pragma once
// The TrainingEngine of Sec. 3.2 / Alg. 1: PQC on-chip training with
// parameter shift and (optional) probabilistic gradient pruning.
//
// Each step:
//   1. sample a mini-batch,
//   2. get the step's parameter mask from the pruner (all-true when
//      pruning is disabled or during accumulation windows),
//   3. evaluate the masked batch gradient in-situ via parameter shift,
//   4. let the pruner observe the gradient magnitudes,
//   5. take a masked optimizer step under the cosine LR schedule,
//   6. periodically evaluate validation accuracy on the eval backend.
//
// The history records the backend inference counter at every evaluation,
// which is exactly the x-axis of the paper's Fig. 6 curves.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/data/dataset.hpp"
#include "qoc/qml/qnn.hpp"
#include "qoc/train/optimizer.hpp"
#include "qoc/train/param_shift.hpp"
#include "qoc/train/pruner.hpp"

namespace qoc::train {

struct TrainingConfig {
  int steps = 60;
  std::size_t batch_size = 16;
  OptimizerKind optimizer = OptimizerKind::Adam;
  double lr_start = 0.3;   // cosine schedule per Sec. 4.3
  double lr_end = 0.03;
  std::uint64_t seed = 42;

  bool use_pruning = false;
  PrunerConfig pruner;     // w_a=1, w_p=2, r=0.5 defaults

  /// Evaluate validation accuracy every `eval_every` steps (0 = only at
  /// the end). Evaluation runs on eval_backend if set, else the training
  /// backend -- the paper always *tests on real QC*, so benches pass the
  /// noisy backend here even for Classical-Train.
  int eval_every = 10;
  /// Cap on validation examples per evaluation (0 = use all). Evaluation
  /// subsampling keeps bench runtimes sane without changing the training
  /// trajectory.
  std::size_t max_eval_examples = 0;

  /// Worker threads for the batched gradient and validation submissions:
  /// 1 = sequential (default), 0 = all hardware cores. The model circuit
  /// is compiled once into an execution plan and every step submits its
  /// shifted evaluations as one backend batch, so results are identical
  /// for any thread count (see Backend::run_batch).
  unsigned threads = 1;

  void validate() const;
};

struct TrainingRecord {
  int step = 0;                 // optimizer steps taken so far
  std::uint64_t inferences = 0; // training-backend circuit runs so far
  double train_loss = 0.0;      // mini-batch loss at this step
  double val_accuracy = 0.0;    // accuracy on the (sub)sampled validation set
  double learning_rate = 0.0;
};

struct TrainingResult {
  std::vector<double> theta;            // final parameters
  std::vector<TrainingRecord> history;  // one record per evaluation
  double final_val_accuracy = 0.0;
  double best_val_accuracy = 0.0;
  std::uint64_t total_inferences = 0;   // training backend runs
};

class TrainingEngine {
 public:
  /// `train_backend` runs the shifted circuits (the quantum chip);
  /// `eval_backend` measures validation accuracy (pass the same noisy
  /// backend to reproduce "tested on real quantum circuits").
  TrainingEngine(const qml::QnnModel& model, backend::Backend& train_backend,
                 backend::Backend& eval_backend, const data::Dataset& train,
                 const data::Dataset& val, TrainingConfig config);

  /// Run Alg. 1 from the given initial parameters (empty = random init
  /// from the config seed).
  TrainingResult run(std::vector<double> theta_init = {});

  /// Optional per-step observer (step, record) -- used by benches to
  /// stream curve points.
  void set_step_callback(
      std::function<void(const TrainingRecord&)> cb) {
    step_callback_ = std::move(cb);
  }

 private:
  double evaluate(std::span<const double> theta, Prng& rng);

  const qml::QnnModel& model_;
  backend::Backend& train_backend_;
  backend::Backend& eval_backend_;
  const data::Dataset& train_;
  const data::Dataset& val_;
  TrainingConfig config_;
  std::function<void(const TrainingRecord&)> step_callback_;
};

}  // namespace qoc::train
