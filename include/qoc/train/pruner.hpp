#pragma once
// Probabilistic gradient pruning (Sec. 3.3, Fig. 5).
//
// Training is divided into stages; each stage has two phases:
//   1. accumulation window (w_a steps): full gradients are evaluated and
//      their magnitudes accumulated into M,
//   2. pruning window (w_p steps): only a (1 - r) fraction of parameters
//      -- sampled WITHOUT replacement with probability proportional to the
//      accumulated magnitude M -- get their gradients evaluated; the rest
//      are frozen for the step.
// The fraction of circuit runs saved is r * w_p / (w_a + w_p).
//
// Rationale: under NISQ noise, small gradients have large relative errors
// (Fig. 2c) and are both unreliable and unimportant; magnitudes persist
// across steps, so the recent accumulation predicts which gradients are
// trustworthy.

#include <cstdint>
#include <span>
#include <vector>

#include "qoc/common/prng.hpp"

namespace qoc::train {

struct PrunerConfig {
  int accumulation_window = 1;  // w_a >= 1
  int pruning_window = 2;       // w_p >= 0 (0 disables pruning entirely)
  double ratio = 0.5;           // r in [0, 1]: fraction pruned per step
  /// false = probabilistic sampling (the paper's method); true = keep the
  /// top-(1-r) by accumulated magnitude (the Table 2 baseline).
  bool deterministic = false;

  void validate() const;

  /// Fraction of gradient evaluations skipped: r * w_p / (w_a + w_p).
  double savings_fraction() const;
};

class GradientPruner {
 public:
  GradientPruner(int n_params, PrunerConfig config, std::uint64_t seed);

  const PrunerConfig& config() const { return config_; }
  int num_params() const { return n_params_; }

  /// Phase of the step about to be taken.
  bool in_accumulation_phase() const;

  /// Mask for the next training step: all-true during accumulation,
  /// sampled subset of size ceil((1-r)*n) during pruning. Advances the
  /// stage clock.
  std::vector<bool> next_mask();

  /// Record a step's gradient (call once per step, right after the
  /// gradient evaluation). Magnitudes only accumulate during the
  /// accumulation phase, matching Alg. 1.
  void observe(std::span<const double> grad);

  /// Accumulated magnitudes M of the current stage (test/diagnostics).
  const std::vector<double>& accumulated_magnitude() const { return accum_; }

  /// Total steps issued so far.
  long steps_issued() const { return step_; }

 private:
  std::vector<bool> sample_mask();

  int n_params_;
  PrunerConfig config_;
  Prng rng_;
  std::vector<double> accum_;
  long step_ = 0;           // global step counter
  int stage_pos_ = 0;       // position within the current stage
  bool last_was_accum_ = true;
};

/// Weighted sampling of k items without replacement, proportional to
/// weights (Efraimidis-Spirakis exponential-keys method). Zero-weight
/// items are only chosen after every positive-weight item. Exposed for
/// direct testing.
std::vector<std::size_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k, Prng& rng);

}  // namespace qoc::train
