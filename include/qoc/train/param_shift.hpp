#pragma once
// In-situ gradient computation via the parameter-shift rule (Sec. 3.1-3.2).
//
// For every gate U(theta_i) = exp(-i/2 theta_i H) with H's eigenvalues
// +-1, the exact derivative of the circuit function is
//     df/dtheta_i = 1/2 * ( f(theta_i + pi/2) - f(theta_i - pi/2) ),
// evaluated by running the *shifted* circuit on the backend twice. If a
// trainable parameter appears in several gates, each occurrence is shifted
// separately and the contributions are summed (end of Sec. 3.1).
//
// The engine composes three parts exactly as Alg. 1 / Fig. 4 describe:
//   1. Jacobian df/dtheta via parameter shift (on the quantum backend),
//   2. downstream gradients dL/df via classical softmax/CE backprop,
//   3. final gradient dL/dtheta = (df/dtheta)^T dL/df.

#include <cstdint>
#include <span>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/data/dataset.hpp"
#include "qoc/qml/qnn.hpp"

namespace qoc::train {

/// Copy of `c` with op `op_index`'s angle offset by `delta` (the shifted
/// circuit of Eq. 2 -- structure unchanged, no ancilla).
circuit::Circuit with_op_offset(const circuit::Circuit& c,
                                std::size_t op_index, double delta);

/// Gradient of a mini-batch loss, plus bookkeeping.
struct BatchGradient {
  std::vector<double> grad;       // dL/dtheta (mean over the batch)
  double loss = 0.0;              // mean cross-entropy over the batch
  std::uint64_t inferences = 0;   // circuit runs consumed
};

class ParameterShiftEngine {
 public:
  /// Binds to the model's pre-compiled execution plan (QnnModel::plan):
  /// every gradient evaluation submits shifted evaluations of that one
  /// plan as a backend batch instead of materialising shifted circuits.
  ParameterShiftEngine(backend::Backend& backend, const qml::QnnModel& model);

  /// Fan the evaluation batches of jacobian/batch_gradient/batch_loss
  /// across worker threads. 1 (default) = sequential; 0 = one thread per
  /// hardware core. Per-evaluation RNG streams are assigned in submission
  /// order by the backends, so results no longer depend on the thread
  /// count; gradients are combined in batch order either way.
  void set_threads(unsigned threads) { threads_ = threads; }
  unsigned threads() const { return threads_; }

  /// Jacobian df/dtheta for a single example: result[q][i] is the
  /// derivative of qubit q's expectation value w.r.t. theta_i.
  /// 2 circuit runs per (parameter occurrence).
  std::vector<std::vector<double>> jacobian(std::span<const double> theta,
                                            std::span<const double> input);

  /// Mean loss gradient over a mini-batch (rows of `dataset` selected by
  /// `batch`). If `mask` is non-null, gradients are only evaluated for
  /// parameters with mask[i] == true; the rest are returned as 0 and cost
  /// no circuit runs (the savings term r*wp/(wa+wp) of Sec. 3.3).
  BatchGradient batch_gradient(std::span<const double> theta,
                               const data::Dataset& dataset,
                               std::span<const std::size_t> batch,
                               const std::vector<bool>* mask = nullptr);

  /// Loss (no gradient) on a mini-batch: one run per example.
  double batch_loss(std::span<const double> theta,
                    const data::Dataset& dataset,
                    std::span<const std::size_t> batch);

  backend::Backend& backend() { return backend_; }
  const qml::QnnModel& model() const { return model_; }

 private:
  /// (param index, source op index) for every shifted evaluation the
  /// current mask requires, grouped by param in ascending order.
  std::vector<std::pair<int, std::size_t>> shift_list(
      const std::vector<bool>* mask) const;

  backend::Backend& backend_;
  const qml::QnnModel& model_;
  unsigned threads_ = 1;
  // param index -> op indices containing it (cached once; circuits are
  // immutable after model construction).
  std::vector<std::vector<std::size_t>> param_ops_;
};

}  // namespace qoc::train
