#pragma once
// Classical optimizers for the on-chip training loop. Table 3 of the
// paper compares SGD, SGD+Momentum(0.8) and Adam under a cosine learning-
// rate schedule from 0.3 down to 0.03, finding Adam best; all three are
// implemented here, plus the scheduler.
//
// All optimizers support *masked* steps for gradient pruning: parameters
// outside the mask are frozen -- neither the parameter nor its optimizer
// state (momentum / Adam moments) is touched, matching the paper's
// "temporarily frozen" semantics (Sec. 3.3).

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace qoc::train {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// theta -= update(grad), restricted to mask (nullptr = all params).
  /// grad.size() must equal theta.size(); mask (if given) likewise.
  void step(std::vector<double>& theta, std::span<const double> grad,
            const std::vector<bool>* mask = nullptr) {
    do_step(theta, grad, mask);
  }

  virtual std::string name() const = 0;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  virtual void do_step(std::vector<double>& theta,
                       std::span<const double> grad,
                       const std::vector<bool>* mask) = 0;
  double lr_;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) : Optimizer(lr) {}
  std::string name() const override { return "sgd"; }

 protected:
  void do_step(std::vector<double>& theta, std::span<const double> grad,
               const std::vector<bool>* mask) override;
};

class Momentum final : public Optimizer {
 public:
  Momentum(double lr, double momentum = 0.8)
      : Optimizer(lr), momentum_(momentum) {}
  std::string name() const override { return "momentum"; }

 protected:
  void do_step(std::vector<double>& theta, std::span<const double> grad,
               const std::vector<bool>* mask) override;

 private:
  double momentum_;
  std::vector<double> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  std::string name() const override { return "adam"; }

 protected:
  void do_step(std::vector<double>& theta, std::span<const double> grad,
               const std::vector<bool>* mask) override;

 private:
  double beta1_, beta2_, eps_;
  std::vector<double> m_, v_;
  // Per-parameter step counts: pruned params do not advance their bias
  // correction, mirroring "frozen" semantics.
  std::vector<long> t_;
};

enum class OptimizerKind { Sgd, Momentum, Adam };

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double lr);
std::string optimizer_name(OptimizerKind kind);

/// Cosine learning-rate schedule: lr(t) = end + (start-end)/2 *
/// (1 + cos(pi * t / total)), t in [0, total].
class CosineScheduler {
 public:
  CosineScheduler(double lr_start, double lr_end, int total_steps);
  double at(int step) const;

 private:
  double lr_start_, lr_end_;
  int total_steps_;
};

}  // namespace qoc::train
