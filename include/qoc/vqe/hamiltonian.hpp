#pragma once
// Pauli-string Hamiltonians for Variational Quantum Eigensolver workloads.
//
// The paper (Sec. 1, Sec. 5) notes the parameter-shift + gradient-pruning
// machinery "can also be applied to other PQCs such as VQE"; this module
// plus qoc::vqe::VqeSolver demonstrates exactly that: the same shift rule
// computes dE/dtheta and the same pruner skips unreliable gradients.

#include <string>
#include <vector>

#include "qoc/exec/observable.hpp"
#include "qoc/linalg/matrix.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::vqe {

/// One term c * P_1 (x) P_2 (x) ... (x) P_n, encoded as a string over
/// {I, X, Y, Z} with one character per qubit (index 0 first).
struct PauliTerm {
  std::string paulis;
  double coeff = 0.0;
};

class Hamiltonian {
 public:
  Hamiltonian(int n_qubits, std::vector<PauliTerm> terms);

  int num_qubits() const { return n_qubits_; }
  const std::vector<PauliTerm>& terms() const { return terms_; }

  /// Exact <psi|H|psi>.
  double expectation(const sim::Statevector& psi) const;

  /// Exact <psi|P|psi> for one term's Pauli string (coeff excluded).
  double term_expectation(const sim::Statevector& psi,
                          const PauliTerm& term) const;

  /// Dense matrix representation (n <= 10), for exact diagonalisation.
  linalg::Matrix to_matrix() const;

  /// Exact ground-state energy via the Jacobi eigensolver.
  double exact_ground_energy() const;

  // ---- Model Hamiltonians --------------------------------------------------

  /// Molecular hydrogen in the 2-qubit reduced (Bravyi-Kitaev tapered)
  /// encoding at the equilibrium bond length, after O'Malley et al. (2016):
  /// H = g0 II + g1 ZI + g2 IZ + g3 ZZ + g4 XX + g5 YY.
  static Hamiltonian h2_minimal();

  /// Transverse-field Ising chain: -J sum Z_i Z_{i+1} - h sum X_i.
  static Hamiltonian transverse_ising(int n_qubits, double j, double h);

  /// Antiferromagnetic Heisenberg chain:
  /// J sum (X_i X_{i+1} + Y_i Y_{i+1} + Z_i Z_{i+1}).
  static Hamiltonian heisenberg(int n_qubits, double j);

 private:
  int n_qubits_;
  std::vector<PauliTerm> terms_;
};

/// Lower a Hamiltonian into the exec layer's commuting-grouped
/// measurement program (see exec::CompiledObservable): identity terms
/// fold into a constant, the rest pack into qubit-wise commuting groups
/// with one basis-change suffix each. This is what
/// Backend::expect_batch and the EnergyEstimator consume.
exec::CompiledObservable compile_observable(const Hamiltonian& hamiltonian);

}  // namespace qoc::vqe
