#pragma once
// Variational Quantum Eigensolver with the QOC training machinery:
// in-situ parameter-shift energy gradients and probabilistic gradient
// pruning, demonstrating the paper's claim that the techniques apply
// beyond QNNs.
//
// The energy estimator mimics a hardware measurement pipeline: for each
// Pauli term the ansatz state is sampled with a finite shot budget (term
// expectation = average parity of the relevant bits after basis change),
// with optional per-gate depolarizing noise -- or, with shots = 0, exact
// expectations for noise-free experiments.

#include <cstdint>
#include <functional>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/train/optimizer.hpp"
#include "qoc/train/pruner.hpp"
#include "qoc/vqe/hamiltonian.hpp"

namespace qoc::vqe {

struct EstimatorOptions {
  int shots = 0;            // 0 = exact expectation values
  double gate_noise = 0.0;  // depolarizing probability injected per gate
  std::uint64_t seed = 0xE57ULL;
};

/// Evaluates <H> for a bound ansatz. Each energy() call counts the number
/// of circuit executions consumed (one per Pauli basis when sampling).
class EnergyEstimator {
 public:
  EnergyEstimator(Hamiltonian hamiltonian, EstimatorOptions options = {});

  const Hamiltonian& hamiltonian() const { return hamiltonian_; }

  /// Energy of ansatz(theta)|0>.
  double energy(const circuit::Circuit& ansatz,
                std::span<const double> theta);

  /// Circuit executions consumed so far (the VQE analogue of Fig. 6's
  /// #inference axis).
  std::uint64_t executions() const { return executions_; }

 private:
  sim::Statevector prepare(const circuit::Circuit& ansatz,
                           std::span<const double> theta, Prng& rng);

  Hamiltonian hamiltonian_;
  EstimatorOptions options_;
  Prng rng_;
  std::uint64_t executions_ = 0;
};

struct VqeConfig {
  int steps = 60;
  double lr_start = 0.2;
  double lr_end = 0.02;
  train::OptimizerKind optimizer = train::OptimizerKind::Adam;
  bool use_pruning = false;
  train::PrunerConfig pruner;
  std::uint64_t seed = 1;
};

struct VqeRecord {
  int step = 0;
  double energy = 0.0;
  std::uint64_t executions = 0;
};

struct VqeResult {
  double energy = 0.0;                // final energy
  double best_energy = 0.0;           // lowest seen
  std::vector<double> theta;
  std::vector<VqeRecord> history;     // one record per step
  std::uint64_t total_executions = 0;
};

/// Gradient-descent VQE: dE/dtheta_i by the +-pi/2 parameter-shift rule
/// applied to the energy estimator, masked by the gradient pruner.
class VqeSolver {
 public:
  VqeSolver(EnergyEstimator estimator, circuit::Circuit ansatz,
            VqeConfig config);

  VqeResult run(std::vector<double> theta_init = {});

  /// Standard hardware-efficient ansatz: layers of RY+RZ on every qubit
  /// followed by a CZ entangling chain; `depth` repetitions.
  static circuit::Circuit hardware_efficient_ansatz(int n_qubits, int depth);

 private:
  std::vector<double> gradient(std::span<const double> theta,
                               const std::vector<bool>& mask);

  EnergyEstimator estimator_;
  circuit::Circuit ansatz_;
  VqeConfig config_;
};

}  // namespace qoc::vqe
