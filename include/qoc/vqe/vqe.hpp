#pragma once
// Variational Quantum Eigensolver with the QOC training machinery:
// in-situ parameter-shift energy gradients and probabilistic gradient
// pruning, demonstrating the paper's claim that the techniques apply
// beyond QNNs.
//
// The energy estimator mimics a hardware measurement pipeline: the
// ansatz state is sampled with a finite shot budget, one measured
// execution per qubit-wise-commuting group of Pauli terms (term
// expectation = average parity of the relevant bits after the group's
// basis change), with optional per-gate depolarizing noise -- or, with
// shots = 0, exact expectations for noise-free experiments.
//
// Bind once, run many: the estimator compiles the ansatz into an
// exec::CompiledCircuit and the Hamiltonian into an
// exec::CompiledObservable the first time it sees each structure, and
// whole energy / parameter-shift sweeps are submitted as one energies()
// batch fanned over the shared thread pool. Exact noise-free results
// are bit-identical to the pre-batching per-term path.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/exec/observable.hpp"
#include "qoc/train/optimizer.hpp"
#include "qoc/train/pruner.hpp"
#include "qoc/vqe/hamiltonian.hpp"

namespace qoc::vqe {

struct EstimatorOptions {
  int shots = 0;            // 0 = exact expectation values
  double gate_noise = 0.0;  // depolarizing probability injected per gate
  std::uint64_t seed = 0xE57ULL;
};

/// Evaluates <H> for a bound ansatz. Each energy() call counts the number
/// of circuit executions consumed (one per measurement basis -- i.e. per
/// commuting group -- when sampling or noisy; one when exact).
class EnergyEstimator {
 public:
  EnergyEstimator(Hamiltonian hamiltonian, EstimatorOptions options = {});

  const Hamiltonian& hamiltonian() const { return hamiltonian_; }

  /// Energy of ansatz(theta)|0>.
  double energy(const circuit::Circuit& ansatz,
                std::span<const double> theta);

  /// Batched energies: one result per evaluation of the compiled ansatz
  /// ((theta, input) binding plus optional single-op parameter shift,
  /// exactly as Backend::run_batch consumes them). Evaluations fan over
  /// up to `threads` workers of the shared pool (0 = one per hardware
  /// core). Per-evaluation PRNG streams are assigned in submission
  /// order and consumed sequentially inside each evaluation, so results
  /// are deterministic and independent of the thread count.
  std::vector<double> energies(const circuit::Circuit& ansatz,
                               std::span<const exec::Evaluation> evals,
                               unsigned threads = 1);

  /// Circuit executions consumed so far (the VQE analogue of Fig. 6's
  /// #inference axis).
  std::uint64_t executions() const { return executions_; }

 private:
  /// Per-worker-chunk scratch (angle buffers + statevectors), hoisted
  /// out of the per-evaluation loop; defined in vqe.cpp.
  struct Scratch;

  /// Compile-or-reuse the plan for this ansatz structure.
  void ensure_compiled(const circuit::Circuit& ansatz);

  /// <H> for one evaluation; draws (noise events, then shot samples)
  /// come sequentially from `rng` only.
  double energy_one(const exec::Evaluation& e, Prng& rng,
                    Scratch& scratch) const;

  /// Noisy state preparation into `sv` (reset first): uncompiled walk of
  /// the source circuit with one depolarizing event per touched qubit
  /// per gate (the pre-plan arithmetic, kept so noise applies per source
  /// gate).
  void prepare_noisy(std::span<const double> angles, Prng& rng,
                     sim::Statevector& sv) const;

  Hamiltonian hamiltonian_;
  EstimatorOptions options_;
  Prng rng_;
  std::uint64_t executions_ = 0;
  std::optional<exec::CompiledCircuit> plan_;  // current ansatz structure
  exec::CompiledObservable observable_;
};

struct VqeConfig {
  int steps = 60;
  double lr_start = 0.2;
  double lr_end = 0.02;
  train::OptimizerKind optimizer = train::OptimizerKind::Adam;
  bool use_pruning = false;
  train::PrunerConfig pruner;
  std::uint64_t seed = 1;
  /// Worker threads for the batched energy sweeps the solver submits
  /// (every gradient is one EnergyEstimator::energies call): 1 =
  /// sequential, 0 = one worker per hardware core, n = at most n
  /// workers of the shared qoc::common::ThreadPool. Inherits the
  /// Backend::run_batch / expect_batch determinism contract —
  /// per-evaluation PRNG streams are assigned in submission order, so
  /// a VQE trajectory is bit-reproducible for every value of
  /// `threads`, and changing `threads` changes wall-clock only.
  unsigned threads = 1;
};

struct VqeRecord {
  int step = 0;
  double energy = 0.0;
  std::uint64_t executions = 0;
};

struct VqeResult {
  double energy = 0.0;                // final energy
  double best_energy = 0.0;           // lowest seen
  std::vector<double> theta;
  std::vector<VqeRecord> history;     // one record per step
  std::uint64_t total_executions = 0;
};

/// Gradient-descent VQE: dE/dtheta_i by the +-pi/2 parameter-shift rule
/// applied to the energy estimator, masked by the gradient pruner.
class VqeSolver {
 public:
  VqeSolver(EnergyEstimator estimator, circuit::Circuit ansatz,
            VqeConfig config);

  VqeResult run(std::vector<double> theta_init = {});

  /// Standard hardware-efficient ansatz: layers of RY+RZ on every qubit
  /// followed by a CZ entangling chain; `depth` repetitions.
  static circuit::Circuit hardware_efficient_ansatz(int n_qubits, int depth);

 private:
  std::vector<double> gradient(std::span<const double> theta,
                               const std::vector<bool>& mask);

  EnergyEstimator estimator_;
  circuit::Circuit ansatz_;
  VqeConfig config_;
};

}  // namespace qoc::vqe
