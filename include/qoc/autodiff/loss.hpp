#pragma once
// Classical head of the hybrid training loop (right half of Fig. 4):
// softmax + cross-entropy on the measured expectation values, and the
// closed-form backward pass that produces the downstream gradients
// dL/df(theta). The quantum side (dL/dtheta via parameter shift) lives in
// qoc::train::ParameterShiftEngine.

#include <span>
#include <vector>

namespace qoc::autodiff {

/// Numerically-stable softmax (subtracts the max before exponentiation).
std::vector<double> softmax(std::span<const double> logits);

/// log(softmax(logits)), stable.
std::vector<double> log_softmax(std::span<const double> logits);

/// Cross-entropy loss -log p[target] for integer class targets.
double cross_entropy(std::span<const double> logits, int target);

/// Gradient of cross_entropy w.r.t. the logits: softmax(logits) - onehot.
std::vector<double> cross_entropy_grad(std::span<const double> logits,
                                       int target);

/// Mean loss over a batch of logit vectors.
double batch_cross_entropy(const std::vector<std::vector<double>>& logits,
                           std::span<const int> targets);

/// Measurement head: maps the per-qubit expectation values f(theta) to the
/// class logits. The paper uses two heads (Sec. 4.1):
///   * 4-class: identity -- the four <Z_q> are the four logits;
///   * 2-class: sum qubits (0,1) and (2,3) into two logits.
class MeasurementHead {
 public:
  enum class Kind { Identity, PairSum };

  /// Identity head over n_qubits classes.
  static MeasurementHead identity(int n_qubits);
  /// PairSum head: logit_j = sum of expvals in pair j; n_qubits must be
  /// even, producing n_qubits/2 logits.
  static MeasurementHead pair_sum(int n_qubits);

  Kind kind() const { return kind_; }
  int num_inputs() const { return n_inputs_; }
  int num_logits() const { return n_logits_; }

  /// Forward: expvals (size n_inputs) -> logits (size n_logits).
  std::vector<double> forward(std::span<const double> expvals) const;

  /// Backward: dL/dlogits -> dL/dexpvals (chain through the head).
  std::vector<double> backward(std::span<const double> grad_logits) const;

 private:
  MeasurementHead(Kind kind, int n_inputs, int n_logits)
      : kind_(kind), n_inputs_(n_inputs), n_logits_(n_logits) {}

  Kind kind_;
  int n_inputs_;
  int n_logits_;
};

}  // namespace qoc::autodiff
