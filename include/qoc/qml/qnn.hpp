#pragma once
// Quantum Neural Network models (Fig. 3): pixel/feature encoder ->
// trainable quantum layers -> Pauli-Z measurement -> classical head.
//
// The five task circuits follow Sec. 4.1 exactly:
//   MNIST-2 / Fashion-2 : 1x (RZZ ring + RY layer), PairSum head
//   MNIST-4             : 3x (RX + RY + RZ + CZ layers), Identity head
//   Fashion-4           : 3x (RZZ ring + RY layer), Identity head
//   Vowel-4             : 2x (RZZ ring + RXX ring), Identity head
// All tasks use four logical qubits.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qoc/autodiff/loss.hpp"
#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/data/dataset.hpp"
#include "qoc/exec/compiled_circuit.hpp"

namespace qoc::qml {

class QnnModel {
 public:
  QnnModel(std::string name, circuit::Circuit circuit,
           autodiff::MeasurementHead head);

  const std::string& name() const { return name_; }
  const circuit::Circuit& circuit() const { return circuit_; }
  const autodiff::MeasurementHead& head() const { return head_; }

  /// Execution plan compiled once at construction ("bind once, run
  /// many"): every forward/accuracy/gradient evaluation of the model
  /// reuses it instead of re-lowering the circuit.
  const exec::CompiledCircuit& plan() const { return plan_; }

  int num_params() const { return circuit_.num_trainable(); }
  int num_inputs() const { return circuit_.num_inputs(); }
  int num_classes() const { return head_.num_logits(); }

  /// Random initial parameters ~ U(-pi, pi), the usual PQC init.
  std::vector<double> init_params(Prng& rng) const;

  /// Forward pass on a backend: run the circuit, apply the head.
  /// Returns the class logits.
  std::vector<double> forward(backend::Backend& backend,
                              std::span<const double> theta,
                              std::span<const double> input) const;

  /// Predicted class = argmax logits.
  int predict(backend::Backend& backend, std::span<const double> theta,
              std::span<const double> input) const;

  /// Classification accuracy over a dataset, submitted as one batched
  /// backend call. threads = 1 evaluates sequentially; 0 uses all
  /// hardware cores. Results are independent of the thread count.
  double accuracy(backend::Backend& backend, std::span<const double> theta,
                  const data::Dataset& dataset, unsigned threads = 1) const;

 private:
  std::string name_;
  circuit::Circuit circuit_;
  autodiff::MeasurementHead head_;
  exec::CompiledCircuit plan_;
};

// ---- Paper task models -----------------------------------------------------

/// MNIST 2-class (digits 3 vs 6): image encoder + RZZ ring + RY layer.
QnnModel make_mnist2_model();
/// Fashion 2-class (dress vs shirt): same architecture as MNIST-2.
QnnModel make_fashion2_model();
/// MNIST 4-class (digits 0-3): 3x (RX + RY + RZ + CZ).
QnnModel make_mnist4_model();
/// Fashion 4-class: 3x (RZZ ring + RY layer).
QnnModel make_fashion4_model();
/// Vowel 4-class: vowel encoder + 2x (RZZ ring + RXX ring).
QnnModel make_vowel4_model();

/// Look up a task model by name ("mnist2", "mnist4", "fashion2",
/// "fashion4", "vowel4"); throws on unknown name.
QnnModel make_task_model(const std::string& task);

}  // namespace qoc::qml
