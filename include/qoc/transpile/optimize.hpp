#pragma once
// Peephole optimization passes over lowered (basis) circuits.
//
// The ZXZXZ lowering and ring-layer decompositions emit adjacent virtual
// RZ gates and, around SWAP chains, back-to-back CX pairs that cancel.
// These passes shrink the physical gate count the device executes --
// directly reducing the noise a circuit accrues (every eliminated CX is
// ~1% error on 2021-era hardware).
//
// Passes (all semantics-preserving up to global phase):
//   * merge_rz      -- fuse runs of RZ on the same qubit into one; drop
//                      angles that are 0 (mod 2 pi)
//   * cancel_cx     -- remove adjacent identical CX pairs (CX^2 = I),
//                      looking through commuting RZ on the control and
//                      nothing else
//   * optimize      -- run both to a fixed point

#include <vector>

#include "qoc/transpile/transpile.hpp"

namespace qoc::transpile {

/// True when `angle` is 0 (mod 2 pi) within the pipeline's tolerance.
/// THE canonical zero test: lowering elision, merge_rz cleanup and the
/// RoutedProgram replay validation all share this single definition --
/// the cache's bit-identical-replay contract depends on them agreeing.
bool rz_angle_is_zero(double angle);

/// Fuse consecutive RZ rotations per qubit (they commute with nothing in
/// between on that qubit's timeline); elide zero rotations.
std::vector<BoundOp> merge_rz(const std::vector<BoundOp>& ops);

/// Cancel adjacent CX pairs with identical (control, target). A virtual
/// RZ on the *control* qubit commutes through CX and does not block
/// cancellation; any other interposed gate does.
std::vector<BoundOp> cancel_cx(const std::vector<BoundOp>& ops);

/// Iterate merge_rz + cancel_cx until no further reduction.
std::vector<BoundOp> optimize(const std::vector<BoundOp>& ops);

}  // namespace qoc::transpile
