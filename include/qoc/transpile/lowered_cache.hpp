#pragma once
// Zero-angle-pattern cache for lowered+optimized op streams.
//
// transpile_with_angles() re-runs lower_to_basis + optimize for every
// binding of a routed template, although the *structure* of the result
// (which ops exist, which RZ rotations survive, which CX pairs cancel)
// almost always depends on the binding only through which source angles
// are zero (mod 2pi) -- the exact pattern gradient pruning produces when
// it freezes parameters at 0. RoutedProgram therefore caches, per
// zero-angle pattern, a LoweredPlan: the final optimized op stream plus
// a *replayable trace* of how it was derived --
//
//   * one recipe ("atom") per emitted angle: a constant, an affine
//     function scale * source_angle, or a slot of the ZYZ decomposition
//     of one source rotation, and
//   * the ordered event log of the optimize passes: every RZ-merge
//     accumulation and every angle-is-zero structure decision, with the
//     decision's outcome at trace time.
//
// Binding a cached plan replays the log with the new angle values. The
// replay performs the identical IEEE arithmetic in the identical order
// as a fresh lower+optimize run, so if every recorded decision resolves
// the same way the substituted stream is bit-identical to the fresh
// one -- and if ANY decision flips (e.g. two merged rotations cancel for
// this binding only), the replay reports a mismatch and the caller
// falls back to a fresh trace. A served stream is therefore always
// bitwise equal to what the uncached pipeline would have produced,
// regardless of which binding populated the cache (asserted against
// transpile() in tests/test_transpile.cpp).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "qoc/common/mutex.hpp"
#include "qoc/common/thread_annotations.hpp"
#include "qoc/transpile/transpile.hpp"

namespace qoc::transpile {

/// The traced result of lower_to_basis + optimize for one binding of a
/// routed template. Immutable after construction; replay is const and
/// thread-safe.
class LoweredPlan {
 public:
  /// Run the traced pipeline for `source_angles` over the template.
  /// `bound_out`, when non-null, receives the final bound op stream of
  /// this binding (what substitute() would reproduce), sparing a miss
  /// the redundant replay.
  LoweredPlan(const RoutedTemplate& t, std::span<const double> source_angles,
              int n_device_qubits, std::vector<BoundOp>* bound_out = nullptr);

  /// Re-bind the traced stream with new angle values. Returns false (and
  /// leaves `out` unspecified) if any recorded structure decision
  /// resolves differently for these angles; on true, `out` is the exact
  /// stream a fresh lower+optimize would produce.
  bool substitute(std::span<const double> source_angles,
                  std::vector<BoundOp>& out) const;

  const TranspileStats& stats() const { return stats_; }

 private:
  /// One derived-angle recipe.
  struct Atom {
    enum class Kind : std::uint8_t { Const, Affine, Zyz };
    Kind kind = Kind::Const;
    double value = 0.0;      // Const
    std::int32_t src = -1;   // Affine: source-op index
    double scale = 1.0;      // Affine: angle = scale * source_angle
    std::int32_t zyz = -1;   // Zyz: index into zyzs_
    std::uint8_t slot = 0;   // Zyz: ZSlot
  };

  /// One ZYZ decomposition shared by a gate instance's emitted angles.
  struct ZyzSpec {
    std::int32_t src = -1;
    double scale = 1.0;
    circuit::GateKind kind = circuit::GateKind::I;
  };

  /// Optimize-pass event, in execution order.
  struct Event {
    enum class Kind : std::uint8_t { MergeAdd, ZeroTest };
    Kind kind = Kind::ZeroTest;
    std::int32_t dst = -1;  // angle id
    std::int32_t src = -1;  // MergeAdd: angle id accumulated into dst
    bool expected = false;  // ZeroTest: outcome at trace time
  };

  /// Final-stream op; `id` indexes the replay value table (-1: angle 0).
  struct TOp {
    circuit::GateKind kind = circuit::GateKind::I;
    std::vector<int> qubits;
    std::int32_t id = -1;
  };

  friend struct LoweredPlanBuilder;

  std::vector<TOp> ops_;
  std::vector<Atom> atoms_;    // angle id -> primary recipe
  std::vector<ZyzSpec> zyzs_;
  std::vector<Event> events_;
  TranspileStats stats_;
};

/// A routed template plus its per-zero-pattern lowered-stream cache:
/// the unit TranspileCache stores per circuit structure.
class RoutedProgram {
 public:
  RoutedProgram(RoutedTemplate tmpl, int n_device_qubits)
      : tmpl_(std::move(tmpl)), n_device_qubits_(n_device_qubits) {}

  const RoutedTemplate& tmpl() const { return tmpl_; }

  /// Finish the pipeline for one binding, reusing the cached lowered
  /// stream for this binding's zero-angle pattern when its trace
  /// replays cleanly. Bit-identical to transpile_with_angles() on the
  /// same template and binding. Thread-safe.
  Transpiled transpile(std::span<const double> source_angles) const
      QOC_EXCLUDES(mutex_);

  /// Cached zero-angle patterns (test/diagnostic hook).
  std::size_t cached_patterns() const QOC_EXCLUDES(mutex_);

 private:
  RoutedTemplate tmpl_;
  int n_device_qubits_ = 0;
  mutable common::Mutex mutex_;
  /// Keyed by the packed zero-angle bitmask of the source angles;
  /// cleared wholesale at a fixed cap (unbounded pattern families, e.g.
  /// randomized structured sparsity, cannot leak).
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const LoweredPlan>>
      cache_ QOC_GUARDED_BY(mutex_);
};

}  // namespace qoc::transpile
