#pragma once
// Circuit lowering pipeline modelling what Qiskit does between the paper's
// TrainingEngine and the physical device:
//
//   bind   -- resolve every ParamRef against concrete (theta, input)
//             vectors, producing a list of BoundOps (angles are numbers).
//             Parameter-shift training submits *bound* circuits, so the
//             whole transpile path operates post-binding, like the real
//             flow (create -> validate -> queue -> run, Sec. 3.2).
//   route  -- place logical qubits on physical ones and insert SWAPs so
//             every two-qubit gate acts on a coupled pair.
//   lower  -- rewrite everything into the IBM basis {RZ, SX, X, CX}
//             (RZ is a virtual, error-free frame change on hardware).
//
// The lowered gate counts drive the NoisyBackend's error injection, which
// is how device topology influences training noise -- e.g. a ring RZZ
// layer routed onto a line device (manila/santiago) costs extra SWAPs and
// therefore extra CX noise, just like on the real chips.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/noise/device_model.hpp"

namespace qoc::transpile {

/// A gate whose angle has been resolved to a concrete value.
struct BoundOp {
  circuit::GateKind kind = circuit::GateKind::I;
  std::vector<int> qubits;
  double angle = 0.0;
};

/// Resolve all ParamRefs. Output has one BoundOp per circuit op, in order.
std::vector<BoundOp> bind_circuit(const circuit::Circuit& c,
                                  std::span<const double> theta,
                                  std::span<const double> input);

/// ZYZ Euler decomposition of a single-qubit unitary:
/// U = e^{i phase} Rz(phi) Ry(theta) Rz(lambda).
struct EulerZYZ {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
  double phase = 0.0;
};
EulerZYZ zyz_decompose(const linalg::Matrix& u);

/// Rewrite any 3-qubit gates (Toffoli) into 1- and 2-qubit gates (the
/// textbook 6-CX + T/Tdg/H network); run BEFORE routing, which only
/// understands 1- and 2-qubit operations.
std::vector<BoundOp> decompose_multiqubit(const std::vector<BoundOp>& ops);

/// Rewrite ops into the basis {RZ, SX, X, CX} (global phases dropped).
///   RZZ(t) a b  ->  CX a b ; RZ(t) b ; CX a b
///   RXX / RYY / RZX: basis-change conjugations of RZZ
///   CZ          ->  H-conjugated CX;  SWAP -> 3 CX
///   any 1q gate ->  RZ SX RZ SX RZ via ZYZ angles (ZXZXZ identity)
/// RZ gates with angle ~ 0 (mod 2 pi) are elided.
std::vector<BoundOp> lower_to_basis(const std::vector<BoundOp>& ops);

/// Result of placing + routing a circuit onto a device.
struct RoutingResult {
  std::vector<BoundOp> ops;        // over physical qubit indices
  std::vector<int> final_layout;   // logical l sits on physical final_layout[l]
  std::size_t n_swaps_inserted = 0;
};

/// Greedy shortest-path router. Uses the trivial initial layout
/// (logical i -> physical i); before each non-adjacent two-qubit gate it
/// SWAPs one operand along a BFS shortest path until the pair is coupled.
/// Throws if the device has fewer qubits than the circuit.
RoutingResult route(const std::vector<BoundOp>& ops, int n_logical,
                    const noise::DeviceModel& device);

/// Gate statistics used by the noise model and the scalability study.
struct TranspileStats {
  std::size_t n_rz = 0;        // virtual, error-free
  std::size_t n_sx = 0;
  std::size_t n_x = 0;
  std::size_t n_cx = 0;
  std::size_t n_other = 0;
  std::size_t depth = 0;

  std::size_t physical_1q() const { return n_sx + n_x + n_other; }
  std::size_t total() const { return n_rz + n_sx + n_x + n_cx + n_other; }
};
TranspileStats compute_stats(const std::vector<BoundOp>& ops, int n_qubits);

/// Full pipeline output.
struct Transpiled {
  std::vector<BoundOp> ops;   // routed + lowered, physical indices
  std::vector<int> final_layout;
  std::size_t n_swaps_inserted = 0;
  TranspileStats stats;
};

/// bind -> route -> lower -> stats, against a device model.
Transpiled transpile(const circuit::Circuit& c, std::span<const double> theta,
                     std::span<const double> input,
                     const noise::DeviceModel& device);

/// The angle-independent prefix of the pipeline (decompose + route),
/// computed once per circuit *structure*. Placement and SWAP insertion
/// depend only on gate arities and operand qubits, never on angles, so a
/// template can be reused across every binding of the same circuit --
/// including the parameter-shifted variants of a training step.
struct RoutedTemplate {
  struct TOp {
    circuit::GateKind kind = circuit::GateKind::I;
    std::vector<int> qubits;  // physical indices
    /// Index of the source-circuit op supplying this op's angle, or -1
    /// for angle-free ops (fixed gates, inserted SWAPs, CCX expansion).
    std::int32_t src = -1;
  };
  std::vector<TOp> ops;
  std::vector<int> final_layout;
  std::size_t n_swaps_inserted = 0;
  int n_logical = 0;
};

/// Decompose + route `c` against `device` without binding angles.
RoutedTemplate route_template(const circuit::Circuit& c,
                              const noise::DeviceModel& device);

/// Finish the pipeline for one binding: substitute per-source-op angles
/// (from exec::CompiledCircuit::resolve_source_angles or equivalent),
/// lower to the device basis and optimize. Produces output bit-identical
/// to transpile() on the same circuit and binding.
Transpiled transpile_with_angles(const RoutedTemplate& t,
                                 std::span<const double> source_angles,
                                 const noise::DeviceModel& device);

/// Estimated success probability of the transpiled circuit: the product
/// of (1 - err) over all physical gates plus readout. A coarse fidelity
/// proxy used in reports.
double estimated_success_probability(const Transpiled& t,
                                     const noise::DeviceModel& device);

/// Estimated execution duration of one shot (seconds).
double estimated_duration_s(const Transpiled& t,
                            const noise::DeviceModel& device);

}  // namespace qoc::transpile
