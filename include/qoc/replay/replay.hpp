#pragma once
// qoc::replay -- deterministic record/replay for the serve layer.
//
// The serve determinism contract (serve/serve.hpp) makes a session's
// traffic exactly reproducible: every result is a pure function of the
// registered structure, the bindings and the PRNG stream pinned at
// submission -- never of batching, routing, replica count or thread
// scheduling. This module turns that contract into a regression
// substrate:
//
//   * Recorder (a serve::TraceSink) captures a live session -- every
//     fresh circuit/observable registration and every admitted job
//     (client id, per-client sequence, bindings, monotonic timestamp
//     delta, pinned stream) together with the result its future
//     resolved to -- into a TraceLog.
//   * write_binary/read_binary serialize a TraceLog as a compact
//     versioned binary log: "QOCTRACE" magic, format version,
//     length-prefixed records, CRC32 trailer. Doubles are stored as
//     their IEEE bit patterns, so a log round-trips bit-exactly.
//     Truncated, corrupt or version-skewed logs are rejected with
//     TraceError -- never undefined behaviour. write_text/parse_text
//     provide an equivalent human-readable form for debugging (doubles
//     as hex bit patterns, so the text form round-trips bitwise too).
//   * replay() re-registers the recorded structures and re-submits the
//     recorded stream against ANY ServeSession configuration -- N
//     replicas, Block/Shed, folding on/off, any cache size -- through
//     ServeSession::submit_pinned (which pins exactly the recorded
//     streams), then bitwise-diffs every result against the recorded
//     one and reports divergence by (client, seq).
//
// A config change that preserves the determinism contract replays any
// recorded log with zero divergences; tools/qoc_replay drives this from
// the command line and CI replays golden traces under 1- and 4-replica
// pools on every push.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/common/mutex.hpp"
#include "qoc/common/thread_annotations.hpp"
#include "qoc/exec/observable.hpp"
#include "qoc/serve/serve.hpp"

namespace qoc::replay {

/// Every malformed-log condition -- bad magic, unsupported version,
/// out-of-bounds record, truncation, CRC mismatch, semantically invalid
/// payload (unknown gate kind, absurd qubit count, dangling ids) --
/// surfaces as this one typed error, so callers can treat "log is
/// unusable" as a single recoverable condition.
struct TraceError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One circuit structure registered during the recorded session, in
/// registration order. `structure_hash` is exec::structure_hash of the
/// source circuit at record time; replay recomputes it from the
/// deserialized circuit and refuses to run on a mismatch (a drifted
/// serialization must not silently replay the wrong structure).
struct TracedCircuit {
  std::uint64_t id = 0;
  std::uint64_t structure_hash = 0;
  bool fuse_1q = false;
  circuit::Circuit circuit{1};
};

/// One registered observable: (qubit count, term list) fully determines
/// a CompiledObservable, so that is all the log stores.
struct TracedObservable {
  std::uint64_t id = 0;
  int n_qubits = 0;
  std::vector<exec::ObservableTerm> terms;
};

/// One admitted job in submission order. `observable_id == 0` marks a
/// run job (registry ids start at 1). `has_result == false` marks a job
/// whose future never carried a value (backend failure); replay
/// re-submits it but skips the comparison.
struct TracedJob {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  std::uint64_t circuit_id = 0;
  std::uint64_t observable_id = 0;
  std::uint64_t stream = 0;  // client_stream(client, seq), kept as an
                             // integrity check on the log
  std::chrono::nanoseconds since_start{0};
  bool is_expect = false;
  bool has_result = false;
  std::vector<double> theta, input;
  std::vector<double> run_result;  // run jobs
  double expect_result = 0.0;      // expect jobs
};

/// A recorded session: everything needed to re-create its submission
/// stream against a fresh session, plus the results to diff against.
struct TraceLog {
  /// Free-form provenance string (tools/qoc_replay stores the corpus
  /// scenario name here and uses it to reconstruct the backend).
  std::string scenario;
  std::vector<TracedCircuit> circuits;
  std::vector<TracedObservable> observables;
  std::vector<TracedJob> jobs;
};

// ---- Binary log format ----------------------------------------------------

/// Current on-disk format version (read_binary rejects others).
inline constexpr std::uint32_t kTraceVersion = 1;

/// Serialize to the versioned binary format (appends to `out`).
std::vector<std::uint8_t> write_binary(const TraceLog& log);

/// Parse a binary log. Throws TraceError on any malformed input.
TraceLog read_binary(std::span<const std::uint8_t> bytes);

/// File convenience wrappers (binary format). save overwrites; load
/// throws TraceError when the file is unreadable or malformed.
void save(const TraceLog& log, const std::string& path);
TraceLog load(const std::string& path);

/// Human-readable text form. Doubles are rendered as 16-digit hex bit
/// patterns, so parse_text(write_text(log)) reproduces `log` bitwise.
std::string write_text(const TraceLog& log);
TraceLog parse_text(const std::string& text);

/// Field-wise equality with bitwise double comparison (the identity the
/// round-trip tests assert).
bool logs_equal(const TraceLog& a, const TraceLog& b);

// ---- Recorder -------------------------------------------------------------

/// TraceSink capturing a live session into a TraceLog. Install via
/// ServeOptions::trace_sink before constructing the session:
///
///   auto rec = std::make_shared<replay::Recorder>("my-scenario");
///   serve::ServeOptions opt;
///   opt.trace_sink = rec;
///   serve::ServeSession session(backend, opt);
///   ... traffic ...
///   session.shutdown();
///   replay::save(rec->snapshot(), "session.qoctrace");
///
/// Thread-safe (callbacks arrive from submitter and lane threads);
/// results are matched to their jobs by pinned stream id, so arrival
/// order across threads never matters. snapshot() may be taken at any
/// point; jobs whose results have not arrived yet appear with
/// has_result == false.
class Recorder final : public serve::TraceSink {
 public:
  explicit Recorder(std::string scenario = "") {
    log_.scenario = std::move(scenario);
  }

  void on_circuit(std::uint64_t circuit_id, std::uint64_t structure_hash,
                  const circuit::Circuit& circuit,
                  const exec::CompileOptions& options) override;
  void on_observable(std::uint64_t observable_id,
                     const exec::CompiledObservable& observable) override;
  void on_submit(std::uint32_t client, std::uint64_t seq,
                 std::uint64_t circuit_id, std::uint64_t observable_id,
                 std::span<const double> theta, std::span<const double> input,
                 std::chrono::nanoseconds since_session_start,
                 std::uint64_t stream) override;
  void on_run_result(std::uint64_t stream,
                     std::span<const double> result) override;
  void on_expect_result(std::uint64_t stream, double result) override;

  /// Copy of everything recorded so far.
  TraceLog snapshot() const QOC_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  TraceLog log_ QOC_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::size_t> job_of_stream_
      QOC_GUARDED_BY(mutex_);
};

// ---- Replayer -------------------------------------------------------------

/// How to re-serve a recorded stream.
struct ReplayOptions {
  /// Homogeneous pool size: `backend` plus replicas-1 clone_replica()
  /// copies, exactly like serve::BackendPool(backend, replicas).
  std::size_t replicas = 1;
  /// Session configuration under test (replica count aside). The
  /// trace_sink field is ignored -- replay never re-records.
  serve::ServeOptions serve;
  /// false: re-submit as fast as possible (the regression-test mode).
  /// true: pace submissions to the recorded monotonic timestamp deltas
  /// (reproduces the recorded coalescing pressure for benchmarking /
  /// soak runs; results are identical either way by contract).
  bool paced = false;
};

/// One result that replayed differently from the record, identified the
/// way the traffic was: by who submitted it and when.
struct Divergence {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  bool is_expect = false;
  std::vector<double> expected, actual;  // expect jobs: one entry each
  std::string error;  // non-empty: replayed future failed with this
};

struct ReplayReport {
  std::size_t jobs = 0;      // jobs re-submitted
  std::size_t matched = 0;   // bitwise-identical results
  std::size_t diverged = 0;  // mismatched or failed results
  std::size_t skipped = 0;   // recorded without a result; not compared
  std::vector<Divergence> divergences;
  bool ok() const { return diverged == 0; }
};

/// Re-serve `log` against a fresh ServeSession over `backend` (cloned
/// to options.replicas) and bitwise-diff every result against the
/// recorded one. The caller is responsible for configuring `backend`
/// identically to the recorded session (same kind, seed, shots, noise
/// options...) -- replay validates the log's internal consistency
/// (structure hashes, stream ids, dangling ids; TraceError on
/// violation) but cannot validate backend provenance.
ReplayReport replay(const TraceLog& log, backend::Backend& backend,
                    const ReplayOptions& options = {});

}  // namespace qoc::replay
