#pragma once
// Persistent worker-thread pool.
//
// PR 1's parallel_for spawned and joined fresh std::threads on every
// call, which dominates small-batch run_batch latency: a gradient step
// submits hundreds of sub-millisecond batches, each paying thread
// creation + teardown. ThreadPool keeps a fixed set of workers alive for
// the process lifetime and hands them chunked index ranges instead.
//
// Properties:
//   * Blocking API: run_chunked() returns only when every chunk has
//     executed, so callers keep the simple fork/join structure of the
//     old parallel_for.
//   * Chunked dynamic scheduling: the range is cut into ~4 chunks per
//     participating thread and workers claim chunks with an atomic
//     cursor, so uneven per-index cost load-balances without work
//     stealing.
//   * The calling thread participates: a run at concurrency k uses the
//     caller plus k-1 pool workers, so a pool of hardware_threads()
//     workers can saturate the machine even while the caller blocks.
//   * Exception propagation: the first exception thrown by any chunk is
//     rethrown on the calling thread; later chunks are skipped (their
//     claims are drained without executing).
//   * Nested-submission safety: a run submitted from inside a pool
//     worker executes inline on that worker instead of re-entering the
//     queue. This cannot deadlock and cannot oversubscribe -- nested
//     parallelism degrades to the sequential semantics it would have
//     had anyway once all workers are busy.
//
// The shared process-wide instance is ThreadPool::global(); parallel_for
// (qoc/common/parallel.hpp) routes through it.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "qoc/common/env.hpp"
#include "qoc/common/mutex.hpp"
#include "qoc/common/thread_annotations.hpp"

namespace qoc {

/// Parse a thread-count override string ("8"); returns 0 when the value
/// is missing, non-numeric (strictly decimal digits -- signs,
/// whitespace and trailing junk are garbage), non-positive or absurd
/// (> 4096, including any overflowing value), i.e. no override: a
/// garbage QOC_THREADS must never size a pool with billions of workers.
/// Validation lives in common::parse_env_uint, shared with the
/// QOC_BATCH_LANES knob (sim::parse_batch_lanes) so every numeric env
/// knob rejects garbage identically; split out of hardware_threads() so
/// the rules are testable without mutating the process environment.
inline unsigned parse_thread_count(const char* s) {
  return static_cast<unsigned>(common::parse_env_uint(s, 4096));
}

/// Number of worker threads to use by default (>= 1). The QOC_THREADS
/// environment variable overrides the detected core count -- container
/// deployments often expose more hardware threads than the cgroup CPU
/// quota actually grants, and this is the one knob that sizes the global
/// pool. Cached: the underlying sysconf costs ~a microsecond per query,
/// which is visible on every max_threads == 0 dispatch of a small batch.
inline unsigned hardware_threads() {
  static const unsigned n = [] {
    if (const unsigned env = parse_thread_count(std::getenv("QOC_THREADS")))
      return env;
    const unsigned v = std::thread::hardware_concurrency();
    return v == 0 ? 1u : v;
  }();
  return n;
}

namespace common {

class ThreadPool {
 public:
  /// `workers` == 0 means one worker per hardware core.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Lightweight occupancy snapshot. `pending_tickets` counts help
  /// requests that are queued but not yet claimed by a worker -- a
  /// non-zero value means every worker is already busy and additional
  /// fan-out would only queue. Consumers (e.g. the qoc::serve batch
  /// coalescer's drain policy) use it to size their own concurrency
  /// requests; it is advisory and may be stale by the time it is read.
  struct Stats {
    unsigned workers = 0;
    std::size_t pending_tickets = 0;
  };
  Stats stats() const QOC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return {size(), tickets_.size()};
  }

  /// Drain-concurrency accounting for callers that fan out into this
  /// pool from several concurrent consumers (e.g. the per-replica drain
  /// lanes of serve::BackendPool): `requested` threads capped at an
  /// equal share of what the pool can supply -- its workers plus each
  /// consumer's own calling thread -- never below 1. With one consumer
  /// this reduces to the classic workers+1 cap; with N lanes executing
  /// at once it stops every lane from requesting the full pool width
  /// and thrashing the ticket queue. `consumers` == 0 is treated as 1.
  unsigned fair_share(unsigned requested, unsigned consumers) const {
    const unsigned c = consumers == 0 ? 1 : consumers;
    const unsigned supply = stats().workers + c;  // workers + one caller each
    return std::max(1u, std::min(requested, supply / c));
  }

  /// Process-wide shared pool (hardware_threads() workers, created on
  /// first use). All qoc parallel execution funnels through this one
  /// instance so concurrent batches share a bounded set of threads.
  static ThreadPool& global();

  /// True when the calling thread is a pool worker (of any ThreadPool).
  /// parallel_for uses this to run nested submissions inline.
  static bool on_worker_thread();

  /// Invoke fn(lo, hi) over disjoint chunks covering [begin, end),
  /// blocking until all chunks completed. `max_concurrency` bounds the
  /// number of participating threads (caller included); 0 means one per
  /// hardware core. Chunks never get smaller than min_chunk indices.
  /// Runs inline when the effective concurrency is 1, the range is
  /// empty, or the caller is itself a pool worker.
  template <typename ChunkFn,
            typename = std::enable_if_t<
                std::is_invocable_v<ChunkFn&, std::size_t, std::size_t>>>
  void run_chunked(std::size_t begin, std::size_t end, ChunkFn&& fn,
                   unsigned max_concurrency = 0, std::size_t min_chunk = 1) {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    std::size_t target =
        max_concurrency == 0 ? hardware_threads() : max_concurrency;
    target = std::min<std::size_t>(target, n);
    if (target <= 1 || size() == 0 || on_worker_thread()) {
      fn(begin, end);
      return;
    }
    run_impl(
        begin, end,
        [](void* ctx, std::size_t lo, std::size_t hi) {
          (*static_cast<std::remove_reference_t<ChunkFn>*>(ctx))(lo, hi);
        },
        &fn, static_cast<unsigned>(target), min_chunk);
  }

 private:
  using ChunkFnPtr = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  /// One blocking parallel region. Heap-allocated because stale queue
  /// tickets may outlive the submitting call (a worker can pop a ticket
  /// after all chunks are drained and find nothing to do).
  struct Job {
    ChunkFnPtr fn = nullptr;
    void* ctx = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::size_t n_chunks = 0;
    std::atomic<std::size_t> next{0};  // next unclaimed chunk
    std::atomic<std::size_t> done{0};  // completed chunks
    std::atomic<bool> failed{false};
    Mutex error_mutex;
    std::exception_ptr error QOC_GUARDED_BY(error_mutex);  // first exception
    Mutex done_mutex;
    CondVar done_cv;
  };

  void run_impl(std::size_t begin, std::size_t end, ChunkFnPtr fn, void* ctx,
                unsigned target, std::size_t min_chunk) QOC_EXCLUDES(mutex_);
  void worker_loop() QOC_EXCLUDES(mutex_);
  static void help(Job& job);  // claim and execute chunks until drained

  std::vector<std::thread> workers_;  // immutable after construction
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<std::shared_ptr<Job>> tickets_ QOC_GUARDED_BY(mutex_);
  bool stop_ QOC_GUARDED_BY(mutex_) = false;
};

}  // namespace common
}  // namespace qoc
