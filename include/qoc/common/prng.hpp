#pragma once
// Deterministic pseudo-random number generation for the whole QOC stack.
//
// Everything stochastic in this repository -- shot sampling, noise
// trajectories, dataset generation, pruning-mask sampling, parameter
// initialisation -- draws from a qoc::Prng seeded explicitly by the caller.
// This makes every experiment in bench/ reproducible bit-for-bit.

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace qoc {

/// SplitMix64: used to expand a single user seed into independent streams.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 -- fast, high-quality generator (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept so it can drive
/// std::*_distribution when convenient.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x5EEDB06A5EEDB06AULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> mantissa; exact, branch-free.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child stream (e.g. one per worker thread or
  /// per trajectory) without correlating with the parent sequence.
  Prng split() {
    SplitMix64 sm((*this)() ^ 0xA5A5A5A5A5A5A5A5ULL);
    Prng child(0);
    for (auto& s : child.s_) s = sm.next();
    return child;
  }

  /// Sample an index from an (unnormalised, non-negative) weight vector.
  /// Returns weights.size() only if all weights are zero.
  std::size_t categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u < 0.0) return i;
    }
    return weights.size() - 1;  // numeric slack
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace qoc
