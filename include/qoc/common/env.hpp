#pragma once
// Validated environment-variable parsing.
//
// Every numeric qoc env knob (QOC_THREADS, QOC_BATCH_LANES) must reject
// garbage identically: a mistyped deployment value must never size a
// thread pool with billions of workers or pick a nonsense lane width.
// The knob-specific parsers (parse_thread_count, parse_batch_lanes)
// layer their own range/shape rules on top of this one shared helper,
// so "what counts as a number" is defined -- and tested -- exactly once
// (tests/test_parallel.cpp and tests/test_batch_kernels.cpp).

#include <cstddef>

namespace qoc::common {

/// Strict positive-decimal-integer parse for env overrides. Returns the
/// value, or 0 ("no override") when `s` is null, empty, contains any
/// non-digit character (signs, whitespace, hex prefixes and trailing
/// junk all count as garbage), is zero, or exceeds `max_value`
/// (including values that would overflow any integer width: the
/// accumulator saturates instead of wrapping). `max_value` is the
/// knob's own absurdity bound, not a parsing concern -- callers pass
/// e.g. 4096 for thread counts, 32 for lane widths.
inline unsigned long parse_env_uint(const char* s,
                                    unsigned long max_value) noexcept {
  if (s == nullptr || *s == '\0') return 0;
  unsigned long value = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;  // strictly digits, no strtol laxity
    const unsigned long digit = static_cast<unsigned long>(*p - '0');
    if (digit > max_value) return 0;
    if (value > (max_value - digit) / 10) return 0;  // would exceed max_value
    value = value * 10 + digit;
  }
  return value;  // 0 when the input was all zeros: non-positive, no override
}

}  // namespace qoc::common
