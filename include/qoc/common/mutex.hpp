#pragma once
// Annotated mutual-exclusion primitives.
//
// Clang's thread-safety analysis tracks capabilities through attributes
// on the mutex type's own methods -- which libstdc++'s std::mutex does
// not carry. These thin wrappers add the attributes (and nothing else):
// Mutex wraps std::mutex, MutexLock / UniqueLock replace
// std::lock_guard / std::unique_lock, and CondVar wraps
// std::condition_variable_any waiting on the Mutex directly, so a wait
// site keeps its REQUIRES(mutex) contract visible to the analysis.
//
// All qoc code must use these instead of the raw std types: the
// qoc_lint "raw-mutex" rule enforces it (a raw std::mutex is invisible
// to the analysis, so any field it guards silently loses checking).
//
// CondVar deliberately takes the Mutex, not the lock object: the
// analysis cannot express "requires the mutex this unique_lock holds",
// but it checks `wait(Mutex&) QOC_REQUIRES(mu)` exactly. Waiting
// through condition_variable_any costs one extra internal mutex
// relative to std::condition_variable; none of the waits in this
// codebase are on paths where that is measurable (they are all
// block-until-work-arrives waits).

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "qoc/common/thread_annotations.hpp"

namespace qoc::common {

/// std::mutex with thread-safety-analysis attributes. Satisfies
/// BasicLockable, so CondVar can wait on it directly.
class QOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QOC_ACQUIRE() { m_.lock(); }
  void unlock() QOC_RELEASE() { m_.unlock(); }
  bool try_lock() QOC_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::lock_guard equivalent: acquires in the constructor, releases in
/// the destructor, no manual control.
class QOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QOC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QOC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent: scoped acquire with manual
/// unlock()/lock() (the drop-the-lock-around-work pattern of the serve
/// drain lanes). The destructor releases only if currently owned; the
/// analysis models the manual release/reacquire on the scoped object.
class QOC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) QOC_ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.lock();
  }
  ~UniqueLock() QOC_RELEASE() {
    if (owns_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() QOC_ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() QOC_RELEASE() {
    owns_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return owns_; }

 private:
  Mutex& mu_;
  bool owns_;
};

/// Condition variable bound to Mutex. Waits take the Mutex itself (held
/// by the caller through a MutexLock/UniqueLock on the same object) so
/// the REQUIRES contract stays checkable; the wait releases and
/// reacquires it internally, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) QOC_REQUIRES(mu) { cv_.wait(mu); }

  /// Predicate form: `pred` runs with `mu` held. Prefer an explicit
  /// `while (!cond) cv.wait(mu);` loop when the predicate reads guarded
  /// fields -- the analysis cannot see that a lambda invoked inside the
  /// wait holds the lock.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) QOC_REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      QOC_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace qoc::common
