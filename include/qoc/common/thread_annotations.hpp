#pragma once
// Clang thread-safety-analysis attribute macros.
//
// The concurrency contracts of this codebase (which mutex guards which
// field, which functions must be entered with a lock held) were
// previously prose comments enforced by one TSAN CI job -- i.e. only as
// well as test coverage happened to trigger the race. These macros turn
// the contracts into compiler-checked annotations: a clang build with
// -Werror=thread-safety (CMake option QOC_THREAD_SAFETY_ANALYSIS, the
// CI "thread-safety" job) rejects any access to a QOC_GUARDED_BY field
// without its mutex held and any call to a QOC_REQUIRES function
// without the stated capability.
//
// On non-clang compilers (and clang without the attribute) every macro
// expands to nothing, so the annotations are zero-cost documentation.
//
// Usage pattern (see qoc/common/mutex.hpp for the annotated primitives):
//
//   common::Mutex mutex_;
//   int queue_depth_ QOC_GUARDED_BY(mutex_);
//   void drain_locked() QOC_REQUIRES(mutex_);
//
// Annotating a new mutex-protected structure is documented in
// src/README.md ("Correctness tooling").

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define QOC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef QOC_THREAD_ANNOTATION_ATTRIBUTE
#define QOC_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define QOC_CAPABILITY(x) QOC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (lock_guard / unique_lock equivalents).
#define QOC_SCOPED_CAPABILITY QOC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define QOC_GUARDED_BY(x) QOC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define QOC_PT_GUARDED_BY(x) QOC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define QOC_ACQUIRE(...) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define QOC_RELEASE(...) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts the acquire; first argument is the success value.
#define QOC_TRY_ACQUIRE(...) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability to call this function (the "_locked"
/// suffix convention, now compiler-checked).
#define QOC_REQUIRES(...) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (functions that acquire it
/// themselves; catches self-deadlock at compile time).
#define QOC_EXCLUDES(...) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held -- escape
/// hatch for invariants the analysis cannot see.
#define QOC_ASSERT_CAPABILITY(x) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the given capability.
#define QOC_RETURN_CAPABILITY(x) \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Opt a function out of the analysis (last resort; justify in a
/// comment at every use).
#define QOC_NO_THREAD_SAFETY_ANALYSIS \
  QOC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
