#pragma once
// Data-parallel helpers used by the backends to fan trajectory / batch
// work across hardware threads. Both entry points route through the
// shared persistent qoc::common::ThreadPool -- no per-call thread spawns
// (PR 1 created and joined fresh std::threads on every call, which
// dominated small-batch run_batch latency).
//
// Calls made from inside a pool worker (nested parallelism) run inline
// on that worker instead of re-entering the queue, so nesting can
// neither deadlock nor oversubscribe the machine.

#include <cstddef>
#include <type_traits>

#include "qoc/common/thread_pool.hpp"

namespace qoc {

/// Invoke fn(i) for i in [begin, end), fanning chunks of the range over
/// up to max_threads participating threads (0 = one per hardware core;
/// the calling thread participates). fn must be safe to call
/// concurrently for distinct i. Exceptions from workers are rethrown on
/// the calling thread (first one wins). The callable is invoked directly
/// (no std::function indirection), so per-index bodies inline into the
/// chunk loop.
template <typename Fn,
          typename = std::enable_if_t<std::is_invocable_v<Fn&, std::size_t>>>
inline void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                         unsigned max_threads = 0) {
  common::ThreadPool::global().run_chunked(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      max_threads);
}

/// Chunk-granular variant: fn(lo, hi) is called once per contiguous
/// chunk, letting the body hoist per-thread scratch (statevectors, angle
/// buffers) out of the index loop. Same threading, exception and nesting
/// semantics as parallel_for.
template <typename Fn, typename = std::enable_if_t<
                           std::is_invocable_v<Fn&, std::size_t, std::size_t>>>
inline void parallel_for_chunked(std::size_t begin, std::size_t end, Fn&& fn,
                                 unsigned max_threads = 0) {
  common::ThreadPool::global().run_chunked(begin, end, std::forward<Fn>(fn),
                                           max_threads);
}

}  // namespace qoc
