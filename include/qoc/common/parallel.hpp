#pragma once
// Minimal data-parallel helper used by the backends to fan trajectory /
// batch work across hardware threads. Deliberately tiny: a blocking
// parallel_for with static chunking, no work stealing, no global state.

#include <algorithm>
#include <cstddef>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

namespace qoc {

/// Number of worker threads to use by default (>= 1).
inline unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

/// Invoke fn(i) for i in [begin, end), splitting the range statically over
/// up to max_threads workers. fn must be safe to call concurrently for
/// distinct i. Exceptions from workers are rethrown on the calling thread
/// (first one wins). The callable is invoked directly (no std::function
/// indirection), so per-index bodies inline into the worker loop.
template <typename Fn,
          typename = std::enable_if_t<std::is_invocable_v<Fn&, std::size_t>>>
inline void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                         unsigned max_threads = 0) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  unsigned workers = max_threads == 0 ? hardware_threads() : max_threads;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, n));
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::vector<std::exception_ptr> errors(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn, &errors, w] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace qoc
