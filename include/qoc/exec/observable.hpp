#pragma once
// Compiled Pauli-string observables: measure once per basis, not once
// per term.
//
// A VQE Hamiltonian is a sum of Pauli-string terms. Measuring it on a
// sampling backend naively costs one circuit execution per non-identity
// term (each term wants its own measurement basis). But qubit-wise
// commuting (QWC) terms -- terms whose single-qubit Paulis agree
// wherever both are non-identity -- share a basis: one basis-change
// suffix rotates every measured qubit into Z, and every term of the
// group is then a parity of the same sampled bitstrings.
//
// CompiledObservable does this classification ONCE, the same way
// exec::CompiledCircuit hoists structure-dependent circuit work:
//   * identity terms fold into an additive constant,
//   * the remaining terms are greedily packed into QWC groups,
//   * each group compiles to a basis-change suffix (H for X, Sdg+H for
//     Y, nothing for Z) plus per-term Z-parity bit masks.
//
// Backend::expect_batch(plan, observable, evals, threads) consumes this:
// one ansatz state per evaluation, one measured execution per group.
//
// The exact (non-sampling) path deliberately does NOT use the groups:
// expectation() replays the classic per-term loop (clone, apply Paulis,
// inner product) with identical arithmetic in identical order, so its
// results are bit-identical to vqe::Hamiltonian::expectation and to the
// pre-batching estimator.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qoc/sim/statevector.hpp"

namespace qoc::sim {
class BatchedStatevector;
}

namespace qoc::exec {

/// One Pauli-string observable term: a string over {I, X, Y, Z} with one
/// character per qubit (qubit 0 first), scaled by coeff. Mirrors
/// vqe::PauliTerm without making exec depend on the vqe layer.
struct ObservableTerm {
  std::string paulis;
  double coeff = 0.0;
};

class CompiledObservable {
 public:
  /// One basis-change element of a group's measurement suffix.
  struct BasisChange {
    std::int32_t qubit = -1;
    bool y = false;  // true: Sdg then H (Y basis); false: H (X basis)
  };

  /// One term measured inside a group.
  struct GroupTerm {
    std::uint64_t z_mask = 0;  // sample-bit mask of the non-I qubits
    double coeff = 0.0;
    std::size_t term_index = 0;  // index into terms()
  };

  /// A set of qubit-wise commuting terms sharing one measurement basis.
  struct Group {
    std::string basis;  // merged per-qubit basis ('I' where unmeasured)
    std::uint64_t measured_mask = 0;  // union of the member z_masks
    std::vector<BasisChange> suffix;
    std::vector<GroupTerm> terms;
  };

  /// Classify `terms` for an n_qubits-qubit register. Validates lengths
  /// and characters; throws std::invalid_argument on malformed input.
  static CompiledObservable compile(int n_qubits,
                                    std::span<const ObservableTerm> terms);

  int num_qubits() const { return n_qubits_; }
  const std::vector<ObservableTerm>& terms() const { return terms_; }

  /// Additive contribution of the all-identity terms.
  double constant() const { return constant_; }

  /// Commuting groups; one measured circuit execution each when
  /// sampling. Empty iff every term is identity.
  const std::vector<Group>& groups() const { return groups_; }

  /// Exact <psi|H|psi>. Per-term loop over ALL terms in their original
  /// order with the same kernels and accumulation order as
  /// vqe::Hamiltonian::expectation -- bit-identical results.
  double expectation(const sim::Statevector& psi) const;

  /// Exact <psi_l|H|psi_l> for every lane of a k-wide batched state at
  /// once: the same per-term loop as expectation(), but each term's
  /// Pauli product is applied once per LANE GROUP instead of once per
  /// lane. `out` must have psi.lanes() entries; lane L's accumulation
  /// order matches expectation() on lane L's state exactly.
  void expectation_lanes(const sim::BatchedStatevector& psi,
                         std::span<double> out) const;

  /// Apply group g's basis-change suffix to `psi` (rotates every
  /// measured qubit into the Z basis). A non-empty `layout` maps each
  /// suffix qubit through layout[q] first (logical -> physical, for
  /// states held in a routed device register).
  void apply_suffix(sim::Statevector& psi, std::size_t g,
                    std::span<const int> layout = {}) const;

  /// Same suffix on every lane of a batched state (one application per
  /// lane group -- the k-wide sampled path measures each group once per
  /// lane group, not once per lane). `layout` works as in apply_suffix;
  /// the k-wide noisy-trajectory path passes the device routing's final
  /// layout so lane groups measure the routed physical register.
  void apply_suffix_lanes(sim::BatchedStatevector& psi, std::size_t g,
                          std::span<const int> layout = {}) const;

  /// Energy contribution of group g from full-register samples drawn
  /// AFTER apply_suffix: sum over member terms of coeff * mean parity.
  double group_energy_from_samples(std::span<const std::uint64_t> samples,
                                   std::size_t g, int shots) const;

  /// Exact energy contribution of group g from a state already rotated
  /// by apply_suffix (the shots == 0 noisy-estimator path).
  double group_energy_exact(const sim::Statevector& psi, std::size_t g) const;

  /// Sample-bit mask convention: qubit q contributes bit (n-1-q), the
  /// position Statevector::sample uses for basis-state indices.
  static std::uint64_t qubit_bit(int qubit, int n_qubits) {
    return std::uint64_t{1} << (n_qubits - 1 - qubit);
  }

 private:
  CompiledObservable() = default;

  int n_qubits_ = 0;
  double constant_ = 0.0;
  std::vector<ObservableTerm> terms_;
  std::vector<Group> groups_;
};

}  // namespace qoc::exec
