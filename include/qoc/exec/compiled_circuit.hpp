#pragma once
// Compiled execution plans: bind once, run many.
//
// Every high-frequency consumer of a circuit -- param-shift Jacobians,
// masked batch gradients, noisy-trajectory inference -- executes the SAME
// circuit structure over and over with different parameter bindings. The
// generic path re-resolves every ParamRef, re-allocates every gate matrix
// and re-dispatches through the dense apply_matrix kernel on each run.
//
// CompiledCircuit lowers a circuit::Circuit ONCE into a flat op stream:
//   * every fixed gate's matrix is built a single time and cached
//     (dense, or as diagonal entries for the Z/S/T family),
//   * structured gates (CX, CZ, SWAP, Paulis, diagonals) dispatch to the
//     specialized sim::Statevector kernels instead of the dense path,
//   * every angle-bearing gate gets a *parameter slot* whose value is
//     resolved from (theta, input) in one pass per evaluation, and
//   * optionally, runs of adjacent single-qubit gates are fused into one
//     2x2 application (CompileOptions::fuse_1q).
//
// Executing a plan in exact mode is bit-identical to the uncompiled path:
// the specialized kernels perform the same arithmetic with known-zero
// terms dropped, which can only change the sign of zeros (invisible to
// probabilities and expectation values). 1q fusion re-associates matrix
// products and therefore changes results at the ulp level, so it is OFF
// by default and opted into by throughput paths only.
//
// Plans also carry a canonical structural signature. Backends key their
// per-structure caches (e.g. the NoisyBackend's routed transpilation
// template) on it, so a cache entry is invalidated exactly when the
// circuit structure actually changes.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qoc/circuit/circuit.hpp"
#include "qoc/linalg/matrix.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::sim {
class BatchedStatevector;
}

namespace qoc::exec {

struct CompileOptions {
  /// Fuse runs of adjacent single-qubit gates on the same qubit (gates
  /// separated only by ops on other qubits commute into one run) into a
  /// single 2x2 application. Changes results at the ulp level, so keep it
  /// off where bit-exact parity with the uncompiled path matters.
  bool fuse_1q = false;
};

/// Kernel selector for one op of the flat stream.
enum class OpCode : std::uint8_t {
  PauliX,   // specialized Pauli kernels
  PauliY,
  PauliZ,
  Cx,       // permutation kernels
  Cz,
  Swap,
  Diag1q,   // cached diagonal 2x2 (Z/S/Sdg/T/Tdg)
  Fixed1q,  // cached dense 2x2 (H, SX, fused fixed runs)
  Fixed2q,  // cached dense 4x4
  FixedK,   // cached 2^k x 2^k, k >= 3 (CCX)
  Rot1q,    // angle-dependent 1q gate, built per evaluation from a slot
  Rot2q,    // angle-dependent 2q gate
  Fused1q,  // product of a 1q run with >= 1 angle-dependent member
};

struct CompiledOp {
  OpCode code;
  circuit::GateKind kind = circuit::GateKind::I;
  std::int32_t q0 = -1;      // first operand
  std::int32_t q1 = -1;      // second operand (2q ops)
  std::int32_t slot = -1;    // angle slot (Rot1q / Rot2q)
  std::int32_t matrix = -1;  // index into the fixed-matrix cache
  std::int32_t group = -1;   // fusion group (Fused1q)
  std::vector<int> qubits;   // operand list for FixedK only
};

/// One member of a Fused1q group, in application order.
struct FusedElem {
  circuit::GateKind kind = circuit::GateKind::I;
  std::int32_t slot = -1;    // angle slot, or -1 when `matrix` is set
  std::int32_t matrix = -1;  // fixed-matrix cache index
};

/// How one angle slot resolves at bind time.
struct AngleSlot {
  circuit::ParamRef ref;
  std::uint32_t src_op = 0;  // index of the op in the source circuit
};

/// One circuit execution request for Backend::run_batch. `shift_op`
/// optionally offsets the angle of a single source-circuit op by `shift`
/// (the +-pi/2 of the parameter-shift rule) without rebuilding anything.
///
/// `rng_stream` pins the PRNG stream a *stochastic* backend uses for
/// this evaluation. The default (kAutoStream) keeps the legacy
/// behaviour: the backend assigns streams in submission order within
/// the batch. An explicit stream makes the evaluation's random draws a
/// pure function of (backend seed, stream id) -- independent of batch
/// composition and position -- which is what lets the qoc::serve
/// coalescer regroup jobs from many clients into arbitrary batches
/// without changing any job's outcome. Exact backends ignore it.
/// Callers that mix explicit streams with auto evaluations against the
/// same backend should draw explicit ids from a space disjoint from
/// small integers (serve sets the top bit) so they cannot collide with
/// the backend's internal serial counter.
struct Evaluation {
  static constexpr std::size_t kNoShift = static_cast<std::size_t>(-1);
  static constexpr std::uint64_t kAutoStream = static_cast<std::uint64_t>(-1);

  std::span<const double> theta;
  std::span<const double> input;
  std::size_t shift_op = kNoShift;
  double shift = 0.0;
  std::uint64_t rng_stream = kAutoStream;
};

/// Canonical structural signature of a circuit: gate kinds, operand
/// qubits and full parameter bindings. Two circuits with equal signatures
/// execute identically for every (theta, input). Cheap to compute without
/// compiling, so caches can test for a hit first.
std::string structure_signature(const circuit::Circuit& c);

/// Streaming hash of the same structural identity (no allocation; used
/// by per-call cache probes). Equal structures hash equally; collisions
/// must be resolved with structure_equal.
std::uint64_t structure_hash(const circuit::Circuit& c);

/// Exact structural equality (field-wise; doubles compared bitwise).
bool structure_equal(const circuit::Circuit& a, const circuit::Circuit& b);

class CompiledCircuit {
 public:
  /// Lower `c` into a plan. The circuit is copied into the plan, so the
  /// plan owns everything it needs for its lifetime.
  static CompiledCircuit compile(const circuit::Circuit& c,
                                 CompileOptions options = {});

  int num_qubits() const { return source_.num_qubits(); }
  int num_trainable() const { return source_.num_trainable(); }
  int num_inputs() const { return source_.num_inputs(); }
  const circuit::Circuit& source() const { return source_; }
  const CompileOptions& options() const { return options_; }

  const std::vector<CompiledOp>& ops() const { return ops_; }
  std::size_t num_slots() const { return slots_.size(); }
  const std::vector<AngleSlot>& slots() const { return slots_; }

  /// Canonical structural identity: gate kinds, operand qubits and full
  /// parameter bindings of the source circuit. Two circuits with equal
  /// signatures execute identically for every (theta, input).
  const std::string& signature() const { return signature_; }
  std::uint64_t structure_hash() const { return hash_; }

  /// Resolve every angle slot against (theta, input); `out` is resized to
  /// num_slots(). A shift on source op `shift_op` is folded into the
  /// affected slot exactly as train::with_op_offset would (delta added to
  /// the ParamRef offset before resolution, so results are bit-identical).
  void resolve_slots(std::span<const double> theta,
                     std::span<const double> input, std::size_t shift_op,
                     double shift, std::vector<double>& out) const;

  /// Resolve the angle of every *source* op (0.0 for angle-free ops);
  /// matches transpile::bind_circuit bit-for-bit. Used by transpiling
  /// backends together with transpile::RoutedTemplate.
  void resolve_source_angles(std::span<const double> theta,
                             std::span<const double> input,
                             std::size_t shift_op, double shift,
                             std::vector<double>& out) const;

  /// Execute the op stream against `sv` using slot angles from
  /// resolve_slots. The statevector must have num_qubits() qubits.
  void apply(sim::Statevector& sv, std::span<const double> slot_angles) const;

  /// Resolve every angle slot for a whole lane group at once:
  /// out[slot * evals.size() + lane] (the entry-major layout the batched
  /// kernels consume). Per-evaluation shift handling is identical to
  /// resolve_slots, so each lane's angles are bit-identical to a scalar
  /// resolve of that evaluation.
  void resolve_slots_lanes(std::span<const Evaluation> evals,
                           std::vector<double>& out) const;

  /// Execute the op stream against a k-lane batched state with angles
  /// from resolve_slots_lanes. Parameter-dependent matrices are built
  /// once per op per lane group (k entry-major 2x2/4x4 builds amortized
  /// over 2^n rows of kernel work); lane L's arithmetic matches apply()
  /// on evaluation L bit-for-bit.
  void apply_batched(sim::BatchedStatevector& sv,
                     std::span<const double> slot_angles) const;

  /// Convenience: resolve + apply on a fresh |0..0> state and return
  /// <Z_q> for every qubit.
  std::vector<double> expectations(std::span<const double> theta,
                                   std::span<const double> input,
                                   std::size_t shift_op = Evaluation::kNoShift,
                                   double shift = 0.0) const;

 private:
  CompiledCircuit() : source_(1) {}

  circuit::Circuit source_;
  CompileOptions options_;
  std::vector<CompiledOp> ops_;
  std::vector<AngleSlot> slots_;
  std::vector<std::int32_t> slot_of_src_op_;  // -1 for angle-free ops
  std::vector<linalg::Matrix> matrices_;      // fixed-gate cache
  std::vector<circuit::GateKind> matrix_kinds_;  // cache key (I = no reuse)
  std::vector<FusedElem> fused_;              // flattened fusion groups
  std::vector<std::pair<std::int32_t, std::int32_t>> groups_;  // [begin,end)
  std::string signature_;
  std::uint64_t hash_ = 0;
};

}  // namespace qoc::exec
