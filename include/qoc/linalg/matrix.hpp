#pragma once
// Dense complex matrix type used for gate unitaries, Kraus operators and
// small verification computations. Dimensions in this codebase are tiny
// (2^k x 2^k for k <= ~6), so the implementation favours clarity and
// correctness over blocking/vectorisation.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace qoc::linalg {

using cplx = std::complex<double>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr cplx kI{0.0, 1.0};

/// Row-major dense complex matrix.
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

  /// Construct from nested initializer lists:
  ///   Matrix m{{1, 0}, {0, 1}};
  Matrix(std::initializer_list<std::initializer_list<cplx>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_)
        throw std::invalid_argument("Matrix: ragged initializer list");
      for (const auto& v : row) data_.push_back(v);
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  cplx& at(std::size_t r, std::size_t c) {
    check_index(r, c);
    return data_[r * cols_ + c];
  }
  const cplx& at(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return data_[r * cols_ + c];
  }

  const std::vector<cplx>& data() const { return data_; }

  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(const Matrix& rhs) const;  // matrix product
  Matrix operator*(cplx scalar) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(cplx scalar);

  /// Conjugate transpose.
  Matrix adjoint() const;
  Matrix transpose() const;
  Matrix conj() const;

  cplx trace() const;
  double frobenius_norm() const;

  /// Matrix-vector product (vec.size() must equal cols()).
  std::vector<cplx> apply(const std::vector<cplx>& vec) const;

  /// Human-readable rendering for debugging / test failure messages.
  std::string to_string(int precision = 4) const;

 private:
  void check_index(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

inline Matrix operator*(cplx scalar, const Matrix& m) { return m * scalar; }

/// Kronecker (tensor) product: result is (a.rows*b.rows) x (a.cols*b.cols).
Matrix kron(const Matrix& a, const Matrix& b);

/// Kronecker product of a list, left-to-right: kron(ms[0], ms[1], ...).
Matrix kron_all(const std::vector<Matrix>& ms);

/// Max |a_ij - b_ij| over all entries; infinity if shapes differ.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// True if ||A - B||_max <= tol.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-10);

/// True if A is (numerically) unitary: A * A^dagger == I within tol.
bool is_unitary(const Matrix& m, double tol = 1e-10);

/// True if A is (numerically) Hermitian within tol.
bool is_hermitian(const Matrix& m, double tol = 1e-10);

/// True if A == e^{i phi} B for some global phase phi, within tol.
/// This is the right equivalence for comparing gate decompositions.
bool equal_up_to_global_phase(const Matrix& a, const Matrix& b,
                              double tol = 1e-9);

}  // namespace qoc::linalg
