#pragma once
// Real-symmetric eigen decomposition via the cyclic Jacobi rotation method.
// Used by qoc::data::Pca (the paper reduces the vowel features to their 10
// most significant principal components) and by the VQE example to obtain
// reference ground-state energies of small Hermitian Hamiltonians.

#include <vector>

#include "qoc/linalg/matrix.hpp"

namespace qoc::linalg {

/// Result of a symmetric eigen decomposition A = V diag(w) V^T.
/// Eigenvalues are sorted in *descending* order; eigenvectors are the
/// columns of `vectors`, orthonormal, matching the eigenvalue order.
struct SymEigenResult {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;  // vectors[k] is k-th eigenvector
};

/// Eigen decomposition of a dense real symmetric matrix (row-major, n*n).
/// Throws std::invalid_argument on non-square input. Convergence is
/// guaranteed for symmetric matrices; `max_sweeps` is a safety bound.
SymEigenResult sym_eigen(const std::vector<double>& a, std::size_t n,
                         int max_sweeps = 100);

/// Smallest eigenvalue of a small complex Hermitian matrix, computed by
/// reducing to a real symmetric problem of twice the dimension via the
/// standard embedding [Re -Im; Im Re]. Used to verify VQE results.
double hermitian_min_eigenvalue(const Matrix& h);

}  // namespace qoc::linalg
