#pragma once
// qoc::serve -- in-process asynchronous execution service with
// cross-client batch coalescing.
//
// PRs 1-3 built a fast single-caller substrate: compile a circuit once
// (exec::CompiledCircuit), then amortise structure work across large
// run_batch / expect_batch calls. But inference traffic does not arrive
// as large batches from one caller -- it arrives as many small
// independent requests from many concurrent clients, each of which
// would otherwise own a backend and block on its own tiny batch. serve
// is the missing front end that turns that traffic shape into the one
// the substrate is good at:
//
//   * ServeSession fronts a BackendPool of N backend replicas (a pool
//     of one wraps a caller-owned backend, preserving the PR 4 API).
//     Clients submit jobs non-blockingly and get std::futures back.
//     Each replica owns a drain lane (a worker thread with its own
//     batch queue), so coalesced batches execute concurrently across
//     replicas; a routing layer keeps each circuit structure sticky to
//     one replica (structure affinity -- its transpile and pattern
//     caches stay hot) and places new structures on the replica with
//     the least queued work.
//   * A circuit registry hands out ref-counted compile-once handles:
//     register a model once, submit only bindings afterwards.
//   * The batch coalescer groups queued jobs by compiled-circuit
//     structure (and observable, for expectation jobs) and drains each
//     group through ONE run_batch / expect_batch call per tick, under a
//     max-batch / max-delay (deadline) policy. Within a group, jobs are
//     taken round-robin across clients, so one chatty client cannot
//     starve the rest of a full batch.
//   * A bounded LRU result cache keyed on (structure, observable,
//     bitwise bindings) serves repeat requests without touching the
//     backend -- enabled only when every replica reports
//     deterministic() (exact statevector, density matrix), since
//     memoising sampled results would silently change their statistics.
//   * In-flight duplicate folding: when the executing replica is
//     deterministic, bitwise-identical bindings queued into the same
//     batch execute ONCE and the result fans out to every waiting
//     future (the result cache only folds *across* batches). Folded
//     jobs complete normally and count cache-style in metrics
//     (MetricsSnapshot::folded_jobs); they never reach the backend and
//     therefore never count as inferences.
//   * Admission control: ServeOptions::max_queue bounds the number of
//     admitted-but-unfinished jobs. At the bound, submit either blocks
//     until capacity frees (OverloadPolicy::Block) or sheds the job --
//     the returned future fails with serve::QueueFullError
//     (OverloadPolicy::Shed) so overload is a distinct, typed signal.
//   * Service metrics (queue depth, batch occupancy, flush causes,
//     p50/p99 latency, throughput) are exposed as a plain struct, with
//     per-replica occupancy, flush-cause and routing counters so a
//     cold replica is visible instead of averaged away.
//
// Determinism contract: a served result is bit-identical to the same
// evaluation submitted directly to the backend, and independent of how
// the coalescer happened to group it, how many replicas the pool holds
// and where routing placed it. Exact backends are pure functions of
// the bindings, so this is automatic. Stochastic backends draw from
// a PRNG stream pinned AT SUBMISSION via Evaluation::rng_stream =
// client_stream(client id, per-client sequence number) -- a pure
// function of who submitted and their submission count, never of batch
// composition, arrival interleaving, thread scheduling or replica
// placement (homogeneous replicas share the configured seed, and the
// stream derivation is a pure function of seed and stream id; see
// Backend::clone_replica). Direct run_batch calls carrying the same
// explicit streams reproduce served results bit-for-bit
// (tests/test_serve.cpp and tests/test_serve_sharded.cpp assert all of
// these properties). Heterogeneous pools (distinct devices) trade this
// replica-count invariance for capacity: a structure's results then
// depend on which replica it was assigned to, but structure affinity
// keeps the assignment sticky for the session lifetime, so repeat
// submissions of one structure are self-consistent.
//
// Inference accounting: every job that reaches a backend counts
// exactly once through the normal run_batch / expect_batch accounting
// (see Backend::inference_count), on the replica that executed it.
// Result-cache hits and folded duplicates never execute and therefore
// never count.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/exec/observable.hpp"

namespace qoc::serve {

class ServeSession;

namespace detail {
struct CircuitEntry;
struct ObservableEntry;
struct SessionState;
}  // namespace detail

/// The error a shed job's future fails with when the session is over
/// its admission bound under OverloadPolicy::Shed. A distinct type so
/// callers can tell overload (retry later, back off) apart from a
/// backend execution failure.
struct QueueFullError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What submit does when the session already holds
/// ServeOptions::max_queue admitted-but-unfinished jobs.
enum class OverloadPolicy {
  /// Block the submitting thread until capacity frees (or the session
  /// shuts down, which throws like any post-shutdown submit).
  Block,
  /// Admit nothing: return a future that fails with QueueFullError.
  Shed,
};

/// The execution substrate a ServeSession drains into: N backend
/// replicas, each with its own drain lane. Move-only; the session takes
/// the pool by value. Two shapes:
///
///   * Homogeneous: a primary backend plus replicas-1 fresh clones
///     (Backend::clone_replica) sharing its configuration and seed.
///     Pinned-stream results are bit-identical on every replica, so
///     served results are invariant to replica count and routing.
///   * Heterogeneous: an explicit list of caller-owned backends
///     (distinct devices, mixed fidelities). Routing decides which
///     device serves which structure; structure affinity keeps that
///     assignment sticky.
class BackendPool {
 public:
  BackendPool() = default;
  /// `primary` plus replicas-1 clone_replica() copies (total size ==
  /// replicas). The primary stays caller-owned (a pool of one never
  /// clones, preserving the single-backend ServeSession behaviour);
  /// throws std::invalid_argument when replicas == 0 or the backend
  /// cannot clone itself.
  explicit BackendPool(backend::Backend& primary, std::size_t replicas = 1);
  /// Heterogeneous pool of caller-owned replicas (all must outlive the
  /// pool). Throws std::invalid_argument on an empty or null-holding
  /// list.
  explicit BackendPool(std::vector<backend::Backend*> replicas);

  BackendPool(BackendPool&&) = default;
  BackendPool& operator=(BackendPool&&) = default;
  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  std::size_t size() const { return replicas_.size(); }
  backend::Backend& replica(std::size_t i) const { return *replicas_.at(i); }
  /// All replicas deterministic: the pool-level gate for the result
  /// cache (folding gates on the *executing* replica instead).
  bool deterministic() const;
  /// Sum of every replica's inference count -- the pool-level view of
  /// the Backend accounting contract (clones count independently).
  std::uint64_t total_inference_count() const;

 private:
  std::vector<backend::Backend*> replicas_;
  std::vector<std::unique_ptr<backend::Backend>> owned_;  // clones only
};

/// Observer of a session's admitted traffic, for deterministic
/// record/replay (qoc::replay implements this as replay::Recorder).
/// The session invokes the sink at three points:
///
///   * on_circuit / on_observable -- once per FRESH registry entry (a
///     register call deduplicated onto an existing entry is not
///     re-reported; the entry's id identifies it in later jobs).
///   * on_submit -- once per ADMITTED job, at submission time, under
///     the session's queue lock and before the job can execute: a
///     submission record is always observed before its result record.
///     Shed jobs (QueueFullError) are never reported -- they consume a
///     (client, seq) pair but produce nothing to replay; the per-client
///     sequence in the records may therefore have gaps.
///   * on_run_result / on_expect_result -- once per fulfilled future
///     carrying a value (cache hits and folded duplicates included;
///     each folded job reports the fanned-out result under its own
///     stream). Jobs failed by a backend error report no result.
///
/// `stream` is ServeSession::client_stream(client, seq) -- unique per
/// job within a session, so sinks may key pending jobs on it.
/// Implementations must be internally synchronized (callbacks arrive
/// from submitter and lane threads concurrently) and must not call back
/// into the session (on_submit runs under session locks).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_circuit(std::uint64_t circuit_id,
                          std::uint64_t structure_hash,
                          const circuit::Circuit& circuit,
                          const exec::CompileOptions& options) = 0;
  virtual void on_observable(std::uint64_t observable_id,
                             const exec::CompiledObservable& observable) = 0;
  virtual void on_submit(std::uint32_t client, std::uint64_t seq,
                         std::uint64_t circuit_id, std::uint64_t observable_id,
                         std::span<const double> theta,
                         std::span<const double> input,
                         std::chrono::nanoseconds since_session_start,
                         std::uint64_t stream) = 0;
  virtual void on_run_result(std::uint64_t stream,
                             std::span<const double> result) = 0;
  virtual void on_expect_result(std::uint64_t stream, double result) = 0;
};

/// Coalescing, caching and admission policy of a ServeSession.
struct ServeOptions {
  /// A structure group is drained as soon as it holds this many jobs.
  std::size_t max_batch = 256;
  /// ... or as soon as its oldest job has waited this long (deadline
  /// flush). The knee of the latency/throughput trade: larger values
  /// coalesce more under sparse traffic but add tail latency.
  std::chrono::microseconds max_delay{200};
  /// Worker threads per drain call (passed to run_batch / expect_batch
  /// after capping at an equal share of what the shared pool can
  /// actually supply across concurrently-draining replica lanes);
  /// 0 = one per hardware core.
  unsigned exec_threads = 0;
  /// Result-cache capacity in entries; 0 disables the cache. The cache
  /// only ever activates when every pool replica is deterministic().
  std::size_t result_cache_capacity = 0;
  /// Admission bound: maximum jobs admitted but not yet completed
  /// (queued in buckets + routed to lanes + executing). 0 = unbounded
  /// (the PR 4 behaviour). Result-cache hits complete inline and are
  /// never counted against the bound.
  std::size_t max_queue = 0;
  /// What happens to a submit at the bound.
  OverloadPolicy overload = OverloadPolicy::Block;
  /// Fold bitwise-identical bindings within one batch into a single
  /// execution when the executing replica is deterministic(). Purely a
  /// throughput knob: results are unchanged (and stochastic replicas
  /// never fold -- distinct jobs own distinct pinned streams).
  bool fold_duplicates = true;
  /// Opt-in traffic recorder (see TraceSink). Null: no recording, no
  /// overhead on the submit path beyond one pointer test.
  std::shared_ptr<TraceSink> trace_sink;
};

/// Per-replica slice of the service counters: occupancy and flush
/// causes are attributed to the replica whose lane drained the batch,
/// so a cold replica shows up as zeros instead of being averaged into
/// the aggregate.
struct ReplicaMetrics {
  std::string backend_name;
  std::uint64_t batches = 0;          // drain calls this replica executed
  std::uint64_t coalesced_jobs = 0;   // jobs drained (incl. folded)
  std::uint64_t executed_jobs = 0;    // evaluations actually run (folds excluded)
  std::uint64_t size_flushes = 0;     // this replica's drains by max_batch
  std::uint64_t deadline_flushes = 0; //   ... by max_delay
  std::uint64_t affinity_routes = 0;  // batches routed by sticky structure affinity
  std::uint64_t assigned_structures = 0;  // structures first placed here
  std::size_t inflight_jobs = 0;      // routed to this lane, not yet completed
  double mean_batch_occupancy = 0.0;  // coalesced_jobs / batches
};

/// Point-in-time service counters. Latency percentiles are estimated
/// from a full-history log-scale histogram of every completion (cache
/// hits included -- they are served requests too): exact below 8ns,
/// within 6.25% relative error above. Aggregate batch/flush counters
/// are the sums of the per-replica slices.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;        // jobs accepted (incl. cache hits)
  std::uint64_t completed = 0;        // futures fulfilled with a value
  std::uint64_t failed = 0;           // futures fulfilled with an exception
  std::uint64_t cache_hits = 0;       // served without touching the backend
  std::uint64_t folded_jobs = 0;      // served from a batch-mate's result
  std::uint64_t shed_jobs = 0;        // rejected with QueueFullError
  std::uint64_t batches = 0;          // backend drain calls completed
  std::uint64_t coalesced_jobs = 0;   // jobs drained through those calls
  std::uint64_t size_flushes = 0;     // completed drains triggered by max_batch
  std::uint64_t deadline_flushes = 0; //   ... by max_delay (batch and flush
                                      //   counters commit when a batch
                                      //   finishes, not when it is routed --
                                      //   a batch queued behind a busy
                                      //   replica shows up in in_flight)
  std::size_t queue_depth = 0;        // jobs coalescing in buckets right now
  std::size_t peak_queue_depth = 0;
  std::size_t in_flight = 0;          // admitted, not yet completed (the
                                      //   quantity max_queue bounds)
  double mean_batch_occupancy = 0.0;  // coalesced_jobs / batches
  double p50_latency_us = 0.0;        // submit -> future fulfilled
  double p99_latency_us = 0.0;
  double throughput_per_s = 0.0;      // completed / session lifetime
  unsigned pool_workers = 0;          // common::ThreadPool::global() view
  std::size_t pool_pending = 0;       //   at snapshot time
  std::vector<ReplicaMetrics> replicas;  // one slice per pool replica
};

/// Ref-counted handle to a circuit compiled once inside a session's
/// registry. Copying shares the compiled plan; the registry drops its
/// (weak) reference when the last handle dies. Handles are only valid
/// for submission to the session that created them.
class CircuitHandle {
 public:
  CircuitHandle() = default;
  bool valid() const { return entry_ != nullptr; }
  const exec::CompiledCircuit& plan() const;
  /// Session-unique structure id (also the coalescing/cache key).
  std::uint64_t id() const;

 private:
  friend class ServeSession;
  explicit CircuitHandle(std::shared_ptr<const detail::CircuitEntry> e)
      : entry_(std::move(e)) {}
  std::shared_ptr<const detail::CircuitEntry> entry_;
};

/// Ref-counted handle to a registered observable (for expectation
/// jobs), tied to its session exactly like CircuitHandle.
class ObservableHandle {
 public:
  ObservableHandle() = default;
  bool valid() const { return entry_ != nullptr; }
  const exec::CompiledObservable& observable() const;
  std::uint64_t id() const;

 private:
  friend class ServeSession;
  explicit ObservableHandle(std::shared_ptr<const detail::ObservableEntry> e)
      : entry_(std::move(e)) {}
  std::shared_ptr<const detail::ObservableEntry> entry_;
};

/// One client's submission endpoint. Move-only: each Client owns a
/// private submission sequence whose (client id, sequence) pairs pin
/// the PRNG streams of its stochastic jobs, so duplicating a Client
/// would duplicate streams. A Client may be driven by one thread at a
/// time (the usual one-client-per-thread pattern); distinct Clients are
/// safe to use concurrently. Clients must not outlive their session.
class Client {
 public:
  Client() = default;
  // Moves detach the source (it reverts to the default-constructed,
  // throwing state): a defaulted move would leave a live duplicate
  // endpoint whose submissions reuse the same (client id, sequence)
  // stream pins.
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this == &other) return *this;
    session_ = other.session_;
    id_ = other.id_;
    seq_ = other.seq_;
    other.session_ = nullptr;
    other.id_ = 0;
    other.seq_ = 0;
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  std::uint32_t id() const { return id_; }

  /// Enqueue one circuit evaluation; the future resolves to <Z_q> per
  /// logical qubit once a coalesced batch containing the job has run
  /// (or immediately, on a result-cache hit). Bindings are copied, so
  /// the caller's buffers may be reused as soon as submit returns.
  /// Throws std::invalid_argument on a foreign/invalid handle or
  /// too-short bindings, std::runtime_error after shutdown.
  std::future<std::vector<double>> submit(const CircuitHandle& circuit,
                                          std::span<const double> theta,
                                          std::span<const double> input = {});

  /// Enqueue one Hamiltonian-expectation evaluation (<H> of the bound
  /// ansatz state); drained through Backend::expect_batch.
  std::future<double> submit_expect(const CircuitHandle& circuit,
                                    const ObservableHandle& observable,
                                    std::span<const double> theta,
                                    std::span<const double> input = {});

 private:
  friend class ServeSession;
  Client(ServeSession* session, std::uint32_t id)
      : session_(session), id_(id) {}
  ServeSession* session_ = nullptr;
  std::uint32_t id_ = 0;
  std::uint64_t seq_ = 0;
};

class ServeSession {
 public:
  /// Single-replica convenience: wraps `backend` in a pool of one (no
  /// clone -- the caller's backend executes every job, exactly the
  /// PR 4 behaviour). The backend must outlive the session.
  explicit ServeSession(backend::Backend& backend, ServeOptions options = {})
      : ServeSession(BackendPool(backend, 1), options) {}

  /// Sharded session: takes ownership of the pool; the dispatcher and
  /// one drain-lane thread per replica start immediately. Caller-owned
  /// replicas inside the pool must outlive the session.
  explicit ServeSession(BackendPool pool, ServeOptions options = {});

  /// Drains every queued job (fulfilling all futures), then joins the
  /// dispatcher and every drain lane. Equivalent to shutdown().
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Compile-or-reuse: structurally identical circuits (same gates,
  /// operands, parameter bindings and compile options) share one plan,
  /// however many clients register them.
  CircuitHandle register_circuit(const circuit::Circuit& c,
                                 exec::CompileOptions options = {});

  /// Register an observable for submit_expect jobs.
  ObservableHandle register_observable(exec::CompiledObservable observable);

  /// Mint a new client endpoint. Client ids are assigned in call order,
  /// so creating clients in a fixed order makes every stochastic stream
  /// assignment reproducible across runs.
  Client client();

  /// Replay/tooling submission path: enqueue a job under an EXPLICIT
  /// (client id, sequence) identity instead of a Client's private
  /// counter, pinning exactly the PRNG stream client_stream(client_id,
  /// seq). This is what lets qoc::replay re-submit a recorded stream
  /// whose per-client sequences have gaps (shed jobs consume a sequence
  /// number but are never recorded). The caller owns uniqueness: two
  /// in-flight jobs sharing (client_id, seq) share a stream, which
  /// breaks the determinism contract for stochastic backends and the
  /// uniqueness TraceSink keys on. Validation and admission control
  /// behave exactly like Client::submit / submit_expect.
  std::future<std::vector<double>> submit_pinned(
      std::uint32_t client_id, std::uint64_t seq, const CircuitHandle& circuit,
      std::span<const double> theta, std::span<const double> input = {});
  std::future<double> submit_expect_pinned(
      std::uint32_t client_id, std::uint64_t seq, const CircuitHandle& circuit,
      const ObservableHandle& observable, std::span<const double> theta,
      std::span<const double> input = {});

  /// Stop accepting submissions (blocked submitters wake and throw),
  /// run every queued job to completion (deadlines are ignored;
  /// remaining groups drain immediately through their routed lanes),
  /// and join the dispatcher and every lane. Idempotent. Futures
  /// already handed out stay valid after the session is destroyed.
  void shutdown();

  MetricsSnapshot metrics() const;

  const ServeOptions& options() const { return options_; }
  /// The pool this session drains into.
  const BackendPool& pool() const;
  /// Replica 0 (the primary of a single-backend session); kept for
  /// source compatibility with the pre-pool API.
  backend::Backend& backend() { return pool().replica(0); }

  /// The PRNG stream id pinned to client `client`'s `seq`-th job (top
  /// bit set, keeping the space disjoint from backend-internal auto
  /// serials). Tests use this to reproduce served stochastic results
  /// through direct run_batch calls. Layout: 23 bits of client id, 40
  /// bits of sequence -- both fields masked, so streams are guaranteed
  /// distinct for up to 2^23 clients x 2^40 jobs each per session and
  /// alias (never overflow into the tag bit) beyond that.
  static constexpr std::uint64_t client_stream(std::uint32_t client,
                                               std::uint64_t seq) {
    return (std::uint64_t{1} << 63) |
           ((std::uint64_t{client} & ((std::uint64_t{1} << 23) - 1)) << 40) |
           (seq & ((std::uint64_t{1} << 40) - 1));
  }

 private:
  friend class Client;

  std::future<std::vector<double>> submit_run(Client& c,
                                              const CircuitHandle& circuit,
                                              std::span<const double> theta,
                                              std::span<const double> input);
  std::future<double> submit_expect(Client& c, const CircuitHandle& circuit,
                                    const ObservableHandle& observable,
                                    std::span<const double> theta,
                                    std::span<const double> input);

  ServeOptions options_;
  std::shared_ptr<detail::SessionState> state_;
};

}  // namespace qoc::serve
