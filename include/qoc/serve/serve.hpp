#pragma once
// qoc::serve -- in-process asynchronous execution service with
// cross-client batch coalescing.
//
// PRs 1-3 built a fast single-caller substrate: compile a circuit once
// (exec::CompiledCircuit), then amortise structure work across large
// run_batch / expect_batch calls. But inference traffic does not arrive
// as large batches from one caller -- it arrives as many small
// independent requests from many concurrent clients, each of which
// would otherwise own a backend and block on its own tiny batch. serve
// is the missing front end that turns that traffic shape into the one
// the substrate is good at:
//
//   * ServeSession owns one Backend and one dispatcher thread. Clients
//     submit jobs non-blockingly and get std::futures back.
//   * A circuit registry hands out ref-counted compile-once handles:
//     register a model once, submit only bindings afterwards.
//   * The batch coalescer groups queued jobs by compiled-circuit
//     structure (and observable, for expectation jobs) and drains each
//     group through ONE run_batch / expect_batch call per tick, under a
//     max-batch / max-delay (deadline) policy. Within a group, jobs are
//     taken round-robin across clients, so one chatty client cannot
//     starve the rest of a full batch.
//   * A bounded LRU result cache keyed on (structure, observable,
//     bitwise bindings) serves repeat requests without touching the
//     backend -- enabled only when the backend reports deterministic()
//     (exact statevector, density matrix), since memoising sampled
//     results would silently change their statistics.
//   * Service metrics (queue depth, batch occupancy, flush causes,
//     p50/p99 latency, throughput) are exposed as a plain struct.
//
// Determinism contract: a served result is bit-identical to the same
// evaluation submitted directly to the backend, and independent of how
// the coalescer happened to group it. Exact backends are pure functions
// of the bindings, so this is automatic. Stochastic backends draw from
// a PRNG stream pinned AT SUBMISSION via Evaluation::rng_stream =
// client_stream(client id, per-client sequence number) -- a pure
// function of who submitted and their submission count, never of batch
// composition, arrival interleaving or thread scheduling. Direct
// run_batch calls carrying the same explicit streams reproduce served
// results bit-for-bit (tests/test_serve.cpp asserts both properties).
//
// Inference accounting: every job that reaches the backend counts
// exactly once through the normal run_batch / expect_batch accounting
// (see Backend::inference_count). Result-cache hits never execute and
// therefore never count.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/exec/observable.hpp"

namespace qoc::serve {

class ServeSession;

namespace detail {
struct CircuitEntry;
struct ObservableEntry;
struct SessionState;
}  // namespace detail

/// Coalescing and caching policy of a ServeSession.
struct ServeOptions {
  /// A structure group is drained as soon as it holds this many jobs.
  std::size_t max_batch = 256;
  /// ... or as soon as its oldest job has waited this long (deadline
  /// flush). The knee of the latency/throughput trade: larger values
  /// coalesce more under sparse traffic but add tail latency.
  std::chrono::microseconds max_delay{200};
  /// Worker threads per drain call (passed to run_batch / expect_batch
  /// after capping at what the shared pool can actually supply);
  /// 0 = one per hardware core.
  unsigned exec_threads = 0;
  /// Result-cache capacity in entries; 0 disables the cache. The cache
  /// only ever activates when the backend reports deterministic().
  std::size_t result_cache_capacity = 0;
};

/// Point-in-time service counters. Latency percentiles are computed
/// over a sliding window of the most recent completions (cache hits
/// included -- they are served requests too).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;        // jobs accepted (incl. cache hits)
  std::uint64_t completed = 0;        // futures fulfilled with a value
  std::uint64_t failed = 0;           // futures fulfilled with an exception
  std::uint64_t cache_hits = 0;       // served without touching the backend
  std::uint64_t batches = 0;          // backend drain calls issued
  std::uint64_t coalesced_jobs = 0;   // jobs drained through those calls
  std::uint64_t size_flushes = 0;     // drains triggered by max_batch
  std::uint64_t deadline_flushes = 0; // drains triggered by max_delay
  std::size_t queue_depth = 0;        // jobs queued right now
  std::size_t peak_queue_depth = 0;
  double mean_batch_occupancy = 0.0;  // coalesced_jobs / batches
  double p50_latency_us = 0.0;        // submit -> future fulfilled
  double p99_latency_us = 0.0;
  double throughput_per_s = 0.0;      // completed / session lifetime
  unsigned pool_workers = 0;          // common::ThreadPool::global() view
  std::size_t pool_pending = 0;       //   at snapshot time
};

/// Ref-counted handle to a circuit compiled once inside a session's
/// registry. Copying shares the compiled plan; the registry drops its
/// (weak) reference when the last handle dies. Handles are only valid
/// for submission to the session that created them.
class CircuitHandle {
 public:
  CircuitHandle() = default;
  bool valid() const { return entry_ != nullptr; }
  const exec::CompiledCircuit& plan() const;
  /// Session-unique structure id (also the coalescing/cache key).
  std::uint64_t id() const;

 private:
  friend class ServeSession;
  explicit CircuitHandle(std::shared_ptr<const detail::CircuitEntry> e)
      : entry_(std::move(e)) {}
  std::shared_ptr<const detail::CircuitEntry> entry_;
};

/// Ref-counted handle to a registered observable (for expectation
/// jobs), tied to its session exactly like CircuitHandle.
class ObservableHandle {
 public:
  ObservableHandle() = default;
  bool valid() const { return entry_ != nullptr; }
  const exec::CompiledObservable& observable() const;
  std::uint64_t id() const;

 private:
  friend class ServeSession;
  explicit ObservableHandle(std::shared_ptr<const detail::ObservableEntry> e)
      : entry_(std::move(e)) {}
  std::shared_ptr<const detail::ObservableEntry> entry_;
};

/// One client's submission endpoint. Move-only: each Client owns a
/// private submission sequence whose (client id, sequence) pairs pin
/// the PRNG streams of its stochastic jobs, so duplicating a Client
/// would duplicate streams. A Client may be driven by one thread at a
/// time (the usual one-client-per-thread pattern); distinct Clients are
/// safe to use concurrently. Clients must not outlive their session.
class Client {
 public:
  Client() = default;
  // Moves detach the source (it reverts to the default-constructed,
  // throwing state): a defaulted move would leave a live duplicate
  // endpoint whose submissions reuse the same (client id, sequence)
  // stream pins.
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this == &other) return *this;
    session_ = other.session_;
    id_ = other.id_;
    seq_ = other.seq_;
    other.session_ = nullptr;
    other.id_ = 0;
    other.seq_ = 0;
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  std::uint32_t id() const { return id_; }

  /// Enqueue one circuit evaluation; the future resolves to <Z_q> per
  /// logical qubit once a coalesced batch containing the job has run
  /// (or immediately, on a result-cache hit). Bindings are copied, so
  /// the caller's buffers may be reused as soon as submit returns.
  /// Throws std::invalid_argument on a foreign/invalid handle or
  /// too-short bindings, std::runtime_error after shutdown.
  std::future<std::vector<double>> submit(const CircuitHandle& circuit,
                                          std::span<const double> theta,
                                          std::span<const double> input = {});

  /// Enqueue one Hamiltonian-expectation evaluation (<H> of the bound
  /// ansatz state); drained through Backend::expect_batch.
  std::future<double> submit_expect(const CircuitHandle& circuit,
                                    const ObservableHandle& observable,
                                    std::span<const double> theta,
                                    std::span<const double> input = {});

 private:
  friend class ServeSession;
  Client(ServeSession* session, std::uint32_t id)
      : session_(session), id_(id) {}
  ServeSession* session_ = nullptr;
  std::uint32_t id_ = 0;
  std::uint64_t seq_ = 0;
};

class ServeSession {
 public:
  /// The backend must outlive the session. The session's dispatcher
  /// thread starts immediately.
  explicit ServeSession(backend::Backend& backend, ServeOptions options = {});

  /// Drains every queued job (fulfilling all futures), then joins the
  /// dispatcher. Equivalent to shutdown().
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Compile-or-reuse: structurally identical circuits (same gates,
  /// operands, parameter bindings and compile options) share one plan,
  /// however many clients register them.
  CircuitHandle register_circuit(const circuit::Circuit& c,
                                 exec::CompileOptions options = {});

  /// Register an observable for submit_expect jobs.
  ObservableHandle register_observable(exec::CompiledObservable observable);

  /// Mint a new client endpoint. Client ids are assigned in call order,
  /// so creating clients in a fixed order makes every stochastic stream
  /// assignment reproducible across runs.
  Client client();

  /// Stop accepting submissions, run every queued job to completion
  /// (deadlines are ignored; remaining groups drain immediately), and
  /// join the dispatcher. Idempotent. Futures already handed out stay
  /// valid after the session is destroyed.
  void shutdown();

  MetricsSnapshot metrics() const;

  const ServeOptions& options() const { return options_; }
  backend::Backend& backend() { return backend_; }

  /// The PRNG stream id pinned to client `client`'s `seq`-th job (top
  /// bit set, keeping the space disjoint from backend-internal auto
  /// serials). Tests use this to reproduce served stochastic results
  /// through direct run_batch calls. Layout: 23 bits of client id, 40
  /// bits of sequence -- both fields masked, so streams are guaranteed
  /// distinct for up to 2^23 clients x 2^40 jobs each per session and
  /// alias (never overflow into the tag bit) beyond that.
  static constexpr std::uint64_t client_stream(std::uint32_t client,
                                               std::uint64_t seq) {
    return (std::uint64_t{1} << 63) |
           ((std::uint64_t{client} & ((std::uint64_t{1} << 23) - 1)) << 40) |
           (seq & ((std::uint64_t{1} << 40) - 1));
  }

 private:
  friend class Client;

  std::future<std::vector<double>> submit_run(Client& c,
                                              const CircuitHandle& circuit,
                                              std::span<const double> theta,
                                              std::span<const double> input);
  std::future<double> submit_expect(Client& c, const CircuitHandle& circuit,
                                    const ObservableHandle& observable,
                                    std::span<const double> theta,
                                    std::span<const double> input);

  backend::Backend& backend_;
  ServeOptions options_;
  std::shared_ptr<detail::SessionState> state_;
};

}  // namespace qoc::serve
