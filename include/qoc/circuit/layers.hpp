#pragma once
// The seven layer templates of Sec. 4.1 plus the two data encoders.
//
// Layer catalogue (verbatim from the paper):
//   (i)    RX layer  -- RX on every wire
//   (ii)   RY layer  -- RY on every wire
//   (iii)  RZ layer  -- RZ on every wire
//   (iv)   RZZ layer -- RZZ on all logically adjacent wires plus the
//                       farthest pair, forming a ring (4 gates on 4 qubits)
//   (v)    RXX layer -- same ring structure as RZZ
//   (vi)   RZX layer -- same ring structure as RZZ
//   (vii)  CZ layer  -- CZ on all logically adjacent wires (a chain)
//
// Every rotation in a trainable layer gets its own fresh trainable
// parameter, allocated from the circuit's parameter table.

#include "qoc/circuit/circuit.hpp"

namespace qoc::circuit {

// ---- Trainable layers -----------------------------------------------------
void add_rx_layer(Circuit& c);
void add_ry_layer(Circuit& c);
void add_rz_layer(Circuit& c);
void add_rzz_ring_layer(Circuit& c);
void add_rxx_ring_layer(Circuit& c);
void add_rzx_ring_layer(Circuit& c);
void add_cz_chain_layer(Circuit& c);

// ---- Data encoders ---------------------------------------------------------

/// 16-feature image encoder for 4x4 downsampled images on 4 qubits:
/// 4 RY + 4 RZ + 4 RX + 4 RY gates; input value k feeds the phase of the
/// k-th rotation (Sec. 4.1). `scale` maps raw features to angles.
void add_image_encoder_16(Circuit& c, double scale = 1.0);

/// 10-feature vowel encoder on 4 qubits: 4 RY + 4 RZ + 2 RX gates.
void add_vowel_encoder_10(Circuit& c, double scale = 1.0);

/// Generic rotation encoder: cycles RY/RZ/RX layers over the wires until
/// `n_features` inputs are consumed. Used by the quickstart example and by
/// tests that need arbitrary feature counts.
void add_rotation_encoder(Circuit& c, int n_features, double scale = 1.0);

}  // namespace qoc::circuit
