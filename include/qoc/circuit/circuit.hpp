#pragma once
// Parameterized Quantum Circuit (PQC) intermediate representation.
//
// A Circuit is an ordered list of Ops over n qubits. Every rotation angle
// is a ParamRef that resolves against two external vectors at execution
// time:
//   * theta  -- the trainable parameters being optimised on-chip, and
//   * input  -- the classical features encoded by the data encoder
//               (16 downsampled pixels or 10 PCA'd vowel features).
// This split mirrors the paper's |psi(x, theta)> formulation and lets the
// TrainingEngine shift a single theta_i by +-pi/2 without touching the
// circuit structure (Sec. 3.1).
//
// A trainable index may appear in several gates; the parameter-shift
// engine sums per-gate contributions in that case, as prescribed at the
// end of Sec. 3.1.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qoc/linalg/matrix.hpp"

namespace qoc::circuit {

using linalg::Matrix;

/// Every gate kind the QOC stack understands. The Rxx/Ryy/Rzz/Rzx family
/// and the single-qubit rotations all have Hermitian generators with
/// eigenvalues +-1, so the parameter-shift rule of Eq. 2 applies exactly.
enum class GateKind {
  I, X, Y, Z, H, S, Sdg, T, Tdg, Sx,
  Rx, Ry, Rz, Phase,
  Cx, Cz, Swap,
  Rxx, Ryy, Rzz, Rzx,
  Crx, Cry, Crz, Cp,
  Ccx,
};

/// Number of qubits the gate acts on (1, 2 or 3).
int gate_arity(GateKind kind);

/// True if the gate takes a rotation angle.
bool gate_is_parameterised(GateKind kind);

/// True if the parameter-shift rule with shift pi/2 and coefficient 1/2
/// is exact for this gate (generator eigenvalues +-1).
bool gate_supports_parameter_shift(GateKind kind);

/// Lower-case mnemonic ("rx", "rzz", "cx", ...).
std::string gate_name(GateKind kind);

/// The gate's (possibly angle-dependent) unitary, in the convention of
/// qoc/sim/gates.hpp. `angle` is ignored for fixed gates.
Matrix gate_matrix(GateKind kind, double angle = 0.0);

/// Where a rotation angle comes from.
struct ParamRef {
  enum class Source { None, Constant, Trainable, Input };

  Source source = Source::None;
  int index = -1;      // into theta (Trainable) or input (Input)
  double value = 0.0;  // Constant angle, or additive offset otherwise
  double scale = 1.0;  // angle = scale * ref + value (Trainable/Input)

  static ParamRef none() { return {}; }
  static ParamRef constant(double v) {
    return {Source::Constant, -1, v, 1.0};
  }
  static ParamRef trainable(int idx) {
    return {Source::Trainable, idx, 0.0, 1.0};
  }
  static ParamRef input(int idx, double scale = 1.0, double offset = 0.0) {
    return {Source::Input, idx, offset, scale};
  }
};

/// One gate instance.
struct Op {
  GateKind kind = GateKind::I;
  std::vector<int> qubits;
  ParamRef param;
};

/// Resolve an Op's angle against concrete parameter and input vectors.
double resolve_angle(const ParamRef& ref, std::span<const double> theta,
                     std::span<const double> input);

class Circuit {
 public:
  explicit Circuit(int n_qubits);

  int num_qubits() const { return n_qubits_; }
  std::size_t num_ops() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  const Op& op(std::size_t i) const { return ops_.at(i); }

  /// Number of distinct trainable parameters (max referenced index + 1).
  int num_trainable() const { return n_trainable_; }
  /// Number of distinct input features referenced by encoder gates.
  int num_inputs() const { return n_inputs_; }

  /// Allocate a fresh trainable parameter slot and return its index.
  int new_trainable() { return n_trainable_++; }

  // ---- Builder interface --------------------------------------------------
  void add(GateKind kind, std::vector<int> qubits,
           ParamRef param = ParamRef::none());

  // Fixed gates.
  void x(int q) { add(GateKind::X, {q}); }
  void y(int q) { add(GateKind::Y, {q}); }
  void z(int q) { add(GateKind::Z, {q}); }
  void h(int q) { add(GateKind::H, {q}); }
  void s(int q) { add(GateKind::S, {q}); }
  void sdg(int q) { add(GateKind::Sdg, {q}); }
  void t(int q) { add(GateKind::T, {q}); }
  void tdg(int q) { add(GateKind::Tdg, {q}); }
  void sx(int q) { add(GateKind::Sx, {q}); }
  void cx(int control, int target) { add(GateKind::Cx, {control, target}); }
  void cz(int a, int b) { add(GateKind::Cz, {a, b}); }
  void swap(int a, int b) { add(GateKind::Swap, {a, b}); }

  // Rotations (ParamRef decides constant / trainable / input).
  void rx(int q, ParamRef p) { add(GateKind::Rx, {q}, p); }
  void ry(int q, ParamRef p) { add(GateKind::Ry, {q}, p); }
  void rz(int q, ParamRef p) { add(GateKind::Rz, {q}, p); }
  void phase(int q, ParamRef p) { add(GateKind::Phase, {q}, p); }
  void rxx(int a, int b, ParamRef p) { add(GateKind::Rxx, {a, b}, p); }
  void ryy(int a, int b, ParamRef p) { add(GateKind::Ryy, {a, b}, p); }
  void rzz(int a, int b, ParamRef p) { add(GateKind::Rzz, {a, b}, p); }
  void rzx(int a, int b, ParamRef p) { add(GateKind::Rzx, {a, b}, p); }
  void crx(int control, int target, ParamRef p) {
    add(GateKind::Crx, {control, target}, p);
  }
  void cry(int control, int target, ParamRef p) {
    add(GateKind::Cry, {control, target}, p);
  }
  void crz(int control, int target, ParamRef p) {
    add(GateKind::Crz, {control, target}, p);
  }
  void cp(int control, int target, ParamRef p) {
    add(GateKind::Cp, {control, target}, p);
  }
  void ccx(int control_a, int control_b, int target) {
    add(GateKind::Ccx, {control_a, control_b, target});
  }

  /// Append all ops of `other` (same qubit count required).
  void append(const Circuit& other);

  // ---- Introspection -------------------------------------------------------
  /// Indices of ops whose angle depends on trainable parameter `idx`.
  std::vector<std::size_t> ops_for_param(int idx) const;

  /// Gate counts.
  std::size_t count_1q() const;
  std::size_t count_2q() const;
  /// Circuit depth: longest chain of ops per qubit timeline.
  std::size_t depth() const;

  /// Full 2^n x 2^n unitary with all angles resolved; intended for tests
  /// and small n only (n <= 10).
  Matrix unitary(std::span<const double> theta,
                 std::span<const double> input) const;

  /// One-op-per-line textual rendering (for debugging and docs).
  std::string to_string() const;

 private:
  int n_qubits_;
  int n_trainable_ = 0;
  int n_inputs_ = 0;
  std::vector<Op> ops_;
};

}  // namespace qoc::circuit
