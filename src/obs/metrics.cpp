// Metrics registry internals and the two exporters.
//
// Registry::Impl holds name -> unique_ptr maps behind the registry
// mutex; the metric objects themselves live until process exit even if
// the Registry is destroyed first (Impl is deliberately leaked), so
// references cached in function-local statics by the QOC_METRIC_*
// macros can never dangle during static destruction.

#include "qoc/obs/metrics.hpp"

#include "qoc/obs/clock.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>

namespace qoc::obs {

std::uint64_t Histogram::quantile_ns(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same rank a sorted window of n samples would index at
  // floor((n - 1) * q); +1 turns it into a cumulative-count target.
  const std::uint64_t target =
      static_cast<std::uint64_t>(static_cast<double>(n - 1) * q) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum >= target) {
      const std::uint64_t lo = bucket_lower(i);
      if (i < kSubBuckets) return lo;  // exact buckets
      return lo + (bucket_upper(i) - lo) / 2;
    }
  }
  // Concurrent recording can make count() race ahead of the bucket
  // array; the last occupied bucket is the honest answer then.
  for (std::size_t i = kBuckets; i-- > 0;) {
    if (counts_[i].load(std::memory_order_relaxed) > 0) {
      const std::uint64_t lo = bucket_lower(i);
      return i < kSubBuckets ? lo : lo + (bucket_upper(i) - lo) / 2;
    }
  }
  return 0;
}

struct Registry::Impl {
  // std::map for deterministic (sorted) exporter output.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::~Registry() = default;  // impl_ leaks by design (see header)

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed
  return *r;
}

Registry::Impl* Registry::impl_or_create() const {
  common::MutexLock lock(mu_);
  if (impl_ == nullptr) impl_ = new Impl();
  return impl_;
}

Counter& Registry::counter(const std::string& name) {
  common::MutexLock lock(mu_);
  if (impl_ == nullptr) impl_ = new Impl();
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  common::MutexLock lock(mu_);
  if (impl_ == nullptr) impl_ = new Impl();
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  common::MutexLock lock(mu_);
  if (impl_ == nullptr) impl_ = new Impl();
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string Registry::prometheus_dump() const {
  Impl* impl = impl_or_create();
  common::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : impl->counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_u64(out, c->value());
    out += "\n";
  }
  for (const auto& [name, g] : impl->gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_i64(out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : impl->histograms) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = h->bucket_count(i);
      if (c == 0) continue;
      cum += c;
      out += name + "_bucket{le=\"";
      append_u64(out, Histogram::bucket_upper(i));
      out += "\"} ";
      append_u64(out, cum);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, cum);
    out += "\n";
    out += name + "_sum ";
    append_u64(out, h->sum_ns());
    out += "\n";
    out += name + "_count ";
    append_u64(out, h->count());
    out += "\n";
  }
  return out;
}

std::string Registry::json_dump() const {
  Impl* impl = impl_or_create();
  common::MutexLock lock(mu_);
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : impl->counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    append_u64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : impl->gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    append_i64(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : impl->histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":";
    append_u64(out, h->count());
    out += ",\"sum_ns\":";
    append_u64(out, h->sum_ns());
    out += ",\"mean_ns\":";
    append_double(out, h->mean_ns());
    out += ",\"p50_ns\":";
    append_u64(out, h->quantile_ns(0.50));
    out += ",\"p90_ns\":";
    append_u64(out, h->quantile_ns(0.90));
    out += ",\"p99_ns\":";
    append_u64(out, h->quantile_ns(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

#if QOC_OBS
HistogramTimer::HistogramTimer(Histogram& h) noexcept : h_(h), t0_(now_ns()) {}
HistogramTimer::~HistogramTimer() { h_.record(now_ns() - t0_); }
#endif

}  // namespace qoc::obs
