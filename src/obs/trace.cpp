// Span tracer internals: per-thread ring buffers and the Chrome
// trace_event JSON collector.
//
// Each recording thread lazily registers one ThreadBuffer with the
// singleton tracer and keeps a shared_ptr to it in a thread_local, so
// the buffer outlives the thread (drain-lane threads die before the
// session collects) and the collector can walk every ring without
// joining anyone. The per-buffer mutex is uncontended on the record
// path -- only the collector and clear() ever take it cross-thread.

#include "qoc/obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace qoc::obs {

struct Tracer::ThreadBuffer {
  common::Mutex mu;
  std::vector<TraceEvent> ring QOC_GUARDED_BY(mu);
  std::size_t cap QOC_GUARDED_BY(mu) = 0;
  std::uint64_t written QOC_GUARDED_BY(mu) = 0;  // total pushes since clear
  std::uint32_t tid = 0;                         // stable, set at registration
};

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // never destroyed (mirrors Registry)
  return *t;
}

std::shared_ptr<Tracer::ThreadBuffer> Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tls;
  if (!tls) {
    tls = std::make_shared<ThreadBuffer>();
    common::MutexLock lock(mu_);
    tls->tid = next_tid_++;
    {
      common::MutexLock bl(tls->mu);
      tls->cap = capacity_;
      tls->ring.reserve(std::min<std::size_t>(capacity_, 1024));
    }
    buffers_.push_back(tls);
  }
  return tls;
}

std::vector<std::shared_ptr<Tracer::ThreadBuffer>> Tracer::snapshot_buffers()
    const {
  common::MutexLock lock(mu_);
  return buffers_;
}

void Tracer::start(std::size_t ring_capacity) {
  {
    common::MutexLock lock(mu_);
    capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  }
  clear();
  // clear() re-caps every ring; enable only after rings are consistent.
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  std::size_t cap;
  {
    common::MutexLock lock(mu_);
    cap = capacity_;
  }
  for (const auto& buf : snapshot_buffers()) {
    common::MutexLock bl(buf->mu);
    buf->ring.clear();
    buf->cap = cap;
    buf->written = 0;
  }
}

std::uint64_t Tracer::dropped_events() const {
  std::uint64_t dropped = 0;
  for (const auto& buf : snapshot_buffers()) {
    common::MutexLock bl(buf->mu);
    if (buf->written > buf->cap) dropped += buf->written - buf->cap;
  }
  return dropped;
}

std::uint64_t Tracer::recorded_events() const {
  std::uint64_t n = 0;
  for (const auto& buf : snapshot_buffers()) {
    common::MutexLock bl(buf->mu);
    n += buf->ring.size();
  }
  return n;
}

void Tracer::push(const TraceEvent& e) noexcept {
  if (!enabled()) return;
  auto buf = local_buffer();
  common::MutexLock bl(buf->mu);
  if (buf->ring.size() < buf->cap) {
    buf->ring.push_back(e);
  } else {
    // Ring wrap: overwrite the oldest slot (insertion order is
    // recovered at collection from `written`).
    buf->ring[buf->written % buf->cap] = e;
  }
  ++buf->written;
}

void Tracer::complete(const char* cat, const char* name, std::uint64_t ts_ns,
                      std::uint64_t dur_ns, const char* arg_key,
                      std::int64_t arg_val) noexcept {
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg_key = arg_key;
  e.arg_val = arg_val;
  e.phase = 'X';
  instance().push(e);
}

void Tracer::async_begin(const char* cat, const char* name,
                         std::uint64_t id) noexcept {
  Tracer& t = instance();
  if (!t.enabled()) return;  // skip the clock read entirely
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ts_ns = now_ns();
  e.id = id;
  e.phase = 'b';
  t.push(e);
}

void Tracer::async_end(const char* cat, const char* name,
                       std::uint64_t id) noexcept {
  Tracer& t = instance();
  if (!t.enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ts_ns = now_ns();
  e.id = id;
  e.phase = 'e';
  t.push(e);
}

void Tracer::counter(const char* name, double value) noexcept {
  Tracer& t = instance();
  if (!t.enabled()) return;
  TraceEvent e;
  e.cat = "counter";
  e.name = name;
  e.ts_ns = now_ns();
  e.value = value;
  e.phase = 'C';
  t.push(e);
}

void Tracer::instant(const char* cat, const char* name) noexcept {
  Tracer& t = instance();
  if (!t.enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ts_ns = now_ns();
  e.phase = 'i';
  t.push(e);
}

namespace {

struct CollectedEvent {
  TraceEvent ev;
  std::uint32_t tid;
};

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

/// Chrome's `ts`/`dur` unit is microseconds; emit ns-resolution
/// fractional microseconds.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::chrome_json() const {
  std::vector<CollectedEvent> events;
  for (const auto& buf : snapshot_buffers()) {
    common::MutexLock bl(buf->mu);
    const std::size_t n = buf->ring.size();
    // Oldest-first: a wrapped ring starts at written % cap.
    const std::size_t start =
        buf->written > buf->cap ? buf->written % buf->cap : 0;
    for (std::size_t i = 0; i < n; ++i)
      events.push_back({buf->ring[(start + i) % n], buf->tid});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     return a.ev.ts_ns < b.ev.ts_ns;
                   });
  std::uint64_t base = events.empty() ? 0 : events.front().ev.ts_ns;

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [ev, tid] : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, ev.cat);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"ts\":";
    append_us(out, ev.ts_ns - base);
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      append_us(out, ev.dur_ns);
    }
    if (ev.phase == 'b' || ev.phase == 'e') {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%" PRIx64 "\"", ev.id);
      out += buf;
    }
    out += ",\"pid\":1,\"tid\":";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u", tid);
    out += buf;
    if (ev.phase == 'C') {
      char vbuf[64];
      std::snprintf(vbuf, sizeof(vbuf), ",\"args\":{\"value\":%.3f}",
                    ev.value);
      out += vbuf;
    } else if (ev.arg_key != nullptr) {
      out += ",\"args\":{\"";
      append_json_escaped(out, ev.arg_key);
      char abuf[32];
      std::snprintf(abuf, sizeof(abuf), "\":%" PRId64 "}", ev.arg_val);
      out += abuf;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace qoc::obs
