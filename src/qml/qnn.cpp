#include "qoc/qml/qnn.hpp"

#include <algorithm>
#include <stdexcept>

#include "qoc/circuit/layers.hpp"

namespace qoc::qml {

namespace {

int argmax(const std::vector<double>& logits) {
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace

QnnModel::QnnModel(std::string name, circuit::Circuit circuit,
                   autodiff::MeasurementHead head)
    : name_(std::move(name)), circuit_(std::move(circuit)),
      head_(std::move(head)),
      plan_(exec::CompiledCircuit::compile(circuit_)) {
  if (head_.num_inputs() != circuit_.num_qubits())
    throw std::invalid_argument(
        "QnnModel: head inputs must match circuit qubits");
}

std::vector<double> QnnModel::init_params(Prng& rng) const {
  std::vector<double> theta(static_cast<std::size_t>(num_params()));
  for (auto& t : theta) t = rng.uniform(-linalg::kPi, linalg::kPi);
  return theta;
}

std::vector<double> QnnModel::forward(backend::Backend& backend,
                                      std::span<const double> theta,
                                      std::span<const double> input) const {
  const auto expvals = backend.run(plan_, theta, input);
  return head_.forward(expvals);
}

int QnnModel::predict(backend::Backend& backend,
                      std::span<const double> theta,
                      std::span<const double> input) const {
  return argmax(forward(backend, theta, input));
}

double QnnModel::accuracy(backend::Backend& backend,
                          std::span<const double> theta,
                          const data::Dataset& dataset,
                          unsigned threads) const {
  if (dataset.size() == 0) return 0.0;
  std::vector<exec::Evaluation> evals(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    evals[i].theta = theta;
    evals[i].input = dataset.features[i];
  }
  const auto expvals = backend.run_batch(plan_, evals, threads);
  std::size_t total = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    total += argmax(head_.forward(expvals[i])) == dataset.labels[i];
  return static_cast<double>(total) / static_cast<double>(dataset.size());
}

namespace {

constexpr int kQubits = 4;

circuit::Circuit two_class_circuit() {
  circuit::Circuit c(kQubits);
  circuit::add_image_encoder_16(c);
  circuit::add_rzz_ring_layer(c);
  circuit::add_ry_layer(c);
  return c;
}

}  // namespace

QnnModel make_mnist2_model() {
  return QnnModel("mnist2", two_class_circuit(),
                  autodiff::MeasurementHead::pair_sum(kQubits));
}

QnnModel make_fashion2_model() {
  return QnnModel("fashion2", two_class_circuit(),
                  autodiff::MeasurementHead::pair_sum(kQubits));
}

QnnModel make_mnist4_model() {
  circuit::Circuit c(kQubits);
  circuit::add_image_encoder_16(c);
  for (int block = 0; block < 3; ++block) {
    circuit::add_rx_layer(c);
    circuit::add_ry_layer(c);
    circuit::add_rz_layer(c);
    circuit::add_cz_chain_layer(c);
  }
  return QnnModel("mnist4", std::move(c),
                  autodiff::MeasurementHead::identity(kQubits));
}

QnnModel make_fashion4_model() {
  circuit::Circuit c(kQubits);
  circuit::add_image_encoder_16(c);
  for (int block = 0; block < 3; ++block) {
    circuit::add_rzz_ring_layer(c);
    circuit::add_ry_layer(c);
  }
  return QnnModel("fashion4", std::move(c),
                  autodiff::MeasurementHead::identity(kQubits));
}

QnnModel make_vowel4_model() {
  circuit::Circuit c(kQubits);
  circuit::add_vowel_encoder_10(c);
  for (int block = 0; block < 2; ++block) {
    circuit::add_rzz_ring_layer(c);
    circuit::add_rxx_ring_layer(c);
  }
  return QnnModel("vowel4", std::move(c),
                  autodiff::MeasurementHead::identity(kQubits));
}

QnnModel make_task_model(const std::string& task) {
  if (task == "mnist2") return make_mnist2_model();
  if (task == "mnist4") return make_mnist4_model();
  if (task == "fashion2") return make_fashion2_model();
  if (task == "fashion4") return make_fashion4_model();
  if (task == "vowel4") return make_vowel4_model();
  throw std::invalid_argument("make_task_model: unknown task " + task);
}

}  // namespace qoc::qml
