#include "qoc/common/thread_pool.hpp"

#include <algorithm>

#include "qoc/obs/metrics.hpp"

namespace qoc::common {

namespace {
thread_local bool tl_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned n = workers == 0 ? hardware_threads() : workers;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

void ThreadPool::worker_loop() {
  tl_on_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && tickets_.empty()) cv_.wait(mutex_);
      if (tickets_.empty()) return;  // stop_ set and queue drained
      job = std::move(tickets_.front());
      tickets_.pop_front();
      QOC_METRIC_GAUGE_SET("qoc_threadpool_pending_tickets",
                           tickets_.size());
    }
    help(*job);
  }
}

void ThreadPool::help(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) return;
    const std::size_t lo = job.begin + c * job.chunk;
    const std::size_t hi = std::min(job.end, lo + job.chunk);
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        job.fn(job.ctx, lo, hi);
      } catch (...) {
        {
          const MutexLock lock(job.error_mutex);
          if (!job.error) job.error = std::current_exception();
        }
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    // acq_rel + the acquire load in the caller's wait predicate order all
    // chunk side effects (results, stored exception) before the caller
    // resumes. Taking done_mutex before notifying closes the window
    // between the caller's predicate check and its wait.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.n_chunks) {
      const MutexLock lock(job.done_mutex);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::run_impl(std::size_t begin, std::size_t end, ChunkFnPtr fn,
                          void* ctx, unsigned target, std::size_t min_chunk) {
  const std::size_t n = end - begin;
  // ~4 chunks per participating thread: coarse enough to amortise the
  // claim, fine enough to load-balance uneven per-index cost.
  const std::size_t chunk = std::max<std::size_t>(
      std::max<std::size_t>(min_chunk, 1),
      (n + static_cast<std::size_t>(target) * 4 - 1) /
          (static_cast<std::size_t>(target) * 4));

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->ctx = ctx;
  job->begin = begin;
  job->end = end;
  job->chunk = chunk;
  job->n_chunks = (n + chunk - 1) / chunk;

  // The caller is one participant; enqueue help tickets for the rest.
  const std::size_t helpers = std::min<std::size_t>(
      {static_cast<std::size_t>(target) - 1, static_cast<std::size_t>(size()),
       job->n_chunks});
  if (helpers > 0) {
    {
      const MutexLock lock(mutex_);
      for (std::size_t i = 0; i < helpers; ++i) tickets_.push_back(job);
      QOC_METRIC_GAUGE_SET("qoc_threadpool_pending_tickets",
                           tickets_.size());
    }
    if (helpers == 1)
      cv_.notify_one();
    else
      cv_.notify_all();
  }

  help(*job);

  {
    UniqueLock lock(job->done_mutex);
    while (job->done.load(std::memory_order_acquire) != job->n_chunks)
      job->done_cv.wait(job->done_mutex);
  }
  // All chunks completed, so no writer can race this read; the lock
  // keeps the guarded-by contract honest (and costs one uncontended
  // acquire per parallel region).
  std::exception_ptr error;
  {
    const MutexLock lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace qoc::common
