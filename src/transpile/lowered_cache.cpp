// Traced lower+optimize pipeline and the zero-angle-pattern cache.
//
// The builder below mirrors transpile.cpp's lower_1q / lower_2q /
// emit_zxzxz and optimize.cpp's merge_rz / cancel_cx operation-for-
// operation: every emitted angle additionally records its recipe (Atom),
// and every binding-dependent branch records an event. Replay
// (LoweredPlan::substitute) re-executes the recorded arithmetic in the
// recorded order, so a clean replay is bit-identical to a fresh run by
// construction -- and any decision that resolves differently aborts the
// replay. Divergence between this file and the untraced pipeline is a
// bug; tests/test_transpile.cpp asserts bitwise equality against
// transpile() across random circuits, bindings and zero patterns.

#include "qoc/transpile/lowered_cache.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "qoc/obs/metrics.hpp"
#include "qoc/sim/gates.hpp"
#include "qoc/transpile/optimize.hpp"

namespace qoc::transpile {

using circuit::GateKind;
using linalg::kPi;

namespace {

constexpr std::size_t kPatternCacheCap = 64;

/// The recorded decisions replay the same canonical predicate the
/// lowering and merge passes use (optimize.hpp).
bool angle_is_zero(double a) { return rz_angle_is_zero(a); }

enum ZSlot : std::uint8_t {
  kZTheta = 0,        // e.theta (decision only)
  kZLambdaPlusPi,     // e.lambda + pi
  kZPiMinusTheta,     // pi - e.theta
  kZPhi,              // e.phi
  kZPhiPlusLambda,    // e.phi + e.lambda (degenerate single-RZ branch)
};

double zyz_slot_value(const EulerZYZ& e, std::uint8_t slot) {
  switch (slot) {
    case kZTheta: return e.theta;
    case kZLambdaPlusPi: return e.lambda + kPi;
    case kZPiMinusTheta: return kPi - e.theta;
    case kZPhi: return e.phi;
    default: return e.phi + e.lambda;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace builder
// ---------------------------------------------------------------------------

struct LoweredPlanBuilder {
  using Atom = LoweredPlan::Atom;
  using Event = LoweredPlan::Event;

  /// Working op during lowering/optimization; `id` indexes plan.atoms_
  /// (-1 for angle-free ops).
  struct WOp {
    GateKind kind = GateKind::I;
    std::vector<int> qubits;
    double angle = 0.0;
    std::int32_t id = -1;
  };

  LoweredPlan& plan;
  std::vector<WOp> stream;

  explicit LoweredPlanBuilder(LoweredPlan& p) : plan(p) {}

  std::int32_t new_id(Atom atom) {
    plan.atoms_.push_back(atom);
    return static_cast<std::int32_t>(plan.atoms_.size() - 1);
  }

  static Atom const_atom(double v) {
    Atom a;
    a.kind = Atom::Kind::Const;
    a.value = v;
    return a;
  }

  static Atom affine_atom(std::int32_t src, double scale) {
    Atom a;
    a.kind = Atom::Kind::Affine;
    a.src = src;
    a.scale = scale;
    return a;
  }

  static Atom zyz_atom(std::int32_t zyz, std::uint8_t slot) {
    Atom a;
    a.kind = Atom::Kind::Zyz;
    a.zyz = zyz;
    a.slot = slot;
    return a;
  }

  void record_test(std::int32_t id, bool expected) {
    Event ev;
    ev.kind = Event::Kind::ZeroTest;
    ev.dst = id;
    ev.expected = expected;
    plan.events_.push_back(ev);
  }

  void record_merge(std::int32_t dst, std::int32_t src) {
    Event ev;
    ev.kind = Event::Kind::MergeAdd;
    ev.dst = dst;
    ev.src = src;
    plan.events_.push_back(ev);
  }

  // ---- Lowering (mirrors transpile.cpp) -----------------------------------

  void push_op(GateKind kind, std::vector<int> qubits, double angle = 0.0,
               std::int32_t id = -1) {
    WOp op;
    op.kind = kind;
    op.qubits = std::move(qubits);
    op.angle = angle;
    op.id = id;
    stream.push_back(std::move(op));
  }

  void emit_rz(int q, double value, Atom atom) {
    const std::int32_t id = new_id(atom);
    const bool zero = angle_is_zero(value);
    record_test(id, zero);
    if (!zero) push_op(GateKind::Rz, {q}, value, id);
  }

  void emit_sx(int q) { push_op(GateKind::Sx, {q}); }

  void emit_cx(int a, int b) { push_op(GateKind::Cx, {a, b}); }

  void emit_zxzxz(int q, const EulerZYZ& e, std::int32_t zyz) {
    auto slot_atom = [&](std::uint8_t slot) {
      return zyz >= 0 ? zyz_atom(zyz, slot)
                      : const_atom(zyz_slot_value(e, slot));
    };
    const bool theta_zero = angle_is_zero(e.theta);
    record_test(new_id(slot_atom(kZTheta)), theta_zero);
    if (theta_zero) {
      emit_rz(q, e.phi + e.lambda, slot_atom(kZPhiPlusLambda));
      return;
    }
    emit_rz(q, e.lambda + kPi, slot_atom(kZLambdaPlusPi));
    emit_sx(q);
    emit_rz(q, kPi - e.theta, slot_atom(kZPiMinusTheta));
    emit_sx(q);
    emit_rz(q, e.phi, slot_atom(kZPhi));
  }

  /// `src` / `scale`: how `angle` derives from the source binding
  /// (src < 0: constant for every binding).
  void lower_1q(GateKind kind, int q, double angle, std::int32_t src,
                double scale) {
    switch (kind) {
      case GateKind::I:
        return;
      case GateKind::X:
        push_op(GateKind::X, {q});
        return;
      case GateKind::Sx:
        emit_sx(q);
        return;
      case GateKind::Rz:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Phase: {
        double a = angle;
        Atom atom = src >= 0 ? affine_atom(src, scale) : const_atom(angle);
        switch (kind) {
          case GateKind::Z: a = kPi; atom = const_atom(a); break;
          case GateKind::S: a = kPi / 2.0; atom = const_atom(a); break;
          case GateKind::Sdg: a = -kPi / 2.0; atom = const_atom(a); break;
          case GateKind::T: a = kPi / 4.0; atom = const_atom(a); break;
          case GateKind::Tdg: a = -kPi / 4.0; atom = const_atom(a); break;
          default: break;  // Rz / Phase keep the bound angle
        }
        emit_rz(q, a, atom);
        return;
      }
      default: {
        // Generic path: ZYZ-decompose the unitary, emit ZXZXZ. For
        // binding-dependent gates (Rx/Ry families) the decomposition is
        // re-run per binding from a ZyzSpec; fixed gates (H, Y) trace
        // to constants, hoisting their decomposition out of the
        // per-evaluation path entirely.
        const linalg::Matrix u = circuit::gate_matrix(kind, angle);
        const EulerZYZ e = zyz_decompose(u);
        std::int32_t zyz = -1;
        if (src >= 0) {
          LoweredPlan::ZyzSpec spec;
          spec.src = src;
          spec.scale = scale;
          spec.kind = kind;
          plan.zyzs_.push_back(spec);
          zyz = static_cast<std::int32_t>(plan.zyzs_.size() - 1);
        }
        emit_zxzxz(q, e, zyz);
        return;
      }
    }
  }

  void emit_h(int q) { lower_1q(GateKind::H, q, 0.0, -1, 1.0); }

  void emit_rzz_core(int a, int b, double angle, std::int32_t src,
                     double scale) {
    emit_cx(a, b);
    emit_rz(b, angle, src >= 0 ? affine_atom(src, scale) : const_atom(angle));
    emit_cx(a, b);
  }

  void lower_2q(GateKind kind, int a, int b, double angle, std::int32_t src) {
    switch (kind) {
      case GateKind::Cx:
        emit_cx(a, b);
        return;
      case GateKind::Cz:
        emit_h(b);
        emit_cx(a, b);
        emit_h(b);
        return;
      case GateKind::Swap:
        emit_cx(a, b);
        emit_cx(b, a);
        emit_cx(a, b);
        return;
      case GateKind::Rzz:
        emit_rzz_core(a, b, angle, src, 1.0);
        return;
      case GateKind::Rxx:
        emit_h(a);
        emit_h(b);
        emit_rzz_core(a, b, angle, src, 1.0);
        emit_h(a);
        emit_h(b);
        return;
      case GateKind::Ryy:
        lower_1q(GateKind::Rx, a, kPi / 2.0, -1, 1.0);
        lower_1q(GateKind::Rx, b, kPi / 2.0, -1, 1.0);
        emit_rzz_core(a, b, angle, src, 1.0);
        lower_1q(GateKind::Rx, a, -kPi / 2.0, -1, 1.0);
        lower_1q(GateKind::Rx, b, -kPi / 2.0, -1, 1.0);
        return;
      case GateKind::Rzx:
        emit_h(b);
        emit_rzz_core(a, b, angle, src, 1.0);
        emit_h(b);
        return;
      case GateKind::Crz:
        emit_rz(b, angle / 2.0,
                src >= 0 ? affine_atom(src, 0.5) : const_atom(angle / 2.0));
        emit_cx(a, b);
        emit_rz(b, -angle / 2.0,
                src >= 0 ? affine_atom(src, -0.5)
                         : const_atom(-angle / 2.0));
        emit_cx(a, b);
        return;
      case GateKind::Crx:
        emit_h(b);
        lower_2q(GateKind::Crz, a, b, angle, src);
        emit_h(b);
        return;
      case GateKind::Cry:
        lower_1q(GateKind::Ry, b, angle / 2.0, src, 0.5);
        emit_cx(a, b);
        lower_1q(GateKind::Ry, b, -angle / 2.0, src, -0.5);
        emit_cx(a, b);
        return;
      case GateKind::Cp:
        emit_rz(a, angle / 2.0,
                src >= 0 ? affine_atom(src, 0.5) : const_atom(angle / 2.0));
        emit_rz(b, angle / 2.0,
                src >= 0 ? affine_atom(src, 0.5) : const_atom(angle / 2.0));
        emit_cx(a, b);
        emit_rz(b, -angle / 2.0,
                src >= 0 ? affine_atom(src, -0.5)
                         : const_atom(-angle / 2.0));
        emit_cx(a, b);
        return;
      default:
        throw std::logic_error("LoweredPlanBuilder: unhandled 2q kind " +
                               circuit::gate_name(kind));
    }
  }

  // ---- Optimization (mirrors optimize.cpp) --------------------------------

  void merge_rz_pass() {
    std::vector<WOp> out;
    out.reserve(stream.size());
    for (auto& op : stream) {
      if (op.kind == GateKind::Rz && !out.empty()) {
        const int q = op.qubits[0];
        bool merged = false;
        for (auto it = out.rbegin(); it != out.rend(); ++it) {
          bool touches = false;
          for (const int oq : it->qubits)
            if (oq == q) touches = true;
          if (!touches) continue;
          if (it->kind == GateKind::Rz) {
            it->angle += op.angle;
            record_merge(it->id, op.id);
            merged = true;
          }
          break;
        }
        if (merged) continue;
      }
      out.push_back(std::move(op));
    }
    std::vector<WOp> cleaned;
    cleaned.reserve(out.size());
    for (auto& op : out) {
      if (op.kind == GateKind::Rz) {
        const bool zero = angle_is_zero(op.angle);
        record_test(op.id, zero);
        if (zero) continue;
      }
      cleaned.push_back(std::move(op));
    }
    stream = std::move(cleaned);
  }

  void cancel_cx_pass() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (stream[i].kind != GateKind::Cx) continue;
        const int control = stream[i].qubits[0];
        const int target = stream[i].qubits[1];
        for (std::size_t j = i + 1; j < stream.size(); ++j) {
          const auto& next = stream[j];
          if (next.kind == GateKind::Cx && next.qubits[0] == control &&
              next.qubits[1] == target) {
            stream.erase(stream.begin() + static_cast<std::ptrdiff_t>(j));
            stream.erase(stream.begin() + static_cast<std::ptrdiff_t>(i));
            changed = true;
            break;
          }
          if (next.kind == GateKind::Rz && next.qubits[0] == control)
            continue;
          bool blocks = false;
          for (const int q : next.qubits)
            if (q == control || q == target) blocks = true;
          if (blocks) break;
        }
        if (changed) break;
      }
    }
  }

  void optimize() {
    for (;;) {
      const std::size_t before = stream.size();
      merge_rz_pass();
      cancel_cx_pass();
      if (stream.size() >= before) return;
    }
  }
};

// ---------------------------------------------------------------------------
// LoweredPlan
// ---------------------------------------------------------------------------

LoweredPlan::LoweredPlan(const RoutedTemplate& t,
                         std::span<const double> source_angles,
                         int n_device_qubits,
                         std::vector<BoundOp>* bound_out) {
  LoweredPlanBuilder b(*this);
  for (const auto& op : t.ops) {
    const double angle =
        op.src >= 0 ? source_angles[static_cast<std::size_t>(op.src)] : 0.0;
    if (circuit::gate_arity(op.kind) == 1)
      b.lower_1q(op.kind, op.qubits[0], angle, op.src, 1.0);
    else
      b.lower_2q(op.kind, op.qubits[0], op.qubits[1], angle, op.src);
  }
  b.optimize();

  ops_.reserve(b.stream.size());
  std::vector<BoundOp> bound;
  bound.reserve(b.stream.size());
  for (auto& op : b.stream) {
    bound.push_back(BoundOp{op.kind, op.qubits, op.angle});
    TOp top;
    top.kind = op.kind;
    top.qubits = std::move(op.qubits);
    top.id = op.id;
    ops_.push_back(std::move(top));
  }
  stats_ = compute_stats(bound, n_device_qubits);
  // The stream just built IS this binding's result; hand it to the
  // caller so a cache miss does not pay a redundant replay.
  if (bound_out != nullptr) *bound_out = std::move(bound);
}

bool LoweredPlan::substitute(std::span<const double> source_angles,
                             std::vector<BoundOp>& out) const {
  // Re-run the recorded ZYZ decompositions for this binding (one per
  // parameterised Rx/Ry-family gate instance; the fixed-gate
  // decompositions traced to constants and cost nothing here).
  std::vector<EulerZYZ> es(zyzs_.size());
  for (std::size_t i = 0; i < zyzs_.size(); ++i) {
    const auto& z = zyzs_[i];
    const double in =
        z.scale * source_angles[static_cast<std::size_t>(z.src)];
    es[i] = zyz_decompose(circuit::gate_matrix(z.kind, in));
  }

  std::vector<double> vals(atoms_.size());
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    const Atom& a = atoms_[i];
    switch (a.kind) {
      case Atom::Kind::Const:
        vals[i] = a.value;
        break;
      case Atom::Kind::Affine:
        vals[i] = a.scale * source_angles[static_cast<std::size_t>(a.src)];
        break;
      case Atom::Kind::Zyz:
        vals[i] = zyz_slot_value(es[static_cast<std::size_t>(a.zyz)], a.slot);
        break;
    }
  }

  for (const Event& ev : events_) {
    if (ev.kind == Event::Kind::MergeAdd) {
      vals[static_cast<std::size_t>(ev.dst)] +=
          vals[static_cast<std::size_t>(ev.src)];
    } else if (angle_is_zero(vals[static_cast<std::size_t>(ev.dst)]) !=
               ev.expected) {
      return false;  // structure decision flipped: caller re-traces
    }
  }

  out.clear();
  out.reserve(ops_.size());
  for (const TOp& top : ops_)
    out.push_back(BoundOp{
        top.kind, top.qubits,
        top.id >= 0 ? vals[static_cast<std::size_t>(top.id)] : 0.0});
  return true;
}

// ---------------------------------------------------------------------------
// RoutedProgram
// ---------------------------------------------------------------------------

Transpiled RoutedProgram::transpile(
    std::span<const double> source_angles) const {
  // Packed zero-angle bitmask of the binding: the cache key. Angle-free
  // source ops resolve to 0.0 and contribute a constant bit.
  std::string key((source_angles.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < source_angles.size(); ++i)
    if (angle_is_zero(source_angles[i]))
      key[i / 8] = static_cast<char>(key[i / 8] | (1 << (i % 8)));

  std::shared_ptr<const LoweredPlan> plan;
  {
    const common::MutexLock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) plan = it->second;
  }

  Transpiled out;
  out.final_layout = tmpl_.final_layout;
  out.n_swaps_inserted = tmpl_.n_swaps_inserted;
  if (plan != nullptr && plan->substitute(source_angles, out.ops)) {
    QOC_METRIC_COUNTER_ADD("qoc_pattern_cache_hits_total", 1);
    out.stats = plan->stats();
    return out;
  }
  // Plain miss and replay-failed decision flip both count as misses:
  // either way this binding pays a fresh lowering trace.
  QOC_METRIC_COUNTER_ADD("qoc_pattern_cache_misses_total", 1);

  // Miss, or a decision flipped within the pattern (e.g. merged
  // rotations cancelling for this binding only): trace fresh, taking
  // the bound stream straight from the trace. Insert-or-overwrite: a
  // cached plan that failed replay was traced from a structurally
  // atypical binding (the flip case above), and keeping it would make
  // every future evaluation of this pattern pay failed replay + fresh
  // trace forever.
  auto fresh = std::make_shared<const LoweredPlan>(
      tmpl_, source_angles, n_device_qubits_, &out.ops);
  out.stats = fresh->stats();
  {
    const common::MutexLock lock(mutex_);
    if (cache_.size() >= kPatternCacheCap) cache_.clear();
    cache_[std::move(key)] = std::move(fresh);
  }
  return out;
}

std::size_t RoutedProgram::cached_patterns() const {
  const common::MutexLock lock(mutex_);
  return cache_.size();
}

}  // namespace qoc::transpile
