#include "qoc/transpile/optimize.hpp"

#include <cmath>

namespace qoc::transpile {

using circuit::GateKind;

bool rz_angle_is_zero(double a) {
  const double two_pi = 2.0 * linalg::kPi;
  double m = std::fmod(a, two_pi);
  if (m < 0) m += two_pi;
  return m < 1e-12 || two_pi - m < 1e-12;
}

std::vector<BoundOp> merge_rz(const std::vector<BoundOp>& ops) {
  std::vector<BoundOp> out;
  out.reserve(ops.size());
  for (const auto& op : ops) {
    if (op.kind == GateKind::Rz && !out.empty()) {
      // Walk back past ops on other qubits? No -- only merge if the
      // immediately preceding op on this qubit's timeline is also RZ.
      // Scan back while intervening ops do not touch this qubit.
      const int q = op.qubits[0];
      bool merged = false;
      for (auto it = out.rbegin(); it != out.rend(); ++it) {
        bool touches = false;
        for (const int oq : it->qubits)
          if (oq == q) touches = true;
        if (!touches) continue;
        if (it->kind == GateKind::Rz) {
          it->angle += op.angle;
          merged = true;
        }
        break;
      }
      if (merged) continue;
    }
    out.push_back(op);
  }
  // Drop zero rotations.
  std::vector<BoundOp> cleaned;
  cleaned.reserve(out.size());
  for (const auto& op : out)
    if (!(op.kind == GateKind::Rz && rz_angle_is_zero(op.angle)))
      cleaned.push_back(op);
  return cleaned;
}

std::vector<BoundOp> cancel_cx(const std::vector<BoundOp>& ops) {
  std::vector<BoundOp> out = ops;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].kind != GateKind::Cx) continue;
      const int control = out[i].qubits[0];
      const int target = out[i].qubits[1];
      // Scan forward for the partner CX; RZ on the control commutes.
      for (std::size_t j = i + 1; j < out.size(); ++j) {
        const auto& next = out[j];
        if (next.kind == GateKind::Cx && next.qubits[0] == control &&
            next.qubits[1] == target) {
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(j));
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          break;
        }
        // RZ on the control commutes with CX (both diagonal on control).
        if (next.kind == GateKind::Rz && next.qubits[0] == control) continue;
        // Anything else touching either qubit blocks cancellation.
        bool blocks = false;
        for (const int q : next.qubits)
          if (q == control || q == target) blocks = true;
        if (blocks) break;
      }
      if (changed) break;
    }
  }
  return out;
}

std::vector<BoundOp> optimize(const std::vector<BoundOp>& ops) {
  std::vector<BoundOp> cur = ops;
  for (;;) {
    const std::size_t before = cur.size();
    cur = merge_rz(cur);
    cur = cancel_cx(cur);
    if (cur.size() >= before) return cur;
  }
}

}  // namespace qoc::transpile
