#include "qoc/transpile/transpile.hpp"

#include "qoc/transpile/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "qoc/sim/gates.hpp"

namespace qoc::transpile {

using circuit::GateKind;
using linalg::cplx;
using linalg::kPi;
using linalg::Matrix;

std::vector<BoundOp> bind_circuit(const circuit::Circuit& c,
                                  std::span<const double> theta,
                                  std::span<const double> input) {
  std::vector<BoundOp> out;
  out.reserve(c.num_ops());
  for (const auto& op : c.ops()) {
    out.push_back(BoundOp{op.kind, op.qubits,
                          circuit::resolve_angle(op.param, theta, input)});
  }
  return out;
}

EulerZYZ zyz_decompose(const Matrix& u) {
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("zyz_decompose: matrix must be 2x2");
  // Normalise to SU(2): divide by sqrt(det).
  const cplx det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  const double det_abs = std::abs(det);
  if (det_abs < 1e-12)
    throw std::invalid_argument("zyz_decompose: singular matrix");
  const cplx sqrt_det = std::sqrt(det);
  const cplx a = u(0, 0) / sqrt_det;
  const cplx c = u(1, 0) / sqrt_det;

  EulerZYZ e;
  e.phase = std::arg(sqrt_det);
  const double ca = std::abs(a);
  const double cc = std::abs(c);
  e.theta = 2.0 * std::atan2(cc, ca);

  // a = e^{-i(phi+lambda)/2} cos(theta/2); c = e^{i(phi-lambda)/2} sin(..).
  if (cc < 1e-12) {
    // Diagonal: only phi + lambda is determined; put it all in lambda.
    e.phi = 0.0;
    e.lambda = -2.0 * std::arg(a);
  } else if (ca < 1e-12) {
    // Anti-diagonal: only phi - lambda is determined.
    e.phi = 2.0 * std::arg(c);
    e.lambda = 0.0;
  } else {
    const double arg_a = std::arg(a);
    const double arg_c = std::arg(c);
    e.phi = arg_c - arg_a;
    e.lambda = -arg_a - arg_c;
  }
  return e;
}

namespace {

// The canonical zero test shared with merge_rz and the RoutedProgram
// replay (see optimize.hpp).
bool angle_is_zero(double a) { return rz_angle_is_zero(a); }

void emit_rz(std::vector<BoundOp>& out, int q, double angle) {
  if (!angle_is_zero(angle)) out.push_back({GateKind::Rz, {q}, angle});
}

void emit_sx(std::vector<BoundOp>& out, int q) {
  out.push_back({GateKind::Sx, {q}, 0.0});
}

/// Emit RZ(lambda+pi) SX RZ(pi-theta) SX RZ(phi): the ZXZXZ realisation of
/// Rz(phi) Ry(theta) Rz(lambda), verified against gate matrices in tests.
void emit_zxzxz(std::vector<BoundOp>& out, int q, const EulerZYZ& e) {
  if (angle_is_zero(e.theta)) {
    // Pure Z rotation; a single virtual RZ.
    emit_rz(out, q, e.phi + e.lambda);
    return;
  }
  emit_rz(out, q, e.lambda + kPi);
  emit_sx(out, q);
  emit_rz(out, q, kPi - e.theta);
  emit_sx(out, q);
  emit_rz(out, q, e.phi);
}

void lower_1q(std::vector<BoundOp>& out, const BoundOp& op) {
  switch (op.kind) {
    case GateKind::I:
      return;
    case GateKind::X:
      out.push_back({GateKind::X, op.qubits, 0.0});
      return;
    case GateKind::Sx:
      emit_sx(out, op.qubits[0]);
      return;
    case GateKind::Rz:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Phase: {
      // All diagonal gates are virtual RZ up to global phase.
      double angle = op.angle;
      switch (op.kind) {
        case GateKind::Z: angle = kPi; break;
        case GateKind::S: angle = kPi / 2.0; break;
        case GateKind::Sdg: angle = -kPi / 2.0; break;
        case GateKind::T: angle = kPi / 4.0; break;
        case GateKind::Tdg: angle = -kPi / 4.0; break;
        default: break;  // Rz / Phase keep op.angle
      }
      emit_rz(out, op.qubits[0], angle);
      return;
    }
    default: {
      // Generic path: take the unitary, ZYZ-decompose, emit ZXZXZ.
      const Matrix u = circuit::gate_matrix(op.kind, op.angle);
      emit_zxzxz(out, op.qubits[0], zyz_decompose(u));
      return;
    }
  }
}

void emit_cx(std::vector<BoundOp>& out, int control, int target) {
  out.push_back({GateKind::Cx, {control, target}, 0.0});
}

void emit_h(std::vector<BoundOp>& out, int q) {
  lower_1q(out, {GateKind::H, {q}, 0.0});
}

/// CX a b ; RZ(angle) b ; CX a b == RZZ(angle) on (a, b).
void emit_rzz_core(std::vector<BoundOp>& out, int a, int b, double angle) {
  emit_cx(out, a, b);
  emit_rz(out, b, angle);
  emit_cx(out, a, b);
}

void lower_2q(std::vector<BoundOp>& out, const BoundOp& op) {
  const int a = op.qubits[0];
  const int b = op.qubits[1];
  switch (op.kind) {
    case GateKind::Cx:
      emit_cx(out, a, b);
      return;
    case GateKind::Cz:
      // CZ = (I x H) CX (I x H)
      emit_h(out, b);
      emit_cx(out, a, b);
      emit_h(out, b);
      return;
    case GateKind::Swap:
      emit_cx(out, a, b);
      emit_cx(out, b, a);
      emit_cx(out, a, b);
      return;
    case GateKind::Rzz:
      emit_rzz_core(out, a, b, op.angle);
      return;
    case GateKind::Rxx:
      // XX = (H x H) ZZ (H x H)
      emit_h(out, a);
      emit_h(out, b);
      emit_rzz_core(out, a, b, op.angle);
      emit_h(out, a);
      emit_h(out, b);
      return;
    case GateKind::Ryy:
      // YY = (S x S) XX (Sdg x Sdg), and conjugation is applied outside-in:
      // RYY(t) = (Sdg x Sdg)? -- emitted as Sdg, H sandwich; verified in
      // tests: RYY(t) = (S H x S H)? Use Rx basis change instead:
      // Y = Rx(pi/2) Z Rx(-pi/2)  =>  RYY = (Rx(pi/2) x Rx(pi/2)) RZZ (...)
      lower_1q(out, {GateKind::Rx, {a}, kPi / 2.0});
      lower_1q(out, {GateKind::Rx, {b}, kPi / 2.0});
      emit_rzz_core(out, a, b, op.angle);
      lower_1q(out, {GateKind::Rx, {a}, -kPi / 2.0});
      lower_1q(out, {GateKind::Rx, {b}, -kPi / 2.0});
      return;
    case GateKind::Rzx:
      // ZX = (I x H) ZZ (I x H)
      emit_h(out, b);
      emit_rzz_core(out, a, b, op.angle);
      emit_h(out, b);
      return;
    case GateKind::Crz:
      // CRZ(t) = RZ(t/2) target ; CX ; RZ(-t/2) target ; CX.
      emit_rz(out, b, op.angle / 2.0);
      emit_cx(out, a, b);
      emit_rz(out, b, -op.angle / 2.0);
      emit_cx(out, a, b);
      return;
    case GateKind::Crx:
      // CRX = (I x H) CRZ (I x H).
      emit_h(out, b);
      lower_2q(out, {GateKind::Crz, op.qubits, op.angle});
      emit_h(out, b);
      return;
    case GateKind::Cry:
      // CRY(t) = RY(t/2) ; CX ; RY(-t/2) ; CX  (ABC decomposition).
      lower_1q(out, {GateKind::Ry, {b}, op.angle / 2.0});
      emit_cx(out, a, b);
      lower_1q(out, {GateKind::Ry, {b}, -op.angle / 2.0});
      emit_cx(out, a, b);
      return;
    case GateKind::Cp:
      // CP(l) = RZ(l/2) c ; RZ(l/2) t ; CX ; RZ(-l/2) t ; CX (up to phase).
      emit_rz(out, a, op.angle / 2.0);
      emit_rz(out, b, op.angle / 2.0);
      emit_cx(out, a, b);
      emit_rz(out, b, -op.angle / 2.0);
      emit_cx(out, a, b);
      return;
    default:
      throw std::logic_error("lower_2q: unhandled kind " +
                             circuit::gate_name(op.kind));
  }
}

}  // namespace

std::vector<BoundOp> decompose_multiqubit(const std::vector<BoundOp>& ops) {
  std::vector<BoundOp> out;
  out.reserve(ops.size());
  for (const auto& op : ops) {
    if (op.kind != GateKind::Ccx) {
      out.push_back(op);
      continue;
    }
    const int a = op.qubits[0];
    const int b = op.qubits[1];
    const int c = op.qubits[2];
    // Textbook Toffoli network (Nielsen & Chuang fig. 4.9).
    out.push_back({GateKind::H, {c}, 0.0});
    out.push_back({GateKind::Cx, {b, c}, 0.0});
    out.push_back({GateKind::Tdg, {c}, 0.0});
    out.push_back({GateKind::Cx, {a, c}, 0.0});
    out.push_back({GateKind::T, {c}, 0.0});
    out.push_back({GateKind::Cx, {b, c}, 0.0});
    out.push_back({GateKind::Tdg, {c}, 0.0});
    out.push_back({GateKind::Cx, {a, c}, 0.0});
    out.push_back({GateKind::T, {b}, 0.0});
    out.push_back({GateKind::T, {c}, 0.0});
    out.push_back({GateKind::H, {c}, 0.0});
    out.push_back({GateKind::Cx, {a, b}, 0.0});
    out.push_back({GateKind::T, {a}, 0.0});
    out.push_back({GateKind::Tdg, {b}, 0.0});
    out.push_back({GateKind::Cx, {a, b}, 0.0});
  }
  return out;
}

std::vector<BoundOp> lower_to_basis(const std::vector<BoundOp>& ops) {
  std::vector<BoundOp> out;
  out.reserve(ops.size() * 3);
  for (const auto& op : ops) {
    if (circuit::gate_arity(op.kind) == 1)
      lower_1q(out, op);
    else
      lower_2q(out, op);
  }
  return out;
}

RoutingResult route(const std::vector<BoundOp>& ops, int n_logical,
                    const noise::DeviceModel& device) {
  if (n_logical > device.n_qubits)
    throw std::invalid_argument("route: circuit larger than device");

  // layout[l] = physical position of logical qubit l.
  std::vector<int> layout(n_logical);
  std::iota(layout.begin(), layout.end(), 0);

  RoutingResult result;
  result.ops.reserve(ops.size());

  // inverse map: phys2log[p] = logical qubit at physical p (-1 if free).
  std::vector<int> phys2log(device.n_qubits, -1);
  for (int l = 0; l < n_logical; ++l) phys2log[layout[l]] = l;

  auto swap_physical = [&](int pa, int pb) {
    result.ops.push_back({GateKind::Swap, {pa, pb}, 0.0});
    ++result.n_swaps_inserted;
    const int la = phys2log[pa];
    const int lb = phys2log[pb];
    phys2log[pa] = lb;
    phys2log[pb] = la;
    if (la >= 0) layout[la] = pb;
    if (lb >= 0) layout[lb] = pa;
  };

  for (const auto& op : ops) {
    if (circuit::gate_arity(op.kind) > 2)
      throw std::invalid_argument(
          "route: run decompose_multiqubit before routing");
    if (circuit::gate_arity(op.kind) == 1) {
      result.ops.push_back({op.kind, {layout[op.qubits[0]]}, op.angle});
      continue;
    }
    int pa = layout[op.qubits[0]];
    int pb = layout[op.qubits[1]];
    if (!device.connected(pa, pb)) {
      const auto path = device.shortest_path(pa, pb);
      if (path.empty())
        throw std::runtime_error("route: disconnected coupling map");
      // Walk qubit A along the path until adjacent to B.
      for (std::size_t i = 0; i + 2 < path.size(); ++i)
        swap_physical(path[i], path[i + 1]);
      pa = layout[op.qubits[0]];
      pb = layout[op.qubits[1]];
    }
    result.ops.push_back({op.kind, {pa, pb}, op.angle});
  }
  result.final_layout = std::move(layout);
  return result;
}

TranspileStats compute_stats(const std::vector<BoundOp>& ops, int n_qubits) {
  TranspileStats s;
  std::vector<std::size_t> frontier(static_cast<std::size_t>(n_qubits), 0);
  for (const auto& op : ops) {
    switch (op.kind) {
      case GateKind::Rz: ++s.n_rz; break;
      case GateKind::Sx: ++s.n_sx; break;
      case GateKind::X: ++s.n_x; break;
      case GateKind::Cx: ++s.n_cx; break;
      default: ++s.n_other; break;
    }
    // Depth ignores virtual RZ (zero duration on hardware).
    if (op.kind == GateKind::Rz) continue;
    std::size_t t = 0;
    for (int q : op.qubits) t = std::max(t, frontier[q]);
    ++t;
    for (int q : op.qubits) frontier[q] = t;
  }
  if (!frontier.empty())
    s.depth = *std::max_element(frontier.begin(), frontier.end());
  return s;
}

Transpiled transpile(const circuit::Circuit& c, std::span<const double> theta,
                     std::span<const double> input,
                     const noise::DeviceModel& device) {
  const auto bound = decompose_multiqubit(bind_circuit(c, theta, input));
  auto routed = route(bound, c.num_qubits(), device);
  Transpiled t;
  t.ops = optimize(lower_to_basis(routed.ops));
  t.final_layout = std::move(routed.final_layout);
  t.n_swaps_inserted = routed.n_swaps_inserted;
  t.stats = compute_stats(t.ops, device.n_qubits);
  return t;
}

RoutedTemplate route_template(const circuit::Circuit& c,
                              const noise::DeviceModel& device) {
  // Run the normal decompose + route pipeline with each parameterised
  // op's angle field carrying its source-op index instead of a bound
  // value. Neither pass creates parameterised ops or reads angles, so the
  // tags survive routing verbatim.
  std::vector<BoundOp> tagged;
  tagged.reserve(c.num_ops());
  for (std::size_t i = 0; i < c.num_ops(); ++i) {
    const auto& op = c.op(i);
    const double tag = circuit::gate_is_parameterised(op.kind)
                           ? static_cast<double>(i)
                           : 0.0;
    tagged.push_back(BoundOp{op.kind, op.qubits, tag});
  }
  auto routed = route(decompose_multiqubit(tagged), c.num_qubits(), device);

  RoutedTemplate t;
  t.ops.reserve(routed.ops.size());
  for (auto& op : routed.ops) {
    RoutedTemplate::TOp top;
    top.kind = op.kind;
    top.qubits = std::move(op.qubits);
    if (circuit::gate_is_parameterised(op.kind))
      top.src = static_cast<std::int32_t>(op.angle);
    t.ops.push_back(std::move(top));
  }
  t.final_layout = std::move(routed.final_layout);
  t.n_swaps_inserted = routed.n_swaps_inserted;
  t.n_logical = c.num_qubits();
  return t;
}

Transpiled transpile_with_angles(const RoutedTemplate& t,
                                 std::span<const double> source_angles,
                                 const noise::DeviceModel& device) {
  std::vector<BoundOp> bound;
  bound.reserve(t.ops.size());
  for (const auto& op : t.ops) {
    const double angle =
        op.src >= 0 ? source_angles[static_cast<std::size_t>(op.src)] : 0.0;
    bound.push_back(BoundOp{op.kind, op.qubits, angle});
  }
  Transpiled out;
  out.ops = optimize(lower_to_basis(bound));
  out.final_layout = t.final_layout;
  out.n_swaps_inserted = t.n_swaps_inserted;
  out.stats = compute_stats(out.ops, device.n_qubits);
  return out;
}

double estimated_success_probability(const Transpiled& t,
                                     const noise::DeviceModel& device) {
  double p = 1.0;
  for (std::size_t i = 0; i < t.stats.physical_1q(); ++i)
    p *= 1.0 - device.err_1q;
  for (std::size_t i = 0; i < t.stats.n_cx; ++i) p *= 1.0 - device.err_2q;
  for (int l : t.final_layout) {
    const auto& cal = device.qubits[static_cast<std::size_t>(l)];
    p *= 1.0 - 0.5 * (cal.readout_err_0to1 + cal.readout_err_1to0);
  }
  return p;
}

double estimated_duration_s(const Transpiled& t,
                            const noise::DeviceModel& device) {
  return static_cast<double>(t.stats.physical_1q()) * device.gate_time_1q_s +
         static_cast<double>(t.stats.n_cx) * device.gate_time_2q_s +
         device.readout_time_s;
}

}  // namespace qoc::transpile
