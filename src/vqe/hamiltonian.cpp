#include "qoc/vqe/hamiltonian.hpp"

#include <stdexcept>

#include "qoc/linalg/eigen.hpp"
#include "qoc/sim/gates.hpp"

namespace qoc::vqe {

namespace {

int pauli_index(char c) {
  switch (c) {
    case 'I': return 0;
    case 'X': return 1;
    case 'Y': return 2;
    case 'Z': return 3;
    default:
      throw std::invalid_argument(std::string("Hamiltonian: bad Pauli '") +
                                  c + "'");
  }
}

}  // namespace

Hamiltonian::Hamiltonian(int n_qubits, std::vector<PauliTerm> terms)
    : n_qubits_(n_qubits), terms_(std::move(terms)) {
  if (n_qubits < 1 || n_qubits > 10)
    throw std::invalid_argument("Hamiltonian: n_qubits out of [1,10]");
  for (const auto& t : terms_) {
    if (static_cast<int>(t.paulis.size()) != n_qubits)
      throw std::invalid_argument(
          "Hamiltonian: term length must equal n_qubits");
    for (const char c : t.paulis) pauli_index(c);  // validates
  }
}

double Hamiltonian::term_expectation(const sim::Statevector& psi,
                                     const PauliTerm& term) const {
  if (psi.num_qubits() != n_qubits_)
    throw std::invalid_argument("Hamiltonian: state size mismatch");
  sim::Statevector scratch = psi;
  for (int q = 0; q < n_qubits_; ++q) {
    switch (term.paulis[static_cast<std::size_t>(q)]) {
      case 'X': scratch.apply_pauli_x(q); break;
      case 'Y': scratch.apply_pauli_y(q); break;
      case 'Z': scratch.apply_pauli_z(q); break;
      default: break;
    }
  }
  // <psi | P psi> is real for Hermitian P.
  double acc = 0.0;
  const auto& a = psi.amplitudes();
  const auto& b = scratch.amplitudes();
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += (std::conj(a[i]) * b[i]).real();
  return acc;
}

double Hamiltonian::expectation(const sim::Statevector& psi) const {
  double e = 0.0;
  for (const auto& t : terms_) e += t.coeff * term_expectation(psi, t);
  return e;
}

linalg::Matrix Hamiltonian::to_matrix() const {
  const std::size_t dim = std::size_t{1} << n_qubits_;
  linalg::Matrix h(dim, dim);
  for (const auto& t : terms_) {
    std::vector<linalg::Matrix> factors;
    factors.reserve(static_cast<std::size_t>(n_qubits_));
    for (const char c : t.paulis)
      factors.push_back(sim::pauli(pauli_index(c)));
    h += linalg::kron_all(factors) * linalg::cplx{t.coeff, 0.0};
  }
  return h;
}

double Hamiltonian::exact_ground_energy() const {
  return linalg::hermitian_min_eigenvalue(to_matrix());
}

exec::CompiledObservable compile_observable(const Hamiltonian& hamiltonian) {
  std::vector<exec::ObservableTerm> terms;
  terms.reserve(hamiltonian.terms().size());
  for (const auto& t : hamiltonian.terms()) terms.push_back({t.paulis, t.coeff});
  return exec::CompiledObservable::compile(hamiltonian.num_qubits(), terms);
}

Hamiltonian Hamiltonian::h2_minimal() {
  // O'Malley et al., PRX 6, 031007 (2016), R = 0.75 Angstrom (tapered to
  // 2 qubits; energies in Hartree).
  return Hamiltonian(2, {{"II", -0.4804},
                         {"ZI", +0.3435},
                         {"IZ", -0.4347},
                         {"ZZ", +0.5716},
                         {"XX", +0.0910},
                         {"YY", +0.0910}});
}

Hamiltonian Hamiltonian::transverse_ising(int n_qubits, double j, double h) {
  std::vector<PauliTerm> terms;
  for (int q = 0; q + 1 < n_qubits; ++q) {
    std::string p(static_cast<std::size_t>(n_qubits), 'I');
    p[static_cast<std::size_t>(q)] = 'Z';
    p[static_cast<std::size_t>(q + 1)] = 'Z';
    terms.push_back({p, -j});
  }
  for (int q = 0; q < n_qubits; ++q) {
    std::string p(static_cast<std::size_t>(n_qubits), 'I');
    p[static_cast<std::size_t>(q)] = 'X';
    terms.push_back({p, -h});
  }
  return Hamiltonian(n_qubits, std::move(terms));
}

Hamiltonian Hamiltonian::heisenberg(int n_qubits, double j) {
  std::vector<PauliTerm> terms;
  for (int q = 0; q + 1 < n_qubits; ++q)
    for (const char pauli : {'X', 'Y', 'Z'}) {
      std::string p(static_cast<std::size_t>(n_qubits), 'I');
      p[static_cast<std::size_t>(q)] = pauli;
      p[static_cast<std::size_t>(q + 1)] = pauli;
      terms.push_back({p, j});
    }
  return Hamiltonian(n_qubits, std::move(terms));
}

}  // namespace qoc::vqe
