#include "qoc/vqe/vqe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qoc/circuit/layers.hpp"
#include "qoc/common/parallel.hpp"

namespace qoc::vqe {

namespace {
constexpr double kHalfPi = 1.5707963267948966;
}

EnergyEstimator::EnergyEstimator(Hamiltonian hamiltonian,
                                 EstimatorOptions options)
    : hamiltonian_(std::move(hamiltonian)), options_(options),
      rng_(options.seed), observable_(compile_observable(hamiltonian_)) {
  if (options_.shots < 0)
    throw std::invalid_argument("EnergyEstimator: shots < 0");
  if (options_.gate_noise < 0.0 || options_.gate_noise > 1.0)
    throw std::invalid_argument("EnergyEstimator: gate_noise out of [0,1]");
}

void EnergyEstimator::ensure_compiled(const circuit::Circuit& ansatz) {
  if (ansatz.num_qubits() != hamiltonian_.num_qubits())
    throw std::invalid_argument("EnergyEstimator: qubit count mismatch");
  if (plan_ && plan_->structure_hash() == exec::structure_hash(ansatz) &&
      exec::structure_equal(ansatz, plan_->source()))
    return;
  plan_ = exec::CompiledCircuit::compile(ansatz);
}

/// Chunk-level scratch: one set of buffers per worker chunk instead of
/// per evaluation (matches the backends' execute_batch pattern).
struct EnergyEstimator::Scratch {
  explicit Scratch(int n_qubits) : psi(n_qubits), meas(n_qubits) {}
  std::vector<double> angles;
  sim::Statevector psi;   // prepared ansatz state
  sim::Statevector meas;  // per-group measurement copy
};

void EnergyEstimator::prepare_noisy(std::span<const double> angles, Prng& rng,
                                    sim::Statevector& sv) const {
  const circuit::Circuit& src = plan_->source();
  sv.reset();
  for (std::size_t i = 0; i < src.num_ops(); ++i) {
    const auto& op = src.op(i);
    sv.apply_matrix(circuit::gate_matrix(op.kind, angles[i]), op.qubits);
    // One depolarizing event per touched qubit per gate.
    for (const int q : op.qubits) {
      const double u = rng.uniform();
      if (u < 0.75 * options_.gate_noise) {
        const int which = static_cast<int>(u / (0.25 * options_.gate_noise));
        if (which == 0) sv.apply_pauli_x(q);
        else if (which == 1) sv.apply_pauli_y(q);
        else sv.apply_pauli_z(q);
      }
    }
  }
}

double EnergyEstimator::energy_one(const exec::Evaluation& e, Prng& rng,
                                   Scratch& scratch) const {
  const bool noisy = options_.gate_noise > 0.0;

  if (!noisy && options_.shots == 0) {
    // Exact path: one compiled state preparation, all terms analytic.
    // CompiledObservable::expectation replays Hamiltonian::expectation's
    // per-term loop bit-for-bit.
    plan_->resolve_slots(e.theta, e.input, e.shift_op, e.shift,
                         scratch.angles);
    scratch.psi.reset();
    plan_->apply(scratch.psi, scratch.angles);
    return observable_.expectation(scratch.psi);
  }

  // Measured path: one execution per commuting group (distinct
  // measurement basis). Noise-free states are prepared once and copied
  // per group; with gate noise every group execution prepares a fresh
  // stochastic state, exactly as a hardware pipeline would.
  double total = observable_.constant();
  if (noisy) {
    plan_->resolve_source_angles(e.theta, e.input, e.shift_op, e.shift,
                                 scratch.angles);
  } else {
    plan_->resolve_slots(e.theta, e.input, e.shift_op, e.shift,
                         scratch.angles);
    scratch.psi.reset();
    plan_->apply(scratch.psi, scratch.angles);
  }

  for (std::size_t g = 0; g < observable_.groups().size(); ++g) {
    // All-Z groups have no suffix, so the shared noise-free state can be
    // measured directly instead of paying an O(2^n) copy.
    const sim::Statevector* meas = &scratch.psi;
    if (noisy) {
      prepare_noisy(scratch.angles, rng, scratch.meas);
      observable_.apply_suffix(scratch.meas, g);
      meas = &scratch.meas;
    } else if (!observable_.groups()[g].suffix.empty()) {
      scratch.meas = scratch.psi;
      observable_.apply_suffix(scratch.meas, g);
      meas = &scratch.meas;
    }
    if (options_.shots == 0) {
      // Noise without shot sampling: exact Z-product expectations.
      total += observable_.group_energy_exact(*meas, g);
    } else {
      const auto samples = meas->sample(options_.shots, rng);
      total +=
          observable_.group_energy_from_samples(samples, g, options_.shots);
    }
  }
  return total;
}

double EnergyEstimator::energy(const circuit::Circuit& ansatz,
                               std::span<const double> theta) {
  const exec::Evaluation eval{theta, {}, exec::Evaluation::kNoShift, 0.0};
  return energies(ansatz, std::span<const exec::Evaluation>(&eval, 1), 1)[0];
}

std::vector<double> EnergyEstimator::energies(
    const circuit::Circuit& ansatz, std::span<const exec::Evaluation> evals,
    unsigned threads) {
  ensure_compiled(ansatz);

  // Per-evaluation PRNG streams, assigned in submission order exactly as
  // a sequential loop of energy() calls would draw them; each evaluation
  // then consumes its stream sequentially, so results are deterministic
  // and thread-count invariant.
  std::vector<Prng> rngs;
  rngs.reserve(evals.size());
  for (std::size_t k = 0; k < evals.size(); ++k) rngs.push_back(rng_.split());

  std::vector<double> results(evals.size());
  parallel_for_chunked(
      0, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        Scratch scratch(plan_->num_qubits());
        for (std::size_t k = lo; k < hi; ++k)
          results[k] = energy_one(evals[k], rngs[k], scratch);
      },
      threads);

  const bool exact = options_.shots == 0 && options_.gate_noise == 0.0;
  const std::uint64_t per_eval =
      exact ? 1 : static_cast<std::uint64_t>(observable_.groups().size());
  executions_ += per_eval * evals.size();
  return results;
}

VqeSolver::VqeSolver(EnergyEstimator estimator, circuit::Circuit ansatz,
                     VqeConfig config)
    : estimator_(std::move(estimator)), ansatz_(std::move(ansatz)),
      config_(config) {
  if (config_.steps < 1) throw std::invalid_argument("VqeSolver: steps < 1");
  if (ansatz_.num_trainable() < 1)
    throw std::invalid_argument("VqeSolver: ansatz has no parameters");
  for (int i = 0; i < ansatz_.num_trainable(); ++i)
    for (const std::size_t op_idx : ansatz_.ops_for_param(i))
      if (!circuit::gate_supports_parameter_shift(ansatz_.op(op_idx).kind))
        throw std::invalid_argument(
            "VqeSolver: ansatz gate does not support the shift rule");
  if (config_.use_pruning) config_.pruner.validate();
}

std::vector<double> VqeSolver::gradient(std::span<const double> theta,
                                        const std::vector<bool>& mask) {
  const int n = ansatz_.num_trainable();

  // The whole sweep -- every +-pi/2 pair of every active parameter
  // occurrence -- submitted as ONE batch against the estimator's
  // compiled ansatz: shifts are slot offsets (bit-identical to the old
  // with_op_offset circuit copies), nothing is re-lowered, and the
  // evaluations fan over the shared thread pool.
  std::vector<std::pair<int, std::size_t>> shifts;
  for (int i = 0; i < n; ++i) {
    if (!mask[static_cast<std::size_t>(i)]) continue;
    for (const std::size_t op_idx : ansatz_.ops_for_param(i))
      shifts.emplace_back(i, op_idx);
  }
  std::vector<exec::Evaluation> evals;
  evals.reserve(2 * shifts.size());
  for (const auto& [i, op_idx] : shifts) {
    evals.push_back({theta, {}, op_idx, kHalfPi});
    evals.push_back({theta, {}, op_idx, -kHalfPi});
  }
  const auto e = estimator_.energies(ansatz_, evals, config_.threads);

  std::vector<double> grad(static_cast<std::size_t>(n), 0.0);
  for (std::size_t s = 0; s < shifts.size(); ++s)
    grad[static_cast<std::size_t>(shifts[s].first)] +=
        0.5 * (e[2 * s] - e[2 * s + 1]);
  return grad;
}

VqeResult VqeSolver::run(std::vector<double> theta_init) {
  Prng rng(config_.seed);
  const int n = ansatz_.num_trainable();
  std::vector<double> theta = std::move(theta_init);
  if (theta.empty()) {
    theta.resize(static_cast<std::size_t>(n));
    for (auto& t : theta) t = rng.uniform(-0.5, 0.5);
  }
  if (static_cast<int>(theta.size()) != n)
    throw std::invalid_argument("VqeSolver::run: theta size mismatch");

  auto optimizer = train::make_optimizer(config_.optimizer, config_.lr_start);
  train::CosineScheduler scheduler(config_.lr_start, config_.lr_end,
                                   config_.steps);
  train::PrunerConfig pcfg = config_.pruner;
  if (!config_.use_pruning) {
    pcfg = train::PrunerConfig{};
    pcfg.pruning_window = 0;
  }
  train::GradientPruner pruner(n, pcfg, rng());

  VqeResult result;
  result.best_energy = std::numeric_limits<double>::infinity();
  for (int step = 1; step <= config_.steps; ++step) {
    optimizer->set_learning_rate(scheduler.at(step - 1));
    const auto mask = pruner.next_mask();
    const auto grad = gradient(theta, mask);
    pruner.observe(grad);
    optimizer->step(theta, grad, &mask);

    VqeRecord rec;
    rec.step = step;
    rec.energy = estimator_.energy(ansatz_, theta);
    rec.executions = estimator_.executions();
    result.best_energy = std::min(result.best_energy, rec.energy);
    result.history.push_back(rec);
  }
  result.energy = result.history.back().energy;
  result.theta = std::move(theta);
  result.total_executions = estimator_.executions();
  return result;
}

circuit::Circuit VqeSolver::hardware_efficient_ansatz(int n_qubits,
                                                      int depth) {
  circuit::Circuit c(n_qubits);
  for (int d = 0; d < depth; ++d) {
    circuit::add_ry_layer(c);
    circuit::add_rz_layer(c);
    circuit::add_cz_chain_layer(c);
  }
  circuit::add_ry_layer(c);  // final rotation layer
  return c;
}

}  // namespace qoc::vqe
