#include "qoc/vqe/vqe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qoc/circuit/layers.hpp"
#include "qoc/sim/gates.hpp"
#include "qoc/train/param_shift.hpp"

namespace qoc::vqe {

namespace {
constexpr double kHalfPi = 1.5707963267948966;
}

EnergyEstimator::EnergyEstimator(Hamiltonian hamiltonian,
                                 EstimatorOptions options)
    : hamiltonian_(std::move(hamiltonian)), options_(options),
      rng_(options.seed) {
  if (options_.shots < 0)
    throw std::invalid_argument("EnergyEstimator: shots < 0");
  if (options_.gate_noise < 0.0 || options_.gate_noise > 1.0)
    throw std::invalid_argument("EnergyEstimator: gate_noise out of [0,1]");
}

sim::Statevector EnergyEstimator::prepare(const circuit::Circuit& ansatz,
                                          std::span<const double> theta,
                                          Prng& rng) {
  sim::Statevector sv(ansatz.num_qubits());
  for (const auto& op : ansatz.ops()) {
    const double angle = circuit::resolve_angle(op.param, theta, {});
    sv.apply_matrix(circuit::gate_matrix(op.kind, angle), op.qubits);
    if (options_.gate_noise > 0.0) {
      // One depolarizing event per touched qubit per gate.
      for (const int q : op.qubits) {
        const double u = rng.uniform();
        if (u < 0.75 * options_.gate_noise) {
          const int which = static_cast<int>(u / (0.25 * options_.gate_noise));
          if (which == 0) sv.apply_pauli_x(q);
          else if (which == 1) sv.apply_pauli_y(q);
          else sv.apply_pauli_z(q);
        }
      }
    }
  }
  return sv;
}

double EnergyEstimator::energy(const circuit::Circuit& ansatz,
                               std::span<const double> theta) {
  if (ansatz.num_qubits() != hamiltonian_.num_qubits())
    throw std::invalid_argument("EnergyEstimator: qubit count mismatch");

  if (options_.shots == 0 && options_.gate_noise == 0.0) {
    // Exact path: one state preparation, all terms analytically.
    Prng rng = rng_.split();
    const sim::Statevector psi = prepare(ansatz, theta, rng);
    ++executions_;
    return hamiltonian_.expectation(psi);
  }

  // Sampled path: one execution per term (distinct measurement basis).
  double total = 0.0;
  for (const auto& term : hamiltonian_.terms()) {
    bool is_identity = true;
    for (const char c : term.paulis)
      if (c != 'I') is_identity = false;
    if (is_identity) {
      total += term.coeff;
      continue;
    }
    Prng rng = rng_.split();
    sim::Statevector psi = prepare(ansatz, theta, rng);
    ++executions_;

    // Basis change: X -> H, Y -> Sdg then H, so measuring Z gives the term.
    for (int q = 0; q < hamiltonian_.num_qubits(); ++q) {
      const char c = term.paulis[static_cast<std::size_t>(q)];
      if (c == 'X') {
        psi.apply_1q(sim::gate_h(), q);
      } else if (c == 'Y') {
        psi.apply_1q(sim::gate_sdg(), q);
        psi.apply_1q(sim::gate_h(), q);
      }
    }
    if (options_.shots == 0) {
      // Noise without shot sampling: exact Z-product expectation.
      PauliTerm zterm = term;
      for (auto& c : zterm.paulis)
        if (c != 'I') c = 'Z';
      total += term.coeff * hamiltonian_.term_expectation(psi, zterm);
      continue;
    }

    const int n = hamiltonian_.num_qubits();
    const auto samples = psi.sample(options_.shots, rng);
    double parity_sum = 0.0;
    for (const auto s : samples) {
      int parity = 0;
      for (int q = 0; q < n; ++q) {
        if (term.paulis[static_cast<std::size_t>(q)] == 'I') continue;
        parity ^= static_cast<int>((s >> (n - 1 - q)) & 1ULL);
      }
      parity_sum += parity ? -1.0 : 1.0;
    }
    total += term.coeff * parity_sum / options_.shots;
  }
  return total;
}

VqeSolver::VqeSolver(EnergyEstimator estimator, circuit::Circuit ansatz,
                     VqeConfig config)
    : estimator_(std::move(estimator)), ansatz_(std::move(ansatz)),
      config_(config) {
  if (config_.steps < 1) throw std::invalid_argument("VqeSolver: steps < 1");
  if (ansatz_.num_trainable() < 1)
    throw std::invalid_argument("VqeSolver: ansatz has no parameters");
  for (int i = 0; i < ansatz_.num_trainable(); ++i)
    for (const std::size_t op_idx : ansatz_.ops_for_param(i))
      if (!circuit::gate_supports_parameter_shift(ansatz_.op(op_idx).kind))
        throw std::invalid_argument(
            "VqeSolver: ansatz gate does not support the shift rule");
  if (config_.use_pruning) config_.pruner.validate();
}

std::vector<double> VqeSolver::gradient(std::span<const double> theta,
                                        const std::vector<bool>& mask) {
  const int n = ansatz_.num_trainable();
  std::vector<double> grad(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    if (!mask[static_cast<std::size_t>(i)]) continue;
    for (const std::size_t op_idx : ansatz_.ops_for_param(i)) {
      const auto plus = train::with_op_offset(ansatz_, op_idx, kHalfPi);
      const auto minus = train::with_op_offset(ansatz_, op_idx, -kHalfPi);
      grad[static_cast<std::size_t>(i)] +=
          0.5 * (estimator_.energy(plus, theta) -
                 estimator_.energy(minus, theta));
    }
  }
  return grad;
}

VqeResult VqeSolver::run(std::vector<double> theta_init) {
  Prng rng(config_.seed);
  const int n = ansatz_.num_trainable();
  std::vector<double> theta = std::move(theta_init);
  if (theta.empty()) {
    theta.resize(static_cast<std::size_t>(n));
    for (auto& t : theta) t = rng.uniform(-0.5, 0.5);
  }
  if (static_cast<int>(theta.size()) != n)
    throw std::invalid_argument("VqeSolver::run: theta size mismatch");

  auto optimizer = train::make_optimizer(config_.optimizer, config_.lr_start);
  train::CosineScheduler scheduler(config_.lr_start, config_.lr_end,
                                   config_.steps);
  train::PrunerConfig pcfg = config_.pruner;
  if (!config_.use_pruning) {
    pcfg = train::PrunerConfig{};
    pcfg.pruning_window = 0;
  }
  train::GradientPruner pruner(n, pcfg, rng());

  VqeResult result;
  result.best_energy = std::numeric_limits<double>::infinity();
  for (int step = 1; step <= config_.steps; ++step) {
    optimizer->set_learning_rate(scheduler.at(step - 1));
    const auto mask = pruner.next_mask();
    const auto grad = gradient(theta, mask);
    pruner.observe(grad);
    optimizer->step(theta, grad, &mask);

    VqeRecord rec;
    rec.step = step;
    rec.energy = estimator_.energy(ansatz_, theta);
    rec.executions = estimator_.executions();
    result.best_energy = std::min(result.best_energy, rec.energy);
    result.history.push_back(rec);
  }
  result.energy = result.history.back().energy;
  result.theta = std::move(theta);
  result.total_executions = estimator_.executions();
  return result;
}

circuit::Circuit VqeSolver::hardware_efficient_ansatz(int n_qubits,
                                                      int depth) {
  circuit::Circuit c(n_qubits);
  for (int d = 0; d < depth; ++d) {
    circuit::add_ry_layer(c);
    circuit::add_rz_layer(c);
    circuit::add_cz_chain_layer(c);
  }
  circuit::add_ry_layer(c);  // final rotation layer
  return c;
}

}  // namespace qoc::vqe
