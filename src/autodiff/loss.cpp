#include "qoc/autodiff/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qoc::autodiff {

std::vector<double> softmax(std::span<const double> logits) {
  if (logits.empty()) throw std::invalid_argument("softmax: empty input");
  const double m = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - m);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::vector<double> log_softmax(std::span<const double> logits) {
  if (logits.empty()) throw std::invalid_argument("log_softmax: empty input");
  const double m = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (const double v : logits) sum += std::exp(v - m);
  const double log_z = m + std::log(sum);
  std::vector<double> out(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
  return out;
}

double cross_entropy(std::span<const double> logits, int target) {
  if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
    throw std::out_of_range("cross_entropy: target class");
  return -log_softmax(logits)[static_cast<std::size_t>(target)];
}

std::vector<double> cross_entropy_grad(std::span<const double> logits,
                                       int target) {
  if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
    throw std::out_of_range("cross_entropy_grad: target class");
  std::vector<double> grad = softmax(logits);
  grad[static_cast<std::size_t>(target)] -= 1.0;
  return grad;
}

double batch_cross_entropy(const std::vector<std::vector<double>>& logits,
                           std::span<const int> targets) {
  if (logits.size() != targets.size())
    throw std::invalid_argument("batch_cross_entropy: size mismatch");
  if (logits.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i)
    total += cross_entropy(logits[i], targets[i]);
  return total / static_cast<double>(logits.size());
}

MeasurementHead MeasurementHead::identity(int n_qubits) {
  if (n_qubits < 1)
    throw std::invalid_argument("MeasurementHead::identity: n_qubits < 1");
  return MeasurementHead(Kind::Identity, n_qubits, n_qubits);
}

MeasurementHead MeasurementHead::pair_sum(int n_qubits) {
  if (n_qubits < 2 || n_qubits % 2 != 0)
    throw std::invalid_argument("MeasurementHead::pair_sum: n_qubits must be even");
  return MeasurementHead(Kind::PairSum, n_qubits, n_qubits / 2);
}

std::vector<double> MeasurementHead::forward(
    std::span<const double> expvals) const {
  if (static_cast<int>(expvals.size()) != n_inputs_)
    throw std::invalid_argument("MeasurementHead::forward: size mismatch");
  if (kind_ == Kind::Identity) return {expvals.begin(), expvals.end()};
  std::vector<double> out(static_cast<std::size_t>(n_logits_), 0.0);
  for (int i = 0; i < n_inputs_; ++i)
    out[static_cast<std::size_t>(i / 2)] += expvals[static_cast<std::size_t>(i)];
  return out;
}

std::vector<double> MeasurementHead::backward(
    std::span<const double> grad_logits) const {
  if (static_cast<int>(grad_logits.size()) != n_logits_)
    throw std::invalid_argument("MeasurementHead::backward: size mismatch");
  if (kind_ == Kind::Identity)
    return {grad_logits.begin(), grad_logits.end()};
  std::vector<double> out(static_cast<std::size_t>(n_inputs_));
  for (int i = 0; i < n_inputs_; ++i)
    out[static_cast<std::size_t>(i)] = grad_logits[static_cast<std::size_t>(i / 2)];
  return out;
}

}  // namespace qoc::autodiff
