#include "qoc/noise/channels.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "qoc/sim/gates.hpp"
#include "qoc/sim/kernels.hpp"

namespace qoc::noise {

namespace {

/// A 2x2 Kraus operator as the row-major stack buffer the weight
/// kernels take (see kernels.hpp, "Trajectory-noise weight kernels":
/// scalar and k-wide passes share expression trees and structural
/// shortcuts inside the kernel layer, which is what keeps per-lane
/// results bit-identical between sample_and_apply and
/// sample_and_apply_lanes).
std::array<linalg::cplx, 4> kraus_buf(const Matrix& k) {
  return {k(0, 0), k(0, 1), k(1, 0), k(1, 1)};
}

}  // namespace

KrausChannel::KrausChannel(std::string name, std::vector<Matrix> kraus_ops)
    : name_(std::move(name)), kraus_(std::move(kraus_ops)) {
  if (kraus_.empty()) throw std::invalid_argument("KrausChannel: empty");
  const std::size_t dim = kraus_.front().rows();
  if (dim != 2 && dim != 4)
    throw std::invalid_argument("KrausChannel: only 1- and 2-qubit channels");
  for (const auto& k : kraus_)
    if (k.rows() != dim || k.cols() != dim)
      throw std::invalid_argument("KrausChannel: inconsistent Kraus dims");
  arity_ = dim == 2 ? 1 : 2;
}

bool KrausChannel::is_trace_preserving(double tol) const {
  const std::size_t dim = kraus_.front().rows();
  Matrix sum(dim, dim);
  for (const auto& k : kraus_) sum += k.adjoint() * k;
  return linalg::approx_equal(sum, Matrix::identity(dim), tol);
}

std::size_t KrausChannel::sample_and_apply(sim::Statevector& sv,
                                           const std::vector<int>& qubits,
                                           qoc::Prng& rng) const {
  if (static_cast<int>(qubits.size()) != arity_)
    throw std::invalid_argument("KrausChannel: qubit count mismatch");

  // Branch weights: w_i = ||K_i |psi>||^2. For single-qubit channels the
  // weights are computed in one pass without copying the statevector
  // (this is the inner loop of every noisy trajectory).
  std::vector<double> weights(kraus_.size(), 0.0);
  double total = 0.0;
  if (arity_ == 1) {
    const int n = sv.num_qubits();
    const std::size_t stride = std::size_t{1} << (n - 1 - qubits[0]);
    const auto& amps = sv.amplitudes();
    const std::size_t dim = amps.size();
    for (std::size_t i = 0; i < kraus_.size(); ++i) {
      const auto m = kraus_buf(kraus_[i]);
      weights[i] =
          sim::kernels::kraus_weight(amps.data(), dim, stride, m.data());
      total += weights[i];
    }
  } else {
    for (std::size_t i = 0; i < kraus_.size(); ++i) {
      sim::Statevector tmp = sv;
      tmp.apply_matrix(kraus_[i], qubits);
      weights[i] = tmp.norm_squared();
      total += weights[i];
    }
  }
  if (total <= 0.0)
    throw std::runtime_error("KrausChannel: vanishing branch weights");

  double u = rng.uniform() * total;
  std::size_t pick = kraus_.size() - 1;
  for (std::size_t i = 0; i < kraus_.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) {
      pick = i;
      break;
    }
  }
  sv.apply_matrix(kraus_[pick], qubits);
  sv.normalize();
  return pick;
}

void KrausChannel::sample_and_apply_lanes(
    sim::BatchedStatevector& sv, int qubit,
    std::span<qoc::Prng* const> lane_rngs) const {
  if (arity_ != 1)
    throw std::invalid_argument(
        "KrausChannel: sample_and_apply_lanes supports 1-qubit channels");
  const std::size_t k = sv.lanes();
  if (lane_rngs.size() != k)
    throw std::invalid_argument("KrausChannel: lane_rngs size mismatch");

  const int n = sv.num_qubits();
  const std::size_t stride = std::size_t{1} << (n - 1 - qubit);
  const auto& amps = sv.amplitudes();
  const std::size_t dim = sv.dim();

  // Per-lane branch weights via the k-wide weight kernel: lane L's
  // accumulator receives the same per-(base, off) terms in the same
  // order as the scalar kraus_weight pass above -- the k chains of one
  // branch just run interleaved, which is where the k-wide layout beats
  // k scalar passes (independent, vectorizable accumulators instead of
  // one serial dependency chain).
  const std::size_t n_branches = kraus_.size();
  std::vector<double> weights(n_branches * k, 0.0);
  std::array<double, sim::BatchedStatevector::kMaxLanes> total{};
  for (std::size_t i = 0; i < n_branches; ++i) {
    const auto m = kraus_buf(kraus_[i]);
    double* w = weights.data() + i * k;
    sim::kernels::batched_kraus_weight(amps.data(), dim, stride, k, m.data(),
                                       w);
    for (std::size_t l = 0; l < k; ++l) total[l] += w[l];
  }

  // Per-lane draw and branch walk, identical to the scalar path.
  std::array<std::size_t, sim::BatchedStatevector::kMaxLanes> pick{};
  for (std::size_t l = 0; l < k; ++l) {
    if (lane_rngs[l] == nullptr) continue;  // padding lane: branch 0, no draw
    if (total[l] <= 0.0)
      throw std::runtime_error("KrausChannel: vanishing branch weights");
    double u = lane_rngs[l]->uniform() * total[l];
    std::size_t p = n_branches - 1;
    for (std::size_t i = 0; i < n_branches; ++i) {
      u -= weights[i * k + l];
      if (u < 0.0) {
        p = i;
        break;
      }
    }
    pick[l] = p;
  }

  // Entry-major per-lane matrices of the chosen branches; the batched
  // kernel's per-lane butterfly is the scalar apply_1q reference, so
  // each lane sees exactly the arithmetic of apply_matrix(kraus_[pick]).
  std::array<linalg::cplx, 4 * sim::BatchedStatevector::kMaxLanes> m;
  for (std::size_t e = 0; e < 4; ++e)
    for (std::size_t l = 0; l < k; ++l)
      m[e * k + l] = kraus_[pick[l]](e >> 1, e & 1);
  sv.apply_1q_lanes(m.data(), qubit);
  sv.normalize_lanes();
}

KrausChannel depolarizing_1q(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("depolarizing_1q: p out of [0,1]");
  using namespace qoc::sim;
  std::vector<Matrix> ks;
  ks.push_back(gate_i() * linalg::cplx{std::sqrt(1.0 - 3.0 * p / 4.0), 0.0});
  for (int pa = 1; pa <= 3; ++pa)
    ks.push_back(pauli(pa) * linalg::cplx{std::sqrt(p / 4.0), 0.0});
  return KrausChannel("depolarizing_1q", std::move(ks));
}

KrausChannel depolarizing_2q(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("depolarizing_2q: p out of [0,1]");
  using namespace qoc::sim;
  std::vector<Matrix> ks;
  ks.reserve(16);
  const double p_id = 1.0 - 15.0 * p / 16.0;
  ks.push_back(Matrix::identity(4) * linalg::cplx{std::sqrt(p_id), 0.0});
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) {
      if (a == 0 && b == 0) continue;
      ks.push_back(linalg::kron(pauli(a), pauli(b)) *
                   linalg::cplx{std::sqrt(p / 16.0), 0.0});
    }
  return KrausChannel("depolarizing_2q", std::move(ks));
}

KrausChannel amplitude_damping(double gamma) {
  if (gamma < 0.0 || gamma > 1.0)
    throw std::invalid_argument("amplitude_damping: gamma out of [0,1]");
  Matrix k0{{1.0, 0.0}, {0.0, std::sqrt(1.0 - gamma)}};
  Matrix k1{{0.0, std::sqrt(gamma)}, {0.0, 0.0}};
  return KrausChannel("amplitude_damping", {k0, k1});
}

KrausChannel phase_damping(double lambda) {
  if (lambda < 0.0 || lambda > 1.0)
    throw std::invalid_argument("phase_damping: lambda out of [0,1]");
  // Phase-flip representation: with probability p = (1 - sqrt(1-lambda))/2
  // apply Z. Identical channel to the usual {diag(1, sqrt(1-lambda)),
  // diag(0, sqrt(lambda))} Kraus pair, but preserves populations along
  // every single trajectory (not just on average), which is the physically
  // sensible unravelling for quantum-jump simulation.
  const double p = 0.5 * (1.0 - std::sqrt(1.0 - lambda));
  Matrix k0{{std::sqrt(1.0 - p), 0.0}, {0.0, std::sqrt(1.0 - p)}};
  Matrix k1{{std::sqrt(p), 0.0}, {0.0, -std::sqrt(p)}};
  return KrausChannel("phase_damping", {k0, k1});
}

KrausChannel thermal_relaxation(double t1, double t2, double duration) {
  if (t1 <= 0.0 || t2 <= 0.0)
    throw std::invalid_argument("thermal_relaxation: T1/T2 must be positive");
  if (duration < 0.0)
    throw std::invalid_argument("thermal_relaxation: negative duration");
  // Physical constraint T2 <= 2 T1; clip rather than reject measured data.
  const double t2_eff = std::min(t2, 2.0 * t1);
  const double gamma = 1.0 - std::exp(-duration / t1);
  // Total phase coherence decay e^{-t/T2} = e^{-t/(2 T1)} * sqrt(1-lambda)
  // => pure dephasing part lambda = 1 - exp(-2 t (1/T2 - 1/(2 T1))).
  const double rate_phi = 1.0 / t2_eff - 1.0 / (2.0 * t1);
  const double lambda = 1.0 - std::exp(-2.0 * duration * std::max(0.0, rate_phi));

  // Compose amplitude damping (gamma) then phase damping (lambda). The
  // composition of the two channels is itself CPTP; build combined Kraus
  // set by multiplying the operator pairs.
  const KrausChannel ad = amplitude_damping(gamma);
  const KrausChannel pd = phase_damping(lambda);
  std::vector<Matrix> ks;
  for (const auto& kp : pd.kraus())
    for (const auto& ka : ad.kraus()) {
      Matrix prod = kp * ka;
      if (prod.frobenius_norm() > 1e-12) ks.push_back(std::move(prod));
    }
  return KrausChannel("thermal_relaxation", std::move(ks));
}

}  // namespace qoc::noise
