#include "qoc/noise/readout_mitigation.hpp"

#include <algorithm>
#include <stdexcept>

namespace qoc::noise {

ReadoutMitigator::ReadoutMitigator(const DeviceModel& device) {
  device.validate();
  e01_.reserve(device.qubits.size());
  e10_.reserve(device.qubits.size());
  for (const auto& cal : device.qubits) {
    e01_.push_back(cal.readout_err_0to1);
    e10_.push_back(cal.readout_err_1to0);
  }
}

ReadoutMitigator::ReadoutMitigator(std::vector<double> e01,
                                   std::vector<double> e10)
    : e01_(std::move(e01)), e10_(std::move(e10)) {
  if (e01_.size() != e10_.size() || e01_.empty())
    throw std::invalid_argument("ReadoutMitigator: size mismatch");
  for (std::size_t q = 0; q < e01_.size(); ++q) {
    if (e01_[q] < 0 || e10_[q] < 0 || e01_[q] + e10_[q] >= 1.0)
      throw std::invalid_argument(
          "ReadoutMitigator: flip rates must satisfy e01 + e10 < 1");
  }
}

double ReadoutMitigator::mitigate_expectation_z(int qubit,
                                                double z_measured) const {
  if (qubit < 0 || qubit >= num_qubits())
    throw std::out_of_range("ReadoutMitigator: qubit");
  const double e01 = e01_[static_cast<std::size_t>(qubit)];
  const double e10 = e10_[static_cast<std::size_t>(qubit)];
  // E[z_meas] = (1 - e01 - e10) z_true + (e10 - e01); invert and clamp to
  // the physical range (finite-shot estimates can overshoot).
  const double z = (z_measured - (e10 - e01)) / (1.0 - e01 - e10);
  return std::clamp(z, -1.0, 1.0);
}

std::vector<double> ReadoutMitigator::mitigate_all(
    const std::vector<double>& z_measured,
    const std::vector<int>& layout) const {
  if (z_measured.size() != layout.size())
    throw std::invalid_argument("ReadoutMitigator: layout size mismatch");
  std::vector<double> out(z_measured.size());
  for (std::size_t l = 0; l < z_measured.size(); ++l)
    out[l] = mitigate_expectation_z(layout[l], z_measured[l]);
  return out;
}

double ReadoutMitigator::mitigate_probability_one(int qubit,
                                                  double p1_measured) const {
  if (qubit < 0 || qubit >= num_qubits())
    throw std::out_of_range("ReadoutMitigator: qubit");
  const double e01 = e01_[static_cast<std::size_t>(qubit)];
  const double e10 = e10_[static_cast<std::size_t>(qubit)];
  // p1_meas = p1 (1 - e10) + (1 - p1) e01.
  const double p1 = (p1_measured - e01) / (1.0 - e01 - e10);
  return std::clamp(p1, 0.0, 1.0);
}

}  // namespace qoc::noise
