#include "qoc/noise/device_model.hpp"

#include <deque>
#include <stdexcept>

namespace qoc::noise {

bool DeviceModel::connected(int a, int b) const {
  for (const auto& [x, y] : coupling)
    if ((x == a && y == b) || (x == b && y == a)) return true;
  return false;
}

std::vector<std::vector<int>> DeviceModel::adjacency() const {
  std::vector<std::vector<int>> adj(n_qubits);
  for (const auto& [a, b] : coupling) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  return adj;
}

std::vector<int> DeviceModel::shortest_path(int from, int to) const {
  if (from < 0 || from >= n_qubits || to < 0 || to >= n_qubits)
    throw std::out_of_range("DeviceModel::shortest_path: qubit index");
  if (from == to) return {from};
  const auto adj = adjacency();
  std::vector<int> prev(n_qubits, -1);
  std::deque<int> queue{from};
  prev[from] = from;
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    for (int nxt : adj[cur]) {
      if (prev[nxt] != -1) continue;
      prev[nxt] = cur;
      if (nxt == to) {
        std::vector<int> path{to};
        int walk = to;
        while (walk != from) {
          walk = prev[walk];
          path.push_back(walk);
        }
        return {path.rbegin(), path.rend()};
      }
      queue.push_back(nxt);
    }
  }
  return {};
}

void DeviceModel::validate() const {
  if (n_qubits <= 0) throw std::invalid_argument("DeviceModel: n_qubits <= 0");
  if (static_cast<int>(qubits.size()) != n_qubits)
    throw std::invalid_argument("DeviceModel: calibration count mismatch");
  for (const auto& [a, b] : coupling) {
    if (a < 0 || a >= n_qubits || b < 0 || b >= n_qubits || a == b)
      throw std::invalid_argument("DeviceModel: bad coupling edge");
  }
  for (const auto& q : qubits) {
    if (q.t1_s <= 0 || q.t2_s <= 0)
      throw std::invalid_argument("DeviceModel: non-positive T1/T2");
    if (q.readout_err_0to1 < 0 || q.readout_err_0to1 > 1 ||
        q.readout_err_1to0 < 0 || q.readout_err_1to0 > 1)
      throw std::invalid_argument("DeviceModel: readout error out of range");
  }
  if (err_1q < 0 || err_1q > 1 || err_2q < 0 || err_2q > 1)
    throw std::invalid_argument("DeviceModel: gate error out of range");
}

namespace {

DeviceModel make(const std::string& name, int n,
                 std::vector<CouplingEdge> coupling, double err_1q,
                 double err_2q, double t1_us, double t2_us, double ro_01,
                 double ro_10) {
  DeviceModel d;
  d.name = name;
  d.n_qubits = n;
  d.coupling = std::move(coupling);
  d.err_1q = err_1q;
  d.err_2q = err_2q;
  QubitCalibration cal;
  cal.t1_s = t1_us * 1e-6;
  cal.t2_s = t2_us * 1e-6;
  cal.readout_err_0to1 = ro_01;
  cal.readout_err_1to0 = ro_10;
  d.qubits.assign(n, cal);
  d.validate();
  return d;
}

}  // namespace

DeviceModel DeviceModel::ibmq_jakarta() {
  // 7-qubit heavy-hex fragment (Falcon r5.11H):
  //   0 - 1 - 2,  1 - 3,  3 - 5,  4 - 5 - 6
  return make("ibmq_jakarta", 7,
              {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}},
              /*err_1q=*/2.4e-4, /*err_2q=*/7.8e-3,
              /*t1=*/120.0, /*t2=*/40.0, /*ro01=*/0.020, /*ro10=*/0.034);
}

DeviceModel DeviceModel::ibmq_manila() {
  // 5-qubit line (Falcon r5.11L): 0 - 1 - 2 - 3 - 4
  return make("ibmq_manila", 5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}},
              /*err_1q=*/2.0e-4, /*err_2q=*/6.9e-3,
              /*t1=*/140.0, /*t2=*/60.0, /*ro01=*/0.018, /*ro10=*/0.030);
}

DeviceModel DeviceModel::ibmq_santiago() {
  // 5-qubit line (Falcon r4L): 0 - 1 - 2 - 3 - 4
  return make("ibmq_santiago", 5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}},
              /*err_1q=*/1.9e-4, /*err_2q=*/6.3e-3,
              /*t1=*/160.0, /*t2=*/100.0, /*ro01=*/0.012, /*ro10=*/0.022);
}

DeviceModel DeviceModel::ibmq_lima() {
  // 5-qubit T shape (Falcon r4T): 0 - 1 - 2, 1 - 3, 3 - 4
  return make("ibmq_lima", 5, {{0, 1}, {1, 2}, {1, 3}, {3, 4}},
              /*err_1q=*/3.1e-4, /*err_2q=*/9.6e-3,
              /*t1=*/100.0, /*t2=*/90.0, /*ro01=*/0.024, /*ro10=*/0.041);
}

DeviceModel DeviceModel::ibmq_casablanca() {
  // 7-qubit heavy-hex fragment, noisier calibration than jakarta
  // (Fig. 2c shows casablanca with larger relative gradient errors).
  return make("ibmq_casablanca", 7,
              {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}},
              /*err_1q=*/3.8e-4, /*err_2q=*/1.35e-2,
              /*t1=*/90.0, /*t2=*/65.0, /*ro01=*/0.028, /*ro10=*/0.046);
}

DeviceModel DeviceModel::ibmq_toronto() {
  // 27-qubit heavy-hex (Falcon r4). Standard IBM 27Q coupling map.
  std::vector<CouplingEdge> edges = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},  {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14},
      {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19},
      {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
      {23, 24}, {24, 25}, {25, 26}};
  return make("ibmq_toronto", 27, std::move(edges),
              /*err_1q=*/2.9e-4, /*err_2q=*/1.1e-2,
              /*t1=*/110.0, /*t2=*/80.0, /*ro01=*/0.022, /*ro10=*/0.038);
}

DeviceModel DeviceModel::ideal(int n_qubits) {
  DeviceModel d;
  d.name = "ideal";
  d.n_qubits = n_qubits;
  for (int a = 0; a < n_qubits; ++a)
    for (int b = a + 1; b < n_qubits; ++b) d.coupling.emplace_back(a, b);
  QubitCalibration cal;
  cal.t1_s = 1.0;  // effectively infinite on gate timescales
  cal.t2_s = 1.0;
  cal.readout_err_0to1 = 0.0;
  cal.readout_err_1to0 = 0.0;
  d.qubits.assign(n_qubits, cal);
  d.err_1q = 0.0;
  d.err_2q = 0.0;
  d.validate();
  return d;
}

DeviceModel DeviceModel::by_name(const std::string& name) {
  if (name == "ibmq_jakarta") return ibmq_jakarta();
  if (name == "ibmq_manila") return ibmq_manila();
  if (name == "ibmq_santiago") return ibmq_santiago();
  if (name == "ibmq_lima") return ibmq_lima();
  if (name == "ibmq_casablanca") return ibmq_casablanca();
  if (name == "ibmq_toronto") return ibmq_toronto();
  throw std::invalid_argument("DeviceModel::by_name: unknown device " + name);
}

std::vector<std::string> DeviceModel::available() {
  return {"ibmq_jakarta", "ibmq_manila",     "ibmq_santiago",
          "ibmq_lima",    "ibmq_casablanca", "ibmq_toronto"};
}

}  // namespace qoc::noise
