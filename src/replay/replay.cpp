#include "qoc/replay/replay.hpp"

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

#include "qoc/exec/compiled_circuit.hpp"
#include "qoc/obs/obs.hpp"

namespace qoc::replay {
namespace {

// ---------------------------------------------------------------------------
// Binary primitives. Explicit little-endian byte order, so a log written
// on any host parses on any other; doubles travel as IEEE bit patterns.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'Q', 'O', 'C', 'T', 'R', 'A', 'C', 'E'};

enum RecordType : std::uint8_t {
  kEndRecord = 0,  // trailer: payload is the CRC32 of everything before it
  kCircuitRecord = 1,
  kObservableRecord = 2,
  kJobRecord = 3,
};

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_doubles(std::vector<std::uint8_t>& out,
                 std::span<const double> values) {
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (const double d : values) put_f64(out, d);
}

/// Bounds-checked cursor over a byte span: every malformed length field
/// or premature end of input surfaces as TraceError, never as an
/// out-of-bounds read or a multi-gigabyte allocation.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::size_t remaining() const { return bytes.size() - pos; }

  void need(std::size_t n, const char* what) const {
    if (remaining() < n)
      throw TraceError(std::string("qoc trace: truncated log (") + what + ")");
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return bytes[pos++];
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    pos += 8;
    return v;
  }

  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  std::string str(std::size_t n, const char* what) {
    need(n, what);
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos), n);
    pos += n;
    return s;
  }

  std::vector<double> doubles(const char* what) {
    const std::uint32_t n = u32(what);
    need(std::size_t{n} * 8, what);
    std::vector<double> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(f64(what));
    return out;
  }
};

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Record payloads
// ---------------------------------------------------------------------------

constexpr std::uint8_t kMaxGateKind =
    static_cast<std::uint8_t>(circuit::GateKind::Ccx);
constexpr std::uint8_t kMaxParamSource =
    static_cast<std::uint8_t>(circuit::ParamRef::Source::Input);
constexpr int kMaxQubits = 30;  // statevector memory bound; anything
                                // larger in a log is corruption

void encode_circuit(std::vector<std::uint8_t>& out, const TracedCircuit& tc) {
  put_u64(out, tc.id);
  put_u64(out, tc.structure_hash);
  put_u8(out, tc.fuse_1q ? 1 : 0);
  put_i32(out, tc.circuit.num_qubits());
  put_i32(out, tc.circuit.num_trainable());
  put_i32(out, tc.circuit.num_inputs());
  put_u32(out, static_cast<std::uint32_t>(tc.circuit.num_ops()));
  for (const auto& op : tc.circuit.ops()) {
    put_u8(out, static_cast<std::uint8_t>(op.kind));
    put_u8(out, static_cast<std::uint8_t>(op.qubits.size()));
    for (const int q : op.qubits) put_i32(out, q);
    put_u8(out, static_cast<std::uint8_t>(op.param.source));
    put_i32(out, op.param.index);
    put_f64(out, op.param.value);
    put_f64(out, op.param.scale);
  }
}

TracedCircuit decode_circuit(Reader& r) {
  TracedCircuit tc;
  tc.id = r.u64("circuit id");
  tc.structure_hash = r.u64("circuit hash");
  tc.fuse_1q = r.u8("circuit fuse_1q") != 0;
  const std::int32_t n_qubits = r.i32("circuit qubits");
  const std::int32_t n_trainable = r.i32("circuit trainable count");
  const std::int32_t n_inputs = r.i32("circuit input count");
  if (n_qubits < 1 || n_qubits > kMaxQubits)
    throw TraceError("qoc trace: circuit qubit count out of range");
  if (n_trainable < 0 || n_inputs < 0)
    throw TraceError("qoc trace: negative circuit parameter count");
  circuit::Circuit c(n_qubits);
  const std::uint32_t n_ops = r.u32("circuit op count");
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    const std::uint8_t kind = r.u8("op kind");
    if (kind > kMaxGateKind) throw TraceError("qoc trace: unknown gate kind");
    const std::uint8_t nq = r.u8("op qubit count");
    if (nq < 1 || nq > 3)
      throw TraceError("qoc trace: op qubit count out of range");
    std::vector<int> qubits;
    for (std::uint8_t q = 0; q < nq; ++q) {
      const std::int32_t idx = r.i32("op qubit");
      if (idx < 0 || idx >= n_qubits)
        throw TraceError("qoc trace: op qubit index out of range");
      qubits.push_back(idx);
    }
    circuit::ParamRef param;
    const std::uint8_t source = r.u8("param source");
    if (source > kMaxParamSource)
      throw TraceError("qoc trace: unknown param source");
    param.source = static_cast<circuit::ParamRef::Source>(source);
    param.index = r.i32("param index");
    param.value = r.f64("param value");
    param.scale = r.f64("param scale");
    try {
      c.add(static_cast<circuit::GateKind>(kind), std::move(qubits), param);
    } catch (const std::exception& e) {
      throw TraceError(std::string("qoc trace: invalid op: ") + e.what());
    }
  }
  // Trainable slots may legitimately exceed the highest referenced index
  // (Circuit::new_trainable allocates unused slots); pad them back.
  // Input counts are always derived from the ops, so a mismatch there
  // is corruption.
  if (c.num_trainable() > n_trainable || c.num_inputs() != n_inputs)
    throw TraceError("qoc trace: circuit parameter counts inconsistent");
  while (c.num_trainable() < n_trainable) c.new_trainable();
  tc.circuit = std::move(c);
  return tc;
}

void encode_observable(std::vector<std::uint8_t>& out,
                       const TracedObservable& to) {
  put_u64(out, to.id);
  put_i32(out, to.n_qubits);
  put_u32(out, static_cast<std::uint32_t>(to.terms.size()));
  for (const auto& t : to.terms) {
    put_u32(out, static_cast<std::uint32_t>(t.paulis.size()));
    for (const char ch : t.paulis)
      put_u8(out, static_cast<std::uint8_t>(ch));
    put_f64(out, t.coeff);
  }
}

TracedObservable decode_observable(Reader& r) {
  TracedObservable to;
  to.id = r.u64("observable id");
  to.n_qubits = r.i32("observable qubits");
  if (to.n_qubits < 1 || to.n_qubits > 63)
    throw TraceError("qoc trace: observable qubit count out of range");
  const std::uint32_t n_terms = r.u32("observable term count");
  for (std::uint32_t i = 0; i < n_terms; ++i) {
    exec::ObservableTerm term;
    const std::uint32_t len = r.u32("term length");
    term.paulis = r.str(len, "term paulis");
    for (const char ch : term.paulis)
      if (ch != 'I' && ch != 'X' && ch != 'Y' && ch != 'Z')
        throw TraceError("qoc trace: invalid pauli character");
    term.coeff = r.f64("term coeff");
    to.terms.push_back(std::move(term));
  }
  return to;
}

enum JobFlags : std::uint8_t {
  kJobIsExpect = 1,
  kJobHasResult = 2,
};

void encode_job(std::vector<std::uint8_t>& out, const TracedJob& j) {
  put_u32(out, j.client);
  put_u64(out, j.seq);
  put_u64(out, j.circuit_id);
  put_u64(out, j.observable_id);
  put_u64(out, j.stream);
  put_i64(out, j.since_start.count());
  put_u8(out, static_cast<std::uint8_t>((j.is_expect ? kJobIsExpect : 0) |
                                        (j.has_result ? kJobHasResult : 0)));
  put_doubles(out, j.theta);
  put_doubles(out, j.input);
  if (j.has_result) {
    if (j.is_expect)
      put_f64(out, j.expect_result);
    else
      put_doubles(out, j.run_result);
  }
}

TracedJob decode_job(Reader& r) {
  TracedJob j;
  j.client = r.u32("job client");
  j.seq = r.u64("job seq");
  j.circuit_id = r.u64("job circuit id");
  j.observable_id = r.u64("job observable id");
  j.stream = r.u64("job stream");
  j.since_start = std::chrono::nanoseconds(r.i64("job timestamp"));
  const std::uint8_t flags = r.u8("job flags");
  if (flags > (kJobIsExpect | kJobHasResult))
    throw TraceError("qoc trace: unknown job flags");
  j.is_expect = (flags & kJobIsExpect) != 0;
  j.has_result = (flags & kJobHasResult) != 0;
  j.theta = r.doubles("job theta");
  j.input = r.doubles("job input");
  if (j.has_result) {
    if (j.is_expect)
      j.expect_result = r.f64("job expect result");
    else
      j.run_result = r.doubles("job run result");
  }
  return j;
}

void append_record(std::vector<std::uint8_t>& out, std::uint8_t type,
                   const std::vector<std::uint8_t>& payload) {
  put_u8(out, type);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool doubles_equal_bitwise(std::span<const double> a,
                           std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Binary log
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> write_binary(const TraceLog& log) {
  std::vector<std::uint8_t> out;
  for (const char ch : kMagic) put_u8(out, static_cast<std::uint8_t>(ch));
  put_u32(out, kTraceVersion);
  put_u32(out, static_cast<std::uint32_t>(log.scenario.size()));
  for (const char ch : log.scenario)
    put_u8(out, static_cast<std::uint8_t>(ch));
  std::vector<std::uint8_t> payload;
  for (const auto& tc : log.circuits) {
    payload.clear();
    encode_circuit(payload, tc);
    append_record(out, kCircuitRecord, payload);
  }
  for (const auto& to : log.observables) {
    payload.clear();
    encode_observable(payload, to);
    append_record(out, kObservableRecord, payload);
  }
  for (const auto& j : log.jobs) {
    payload.clear();
    encode_job(payload, j);
    append_record(out, kJobRecord, payload);
  }
  // Trailer: the CRC covers every byte before its own 4-byte value
  // (header, records, and the trailer's type + length fields).
  put_u8(out, kEndRecord);
  put_u32(out, 4);
  put_u32(out, crc32(out));
  return out;
}

TraceLog read_binary(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  const std::string magic = r.str(sizeof(kMagic), "magic");
  if (magic != std::string(kMagic, sizeof(kMagic)))
    throw TraceError("qoc trace: bad magic (not a qoc trace log)");
  const std::uint32_t version = r.u32("version");
  if (version != kTraceVersion)
    throw TraceError("qoc trace: unsupported version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kTraceVersion) + ")");
  TraceLog log;
  const std::uint32_t scenario_len = r.u32("scenario length");
  log.scenario = r.str(scenario_len, "scenario");

  for (;;) {
    const std::uint8_t type = r.u8("record type");
    const std::uint32_t len = r.u32("record length");
    r.need(len, "record payload");
    if (type == kEndRecord) {
      if (len != 4) throw TraceError("qoc trace: malformed trailer");
      const std::size_t crc_pos = r.pos;
      const std::uint32_t stored = r.u32("trailer crc");
      if (r.remaining() != 0)
        throw TraceError("qoc trace: trailing data after trailer");
      if (crc32(bytes.subspan(0, crc_pos)) != stored)
        throw TraceError("qoc trace: CRC mismatch (corrupt log)");
      return log;
    }
    Reader payload{bytes.subspan(r.pos, len)};
    r.pos += len;
    switch (type) {
      case kCircuitRecord:
        log.circuits.push_back(decode_circuit(payload));
        break;
      case kObservableRecord:
        log.observables.push_back(decode_observable(payload));
        break;
      case kJobRecord:
        log.jobs.push_back(decode_job(payload));
        break;
      default:
        throw TraceError("qoc trace: unknown record type " +
                         std::to_string(type));
    }
    if (payload.remaining() != 0)
      throw TraceError("qoc trace: record length/payload mismatch");
  }
}

void save(const TraceLog& log, const std::string& path) {
  const auto bytes = write_binary(log);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("qoc trace: cannot open '" + path + "' for write");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw TraceError("qoc trace: short write to '" + path + "'");
}

TraceLog load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("qoc trace: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return read_binary(bytes);
}

// ---------------------------------------------------------------------------
// Text form. One record per line, whitespace-separated tokens; every
// double is a 16-digit hex bit pattern so the text form loses nothing.
// ---------------------------------------------------------------------------

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fhex(double d) { return hex64(std::bit_cast<std::uint64_t>(d)); }

void emit_doubles(std::string& out, std::span<const double> values) {
  out += ' ';
  out += std::to_string(values.size());
  for (const double d : values) {
    out += ' ';
    out += fhex(d);
  }
}

/// Percent-escape so the scenario string is always one token.
std::string escape(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    if (ch == '%' || ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(ch)));
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size())
        throw TraceError("qoc trace: bad escape in text log");
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        throw TraceError("qoc trace: bad escape in text log");
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Whitespace-token cursor over the text form, mirroring Reader's
/// error discipline.
struct TokenReader {
  const std::string& text;
  std::size_t pos = 0;

  bool at_end() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
    return pos >= text.size();
  }

  std::string next(const char* what) {
    if (at_end())
      throw TraceError(std::string("qoc trace: truncated text log (") + what +
                       ")");
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t' &&
           text[pos] != '\n' && text[pos] != '\r')
      ++pos;
    return text.substr(start, pos - start);
  }

  std::uint64_t num(const char* what, int base = 10) {
    const std::string tok = next(what);
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
    if (end != tok.c_str() + tok.size() || tok.empty() || errno != 0)
      throw TraceError(std::string("qoc trace: bad number for ") + what +
                       ": '" + tok + "'");
    return v;
  }

  std::int64_t snum(const char* what) {
    const std::string tok = next(what);
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || tok.empty() || errno != 0)
      throw TraceError(std::string("qoc trace: bad number for ") + what +
                       ": '" + tok + "'");
    return v;
  }

  double f64(const char* what) {
    return std::bit_cast<double>(num(what, 16));
  }

  std::vector<double> doubles(const char* what) {
    const std::uint64_t n = num(what);
    if (n > (1u << 24))
      throw TraceError(std::string("qoc trace: absurd vector length for ") +
                       what);
    std::vector<double> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64(what));
    return out;
  }
};

}  // namespace

std::string write_text(const TraceLog& log) {
  std::string out = "qoctrace " + std::to_string(kTraceVersion) + "\n";
  out += "scenario " + (log.scenario.empty() ? "-" : escape(log.scenario)) +
         "\n";
  for (const auto& tc : log.circuits) {
    out += "circuit " + std::to_string(tc.id) + ' ' +
           hex64(tc.structure_hash) + ' ' + (tc.fuse_1q ? "1" : "0") + ' ' +
           std::to_string(tc.circuit.num_qubits()) + ' ' +
           std::to_string(tc.circuit.num_trainable()) + ' ' +
           std::to_string(tc.circuit.num_inputs()) + ' ' +
           std::to_string(tc.circuit.num_ops()) + "\n";
    for (const auto& op : tc.circuit.ops()) {
      out += "op " + std::to_string(static_cast<int>(op.kind)) + ' ' +
             std::to_string(op.qubits.size());
      for (const int q : op.qubits) out += ' ' + std::to_string(q);
      out += ' ' + std::to_string(static_cast<int>(op.param.source)) + ' ' +
             std::to_string(op.param.index) + ' ' + fhex(op.param.value) +
             ' ' + fhex(op.param.scale) + "\n";
    }
  }
  for (const auto& to : log.observables) {
    out += "observable " + std::to_string(to.id) + ' ' +
           std::to_string(to.n_qubits) + ' ' + std::to_string(to.terms.size()) +
           "\n";
    for (const auto& t : to.terms)
      out += "term " + (t.paulis.empty() ? "-" : t.paulis) + ' ' +
             fhex(t.coeff) + "\n";
  }
  for (const auto& j : log.jobs) {
    out += "job " + std::to_string(j.client) + ' ' + std::to_string(j.seq) +
           ' ' + std::to_string(j.circuit_id) + ' ' +
           std::to_string(j.observable_id) + ' ' + hex64(j.stream) + ' ' +
           std::to_string(j.since_start.count()) + ' ' +
           (j.is_expect ? "1" : "0") + ' ' + (j.has_result ? "1" : "0");
    emit_doubles(out, j.theta);
    emit_doubles(out, j.input);
    if (j.has_result) {
      if (j.is_expect)
        out += ' ' + fhex(j.expect_result);
      else
        emit_doubles(out, j.run_result);
    }
    out += "\n";
  }
  return out;
}

TraceLog parse_text(const std::string& text) {
  TokenReader r{text};
  if (r.next("header") != "qoctrace")
    throw TraceError("qoc trace: bad text header (not a qoc trace)");
  const std::uint64_t version = r.num("version");
  if (version != kTraceVersion)
    throw TraceError("qoc trace: unsupported version " +
                     std::to_string(version));
  if (r.next("scenario keyword") != "scenario")
    throw TraceError("qoc trace: expected scenario line");
  const std::string scenario_tok = r.next("scenario value");
  TraceLog log;
  log.scenario = scenario_tok == "-" ? "" : unescape(scenario_tok);

  // Re-encode each parsed record through the binary payload codecs:
  // one validation path for both formats.
  std::vector<std::uint8_t> payload;
  while (!r.at_end()) {
    const std::string keyword = r.next("record keyword");
    payload.clear();
    if (keyword == "circuit") {
      put_u64(payload, r.num("circuit id"));
      put_u64(payload, r.num("circuit hash", 16));
      put_u8(payload, static_cast<std::uint8_t>(r.num("circuit fuse_1q")));
      put_i32(payload, static_cast<std::int32_t>(r.snum("circuit qubits")));
      put_i32(payload, static_cast<std::int32_t>(r.snum("circuit trainable")));
      put_i32(payload, static_cast<std::int32_t>(r.snum("circuit inputs")));
      const std::uint64_t n_ops = r.num("circuit op count");
      put_u32(payload, static_cast<std::uint32_t>(n_ops));
      for (std::uint64_t i = 0; i < n_ops; ++i) {
        if (r.next("op keyword") != "op")
          throw TraceError("qoc trace: expected op line");
        put_u8(payload, static_cast<std::uint8_t>(r.num("op kind")));
        const std::uint64_t nq = r.num("op qubit count");
        put_u8(payload, static_cast<std::uint8_t>(nq));
        for (std::uint64_t q = 0; q < nq && q < 4; ++q)
          put_i32(payload, static_cast<std::int32_t>(r.snum("op qubit")));
        put_u8(payload, static_cast<std::uint8_t>(r.num("param source")));
        put_i32(payload, static_cast<std::int32_t>(r.snum("param index")));
        put_u64(payload, r.num("param value", 16));
        put_u64(payload, r.num("param scale", 16));
      }
      Reader decode{payload};
      log.circuits.push_back(decode_circuit(decode));
    } else if (keyword == "observable") {
      put_u64(payload, r.num("observable id"));
      put_i32(payload, static_cast<std::int32_t>(r.snum("observable qubits")));
      const std::uint64_t n_terms = r.num("observable term count");
      put_u32(payload, static_cast<std::uint32_t>(n_terms));
      for (std::uint64_t i = 0; i < n_terms; ++i) {
        if (r.next("term keyword") != "term")
          throw TraceError("qoc trace: expected term line");
        const std::string tok = r.next("term paulis");
        const std::string paulis = tok == "-" ? "" : tok;
        put_u32(payload, static_cast<std::uint32_t>(paulis.size()));
        for (const char ch : paulis)
          put_u8(payload, static_cast<std::uint8_t>(ch));
        put_u64(payload, r.num("term coeff", 16));
      }
      Reader decode{payload};
      log.observables.push_back(decode_observable(decode));
    } else if (keyword == "job") {
      put_u32(payload, static_cast<std::uint32_t>(r.num("job client")));
      put_u64(payload, r.num("job seq"));
      put_u64(payload, r.num("job circuit id"));
      put_u64(payload, r.num("job observable id"));
      put_u64(payload, r.num("job stream", 16));
      put_i64(payload, r.snum("job timestamp"));
      const bool is_expect = r.num("job expect flag") != 0;
      const bool has_result = r.num("job result flag") != 0;
      put_u8(payload,
             static_cast<std::uint8_t>((is_expect ? kJobIsExpect : 0) |
                                       (has_result ? kJobHasResult : 0)));
      put_doubles(payload, r.doubles("job theta"));
      put_doubles(payload, r.doubles("job input"));
      if (has_result) {
        if (is_expect)
          put_u64(payload, r.num("job expect result", 16));
        else
          put_doubles(payload, r.doubles("job run result"));
      }
      Reader decode{payload};
      log.jobs.push_back(decode_job(decode));
    } else {
      throw TraceError("qoc trace: unknown text record '" + keyword + "'");
    }
  }
  return log;
}

bool logs_equal(const TraceLog& a, const TraceLog& b) {
  if (a.scenario != b.scenario || a.circuits.size() != b.circuits.size() ||
      a.observables.size() != b.observables.size() ||
      a.jobs.size() != b.jobs.size())
    return false;
  for (std::size_t i = 0; i < a.circuits.size(); ++i) {
    const auto& x = a.circuits[i];
    const auto& y = b.circuits[i];
    if (x.id != y.id || x.structure_hash != y.structure_hash ||
        x.fuse_1q != y.fuse_1q ||
        x.circuit.num_trainable() != y.circuit.num_trainable() ||
        x.circuit.num_inputs() != y.circuit.num_inputs() ||
        !exec::structure_equal(x.circuit, y.circuit))
      return false;
  }
  for (std::size_t i = 0; i < a.observables.size(); ++i) {
    const auto& x = a.observables[i];
    const auto& y = b.observables[i];
    if (x.id != y.id || x.n_qubits != y.n_qubits ||
        x.terms.size() != y.terms.size())
      return false;
    for (std::size_t t = 0; t < x.terms.size(); ++t)
      if (x.terms[t].paulis != y.terms[t].paulis ||
          std::bit_cast<std::uint64_t>(x.terms[t].coeff) !=
              std::bit_cast<std::uint64_t>(y.terms[t].coeff))
        return false;
  }
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.client != y.client || x.seq != y.seq ||
        x.circuit_id != y.circuit_id || x.observable_id != y.observable_id ||
        x.stream != y.stream || x.since_start != y.since_start ||
        x.is_expect != y.is_expect || x.has_result != y.has_result ||
        !doubles_equal_bitwise(x.theta, y.theta) ||
        !doubles_equal_bitwise(x.input, y.input) ||
        !doubles_equal_bitwise(x.run_result, y.run_result) ||
        std::bit_cast<std::uint64_t>(x.expect_result) !=
            std::bit_cast<std::uint64_t>(y.expect_result))
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

void Recorder::on_circuit(std::uint64_t circuit_id,
                          std::uint64_t structure_hash,
                          const circuit::Circuit& circuit,
                          const exec::CompileOptions& options) {
  const common::MutexLock lock(mutex_);
  log_.circuits.push_back(
      TracedCircuit{circuit_id, structure_hash, options.fuse_1q, circuit});
}

void Recorder::on_observable(std::uint64_t observable_id,
                             const exec::CompiledObservable& observable) {
  const common::MutexLock lock(mutex_);
  log_.observables.push_back(TracedObservable{
      observable_id, observable.num_qubits(), observable.terms()});
}

void Recorder::on_submit(std::uint32_t client, std::uint64_t seq,
                         std::uint64_t circuit_id, std::uint64_t observable_id,
                         std::span<const double> theta,
                         std::span<const double> input,
                         std::chrono::nanoseconds since_session_start,
                         std::uint64_t stream) {
  TracedJob job;
  job.client = client;
  job.seq = seq;
  job.circuit_id = circuit_id;
  job.observable_id = observable_id;
  job.stream = stream;
  job.since_start = since_session_start;
  job.is_expect = observable_id != 0;
  job.theta.assign(theta.begin(), theta.end());
  job.input.assign(input.begin(), input.end());
  const common::MutexLock lock(mutex_);
  job_of_stream_[stream] = log_.jobs.size();
  log_.jobs.push_back(std::move(job));
}

void Recorder::on_run_result(std::uint64_t stream,
                             std::span<const double> result) {
  const common::MutexLock lock(mutex_);
  const auto it = job_of_stream_.find(stream);
  if (it == job_of_stream_.end()) return;  // never submitted through us
  TracedJob& job = log_.jobs[it->second];
  job.run_result.assign(result.begin(), result.end());
  job.has_result = true;
}

void Recorder::on_expect_result(std::uint64_t stream, double result) {
  const common::MutexLock lock(mutex_);
  const auto it = job_of_stream_.find(stream);
  if (it == job_of_stream_.end()) return;
  TracedJob& job = log_.jobs[it->second];
  job.expect_result = result;
  job.has_result = true;
}

TraceLog Recorder::snapshot() const {
  const common::MutexLock lock(mutex_);
  return log_;
}

// ---------------------------------------------------------------------------
// Replayer
// ---------------------------------------------------------------------------

ReplayReport replay(const TraceLog& log, backend::Backend& backend,
                    const ReplayOptions& options) {
  // Validate the whole log before submitting anything: a half-replayed
  // stream against a broken log would poison the session under test.
  for (const auto& tc : log.circuits)
    if (exec::structure_hash(tc.circuit) != tc.structure_hash)
      throw TraceError(
          "qoc trace: structure hash mismatch for circuit id " +
          std::to_string(tc.id) + " (log drifted from its serialization)");
  serve::ServeOptions sopt = options.serve;
  sopt.trace_sink = nullptr;
  serve::ServeSession session(serve::BackendPool(backend, options.replicas),
                              sopt);
  std::unordered_map<std::uint64_t, serve::CircuitHandle> circuits;
  std::unordered_map<std::uint64_t, serve::ObservableHandle> observables;
  for (const auto& tc : log.circuits) {
    if (!circuits
             .emplace(tc.id, session.register_circuit(
                                 tc.circuit, exec::CompileOptions{tc.fuse_1q}))
             .second)
      throw TraceError("qoc trace: duplicate circuit id " +
                       std::to_string(tc.id));
  }
  for (const auto& to : log.observables) {
    exec::CompiledObservable obs = [&] {
      try {
        return exec::CompiledObservable::compile(to.n_qubits, to.terms);
      } catch (const std::exception& e) {
        throw TraceError(std::string("qoc trace: invalid observable id ") +
                         std::to_string(to.id) + ": " + e.what());
      }
    }();
    if (!observables.emplace(to.id, session.register_observable(std::move(obs)))
             .second)
      throw TraceError("qoc trace: duplicate observable id " +
                       std::to_string(to.id));
  }
  for (const auto& j : log.jobs) {
    if (j.stream != serve::ServeSession::client_stream(j.client, j.seq))
      throw TraceError("qoc trace: job stream does not match its "
                       "(client, seq) identity");
    if (j.is_expect != (j.observable_id != 0))
      throw TraceError("qoc trace: job expect flag / observable id mismatch");
    if (circuits.find(j.circuit_id) == circuits.end())
      throw TraceError("qoc trace: job references unknown circuit id " +
                       std::to_string(j.circuit_id));
    if (j.is_expect &&
        observables.find(j.observable_id) == observables.end())
      throw TraceError("qoc trace: job references unknown observable id " +
                       std::to_string(j.observable_id));
  }

  const auto start = obs::now();
  std::vector<std::future<std::vector<double>>> run_futures(log.jobs.size());
  std::vector<std::future<double>> expect_futures(log.jobs.size());
  for (std::size_t i = 0; i < log.jobs.size(); ++i) {
    const auto& j = log.jobs[i];
    if (options.paced) std::this_thread::sleep_until(start + j.since_start);
    if (j.is_expect)
      expect_futures[i] = session.submit_expect_pinned(
          j.client, j.seq, circuits.at(j.circuit_id),
          observables.at(j.observable_id), j.theta, j.input);
    else
      run_futures[i] = session.submit_pinned(
          j.client, j.seq, circuits.at(j.circuit_id), j.theta, j.input);
  }

  ReplayReport report;
  report.jobs = log.jobs.size();
  for (std::size_t i = 0; i < log.jobs.size(); ++i) {
    const auto& j = log.jobs[i];
    Divergence d;
    d.client = j.client;
    d.seq = j.seq;
    d.is_expect = j.is_expect;
    bool failed = false;
    std::vector<double> actual;
    try {
      if (j.is_expect)
        actual.push_back(expect_futures[i].get());
      else
        actual = run_futures[i].get();
    } catch (const std::exception& e) {
      failed = true;
      d.error = e.what();
    }
    if (!j.has_result) {
      // Recorded without a value (the original backend failed it):
      // nothing to compare against, whatever the replay produced.
      ++report.skipped;
      continue;
    }
    const std::vector<double> expected =
        j.is_expect ? std::vector<double>{j.expect_result} : j.run_result;
    if (!failed && doubles_equal_bitwise(expected, actual)) {
      ++report.matched;
      QOC_METRIC_COUNTER_ADD("qoc_replay_matched_total", 1);
    } else {
      ++report.diverged;
      QOC_METRIC_COUNTER_ADD("qoc_replay_divergences_total", 1);
      d.expected = expected;
      d.actual = std::move(actual);
      report.divergences.push_back(std::move(d));
    }
  }
  return report;
}

}  // namespace qoc::replay
