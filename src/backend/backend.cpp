#include "qoc/backend/backend.hpp"

#include <cmath>
#include <stdexcept>

#include "qoc/sim/density_matrix.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::backend {

using circuit::GateKind;

// ---------------------------------------------------------------------------
// StatevectorBackend
// ---------------------------------------------------------------------------

StatevectorBackend::StatevectorBackend(int shots, std::uint64_t seed)
    : shots_(shots), rng_(seed) {
  if (shots < 0) throw std::invalid_argument("StatevectorBackend: shots < 0");
}

std::vector<double> StatevectorBackend::execute(
    const circuit::Circuit& c, std::span<const double> theta,
    std::span<const double> input) {
  sim::Statevector sv(c.num_qubits());
  for (const auto& op : c.ops()) {
    const double angle = circuit::resolve_angle(op.param, theta, input);
    sv.apply_matrix(circuit::gate_matrix(op.kind, angle), op.qubits);
  }
  if (shots_ == 0) return sv.expectation_z_all();

  // Finite-shot estimate of each <Z_q>. The RNG draw is serialised so
  // concurrent run() calls (parallel batch gradients) stay safe.
  Prng shot_rng(0);
  {
    const std::lock_guard<std::mutex> lock(rng_mutex_);
    shot_rng = rng_.split();
  }
  const auto samples = sv.sample(shots_, shot_rng);
  const int n = c.num_qubits();
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  for (const auto s : samples) {
    for (int q = 0; q < n; ++q) {
      const std::uint64_t bit = (s >> (n - 1 - q)) & 1ULL;
      acc[static_cast<std::size_t>(q)] += bit ? -1.0 : 1.0;
    }
  }
  for (auto& v : acc) v /= static_cast<double>(shots_);
  return acc;
}

// ---------------------------------------------------------------------------
// DensityMatrixBackend
// ---------------------------------------------------------------------------

DensityMatrixBackend::DensityMatrixBackend(noise::DeviceModel device,
                                           Options options)
    : device_(std::move(device)), options_(options) {
  device_.validate();
  if (device_.n_qubits > 12)
    throw std::invalid_argument(
        "DensityMatrixBackend: device too large for O(4^n) simulation");
  if (options_.noise_scale < 0.0)
    throw std::invalid_argument("DensityMatrixBackend: negative noise_scale");
}

std::vector<double> DensityMatrixBackend::execute(
    const circuit::Circuit& c, std::span<const double> theta,
    std::span<const double> input) {
  const auto transpiled = transpile::transpile(c, theta, input, device_);
  const int n_phys = device_.n_qubits;
  const double scale = options_.noise_scale;

  // Pre-build channels once per execution.
  std::vector<noise::KrausChannel> relax_1q, relax_2q;
  if (options_.enable_relaxation) {
    for (const auto& cal : device_.qubits) {
      relax_1q.push_back(noise::thermal_relaxation(
          cal.t1_s, cal.t2_s, device_.gate_time_1q_s * scale));
      relax_2q.push_back(noise::thermal_relaxation(
          cal.t1_s, cal.t2_s, device_.gate_time_2q_s * scale));
    }
  }
  const noise::KrausChannel depol_1q =
      noise::depolarizing_1q(std::min(1.0, device_.err_1q * scale));
  const noise::KrausChannel depol_2q =
      noise::depolarizing_2q(std::min(1.0, device_.err_2q * scale));

  sim::DensityMatrix rho(n_phys);
  for (const auto& op : transpiled.ops) {
    rho.apply_unitary(circuit::gate_matrix(op.kind, op.angle), op.qubits);
    if (op.kind == GateKind::Rz) continue;  // virtual, error-free
    if (op.qubits.size() == 1) {
      if (options_.enable_gate_noise)
        rho.apply_channel(depol_1q.kraus(), op.qubits);
      if (options_.enable_relaxation)
        rho.apply_channel(
            relax_1q[static_cast<std::size_t>(op.qubits[0])].kraus(),
            op.qubits);
    } else {
      if (options_.enable_gate_noise)
        rho.apply_channel(depol_2q.kraus(), op.qubits);
      if (options_.enable_relaxation)
        for (const int q : op.qubits)
          rho.apply_channel(relax_2q[static_cast<std::size_t>(q)].kraus(),
                            {q});
    }
  }

  const auto z_phys = rho.expectation_z_all();
  std::vector<double> out(static_cast<std::size_t>(c.num_qubits()));
  for (int l = 0; l < c.num_qubits(); ++l) {
    const int phys = transpiled.final_layout[static_cast<std::size_t>(l)];
    double z = z_phys[static_cast<std::size_t>(phys)];
    if (options_.enable_readout_error) {
      const auto& cal = device_.qubits[static_cast<std::size_t>(phys)];
      const double e01 = cal.readout_err_0to1 * scale;
      const double e10 = cal.readout_err_1to0 * scale;
      // Exact effect of classical bit flips on <Z>.
      z = (1.0 - e01 - e10) * z + (e10 - e01);
    }
    out[static_cast<std::size_t>(l)] = z;
  }
  return out;
}

// ---------------------------------------------------------------------------
// NoisyBackend
// ---------------------------------------------------------------------------

NoisyBackend::NoisyBackend(noise::DeviceModel device,
                           NoisyBackendOptions options)
    : device_(std::move(device)), options_(options) {
  device_.validate();
  if (options_.trajectories < 1)
    throw std::invalid_argument("NoisyBackend: trajectories < 1");
  if (options_.shots < 1)
    throw std::invalid_argument("NoisyBackend: shots < 1");
  if (options_.noise_scale < 0.0)
    throw std::invalid_argument("NoisyBackend: negative noise_scale");
}

namespace {

/// Depolarizing error after a physical gate. For Pauli channels the branch
/// weights are state-independent, so we sample Paulis directly instead of
/// paying the generic Kraus-branch norm computation.
void inject_depolarizing(sim::Statevector& sv, const std::vector<int>& qubits,
                         double p, Prng& rng) {
  if (p <= 0.0) return;
  if (qubits.size() == 1) {
    // I with 1 - 3p/4, else X/Y/Z with p/4 each.
    const double u = rng.uniform();
    if (u >= 0.75 * p) return;
    const int which = static_cast<int>(u / (0.25 * p));
    switch (which) {
      case 0: sv.apply_pauli_x(qubits[0]); break;
      case 1: sv.apply_pauli_y(qubits[0]); break;
      default: sv.apply_pauli_z(qubits[0]); break;
    }
    return;
  }
  // Two-qubit: one of the 15 non-identity Pauli pairs w.p. p/16 each.
  const double u = rng.uniform();
  if (u >= 15.0 / 16.0 * p) return;
  const int idx = 1 + static_cast<int>(u / (p / 16.0));  // 1..15
  const int pa = idx >> 2;
  const int pb = idx & 3;
  auto apply_pauli = [&sv](int pauli, int q) {
    switch (pauli) {
      case 1: sv.apply_pauli_x(q); break;
      case 2: sv.apply_pauli_y(q); break;
      case 3: sv.apply_pauli_z(q); break;
      default: break;
    }
  };
  apply_pauli(pa, qubits[0]);
  apply_pauli(pb, qubits[1]);
}

}  // namespace

std::vector<double> NoisyBackend::execute(const circuit::Circuit& c,
                                          std::span<const double> theta,
                                          std::span<const double> input) {
  const auto transpiled = transpile::transpile(c, theta, input, device_);
  const int n_phys = device_.n_qubits;
  const int n_logical = c.num_qubits();

  const double scale = options_.noise_scale;
  const double p1 = options_.enable_gate_noise ? device_.err_1q * scale : 0.0;
  const double p2 = options_.enable_gate_noise ? device_.err_2q * scale : 0.0;

  // Pre-build per-qubit relaxation channels for the two gate durations.
  std::vector<noise::KrausChannel> relax_1q, relax_2q;
  if (options_.enable_relaxation) {
    relax_1q.reserve(static_cast<std::size_t>(n_phys));
    relax_2q.reserve(static_cast<std::size_t>(n_phys));
    for (const auto& cal : device_.qubits) {
      relax_1q.push_back(noise::thermal_relaxation(
          cal.t1_s, cal.t2_s, device_.gate_time_1q_s * scale));
      relax_2q.push_back(noise::thermal_relaxation(
          cal.t1_s, cal.t2_s, device_.gate_time_2q_s * scale));
    }
  }

  const int n_traj = options_.trajectories;
  const int shots_per_traj =
      std::max(1, options_.shots / n_traj);

  // Independent RNG stream per execution; trajectories split from it so
  // concurrent run() calls do not interleave draws.
  Prng exec_rng(options_.seed +
                0x9E3779B97F4A7C15ULL *
                    (run_serial_.fetch_add(1, std::memory_order_relaxed) + 1));

  std::vector<double> acc(static_cast<std::size_t>(n_logical), 0.0);
  std::uint64_t total_samples = 0;

  for (int traj = 0; traj < n_traj; ++traj) {
    Prng rng = exec_rng.split();
    sim::Statevector sv(n_phys);
    for (const auto& op : transpiled.ops) {
      sv.apply_matrix(circuit::gate_matrix(op.kind, op.angle), op.qubits);
      // Virtual RZ: frame change only, no physical pulse, no error.
      if (op.kind == GateKind::Rz) continue;
      if (op.qubits.size() == 1) {
        inject_depolarizing(sv, op.qubits, p1, rng);
        if (options_.enable_relaxation)
          relax_1q[static_cast<std::size_t>(op.qubits[0])].sample_and_apply(
              sv, {op.qubits[0]}, rng);
      } else {
        inject_depolarizing(sv, op.qubits, p2, rng);
        if (options_.enable_relaxation)
          for (int q : op.qubits)
            relax_2q[static_cast<std::size_t>(q)].sample_and_apply(sv, {q},
                                                                   rng);
      }
    }

    // Readout: sample bitstrings from the final state and apply per-qubit
    // classical flip errors.
    const auto samples = sv.sample(shots_per_traj, rng);
    for (const auto s : samples) {
      for (int l = 0; l < n_logical; ++l) {
        const int phys = transpiled.final_layout[static_cast<std::size_t>(l)];
        int bit = static_cast<int>((s >> (n_phys - 1 - phys)) & 1ULL);
        if (options_.enable_readout_error) {
          const auto& cal = device_.qubits[static_cast<std::size_t>(phys)];
          const noise::ReadoutError ro{cal.readout_err_0to1 * scale,
                                       cal.readout_err_1to0 * scale};
          bit = ro.apply(bit, rng);
        }
        acc[static_cast<std::size_t>(l)] += bit ? -1.0 : 1.0;
      }
      ++total_samples;
    }
  }

  for (auto& v : acc) v /= static_cast<double>(total_samples);
  return acc;
}

double NoisyBackend::estimate_duration_s(const circuit::Circuit& c,
                                         std::span<const double> theta,
                                         std::span<const double> input) const {
  const auto t = transpile::transpile(c, theta, input, device_);
  return transpile::estimated_duration_s(t, device_);
}

}  // namespace qoc::backend
