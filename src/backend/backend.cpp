#include "qoc/backend/backend.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "qoc/common/parallel.hpp"
#include "qoc/sim/batched_statevector.hpp"
#include "qoc/sim/cost_model.hpp"
#include "qoc/sim/density_matrix.hpp"
#include "qoc/sim/gates.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::backend {

using circuit::GateKind;
using linalg::cplx;
using linalg::kI;
using linalg::Matrix;

// ---------------------------------------------------------------------------
// Backend base: plan cache + compatibility batch path
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kPlanCacheCap = 512;
constexpr std::size_t kTranspileCacheCap = 128;
}  // namespace

std::shared_ptr<const exec::CompiledCircuit> Backend::plan_cached(
    const circuit::Circuit& c) {
  // Probe with an allocation-free streaming hash + field-wise compare;
  // the signature string is only materialised inside compile() on a miss.
  const std::uint64_t h = exec::structure_hash(c);

  const common::MutexLock lock(plan_cache_mutex_);
  if (plan_cache_entries_ >= kPlanCacheCap) {
    plan_cache_.clear();
    plan_cache_entries_ = 0;
  }
  auto& bucket = plan_cache_[h];
  for (const auto& plan : bucket)
    if (exec::structure_equal(c, plan->source())) return plan;
  bucket.push_back(std::make_shared<const exec::CompiledCircuit>(
      exec::CompiledCircuit::compile(c)));
  ++plan_cache_entries_;
  return bucket.back();
}

std::vector<std::vector<double>> Backend::execute_batch(
    const exec::CompiledCircuit& plan, std::span<const exec::Evaluation> evals,
    unsigned threads) {
  // Compatibility path for backends that only implement execute():
  // materialise each evaluation as a concrete circuit. No amortisation,
  // but identical semantics.
  (void)threads;  // sequential: execute() need not be thread-safe here
  const circuit::Circuit& src = plan.source();
  std::vector<std::vector<double>> results(evals.size());
  for (std::size_t k = 0; k < evals.size(); ++k) {
    const auto& e = evals[k];
    if (e.shift_op == exec::Evaluation::kNoShift) {
      results[k] = execute(src, e.theta, e.input);
      continue;
    }
    if (e.shift_op >= src.num_ops())
      throw std::out_of_range("execute_batch: shift op index");
    circuit::Circuit shifted(src.num_qubits());
    for (std::size_t i = 0; i < src.num_ops(); ++i) {
      const auto& op = src.op(i);
      circuit::ParamRef p = op.param;
      if (i == e.shift_op) {
        if (!circuit::gate_is_parameterised(op.kind))
          throw std::invalid_argument(
              "execute_batch: shift op not parameterised");
        p.value += e.shift;
      }
      shifted.add(op.kind, op.qubits, p);
    }
    results[k] = execute(shifted, e.theta, e.input);
  }
  return results;
}

std::vector<double> Backend::execute_expect_batch(
    const exec::CompiledCircuit& plan,
    const exec::CompiledObservable& observable,
    std::span<const exec::Evaluation> evals, unsigned threads) {
  // Joint Pauli products (<Z_i Z_j ...>) cannot be reconstructed from
  // execute()'s per-qubit <Z_q>, so there is no generic fallback.
  (void)plan;
  (void)observable;
  (void)evals;
  (void)threads;
  throw std::logic_error(name() +
                         ": expect_batch requires native state access");
}

// ---------------------------------------------------------------------------
// TranspileCache
// ---------------------------------------------------------------------------

std::shared_ptr<const transpile::RoutedProgram> TranspileCache::get(
    const exec::CompiledCircuit& plan, const noise::DeviceModel& device) {
  // Probe by the cheap structure hash, but NEVER trust a hash hit alone:
  // structure_hash() explicitly allows collisions, and serving a
  // colliding entry would execute the wrong routed program. Every hit is
  // verified against the full canonical signature.
  const common::MutexLock lock(mutex_);
  const auto it = cache_.find(plan.structure_hash());
  if (it != cache_.end())
    for (const auto& [sig, tmpl] : it->second)
      if (sig == plan.signature()) {
        QOC_METRIC_COUNTER_ADD("qoc_transpile_cache_hits_total", 1);
        return tmpl;
      }
  QOC_METRIC_COUNTER_ADD("qoc_transpile_cache_misses_total", 1);
  if (entries_ >= kTranspileCacheCap) {
    cache_.clear();
    entries_ = 0;
  }
  // Route before touching the map: route_template throws for unroutable
  // circuits, and an early insert would leak an empty bucket the
  // entries_ cap never sees.
  auto tmpl = std::make_shared<const transpile::RoutedProgram>(
      transpile::route_template(plan.source(), device), device.n_qubits);
  cache_[plan.structure_hash()].emplace_back(plan.signature(), tmpl);
  ++entries_;
  return tmpl;
}

// ---------------------------------------------------------------------------
// StatevectorBackend
// ---------------------------------------------------------------------------

StatevectorBackend::StatevectorBackend(int shots, std::uint64_t seed)
    : StatevectorBackend(StatevectorBackendOptions{shots, seed}) {}

StatevectorBackend::StatevectorBackend(const StatevectorBackendOptions& options)
    : shots_(options.shots),
      seed_(options.seed),
      batch_lanes_(options.batch_lanes),
      rng_(options.seed) {
  if (options.shots < 0)
    throw std::invalid_argument("StatevectorBackend: shots < 0");
}

std::vector<double> StatevectorBackend::execute(
    const circuit::Circuit& c, std::span<const double> theta,
    std::span<const double> input) {
  return execute_single(*plan_cached(c), theta, input);
}

namespace {

/// Finite-shot estimate of each <Z_q> from full-register samples.
std::vector<double> expectations_from_samples(
    const std::vector<std::uint64_t>& samples, int n_qubits, int shots) {
  std::vector<double> acc(static_cast<std::size_t>(n_qubits), 0.0);
  for (const auto s : samples) {
    for (int q = 0; q < n_qubits; ++q) {
      const std::uint64_t bit = (s >> (n_qubits - 1 - q)) & 1ULL;
      acc[static_cast<std::size_t>(q)] += bit ? -1.0 : 1.0;
    }
  }
  for (auto& v : acc) v /= static_cast<double>(shots);
  return acc;
}

/// One lane group of an evaluation-major partition. `evals` always
/// holds part.lanes entries -- the compacted ragged tail's final group
/// is padded by repeating its last real evaluation -- and first/real
/// locate the real work: results and RNG streams exist only for lanes
/// l < real; padding lanes compute a discarded state and never touch a
/// stream.
struct LaneGroup {
  std::span<const exec::Evaluation> evals;
  std::size_t first = 0;
  std::size_t real = 0;
};

LaneGroup lane_group(std::span<const exec::Evaluation> evals,
                     const sim::LanePartition& part, std::size_t g,
                     std::vector<exec::Evaluation>& padded_scratch) {
  const std::size_t first = g * part.lanes;
  if (g < part.full_groups)
    return {evals.subspan(first, part.lanes), first, part.lanes};
  const auto tail = evals.subspan(first, part.padded_evals);
  padded_scratch.assign(tail.begin(), tail.end());
  padded_scratch.resize(part.lanes, tail.back());
  return {padded_scratch, first, part.padded_evals};
}

/// Lane-policy observability: how much of a dispatch ran k-wide, how
/// many padding lanes the compacted ragged tail burned, and how many
/// work items fell through to the scalar path. Counts work items
/// (evaluations or noise trajectories), never drives control flow.
void note_lane_metrics(const sim::LanePartition& part, std::size_t total) {
  if (part.lanes > 1) {
    QOC_METRIC_COUNTER_ADD("qoc_sim_lane_wide_groups_total", part.groups());
    QOC_METRIC_COUNTER_ADD("qoc_sim_lane_wide_evals_total", part.tail_start);
    if (part.padded_evals > 0) {
      QOC_METRIC_COUNTER_ADD("qoc_sim_lane_tail_compacted_evals_total",
                             part.padded_evals);
      QOC_METRIC_COUNTER_ADD("qoc_sim_lane_tail_padding_lanes_total",
                             part.lanes - part.padded_evals);
    }
  }
  QOC_METRIC_COUNTER_ADD("qoc_sim_lane_scalar_evals_total",
                         total - part.tail_start);
}

}  // namespace

std::vector<std::vector<double>> StatevectorBackend::execute_batch(
    const exec::CompiledCircuit& plan, std::span<const exec::Evaluation> evals,
    unsigned threads) {
  const int n = plan.num_qubits();
  std::vector<std::vector<double>> results(evals.size());

  // Evaluation-major partition: lane groups execute k evaluations at a
  // time on a BatchedStatevector -- the final group of a ragged batch
  // may be padded (tail compaction) -- and the scalar loop handles
  // whatever the partition left over (the whole batch when the
  // calibrated cost model says lanes == 1). Lane L of a group evolves
  // bit-identically to the scalar path and padding lanes are discarded,
  // so the partition is invisible in the results.
  const sim::LanePartition part =
      sim::partition_lanes(n, evals.size(), batch_lanes_);
  const std::size_t lanes = part.lanes;
  note_lane_metrics(part, evals.size());
  // `lanes` is the cost model's k-wide SoA verdict; the span shows how
  // much of a served batch actually ran grouped vs on the scalar tail.
  QOC_TRACE_SPAN_ARG("kernel", "sv_batch", "lanes",
                     static_cast<std::int64_t>(lanes));

  if (shots_ == 0) {
    // Exact mode: stateless, lock-free; scales linearly with threads.
    // Chunked so the angle buffer and statevector are constructed once
    // per worker chunk instead of once per evaluation.
    if (part.groups() > 0) {
      parallel_for_chunked(
          0, part.groups(),
          [&](std::size_t glo, std::size_t ghi) {
            std::vector<double> angles;
            std::vector<double> zexp;
            std::vector<exec::Evaluation> padded;
            sim::BatchedStatevector bsv(n, lanes);
            for (std::size_t g = glo; g < ghi; ++g) {
              const LaneGroup grp = lane_group(evals, part, g, padded);
              plan.resolve_slots_lanes(grp.evals, angles);
              bsv.reset();
              plan.apply_batched(bsv, angles);
              // One fused measurement pass for the whole lane group
              // (bit-identical per lane to expectation_z_all(l)).
              bsv.expectation_z_all_lanes(zexp);
              for (std::size_t l = 0; l < grp.real; ++l) {
                auto& r = results[grp.first + l];
                r.resize(static_cast<std::size_t>(n));
                for (int q = 0; q < n; ++q)
                  r[static_cast<std::size_t>(q)] = zexp[
                      static_cast<std::size_t>(q) * lanes + l];
              }
            }
          },
          threads);
    }
    parallel_for_chunked(
        part.tail_start, evals.size(),
        [&](std::size_t lo, std::size_t hi) {
          std::vector<double> angles;
          sim::Statevector sv(n);
          for (std::size_t k = lo; k < hi; ++k) {
            const auto& e = evals[k];
            plan.resolve_slots(e.theta, e.input, e.shift_op, e.shift, angles);
            sv.reset();
            plan.apply(sv, angles);
            results[k] = sv.expectation_z_all();
          }
        },
        threads);
    return results;
  }

  // Sampled mode: derive one RNG stream per evaluation before any worker
  // starts. Auto evaluations split from the shared generator in
  // submission order (exactly the split sequence a loop of run() calls
  // would draw); evaluations that pinned Evaluation::rng_stream get the
  // pure-function-of-(seed, stream) generator instead and consume no
  // split, so their results are independent of batch composition. Lane
  // grouping happens downstream of this assignment and each lane samples
  // from its own evaluation's stream, so grouping cannot reorder draws.
  std::vector<Prng> rngs;
  rngs.reserve(evals.size());
  {
    const common::MutexLock lock(rng_mutex_);
    for (std::size_t k = 0; k < evals.size(); ++k)
      rngs.push_back(evals[k].rng_stream == exec::Evaluation::kAutoStream
                         ? rng_.split()
                         : stream_rng(evals[k].rng_stream));
  }
  if (part.groups() > 0) {
    parallel_for_chunked(
        0, part.groups(),
        [&](std::size_t glo, std::size_t ghi) {
          std::vector<double> angles;
          std::vector<exec::Evaluation> padded;
          sim::BatchedStatevector bsv(n, lanes);
          for (std::size_t g = glo; g < ghi; ++g) {
            const LaneGroup grp = lane_group(evals, part, g, padded);
            plan.resolve_slots_lanes(grp.evals, angles);
            bsv.reset();
            plan.apply_batched(bsv, angles);
            for (std::size_t l = 0; l < grp.real; ++l) {
              const std::size_t k = grp.first + l;
              const auto samples = bsv.sample(l, shots_, rngs[k]);
              results[k] = expectations_from_samples(samples, n, shots_);
            }
          }
        },
        threads);
  }
  parallel_for_chunked(
      part.tail_start, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> angles;
        sim::Statevector sv(n);
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& e = evals[k];
          plan.resolve_slots(e.theta, e.input, e.shift_op, e.shift, angles);
          sv.reset();
          plan.apply(sv, angles);
          const auto samples = sv.sample(shots_, rngs[k]);
          results[k] = expectations_from_samples(samples, n, shots_);
        }
      },
      threads);
  return results;
}

std::vector<double> StatevectorBackend::execute_expect_batch(
    const exec::CompiledCircuit& plan,
    const exec::CompiledObservable& observable,
    std::span<const exec::Evaluation> evals, unsigned threads) {
  const int n = plan.num_qubits();
  const std::size_t n_groups = observable.groups().size();
  std::vector<double> results(evals.size());

  // Same evaluation-major partition as execute_batch (tail compaction
  // included).
  const sim::LanePartition part =
      sim::partition_lanes(n, evals.size(), batch_lanes_);
  const std::size_t lanes = part.lanes;
  note_lane_metrics(part, evals.size());
  QOC_TRACE_SPAN_ARG("kernel", "sv_expect_batch", "lanes",
                     static_cast<std::int64_t>(lanes));

  if (shots_ == 0) {
    // Exact mode: one state per evaluation, every term analytic. The
    // per-term loop inside CompiledObservable::expectation is
    // bit-identical to vqe::Hamiltonian::expectation; the lane path
    // replays the same loop with each term's Pauli product applied once
    // per lane group.
    add_inferences(evals.size());
    if (part.groups() > 0) {
      parallel_for_chunked(
          0, part.groups(),
          [&](std::size_t glo, std::size_t ghi) {
            std::vector<double> angles;
            std::vector<double> lane_out;
            std::vector<exec::Evaluation> padded;
            sim::BatchedStatevector bsv(n, lanes);
            for (std::size_t g = glo; g < ghi; ++g) {
              const LaneGroup grp = lane_group(evals, part, g, padded);
              plan.resolve_slots_lanes(grp.evals, angles);
              bsv.reset();
              plan.apply_batched(bsv, angles);
              // Full-width scratch: a padded group still computes every
              // lane; only the real entries land in results.
              lane_out.assign(lanes, 0.0);
              observable.expectation_lanes(bsv, lane_out);
              for (std::size_t l = 0; l < grp.real; ++l)
                results[grp.first + l] = lane_out[l];
            }
          },
          threads);
    }
    parallel_for_chunked(
        part.tail_start, evals.size(),
        [&](std::size_t lo, std::size_t hi) {
          std::vector<double> angles;
          sim::Statevector sv(n);
          for (std::size_t k = lo; k < hi; ++k) {
            const auto& e = evals[k];
            plan.resolve_slots(e.theta, e.input, e.shift_op, e.shift, angles);
            sv.reset();
            plan.apply(sv, angles);
            results[k] = observable.expectation(sv);
          }
        },
        threads);
    return results;
  }

  // Sampled mode: one ansatz preparation per evaluation, one measured
  // execution per commuting group (basis-change suffix + Z sampling).
  // Per-evaluation RNG streams are assigned in submission order and
  // consumed sequentially within the evaluation, so results are
  // deterministic and thread-count invariant. The lane path iterates
  // groups outer / lanes inner, so each lane's stream still sees its
  // groups in the same order as the scalar path -- identical draws.
  add_inferences(evals.size() * n_groups);
  std::vector<Prng> rngs;
  rngs.reserve(evals.size());
  {
    // Same stream assignment as execute_batch: submission-order splits
    // for auto evaluations, pinned streams consume no split.
    const common::MutexLock lock(rng_mutex_);
    for (std::size_t k = 0; k < evals.size(); ++k)
      rngs.push_back(evals[k].rng_stream == exec::Evaluation::kAutoStream
                         ? rng_.split()
                         : stream_rng(evals[k].rng_stream));
  }
  if (part.groups() > 0) {
    parallel_for_chunked(
        0, part.groups(),
        [&](std::size_t glo, std::size_t ghi) {
          std::vector<double> angles;
          std::vector<exec::Evaluation> padded;
          sim::BatchedStatevector bsv(n, lanes);
          sim::BatchedStatevector bmeas(n, lanes);  // suffix scratch
          for (std::size_t g = glo; g < ghi; ++g) {
            const LaneGroup grp = lane_group(evals, part, g, padded);
            plan.resolve_slots_lanes(grp.evals, angles);
            bsv.reset();
            plan.apply_batched(bsv, angles);
            for (std::size_t l = 0; l < grp.real; ++l)
              results[grp.first + l] = observable.constant();
            for (std::size_t gi = 0; gi < n_groups; ++gi) {
              // One suffix application per lane group per commuting
              // group (not per lane); all-Z groups skip the copy.
              const sim::BatchedStatevector* src = &bsv;
              if (!observable.groups()[gi].suffix.empty()) {
                bmeas = bsv;
                observable.apply_suffix_lanes(bmeas, gi);
                src = &bmeas;
              }
              for (std::size_t l = 0; l < grp.real; ++l) {
                const std::size_t k = grp.first + l;
                const auto samples = src->sample(l, shots_, rngs[k]);
                results[k] +=
                    observable.group_energy_from_samples(samples, gi, shots_);
              }
            }
          }
        },
        threads);
  }
  parallel_for_chunked(
      part.tail_start, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> angles;
        sim::Statevector sv(n);
        sim::Statevector meas(n);  // per-group scratch, buffer reused
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& e = evals[k];
          plan.resolve_slots(e.theta, e.input, e.shift_op, e.shift, angles);
          sv.reset();
          plan.apply(sv, angles);
          double energy = observable.constant();
          for (std::size_t g = 0; g < n_groups; ++g) {
            // All-Z groups have no suffix: sample the prepared state
            // directly instead of paying an O(2^n) copy.
            const sim::Statevector* src = &sv;
            if (!observable.groups()[g].suffix.empty()) {
              meas = sv;
              observable.apply_suffix(meas, g);
              src = &meas;
            }
            const auto samples = src->sample(shots_, rngs[k]);
            energy += observable.group_energy_from_samples(samples, g, shots_);
          }
          results[k] = energy;
        }
      },
      threads);
  return results;
}

// ---------------------------------------------------------------------------
// DensityMatrixBackend
// ---------------------------------------------------------------------------

DensityMatrixBackend::DensityMatrixBackend(noise::DeviceModel device,
                                           Options options)
    : device_(std::move(device)), options_(options) {
  device_.validate();
  if (device_.n_qubits > 12)
    throw std::invalid_argument(
        "DensityMatrixBackend: device too large for O(4^n) simulation");
  if (options_.noise_scale < 0.0)
    throw std::invalid_argument("DensityMatrixBackend: negative noise_scale");
}

sim::DensityMatrix DensityMatrixBackend::evolve_transpiled(
    const transpile::Transpiled& t) const {
  const int n_phys = device_.n_qubits;
  const double scale = options_.noise_scale;

  // Pre-build channels once per execution.
  std::vector<noise::KrausChannel> relax_1q, relax_2q;
  if (options_.enable_relaxation) {
    for (const auto& cal : device_.qubits) {
      relax_1q.push_back(noise::thermal_relaxation(
          cal.t1_s, cal.t2_s, device_.gate_time_1q_s * scale));
      relax_2q.push_back(noise::thermal_relaxation(
          cal.t1_s, cal.t2_s, device_.gate_time_2q_s * scale));
    }
  }
  const noise::KrausChannel depol_1q =
      noise::depolarizing_1q(std::min(1.0, device_.err_1q * scale));
  const noise::KrausChannel depol_2q =
      noise::depolarizing_2q(std::min(1.0, device_.err_2q * scale));

  sim::DensityMatrix rho(n_phys);
  for (const auto& op : t.ops) {
    rho.apply_unitary(circuit::gate_matrix(op.kind, op.angle), op.qubits);
    if (op.kind == GateKind::Rz) continue;  // virtual, error-free
    if (op.qubits.size() == 1) {
      if (options_.enable_gate_noise)
        rho.apply_channel(depol_1q.kraus(), op.qubits);
      if (options_.enable_relaxation)
        rho.apply_channel(
            relax_1q[static_cast<std::size_t>(op.qubits[0])].kraus(),
            op.qubits);
    } else {
      if (options_.enable_gate_noise)
        rho.apply_channel(depol_2q.kraus(), op.qubits);
      if (options_.enable_relaxation)
        for (const int q : op.qubits)
          rho.apply_channel(relax_2q[static_cast<std::size_t>(q)].kraus(),
                            {q});
    }
  }
  return rho;
}

std::vector<double> DensityMatrixBackend::run_transpiled(
    const transpile::Transpiled& t, int n_logical) const {
  const double scale = options_.noise_scale;
  const sim::DensityMatrix rho = evolve_transpiled(t);
  const auto z_phys = rho.expectation_z_all();
  std::vector<double> out(static_cast<std::size_t>(n_logical));
  for (int l = 0; l < n_logical; ++l) {
    const int phys = t.final_layout[static_cast<std::size_t>(l)];
    double z = z_phys[static_cast<std::size_t>(phys)];
    if (options_.enable_readout_error) {
      const auto& cal = device_.qubits[static_cast<std::size_t>(phys)];
      const double e01 = cal.readout_err_0to1 * scale;
      const double e10 = cal.readout_err_1to0 * scale;
      // Exact effect of classical bit flips on <Z>.
      z = (1.0 - e01 - e10) * z + (e10 - e01);
    }
    out[static_cast<std::size_t>(l)] = z;
  }
  return out;
}

std::vector<double> DensityMatrixBackend::execute(
    const circuit::Circuit& c, std::span<const double> theta,
    std::span<const double> input) {
  return execute_single(*plan_cached(c), theta, input);
}

std::vector<std::vector<double>> DensityMatrixBackend::execute_batch(
    const exec::CompiledCircuit& plan, std::span<const exec::Evaluation> evals,
    unsigned threads) {
  const auto tmpl = transpile_cache_.get(plan, device_);
  std::vector<std::vector<double>> results(evals.size());
  parallel_for_chunked(
      0, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> angles;
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& e = evals[k];
          plan.resolve_source_angles(e.theta, e.input, e.shift_op, e.shift,
                                     angles);
          const auto t = tmpl->transpile(angles);
          results[k] = run_transpiled(t, plan.num_qubits());
        }
      },
      threads);
  return results;
}

std::vector<double> DensityMatrixBackend::execute_expect_batch(
    const exec::CompiledCircuit& plan,
    const exec::CompiledObservable& observable,
    std::span<const exec::Evaluation> evals, unsigned threads) {
  const auto tmpl = transpile_cache_.get(plan, device_);
  const int n_logical = plan.num_qubits();
  const int n_phys = device_.n_qubits;
  const double scale = options_.noise_scale;
  std::vector<double> results(evals.size());
  // One exact noisy evolution per evaluation; every group's terms are
  // then read from the final density matrix (deterministic oracle, so a
  // single execution is counted per evaluation).
  add_inferences(evals.size());
  parallel_for_chunked(
      0, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> angles;
        sim::DensityMatrix meas(n_phys);  // per-group scratch, buffer reused
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& e = evals[k];
          plan.resolve_source_angles(e.theta, e.input, e.shift_op, e.shift,
                                     angles);
          const auto t = tmpl->transpile(angles);
          const sim::DensityMatrix rho = evolve_transpiled(t);

          double energy = observable.constant();
          for (std::size_t g = 0; g < observable.groups().size(); ++g) {
            const auto& group = observable.groups()[g];
            // Ideal basis-change suffix on the measured physical qubits;
            // all-Z groups have none, so read rho directly instead of
            // paying an O(4^n) copy.
            const sim::DensityMatrix* src = &rho;
            if (!group.suffix.empty()) {
              meas = rho;
              for (const auto& bc : group.suffix) {
                const int phys =
                    t.final_layout[static_cast<std::size_t>(bc.qubit)];
                if (bc.y) meas.apply_unitary(sim::gate_sdg(), {phys});
                meas.apply_unitary(sim::gate_h(), {phys});
              }
              src = &meas;
            }
            const auto probs = src->probabilities();
            for (const auto& term : group.terms) {
              // E[prod (-1)^{b'_q}] with independent classical readout
              // flips: condition on each basis state and multiply the
              // per-qubit flip-adjusted parities.
              double acc = 0.0;
              for (std::size_t s = 0; s < probs.size(); ++s) {
                double f = probs[s];
                for (int q = 0; q < n_logical; ++q) {
                  if (!(term.z_mask &
                        exec::CompiledObservable::qubit_bit(q, n_logical)))
                    continue;
                  const int phys =
                      t.final_layout[static_cast<std::size_t>(q)];
                  const int bit = static_cast<int>(
                      (s >> (n_phys - 1 - phys)) & 1ULL);
                  double z = bit ? -1.0 : 1.0;
                  if (options_.enable_readout_error) {
                    const auto& cal =
                        device_.qubits[static_cast<std::size_t>(phys)];
                    const double e01 = cal.readout_err_0to1 * scale;
                    const double e10 = cal.readout_err_1to0 * scale;
                    z = (1.0 - e01 - e10) * z + (e10 - e01);
                  }
                  f *= z;
                }
                acc += f;
              }
              energy += term.coeff * acc;
            }
          }
          results[k] = energy;
        }
      },
      threads);
  return results;
}

// ---------------------------------------------------------------------------
// NoisyBackend
// ---------------------------------------------------------------------------

NoisyBackend::NoisyBackend(noise::DeviceModel device,
                           NoisyBackendOptions options)
    : device_(std::move(device)), options_(options) {
  device_.validate();
  if (options_.trajectories < 1)
    throw std::invalid_argument("NoisyBackend: trajectories < 1");
  if (options_.shots < 1)
    throw std::invalid_argument("NoisyBackend: shots < 1");
  if (options_.noise_scale < 0.0)
    throw std::invalid_argument("NoisyBackend: negative noise_scale");
}

namespace {

/// Depolarizing error after a physical gate. For Pauli channels the branch
/// weights are state-independent, so we sample Paulis directly instead of
/// paying the generic Kraus-branch norm computation.
void inject_depolarizing(sim::Statevector& sv, int q0, int q1, double p,
                         Prng& rng) {
  if (p <= 0.0) return;
  if (q1 < 0) {
    // I with 1 - 3p/4, else X/Y/Z with p/4 each.
    const double u = rng.uniform();
    if (u >= 0.75 * p) return;
    const int which = static_cast<int>(u / (0.25 * p));
    switch (which) {
      case 0: sv.apply_pauli_x(q0); break;
      case 1: sv.apply_pauli_y(q0); break;
      default: sv.apply_pauli_z(q0); break;
    }
    return;
  }
  // Two-qubit: one of the 15 non-identity Pauli pairs w.p. p/16 each.
  const double u = rng.uniform();
  if (u >= 15.0 / 16.0 * p) return;
  const int idx = 1 + static_cast<int>(u / (p / 16.0));  // 1..15
  const int pa = idx >> 2;
  const int pb = idx & 3;
  auto apply_pauli = [&sv](int pauli, int q) {
    switch (pauli) {
      case 1: sv.apply_pauli_x(q); break;
      case 2: sv.apply_pauli_y(q); break;
      case 3: sv.apply_pauli_z(q); break;
      default: break;
    }
  };
  apply_pauli(pa, q0);
  apply_pauli(pb, q1);
}

/// Depolarizing error on ONE lane of a k-wide trajectory group: the
/// same draw and branch selection as inject_depolarizing, with the
/// Paulis applied through the single-lane kernels (bit-identical on
/// that lane, every other lane untouched).
void inject_depolarizing_lane(sim::BatchedStatevector& bsv, std::size_t lane,
                              int q0, int q1, double p, Prng& rng) {
  if (p <= 0.0) return;
  if (q1 < 0) {
    const double u = rng.uniform();
    if (u >= 0.75 * p) return;
    const int which = static_cast<int>(u / (0.25 * p));
    switch (which) {
      case 0: bsv.apply_pauli_x_lane(q0, lane); break;
      case 1: bsv.apply_pauli_y_lane(q0, lane); break;
      default: bsv.apply_pauli_z_lane(q0, lane); break;
    }
    return;
  }
  const double u = rng.uniform();
  if (u >= 15.0 / 16.0 * p) return;
  const int idx = 1 + static_cast<int>(u / (p / 16.0));  // 1..15
  const int pa = idx >> 2;
  const int pb = idx & 3;
  auto apply_pauli = [&bsv, lane](int pauli, int q) {
    switch (pauli) {
      case 1: bsv.apply_pauli_x_lane(q, lane); break;
      case 2: bsv.apply_pauli_y_lane(q, lane); break;
      case 3: bsv.apply_pauli_z_lane(q, lane); break;
      default: break;
    }
  };
  apply_pauli(pa, q0);
  apply_pauli(pb, q1);
}

/// Per-evaluation trajectory program: the transpiled op stream with all
/// structure-dependent work (matrix construction, kernel selection, noise
/// classification) hoisted out of the trajectory loop. With 64
/// trajectories per execution this alone removes 64x redundant gate-matrix
/// builds per op. The lowered basis is exactly {RZ, SX, X, CX}; anything
/// else is a pipeline bug and throws rather than degrading the noise
/// model silently.
struct TrajectoryProgram {
  enum class K : std::uint8_t { Rz, Sx, X, Cx, Diag2q };
  struct Op {
    K k;
    int q0 = -1, q1 = -1;
    cplx d0, d1;  // Rz diagonal; Diag2q applies (d0, d1, d1, d0)
  };
  std::vector<Op> ops;
  Matrix sx = sim::gate_sx();

  /// `fuse_cx_rz_cx` folds every adjacent CX a b; RZ(t) b; CX a b triple
  /// (the lowered form of an RZZ core) into one Diag2q op. The fusion is
  /// bit-identical -- each amplitude receives exactly one multiplication
  /// by the same diagonal entry -- but it elides two noise injection
  /// points, so callers must only enable it when the noise tables inject
  /// nothing between physical gates (NoiseTables::gates_are_noiseless).
  explicit TrajectoryProgram(const transpile::Transpiled& t,
                             bool fuse_cx_rz_cx = false) {
    ops.reserve(t.ops.size());
    for (const auto& bop : t.ops) {
      Op op;
      op.q0 = bop.qubits[0];
      switch (bop.kind) {
        case GateKind::Rz:
          op.k = K::Rz;
          op.d0 = std::exp(-kI * (bop.angle / 2.0));
          op.d1 = std::exp(kI * (bop.angle / 2.0));
          break;
        case GateKind::Sx:
          op.k = K::Sx;
          break;
        case GateKind::X:
          op.k = K::X;
          break;
        case GateKind::Cx:
          op.k = K::Cx;
          op.q1 = bop.qubits[1];
          if (fuse_cx_rz_cx && ops.size() >= 2) {
            // Match [Cx(a,b), Rz(b), Cx(a,b)] just completed by this op:
            // CX conjugation of a target diagonal is diag(d0, d1, d1, d0)
            // over (control, target).
            const Op& rz = ops[ops.size() - 1];
            const Op& cx = ops[ops.size() - 2];
            if (cx.k == K::Cx && rz.k == K::Rz && cx.q0 == op.q0 &&
                cx.q1 == op.q1 && rz.q0 == op.q1) {
              Op fused;
              fused.k = K::Diag2q;
              fused.q0 = op.q0;
              fused.q1 = op.q1;
              fused.d0 = rz.d0;
              fused.d1 = rz.d1;
              ops.pop_back();
              ops.pop_back();
              ops.push_back(fused);
              continue;
            }
          }
          break;
        default:
          throw std::logic_error("TrajectoryProgram: unexpected gate '" +
                                 circuit::gate_name(bop.kind) +
                                 "' in transpiled stream");
      }
      ops.push_back(op);
    }
  }

  void apply(sim::Statevector& sv, const Op& op) const {
    switch (op.k) {
      case K::Rz:
        sv.apply_diag_1q(op.d0, op.d1, op.q0);
        break;
      case K::Sx:
        sv.apply_1q(sx, op.q0);
        break;
      case K::X:
        sv.apply_pauli_x(op.q0);
        break;
      case K::Cx:
        sv.apply_cx(op.q0, op.q1);
        break;
      case K::Diag2q:
        sv.apply_diag_2q(op.d0, op.d1, op.d1, op.d0, op.q0, op.q1);
        break;
    }
  }

  /// Same op on every lane of a k-wide trajectory group. The transpiled
  /// gate stream is binding-independent, so all trajectories share it;
  /// per lane each uniform application is bit-identical to apply() on
  /// that lane's state (the batched kernels' per-lane contract).
  void apply_lanes(sim::BatchedStatevector& bsv, const Op& op) const {
    switch (op.k) {
      case K::Rz:
        bsv.apply_diag_1q(op.d0, op.d1, op.q0);
        break;
      case K::Sx:
        bsv.apply_1q(sx, op.q0);
        break;
      case K::X:
        bsv.apply_pauli_x(op.q0);
        break;
      case K::Cx:
        bsv.apply_cx(op.q0, op.q1);
        break;
      case K::Diag2q:
        bsv.apply_diag_2q(op.d0, op.d1, op.d1, op.d0, op.q0, op.q1);
        break;
    }
  }
};

}  // namespace

/// Batch-invariant noise model tables: everything the trajectory loop
/// consumes that depends only on (device, options). Built once per
/// batched call -- per-evaluation construction was pure redundant work
/// (identical channels every time).
struct NoisyBackend::NoiseTables {
  double p1 = 0.0, p2 = 0.0;
  bool relaxation = false;
  std::vector<noise::KrausChannel> relax_1q, relax_2q;
  std::vector<noise::ReadoutError> readout;

  NoiseTables(const noise::DeviceModel& device,
              const NoisyBackendOptions& options) {
    const double scale = options.noise_scale;
    p1 = options.enable_gate_noise ? device.err_1q * scale : 0.0;
    p2 = options.enable_gate_noise ? device.err_2q * scale : 0.0;
    relaxation = options.enable_relaxation;
    if (options.enable_relaxation) {
      relax_1q.reserve(static_cast<std::size_t>(device.n_qubits));
      relax_2q.reserve(static_cast<std::size_t>(device.n_qubits));
      for (const auto& cal : device.qubits) {
        relax_1q.push_back(noise::thermal_relaxation(
            cal.t1_s, cal.t2_s, device.gate_time_1q_s * scale));
        relax_2q.push_back(noise::thermal_relaxation(
            cal.t1_s, cal.t2_s, device.gate_time_2q_s * scale));
      }
    }
    if (options.enable_readout_error) {
      readout.reserve(static_cast<std::size_t>(device.n_qubits));
      for (const auto& cal : device.qubits)
        readout.push_back(
            {cal.readout_err_0to1 * scale, cal.readout_err_1to0 * scale});
    }
  }

  /// True when no noise event is ever injected between physical gates:
  /// every gate application in evolve() is then a pure unitary, which is
  /// what licenses TrajectoryProgram's CX.RZ.CX fusion (a fused block
  /// may not straddle a noise barrier).
  bool gates_are_noiseless() const {
    return p1 <= 0.0 && p2 <= 0.0 && !relaxation;
  }

  /// Evolve one noisy trajectory of `program` into sv.
  void evolve(const TrajectoryProgram& program, sim::Statevector& sv,
              Prng& rng) const {
    for (const auto& op : program.ops) {
      program.apply(sv, op);
      // Virtual RZ: frame change only, no physical pulse, no error.
      if (op.k == TrajectoryProgram::K::Rz) continue;
      // Fused CX.RZ.CX blocks only exist when gates_are_noiseless(), so
      // their two elided injection points were no-ops by construction.
      if (op.k == TrajectoryProgram::K::Diag2q) continue;
      if (op.q1 < 0) {
        inject_depolarizing(sv, op.q0, -1, p1, rng);
        if (relaxation)
          relax_1q[static_cast<std::size_t>(op.q0)].sample_and_apply(
              sv, {op.q0}, rng);
      } else {
        inject_depolarizing(sv, op.q0, op.q1, p2, rng);
        if (relaxation) {
          relax_2q[static_cast<std::size_t>(op.q0)].sample_and_apply(
              sv, {op.q0}, rng);
          relax_2q[static_cast<std::size_t>(op.q1)].sample_and_apply(
              sv, {op.q1}, rng);
        }
      }
    }
  }

  /// Evolve one lane group of noisy trajectories in lockstep: the
  /// uniform gate stream applies to all lanes at once, and every noise
  /// event draws per lane from that trajectory's own stream (ascending
  /// lane order at each event -- within a single stream the order is
  /// exactly evolve()'s, so lane L is bit-identical to a scalar
  /// trajectory run on lane L's rng). A nullptr lane_rngs entry marks a
  /// padding lane of a compacted ragged tail: it rides the uniform
  /// gates and Kraus branch 0 but consumes no randomness, so padding
  /// can never shift a real trajectory's draws. The payoff is the
  /// relaxation path: per gate, sample_and_apply_lanes runs the Born
  /// weight passes and the renormalization as k independent accumulator
  /// chains instead of k serial scalar passes.
  void evolve_lanes(const TrajectoryProgram& program,
                    sim::BatchedStatevector& bsv,
                    std::span<Prng* const> lane_rngs) const {
    for (const auto& op : program.ops) {
      program.apply_lanes(bsv, op);
      // Virtual RZ: frame change only, no physical pulse, no error.
      if (op.k == TrajectoryProgram::K::Rz) continue;
      // Fused blocks only exist when gates_are_noiseless().
      if (op.k == TrajectoryProgram::K::Diag2q) continue;
      if (op.q1 < 0) {
        for (std::size_t l = 0; l < lane_rngs.size(); ++l)
          if (lane_rngs[l] != nullptr)
            inject_depolarizing_lane(bsv, l, op.q0, -1, p1, *lane_rngs[l]);
        if (relaxation)
          relax_1q[static_cast<std::size_t>(op.q0)].sample_and_apply_lanes(
              bsv, op.q0, lane_rngs);
      } else {
        for (std::size_t l = 0; l < lane_rngs.size(); ++l)
          if (lane_rngs[l] != nullptr)
            inject_depolarizing_lane(bsv, l, op.q0, op.q1, p2, *lane_rngs[l]);
        if (relaxation) {
          relax_2q[static_cast<std::size_t>(op.q0)].sample_and_apply_lanes(
              bsv, op.q0, lane_rngs);
          relax_2q[static_cast<std::size_t>(op.q1)].sample_and_apply_lanes(
              bsv, op.q1, lane_rngs);
        }
      }
    }
  }
};

std::vector<double> NoisyBackend::run_transpiled(
    const transpile::Transpiled& t, const NoiseTables& tables, int n_logical,
    std::uint64_t serial) const {
  const int n_phys = device_.n_qubits;
  const TrajectoryProgram program(
      t, options_.fuse_trajectory_gates && tables.gates_are_noiseless());

  const int n_traj = options_.trajectories;
  const int shots_per_traj = std::max(1, options_.shots / n_traj);

  Prng exec_rng = execution_rng(serial);

  std::vector<double> acc(static_cast<std::size_t>(n_logical), 0.0);
  std::uint64_t total_samples = 0;

  // Readout: sample bitstrings from a final trajectory state and apply
  // per-qubit classical flip errors. Shared verbatim by the scalar loop
  // and every lane of the k-wide path, so the accumulation order over
  // (trajectory, shot, qubit) -- and every readout draw -- is identical
  // at every lane width.
  const auto accumulate = [&](const std::vector<std::uint64_t>& samples,
                              Prng& rng) {
    for (const auto s : samples) {
      for (int l = 0; l < n_logical; ++l) {
        const int phys = t.final_layout[static_cast<std::size_t>(l)];
        int bit = static_cast<int>((s >> (n_phys - 1 - phys)) & 1ULL);
        if (options_.enable_readout_error)
          bit = tables.readout[static_cast<std::size_t>(phys)].apply(bit, rng);
        acc[static_cast<std::size_t>(l)] += bit ? -1.0 : 1.0;
      }
      ++total_samples;
    }
  };

  // Evaluation-major trajectory partition: k trajectories evolve in
  // lockstep on one lane group, a part-filled final group is padded
  // (padding lanes ride the gates, consume no randomness and are
  // discarded), and any un-compacted remainder runs the scalar loop.
  const sim::LanePartition part = sim::partition_lanes(
      n_phys, static_cast<std::size_t>(n_traj), options_.batch_lanes);
  note_lane_metrics(part, static_cast<std::size_t>(n_traj));

  if (part.lanes > 1) {
    // Pre-split one stream per trajectory in trajectory order -- the
    // exact split sequence the scalar loop draws lazily, so trajectory
    // j consumes the same stream at every lane width.
    std::vector<Prng> traj_rngs;
    traj_rngs.reserve(static_cast<std::size_t>(n_traj));
    for (int traj = 0; traj < n_traj; ++traj)
      traj_rngs.push_back(exec_rng.split());

    sim::BatchedStatevector bsv(n_phys, part.lanes);
    std::array<Prng*, sim::BatchedStatevector::kMaxLanes> lane_rngs{};
    for (std::size_t g = 0; g < part.groups(); ++g) {
      const std::size_t first = g * part.lanes;
      const std::size_t real =
          g < part.full_groups ? part.lanes : part.padded_evals;
      for (std::size_t l = 0; l < part.lanes; ++l)
        lane_rngs[l] = l < real ? &traj_rngs[first + l] : nullptr;
      bsv.reset();
      tables.evolve_lanes(
          program, bsv, std::span<Prng* const>(lane_rngs.data(), part.lanes));
      for (std::size_t l = 0; l < real; ++l) {
        Prng& rng = traj_rngs[first + l];
        accumulate(bsv.sample(l, shots_per_traj, rng), rng);
      }
    }
    sim::Statevector sv(n_phys);
    for (std::size_t traj = part.tail_start;
         traj < static_cast<std::size_t>(n_traj); ++traj) {
      Prng& rng = traj_rngs[traj];
      sv.reset();
      tables.evolve(program, sv, rng);
      accumulate(sv.sample(shots_per_traj, rng), rng);
    }
  } else {
    sim::Statevector sv(n_phys);
    for (int traj = 0; traj < n_traj; ++traj) {
      Prng rng = exec_rng.split();
      sv.reset();
      tables.evolve(program, sv, rng);
      accumulate(sv.sample(shots_per_traj, rng), rng);
    }
  }

  for (auto& v : acc) v /= static_cast<double>(total_samples);
  return acc;
}

double NoisyBackend::expect_transpiled(
    const transpile::Transpiled& t, const NoiseTables& tables,
    const exec::CompiledObservable& observable, std::uint64_t serial) const {
  // One measured hardware execution: noisy trajectories of the routed
  // circuit, an ideal basis-change suffix per commuting group, then shot
  // sampling with classical readout flips on the measured qubits.
  const int n_logical = observable.num_qubits();
  const int n_phys = device_.n_qubits;
  const TrajectoryProgram program(
      t, options_.fuse_trajectory_gates && tables.gates_are_noiseless());

  const int n_traj = options_.trajectories;
  const int shots_per_traj = std::max(1, options_.shots / n_traj);

  Prng exec_rng = execution_rng(serial);

  const auto& groups = observable.groups();
  // parity_sum[g][i]: summed parities of group g's i-th term.
  std::vector<std::vector<double>> parity_sum(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    parity_sum[g].assign(groups[g].terms.size(), 0.0);
  std::uint64_t total_samples = 0;

  // Parity accumulation for one measured group's samples. Shared by the
  // scalar trajectory loop and every lane of the k-wide path; lanes are
  // visited in ascending trajectory order per observable group, so the
  // additions into parity_sum[g][i] happen in exactly the scalar order.
  const auto accumulate_group = [&](std::size_t g,
                                    const std::vector<std::uint64_t>& samples,
                                    Prng& rng) {
    const auto& group = groups[g];
    for (const auto s : samples) {
      // Read every measured qubit once (flips shared by all terms of
      // the group, exactly as one hardware shot would behave), packed
      // into a logical-bit word the term masks index directly.
      std::uint64_t word = 0;
      for (int q = 0; q < n_logical; ++q) {
        const std::uint64_t lbit =
            exec::CompiledObservable::qubit_bit(q, n_logical);
        if (!(group.measured_mask & lbit)) continue;
        const int phys = t.final_layout[static_cast<std::size_t>(q)];
        int bit = static_cast<int>((s >> (n_phys - 1 - phys)) & 1ULL);
        if (options_.enable_readout_error)
          bit = tables.readout[static_cast<std::size_t>(phys)].apply(bit, rng);
        if (bit) word |= lbit;
      }
      for (std::size_t i = 0; i < group.terms.size(); ++i)
        parity_sum[g][i] +=
            (std::popcount(word & group.terms[i].z_mask) & 1) ? -1.0 : 1.0;
    }
  };

  // Same evaluation-major trajectory partition as run_transpiled.
  const sim::LanePartition part = sim::partition_lanes(
      n_phys, static_cast<std::size_t>(n_traj), options_.batch_lanes);
  note_lane_metrics(part, static_cast<std::size_t>(n_traj));

  if (part.lanes > 1) {
    std::vector<Prng> traj_rngs;
    traj_rngs.reserve(static_cast<std::size_t>(n_traj));
    for (int traj = 0; traj < n_traj; ++traj)
      traj_rngs.push_back(exec_rng.split());

    sim::BatchedStatevector bsv(n_phys, part.lanes);
    sim::BatchedStatevector bmeas(n_phys, part.lanes);  // suffix scratch
    std::array<Prng*, sim::BatchedStatevector::kMaxLanes> lane_rngs{};
    for (std::size_t lg = 0; lg < part.groups(); ++lg) {
      const std::size_t first = lg * part.lanes;
      const std::size_t real =
          lg < part.full_groups ? part.lanes : part.padded_evals;
      for (std::size_t l = 0; l < part.lanes; ++l)
        lane_rngs[l] = l < real ? &traj_rngs[first + l] : nullptr;
      bsv.reset();
      tables.evolve_lanes(
          program, bsv, std::span<Prng* const>(lane_rngs.data(), part.lanes));
      for (std::size_t g = 0; g < groups.size(); ++g) {
        // One suffix application per lane group per commuting group
        // (not per lane); all-Z groups skip the copy. Each lane's
        // stream still sees its groups in scalar order: evolve draws,
        // then group 0 sampling + flips, then group 1, ...
        const sim::BatchedStatevector* src = &bsv;
        if (!groups[g].suffix.empty()) {
          bmeas = bsv;
          observable.apply_suffix_lanes(bmeas, g, t.final_layout);
          src = &bmeas;
        }
        for (std::size_t l = 0; l < real; ++l) {
          Prng& rng = traj_rngs[first + l];
          accumulate_group(g, src->sample(l, shots_per_traj, rng), rng);
        }
      }
      total_samples += static_cast<std::uint64_t>(shots_per_traj) * real;
    }
    sim::Statevector sv(n_phys);
    sim::Statevector meas(n_phys);  // per-group scratch, buffer reused
    for (std::size_t traj = part.tail_start;
         traj < static_cast<std::size_t>(n_traj); ++traj) {
      Prng& rng = traj_rngs[traj];
      sv.reset();
      tables.evolve(program, sv, rng);
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const sim::Statevector* src = &sv;
        if (!groups[g].suffix.empty()) {
          meas = sv;
          observable.apply_suffix(meas, g, t.final_layout);
          src = &meas;
        }
        accumulate_group(g, src->sample(shots_per_traj, rng), rng);
      }
      total_samples += static_cast<std::uint64_t>(shots_per_traj);
    }
  } else {
    sim::Statevector sv(n_phys);
    sim::Statevector meas(n_phys);  // per-group scratch, buffer reused
    for (int traj = 0; traj < n_traj; ++traj) {
      Prng rng = exec_rng.split();
      sv.reset();
      tables.evolve(program, sv, rng);

      for (std::size_t g = 0; g < groups.size(); ++g) {
        // All-Z groups have no suffix: sample the trajectory state
        // directly instead of paying an O(2^n) copy.
        const sim::Statevector* src = &sv;
        if (!groups[g].suffix.empty()) {
          meas = sv;
          observable.apply_suffix(meas, g, t.final_layout);
          src = &meas;
        }
        accumulate_group(g, src->sample(shots_per_traj, rng), rng);
      }
      total_samples += static_cast<std::uint64_t>(shots_per_traj);
    }
  }

  double energy = observable.constant();
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (std::size_t i = 0; i < groups[g].terms.size(); ++i)
      energy += groups[g].terms[i].coeff *
                (parity_sum[g][i] / static_cast<double>(total_samples));
  return energy;
}

std::vector<double> NoisyBackend::execute(const circuit::Circuit& c,
                                          std::span<const double> theta,
                                          std::span<const double> input) {
  return execute_single(*plan_cached(c), theta, input);
}

std::vector<std::vector<double>> NoisyBackend::execute_batch(
    const exec::CompiledCircuit& plan, std::span<const exec::Evaluation> evals,
    unsigned threads) {
  const auto tmpl = transpile_cache_.get(plan, device_);
  const NoiseTables tables(device_, options_);
  // Auto evaluations draw serials from the internal counter in
  // submission order; evaluations that pinned Evaluation::rng_stream use
  // the pinned id as their serial instead (the counter still advances by
  // the full batch so auto serials stay position-stable).
  const std::uint64_t base =
      run_serial_.fetch_add(evals.size(), std::memory_order_relaxed);
  std::vector<std::vector<double>> results(evals.size());
  parallel_for_chunked(
      0, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> angles;
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& e = evals[k];
          plan.resolve_source_angles(e.theta, e.input, e.shift_op, e.shift,
                                     angles);
          const auto t = tmpl->transpile(angles);
          const std::uint64_t serial =
              e.rng_stream == exec::Evaluation::kAutoStream ? base + k
                                                            : e.rng_stream;
          results[k] = run_transpiled(t, tables, plan.num_qubits(), serial);
        }
      },
      threads);
  return results;
}

std::vector<double> NoisyBackend::execute_expect_batch(
    const exec::CompiledCircuit& plan,
    const exec::CompiledObservable& observable,
    std::span<const exec::Evaluation> evals, unsigned threads) {
  const auto tmpl = transpile_cache_.get(plan, device_);
  const NoiseTables tables(device_, options_);
  // One RNG serial per evaluation, allocated in submission order; each
  // evaluation's groups then consume that stream sequentially inside
  // expect_transpiled, so results are deterministic and thread-count
  // invariant.
  const std::uint64_t base =
      run_serial_.fetch_add(evals.size(), std::memory_order_relaxed);
  add_inferences(evals.size() * observable.groups().size());
  std::vector<double> results(evals.size());
  parallel_for_chunked(
      0, evals.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> angles;
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& e = evals[k];
          plan.resolve_source_angles(e.theta, e.input, e.shift_op, e.shift,
                                     angles);
          const auto t = tmpl->transpile(angles);
          const std::uint64_t serial =
              e.rng_stream == exec::Evaluation::kAutoStream ? base + k
                                                            : e.rng_stream;
          results[k] = expect_transpiled(t, tables, observable, serial);
        }
      },
      threads);
  return results;
}

double NoisyBackend::estimate_duration_s(const circuit::Circuit& c,
                                         std::span<const double> theta,
                                         std::span<const double> input) const {
  const auto t = transpile::transpile(c, theta, input, device_);
  return transpile::estimated_duration_s(t, device_);
}

}  // namespace qoc::backend
