#include "qoc/data/pca.hpp"

#include <stdexcept>

#include "qoc/linalg/eigen.hpp"

namespace qoc::data {

Pca::Pca(const std::vector<std::vector<double>>& samples,
         std::size_t n_components) {
  if (samples.empty()) throw std::invalid_argument("Pca: no samples");
  const std::size_t d = samples.front().size();
  if (n_components == 0 || n_components > d)
    throw std::invalid_argument("Pca: n_components out of range");
  for (const auto& s : samples)
    if (s.size() != d) throw std::invalid_argument("Pca: ragged samples");

  // Mean.
  mean_.assign(d, 0.0);
  for (const auto& s : samples)
    for (std::size_t i = 0; i < d; ++i) mean_[i] += s[i];
  for (auto& m : mean_) m /= static_cast<double>(samples.size());

  // Covariance (biased-by-n-1; standard sample covariance).
  std::vector<double> cov(d * d, 0.0);
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = s[i] - mean_[i];
      for (std::size_t j = i; j < d; ++j)
        cov[i * d + j] += xi * (s[j] - mean_[j]);
    }
  }
  const double denom =
      samples.size() > 1 ? static_cast<double>(samples.size() - 1) : 1.0;
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov[i * d + j] /= denom;
      cov[j * d + i] = cov[i * d + j];
    }

  const auto eig = linalg::sym_eigen(cov, d);
  components_.assign(eig.vectors.begin(),
                     eig.vectors.begin() + static_cast<std::ptrdiff_t>(n_components));
  variance_.assign(eig.values.begin(),
                   eig.values.begin() + static_cast<std::ptrdiff_t>(n_components));
}

std::vector<double> Pca::transform(const std::vector<double>& x) const {
  if (x.size() != mean_.size())
    throw std::invalid_argument("Pca::transform: dim mismatch");
  std::vector<double> y(components_.size(), 0.0);
  for (std::size_t k = 0; k < components_.size(); ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      acc += (x[i] - mean_[i]) * components_[k][i];
    y[k] = acc;
  }
  return y;
}

std::vector<double> Pca::inverse_transform(const std::vector<double>& y) const {
  if (y.size() != components_.size())
    throw std::invalid_argument("Pca::inverse_transform: dim mismatch");
  std::vector<double> x = mean_;
  for (std::size_t k = 0; k < components_.size(); ++k)
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] += y[k] * components_[k][i];
  return x;
}

Dataset Pca::transform(const Dataset& d) const {
  Dataset out;
  out.labels = d.labels;
  out.features.reserve(d.features.size());
  for (const auto& f : d.features) out.features.push_back(transform(f));
  return out;
}

}  // namespace qoc::data
