#include "qoc/data/images.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qoc::data {

std::vector<double> center_crop(const Image& img, int crop) {
  if (crop <= 0 || crop > Image::kSize)
    throw std::invalid_argument("center_crop: bad crop size");
  const int off = (Image::kSize - crop) / 2;
  std::vector<double> out(static_cast<std::size_t>(crop) * crop);
  for (int r = 0; r < crop; ++r)
    for (int c = 0; c < crop; ++c)
      out[static_cast<std::size_t>(r) * crop + c] = img.at(r + off, c + off);
  return out;
}

std::vector<double> downsample(const std::vector<double>& img, int in_size,
                               int out_size) {
  if (in_size <= 0 || out_size <= 0 || in_size % out_size != 0)
    throw std::invalid_argument("downsample: out_size must divide in_size");
  if (img.size() != static_cast<std::size_t>(in_size) * in_size)
    throw std::invalid_argument("downsample: input size mismatch");
  const int k = in_size / out_size;
  std::vector<double> out(static_cast<std::size_t>(out_size) * out_size, 0.0);
  for (int r = 0; r < in_size; ++r)
    for (int c = 0; c < in_size; ++c)
      out[static_cast<std::size_t>(r / k) * out_size + (c / k)] +=
          img[static_cast<std::size_t>(r) * in_size + c];
  const double inv = 1.0 / (k * k);
  for (auto& v : out) v *= inv;
  return out;
}

std::vector<double> image_to_features(const Image& img, double angle_scale) {
  const auto cropped = center_crop(img, 24);
  auto pooled = downsample(cropped, 24, 4);
  for (auto& v : pooled) v *= angle_scale;
  return pooled;
}

SyntheticImages::SyntheticImages(Style style, int n_classes,
                                 std::uint64_t seed, double difficulty)
    : style_(style), n_classes_(n_classes), seed_(seed),
      difficulty_(difficulty) {
  if (n_classes < 2 || n_classes > 10)
    throw std::invalid_argument("SyntheticImages: n_classes out of [2,10]");
  if (difficulty < 0.0 || difficulty > 1.0)
    throw std::invalid_argument("SyntheticImages: difficulty out of [0,1]");
  templates_.resize(static_cast<std::size_t>(n_classes));
  for (int i = 0; i < n_classes; ++i)
    templates_[static_cast<std::size_t>(i)] = i;
}

void SyntheticImages::set_templates(std::vector<int> templates) {
  if (static_cast<int>(templates.size()) != n_classes_)
    throw std::invalid_argument("set_templates: size must equal n_classes");
  for (int t : templates)
    if (t < 0 || t > 9)
      throw std::invalid_argument("set_templates: prototype id out of [0,9]");
  templates_ = std::move(templates);
}

namespace {

void draw_disk(Image& img, double cx, double cy, double radius,
               double intensity) {
  for (int r = 0; r < Image::kSize; ++r)
    for (int c = 0; c < Image::kSize; ++c) {
      const double d = std::hypot(r - cy, c - cx);
      if (d <= radius)
        img.at(r, c) = std::min(1.0, img.at(r, c) +
                                         intensity * (1.0 - d / (radius + 1)));
    }
}

void draw_stroke(Image& img, double x0, double y0, double x1, double y1,
                 double width, double intensity) {
  const int steps = 64;
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    draw_disk(img, x0 + t * (x1 - x0), y0 + t * (y1 - y0), width, intensity / 8);
  }
}

void draw_rect(Image& img, int r0, int c0, int r1, int c1, double intensity) {
  for (int r = std::max(0, r0); r <= std::min(Image::kSize - 1, r1); ++r)
    for (int c = std::max(0, c0); c <= std::min(Image::kSize - 1, c1); ++c)
      img.at(r, c) = std::min(1.0, img.at(r, c) + intensity);
}

}  // namespace

void SyntheticImages::paint_template(Image& img, int label, Prng& rng) const {
  // Per-example geometric jitter grows with difficulty.
  const double jit = 1.0 + 3.0 * difficulty_;
  const double jx = rng.normal(0.0, jit);
  const double jy = rng.normal(0.0, jit);
  const double bright = 0.85 + 0.15 * rng.uniform();

  if (style_ == Style::Digits) {
    // Stroke-based digit-like prototypes, one per class id.
    switch (label % 10) {
      case 0:  // ring
        for (int a = 0; a < 24; ++a) {
          const double ang = a * 2.0 * 3.14159265 / 24;
          draw_disk(img, 14 + jx + 7 * std::cos(ang), 14 + jy + 9 * std::sin(ang),
                    1.8, bright * 0.5);
        }
        break;
      case 1:  // vertical bar
        draw_stroke(img, 14 + jx, 4 + jy, 14 + jx, 24 + jy, 2.0, 8 * bright);
        break;
      case 2:  // top arc + bottom bar + diagonal
        draw_stroke(img, 8 + jx, 8 + jy, 20 + jx, 8 + jy, 1.8, 6 * bright);
        draw_stroke(img, 20 + jx, 8 + jy, 8 + jx, 22 + jy, 1.8, 6 * bright);
        draw_stroke(img, 8 + jx, 22 + jy, 20 + jx, 22 + jy, 1.8, 6 * bright);
        break;
      case 3:  // two right-facing arcs
        draw_stroke(img, 9 + jx, 6 + jy, 19 + jx, 6 + jy, 1.6, 6 * bright);
        draw_stroke(img, 19 + jx, 6 + jy, 12 + jx, 13 + jy, 1.6, 6 * bright);
        draw_stroke(img, 12 + jx, 13 + jy, 19 + jx, 21 + jy, 1.6, 6 * bright);
        draw_stroke(img, 19 + jx, 21 + jy, 9 + jx, 23 + jy, 1.6, 6 * bright);
        break;
      case 6:  // loop at bottom with a tail
        draw_stroke(img, 17 + jx, 5 + jy, 10 + jx, 14 + jy, 1.8, 6 * bright);
        for (int a = 0; a < 18; ++a) {
          const double ang = a * 2.0 * 3.14159265 / 18;
          draw_disk(img, 13.5 + jx + 4.5 * std::cos(ang),
                    18 + jy + 4.5 * std::sin(ang), 1.6, bright * 0.5);
        }
        break;
      default: {  // other digits: angled cross patterns keyed by label
        const double ang = label * 0.7;
        draw_stroke(img, 14 + jx - 8 * std::cos(ang), 14 + jy - 8 * std::sin(ang),
                    14 + jx + 8 * std::cos(ang), 14 + jy + 8 * std::sin(ang),
                    1.8, 6 * bright);
        draw_stroke(img, 14 + jx - 5 * std::sin(ang), 14 + jy + 5 * std::cos(ang),
                    14 + jx + 5 * std::sin(ang), 14 + jy - 5 * std::cos(ang),
                    1.5, 5 * bright);
        break;
      }
    }
    return;
  }

  // Fashion style: blocky garment-like silhouettes.
  const int j0 = static_cast<int>(std::lround(jx));
  const int j1 = static_cast<int>(std::lround(jy));
  switch (label % 10) {
    case 0:  // t-shirt/top: torso + sleeves
      draw_rect(img, 8 + j1, 9 + j0, 22 + j1, 18 + j0, 0.7 * bright);
      draw_rect(img, 8 + j1, 4 + j0, 12 + j1, 9 + j0, 0.6 * bright);
      draw_rect(img, 8 + j1, 18 + j0, 12 + j1, 23 + j0, 0.6 * bright);
      break;
    case 1:  // trouser: two legs
      draw_rect(img, 6 + j1, 9 + j0, 24 + j1, 12 + j0, 0.75 * bright);
      draw_rect(img, 6 + j1, 15 + j0, 24 + j1, 18 + j0, 0.75 * bright);
      draw_rect(img, 4 + j1, 9 + j0, 8 + j1, 18 + j0, 0.7 * bright);
      break;
    case 2:  // pullover: wide torso + long sleeves
      draw_rect(img, 7 + j1, 8 + j0, 23 + j1, 19 + j0, 0.65 * bright);
      draw_rect(img, 7 + j1, 2 + j0, 20 + j1, 8 + j0, 0.55 * bright);
      draw_rect(img, 7 + j1, 19 + j0, 20 + j1, 25 + j0, 0.55 * bright);
      break;
    case 3:  // dress: narrow top flaring to wide hem
      for (int r = 5; r <= 24; ++r) {
        const int half = 2 + (r - 5) * 5 / 19;
        draw_rect(img, r + j1, 14 - half + j0, r + j1, 14 + half + j0,
                  0.7 * bright);
      }
      break;
    default:  // shirt-like: torso + collar + buttons column
      draw_rect(img, 7 + j1, 9 + j0, 23 + j1, 19 + j0, 0.6 * bright);
      draw_rect(img, 5 + j1, 12 + j0, 9 + j1, 16 + j0, 0.5 * bright);
      for (int r = 9; r <= 21; r += 3)
        draw_disk(img, 14 + j0, r + j1, 0.8, 0.9 * bright);
      break;
  }
}

Image SyntheticImages::generate(int label, std::uint64_t index) const {
  if (label < 0 || label >= n_classes_)
    throw std::out_of_range("SyntheticImages::generate: label");
  // Deterministic per-(seed, label, index) stream.
  SplitMix64 mix(seed_ ^ (0x9E3779B97F4A7C15ULL * (index + 1)) ^
                 (0xC2B2AE3D27D4EB4FULL * static_cast<std::uint64_t>(label + 1)));
  Prng rng(mix.next());

  Image img;
  paint_template(img, templates_[static_cast<std::size_t>(label)], rng);

  // Pixel noise scales with difficulty; clamp back to [0, 1].
  const double noise = 0.05 + 0.30 * difficulty_;
  for (auto& p : img.pixels) {
    p += rng.normal(0.0, noise);
    p = std::clamp(p, 0.0, 1.0);
  }
  return img;
}

Dataset SyntheticImages::make_dataset(std::size_t n) const {
  Dataset out;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(n_classes_));
    const Image img = generate(label, i);
    out.push(image_to_features(img), label);
  }
  out.validate();
  return out;
}

namespace {

TaskData split_task(const SyntheticImages& gen, std::size_t n_train,
                    std::size_t n_val, std::uint64_t seed) {
  // Generate a pool, take the front n_train as training (paper wording)
  // and a random sample of the remainder as validation.
  Dataset pool = gen.make_dataset(n_train + 4 * n_val);
  TaskData td;
  td.train = pool.front(n_train);
  Dataset rest;
  for (std::size_t i = n_train; i < pool.size(); ++i)
    rest.push(pool.features[i], pool.labels[i]);
  Prng rng(seed ^ 0x5A11DA7EULL);
  td.val = rest.sample(n_val, rng);
  return td;
}

}  // namespace

TaskData make_mnist2(std::uint64_t seed) {
  // Digits 3 and 6 remapped to classes {0, 1}.
  SyntheticImages gen(SyntheticImages::Style::Digits, 2, seed, 0.30);
  gen.set_templates({3, 6});
  return split_task(gen, 500, 300, seed);
}

TaskData make_mnist4(std::uint64_t seed) {
  SyntheticImages gen(SyntheticImages::Style::Digits, 4, seed, 0.30);
  return split_task(gen, 100, 300, seed);
}

TaskData make_fashion2(std::uint64_t seed) {
  SyntheticImages gen(SyntheticImages::Style::Fashion, 2, seed, 0.25);
  return split_task(gen, 500, 300, seed);
}

TaskData make_fashion4(std::uint64_t seed) {
  SyntheticImages gen(SyntheticImages::Style::Fashion, 4, seed, 0.28);
  return split_task(gen, 100, 300, seed);
}

}  // namespace qoc::data
