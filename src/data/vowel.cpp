#include "qoc/data/vowel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qoc::data {

SyntheticVowel::SyntheticVowel(int n_classes, std::uint64_t seed, int raw_dim,
                               double separation)
    : n_classes_(n_classes), seed_(seed), raw_dim_(raw_dim),
      separation_(separation) {
  if (n_classes < 2) throw std::invalid_argument("SyntheticVowel: n_classes");
  if (raw_dim < 2) throw std::invalid_argument("SyntheticVowel: raw_dim");
  if (separation <= 0.0)
    throw std::invalid_argument("SyntheticVowel: separation");
}

Dataset SyntheticVowel::make_raw(std::size_t n) const {
  // Class means drawn once from the seed; anisotropic per-dimension spread
  // mimics formant variance structure (low dims vary more).
  Prng mean_rng(seed_);
  std::vector<std::vector<double>> means(
      static_cast<std::size_t>(n_classes_),
      std::vector<double>(static_cast<std::size_t>(raw_dim_), 0.0));
  for (auto& mu : means)
    for (auto& v : mu) v = mean_rng.normal(0.0, separation_);

  Dataset out;
  Prng rng(seed_ ^ 0xF0F0F0F0ULL);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(n_classes_));
    std::vector<double> x(static_cast<std::size_t>(raw_dim_));
    for (int d = 0; d < raw_dim_; ++d) {
      // Dimensions decay in informativeness: later dims are mostly noise.
      const double spread = 1.0 + 2.0 * static_cast<double>(d) / raw_dim_;
      x[static_cast<std::size_t>(d)] =
          means[static_cast<std::size_t>(label)][static_cast<std::size_t>(d)] *
              (d < raw_dim_ / 2 ? 1.0 : 0.15) +
          rng.normal(0.0, spread);
    }
    out.push(std::move(x), label);
  }
  out.validate();
  return out;
}

VowelTask make_vowel4(std::uint64_t seed) {
  SyntheticVowel gen(4, seed, 20, 2.0);
  Dataset pool = gen.make_raw(100 + 4 * 300);

  Dataset raw_train = pool.front(100);
  Dataset rest;
  for (std::size_t i = 100; i < pool.size(); ++i)
    rest.push(pool.features[i], pool.labels[i]);
  Prng rng(seed ^ 0x5A11DA7EULL);
  Dataset raw_val = rest.sample(300, rng);

  // Fit PCA on training only (no leakage), keep 10 components.
  Pca pca(raw_train.features, 10);
  Dataset train = pca.transform(raw_train);
  Dataset val = pca.transform(raw_val);

  // Scale each component into a bounded rotation-angle range using the
  // training set's max magnitude per dimension.
  std::vector<double> max_abs(10, 1e-12);
  for (const auto& f : train.features)
    for (std::size_t k = 0; k < 10; ++k)
      max_abs[k] = std::max(max_abs[k], std::abs(f[k]));
  auto rescale = [&](Dataset& d) {
    for (auto& f : d.features)
      for (std::size_t k = 0; k < 10; ++k)
        f[k] = f[k] / max_abs[k] * 3.14159265358979 / 2.0;
  };
  rescale(train);
  rescale(val);
  return VowelTask{std::move(train), std::move(val)};
}

}  // namespace qoc::data
