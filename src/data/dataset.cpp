#include "qoc/data/dataset.hpp"

#include <algorithm>
#include <numeric>

namespace qoc::data {

int Dataset::num_classes() const {
  int m = 0;
  for (int y : labels) m = std::max(m, y + 1);
  return m;
}

Dataset Dataset::front(std::size_t n) const {
  Dataset out;
  const std::size_t take = std::min(n, size());
  out.features.assign(features.begin(),
                      features.begin() + static_cast<std::ptrdiff_t>(take));
  out.labels.assign(labels.begin(),
                    labels.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

Dataset Dataset::sample(std::size_t n, Prng& rng) const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Fisher-Yates partial shuffle for the first n positions.
  const std::size_t take = std::min(n, size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.uniform_int(idx.size() - i);
    std::swap(idx[i], idx[j]);
  }
  Dataset out;
  for (std::size_t i = 0; i < take; ++i)
    out.push(features[idx[i]], labels[idx[i]]);
  return out;
}

void Dataset::validate() const {
  if (features.size() != labels.size())
    throw std::invalid_argument("Dataset: features/labels size mismatch");
  const std::size_t dim = feature_dim();
  for (const auto& f : features)
    if (f.size() != dim)
      throw std::invalid_argument("Dataset: inconsistent feature dims");
  for (int y : labels)
    if (y < 0) throw std::invalid_argument("Dataset: negative label");
}

BatchSampler::BatchSampler(const Dataset& dataset, std::size_t batch_size,
                           std::uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), rng_(seed) {
  if (dataset.size() == 0)
    throw std::invalid_argument("BatchSampler: empty dataset");
  if (batch_size == 0)
    throw std::invalid_argument("BatchSampler: zero batch size");
  reshuffle();
}

void BatchSampler::reshuffle() {
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j = rng_.uniform_int(i);
    std::swap(order_[i - 1], order_[j]);
  }
  cursor_ = 0;
}

std::vector<std::size_t> BatchSampler::next() {
  std::vector<std::size_t> batch;
  batch.reserve(batch_size_);
  for (std::size_t k = 0; k < batch_size_; ++k) {
    if (cursor_ >= order_.size()) reshuffle();
    batch.push_back(order_[cursor_++]);
  }
  return batch;
}

}  // namespace qoc::data
