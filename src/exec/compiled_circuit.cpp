#include "qoc/exec/compiled_circuit.hpp"

#include <bit>
#include <cstdio>
#include <functional>
#include <stdexcept>

#include "qoc/sim/batched_statevector.hpp"
#include "qoc/sim/gates.hpp"

namespace qoc::exec {

using circuit::GateKind;
using circuit::ParamRef;
using linalg::cplx;
using linalg::kI;
using linalg::Matrix;

namespace {

bool is_diag_2q_kind(GateKind k) {
  return k == GateKind::Rzz || k == GateKind::Crz || k == GateKind::Cp;
}

/// 2x2 entries of an angle-dependent 1q gate, row-major. Mirrors the
/// exact arithmetic of sim::gate_rx/ry/rz/p so compiled execution stays
/// bit-identical to the Matrix-building path.
void rot1q_entries(GateKind kind, double angle, cplx out[4]) {
  switch (kind) {
    case GateKind::Rx: {
      const double c = std::cos(angle / 2.0);
      const double s = std::sin(angle / 2.0);
      out[0] = c;
      out[1] = -kI * s;
      out[2] = -kI * s;
      out[3] = c;
      return;
    }
    case GateKind::Ry: {
      const double c = std::cos(angle / 2.0);
      const double s = std::sin(angle / 2.0);
      out[0] = c;
      out[1] = -s;
      out[2] = s;
      out[3] = c;
      return;
    }
    case GateKind::Rz: {
      out[0] = std::exp(-kI * (angle / 2.0));
      out[1] = 0.0;
      out[2] = 0.0;
      out[3] = std::exp(kI * (angle / 2.0));
      return;
    }
    case GateKind::Phase: {
      out[0] = 1.0;
      out[1] = 0.0;
      out[2] = 0.0;
      out[3] = std::exp(kI * angle);
      return;
    }
    default:
      throw std::logic_error("rot1q_entries: not a 1q rotation");
  }
}

/// 4x4 entries of an angle-dependent 2q gate, row-major. Mirrors the
/// exact arithmetic of sim::two_qubit_rotation / sim::controlled on the
/// stack, so no heap Matrix is built per evaluation.
void rot2q_entries(GateKind kind, double angle, cplx out[16]) {
  switch (kind) {
    case GateKind::Rxx:
    case GateKind::Ryy:
    case GateKind::Rzz:
    case GateKind::Rzx: {
      // exp(-i angle/2 P) = cos(angle/2) I - i sin(angle/2) P. The Pauli
      // products have exact entries in {0, +-1, +-i}, so replaying
      // I*c - P*(i*s) entry-wise reproduces the Matrix path bit-for-bit.
      static constexpr cplx kZero{0.0, 0.0};
      static constexpr cplx kOne{1.0, 0.0};
      static constexpr cplx kMinusOne{-1.0, 0.0};
      const double c = std::cos(angle / 2.0);
      const double s = std::sin(angle / 2.0);
      const cplx cc{c, 0.0};
      const cplx is = kI * s;
      cplx p[16] = {};
      switch (kind) {
        case GateKind::Rzz:
          p[0] = kOne;
          p[5] = kMinusOne;
          p[10] = kMinusOne;
          p[15] = kOne;
          break;
        case GateKind::Rxx:
          p[3] = kOne;
          p[6] = kOne;
          p[9] = kOne;
          p[12] = kOne;
          break;
        case GateKind::Ryy:
          // kron(Y, Y): (-i)(-i) = -1, (-i)(i) = 1, (i)(-i) = 1,
          // (i)(i) = -1 -- all exact.
          p[3] = kMinusOne;
          p[6] = kOne;
          p[9] = kOne;
          p[12] = kMinusOne;
          break;
        default:  // Rzx: kron(Z, X)
          p[1] = kOne;
          p[4] = kOne;
          p[11] = kMinusOne;
          p[14] = kMinusOne;
          break;
      }
      for (int e = 0; e < 16; ++e) {
        const cplx ident = (e % 5 == 0) ? kOne : kZero;
        out[e] = ident * cc - p[e] * is;
      }
      return;
    }
    case GateKind::Crx:
    case GateKind::Cry:
    case GateKind::Crz:
    case GateKind::Cp: {
      GateKind base = GateKind::Rx;
      if (kind == GateKind::Cry) base = GateKind::Ry;
      if (kind == GateKind::Crz) base = GateKind::Rz;
      if (kind == GateKind::Cp) base = GateKind::Phase;
      cplx u[4];
      rot1q_entries(base, angle, u);
      for (int e = 0; e < 16; ++e) out[e] = cplx{0.0, 0.0};
      out[0] = 1.0;
      out[5] = 1.0;
      out[10] = u[0];
      out[11] = u[1];
      out[14] = u[2];
      out[15] = u[3];
      return;
    }
    default:
      throw std::logic_error("rot2q_entries: not a 2q rotation");
  }
}

/// Diagonal of an angle-dependent diagonal 2q gate (Rzz/Crz/Cp),
/// computing exactly the four entries the Matrix path would produce.
void rot2q_diag_entries(GateKind kind, double angle, cplx out[4]) {
  if (kind == GateKind::Rzz) {
    // diag(I*c - ZZ*(i s)) with ZZ diag = (1, -1, -1, 1).
    const double c = std::cos(angle / 2.0);
    const double s = std::sin(angle / 2.0);
    const cplx cc{c, 0.0};
    const cplx is = kI * s;
    out[0] = cc - is;
    out[1] = cc - cplx{-1.0, 0.0} * is;
    out[2] = out[1];
    out[3] = out[0];
    return;
  }
  // Controlled diagonal: identity block + the base rotation's diagonal.
  cplx u[4];
  rot1q_entries(kind == GateKind::Crz ? GateKind::Rz : GateKind::Phase, angle,
                u);
  out[0] = 1.0;
  out[1] = 1.0;
  out[2] = u[0];
  out[3] = u[3];
}

/// out = b * a (2x2, row-major): the matrix of "apply a, then b".
void matmul_2x2(const cplx a[4], const cplx b[4], cplx out[4]) {
  out[0] = b[0] * a[0] + b[1] * a[2];
  out[1] = b[0] * a[1] + b[1] * a[3];
  out[2] = b[2] * a[0] + b[3] * a[2];
  out[3] = b[2] * a[1] + b[3] * a[3];
}

void append_hex_u64(std::string& s, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  s += buf;
}

void append_double_bits(std::string& s, double v) {
  append_hex_u64(s, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::string structure_signature(const circuit::Circuit& c) {
  std::string sig;
  sig.reserve(c.num_ops() * 48 + 32);
  sig += "n";
  sig += std::to_string(c.num_qubits());
  sig += ";t";
  sig += std::to_string(c.num_trainable());
  sig += ";i";
  sig += std::to_string(c.num_inputs());
  sig += ";";
  for (const auto& op : c.ops()) {
    sig += "k";
    sig += std::to_string(static_cast<int>(op.kind));
    sig += ":";
    for (const int q : op.qubits) {
      sig += std::to_string(q);
      sig += ",";
    }
    sig += "p";
    sig += std::to_string(static_cast<int>(op.param.source));
    sig += ",";
    sig += std::to_string(op.param.index);
    sig += ",";
    append_double_bits(sig, op.param.scale);
    sig += ",";
    append_double_bits(sig, op.param.value);
    sig += ";";
  }
  return sig;
}

std::uint64_t structure_hash(const circuit::Circuit& c) {
  // FNV-1a over the structural fields, allocation-free.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  mix(static_cast<std::uint64_t>(c.num_qubits()));
  mix(static_cast<std::uint64_t>(c.num_trainable()));
  mix(static_cast<std::uint64_t>(c.num_inputs()));
  for (const auto& op : c.ops()) {
    mix(static_cast<std::uint64_t>(op.kind));
    for (const int q : op.qubits) mix(static_cast<std::uint64_t>(q) + 1);
    mix(static_cast<std::uint64_t>(op.param.source));
    mix(static_cast<std::uint64_t>(op.param.index) + 1);
    mix(std::bit_cast<std::uint64_t>(op.param.scale));
    mix(std::bit_cast<std::uint64_t>(op.param.value));
  }
  return h;
}

bool structure_equal(const circuit::Circuit& a, const circuit::Circuit& b) {
  if (a.num_qubits() != b.num_qubits() || a.num_ops() != b.num_ops() ||
      a.num_trainable() != b.num_trainable() ||
      a.num_inputs() != b.num_inputs())
    return false;
  for (std::size_t i = 0; i < a.num_ops(); ++i) {
    const auto& x = a.op(i);
    const auto& y = b.op(i);
    if (x.kind != y.kind || x.qubits != y.qubits ||
        x.param.source != y.param.source || x.param.index != y.param.index ||
        std::bit_cast<std::uint64_t>(x.param.scale) !=
            std::bit_cast<std::uint64_t>(y.param.scale) ||
        std::bit_cast<std::uint64_t>(x.param.value) !=
            std::bit_cast<std::uint64_t>(y.param.value))
      return false;
  }
  return true;
}

CompiledCircuit CompiledCircuit::compile(const circuit::Circuit& c,
                                         CompileOptions options) {
  CompiledCircuit plan;
  plan.source_ = c;
  plan.options_ = options;
  plan.slot_of_src_op_.assign(c.num_ops(), -1);
  plan.signature_ = structure_signature(c);
  plan.hash_ = exec::structure_hash(c);

  // ---- Lower to the flat op stream ----------------------------------------
  auto cached_matrix = [&plan](GateKind kind) -> std::int32_t {
    for (std::size_t i = 0; i < plan.matrices_.size(); ++i) {
      // Fixed-gate matrices are keyed by kind via a parallel scan; the
      // cache is tiny (a handful of distinct fixed gates per circuit).
      if (plan.matrix_kinds_[i] == kind) return static_cast<std::int32_t>(i);
    }
    plan.matrices_.push_back(circuit::gate_matrix(kind));
    plan.matrix_kinds_.push_back(kind);
    return static_cast<std::int32_t>(plan.matrices_.size() - 1);
  };

  std::vector<CompiledOp> stream;
  stream.reserve(c.num_ops());
  for (std::size_t i = 0; i < c.num_ops(); ++i) {
    const auto& op = c.op(i);
    CompiledOp out;
    out.kind = op.kind;
    out.q0 = op.qubits.empty() ? -1 : op.qubits[0];
    out.q1 = op.qubits.size() > 1 ? op.qubits[1] : -1;

    if (circuit::gate_is_parameterised(op.kind)) {
      out.slot = static_cast<std::int32_t>(plan.slots_.size());
      plan.slot_of_src_op_[i] = out.slot;
      plan.slots_.push_back({op.param, static_cast<std::uint32_t>(i)});
      out.code =
          circuit::gate_arity(op.kind) == 1 ? OpCode::Rot1q : OpCode::Rot2q;
      stream.push_back(std::move(out));
      continue;
    }

    switch (op.kind) {
      case GateKind::I:
        continue;  // exact identity; elide
      case GateKind::X: out.code = OpCode::PauliX; break;
      case GateKind::Y: out.code = OpCode::PauliY; break;
      case GateKind::Z: out.code = OpCode::PauliZ; break;
      case GateKind::Cx: out.code = OpCode::Cx; break;
      case GateKind::Cz: out.code = OpCode::Cz; break;
      case GateKind::Swap: out.code = OpCode::Swap; break;
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
        out.code = OpCode::Diag1q;
        out.matrix = cached_matrix(op.kind);
        break;
      case GateKind::H:
      case GateKind::Sx:
        out.code = OpCode::Fixed1q;
        out.matrix = cached_matrix(op.kind);
        break;
      case GateKind::Ccx:
        out.code = OpCode::FixedK;
        out.matrix = cached_matrix(op.kind);
        out.qubits = op.qubits;
        break;
      default:
        // Any other fixed gate: cache its matrix, dispatch by arity.
        out.matrix = cached_matrix(op.kind);
        out.code = circuit::gate_arity(op.kind) == 1 ? OpCode::Fixed1q
                                                     : OpCode::Fixed2q;
        break;
    }
    stream.push_back(std::move(out));
  }

  if (!options.fuse_1q) {
    plan.ops_ = std::move(stream);
    return plan;
  }

  // ---- 1q fusion -----------------------------------------------------------
  // Gather per-qubit runs of single-qubit gates separated only by ops on
  // other qubits (those commute, so the run collapses into one 2x2 at the
  // position of its last member). All-fixed runs are folded into a single
  // cached matrix at compile time; runs containing rotations become
  // Fused1q groups whose product is formed per evaluation.
  auto is_1q = [](const CompiledOp& op) {
    switch (op.code) {
      case OpCode::PauliX:
      case OpCode::PauliY:
      case OpCode::PauliZ:
      case OpCode::Diag1q:
      case OpCode::Fixed1q:
      case OpCode::Rot1q:
        return true;
      default:
        return false;
    }
  };

  std::vector<CompiledOp> fused_stream;
  fused_stream.reserve(stream.size());
  std::vector<std::vector<CompiledOp>> pending(
      static_cast<std::size_t>(c.num_qubits()));

  auto elem_matrix = [&plan, &cached_matrix](const CompiledOp& op) {
    return op.matrix >= 0 ? op.matrix : cached_matrix(op.kind);
  };

  auto flush = [&](int q) {
    auto& run = pending[static_cast<std::size_t>(q)];
    if (run.empty()) return;
    if (run.size() == 1) {
      fused_stream.push_back(std::move(run[0]));
      run.clear();
      return;
    }
    bool any_rot = false;
    for (const auto& op : run)
      if (op.code == OpCode::Rot1q) any_rot = true;

    if (!any_rot) {
      // Fold the whole run into one cached matrix now.
      Matrix prod = plan.matrices_[static_cast<std::size_t>(
          elem_matrix(run[0]))];
      for (std::size_t i = 1; i < run.size(); ++i)
        prod = plan.matrices_[static_cast<std::size_t>(elem_matrix(run[i]))] *
               prod;
      CompiledOp out;
      out.code = OpCode::Fixed1q;
      out.kind = run.back().kind;
      out.q0 = q;
      out.matrix = static_cast<std::int32_t>(plan.matrices_.size());
      plan.matrices_.push_back(std::move(prod));
      plan.matrix_kinds_.push_back(GateKind::I);  // never matched by kind
      fused_stream.push_back(std::move(out));
      run.clear();
      return;
    }

    CompiledOp out;
    out.code = OpCode::Fused1q;
    out.kind = run.back().kind;
    out.q0 = q;
    out.group = static_cast<std::int32_t>(plan.groups_.size());
    const auto begin = static_cast<std::int32_t>(plan.fused_.size());
    for (const auto& op : run) {
      FusedElem e;
      e.kind = op.kind;
      if (op.code == OpCode::Rot1q)
        e.slot = op.slot;
      else
        e.matrix = elem_matrix(op);
      plan.fused_.push_back(e);
    }
    plan.groups_.emplace_back(begin,
                              static_cast<std::int32_t>(plan.fused_.size()));
    fused_stream.push_back(std::move(out));
    run.clear();
  };

  for (auto& op : stream) {
    if (is_1q(op)) {
      pending[static_cast<std::size_t>(op.q0)].push_back(std::move(op));
      continue;
    }
    if (op.code == OpCode::FixedK) {
      for (const int q : op.qubits) flush(q);
    } else {
      flush(op.q0);
      flush(op.q1);
    }
    fused_stream.push_back(std::move(op));
  }
  for (int q = 0; q < c.num_qubits(); ++q) flush(q);

  plan.ops_ = std::move(fused_stream);
  return plan;
}

void CompiledCircuit::resolve_slots(std::span<const double> theta,
                                    std::span<const double> input,
                                    std::size_t shift_op, double shift,
                                    std::vector<double>& out) const {
  if (shift_op != Evaluation::kNoShift) {
    if (shift_op >= source_.num_ops())
      throw std::out_of_range("resolve_slots: shift op index");
    if (slot_of_src_op_[shift_op] < 0)
      throw std::invalid_argument("resolve_slots: shift op not parameterised");
  }
  out.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ParamRef ref = slots_[i].ref;
    if (slots_[i].src_op == shift_op) ref.value += shift;
    out[i] = circuit::resolve_angle(ref, theta, input);
  }
}

void CompiledCircuit::resolve_source_angles(std::span<const double> theta,
                                            std::span<const double> input,
                                            std::size_t shift_op, double shift,
                                            std::vector<double>& out) const {
  if (shift_op != Evaluation::kNoShift) {
    if (shift_op >= source_.num_ops())
      throw std::out_of_range("resolve_source_angles: shift op index");
    if (!circuit::gate_is_parameterised(source_.op(shift_op).kind))
      throw std::invalid_argument(
          "resolve_source_angles: shift op not parameterised");
  }
  out.resize(source_.num_ops());
  for (std::size_t i = 0; i < source_.num_ops(); ++i) {
    ParamRef ref = source_.op(i).param;
    if (i == shift_op) ref.value += shift;
    out[i] = circuit::resolve_angle(ref, theta, input);
  }
}

void CompiledCircuit::apply(sim::Statevector& sv,
                            std::span<const double> slot_angles) const {
  for (const auto& op : ops_) {
    switch (op.code) {
      case OpCode::PauliX:
        sv.apply_pauli_x(op.q0);
        break;
      case OpCode::PauliY:
        sv.apply_pauli_y(op.q0);
        break;
      case OpCode::PauliZ:
        sv.apply_pauli_z(op.q0);
        break;
      case OpCode::Cx:
        sv.apply_cx(op.q0, op.q1);
        break;
      case OpCode::Cz:
        sv.apply_cz(op.q0, op.q1);
        break;
      case OpCode::Swap:
        sv.apply_swap(op.q0, op.q1);
        break;
      case OpCode::Diag1q: {
        const Matrix& m = matrices_[static_cast<std::size_t>(op.matrix)];
        sv.apply_diag_1q(m(0, 0), m(1, 1), op.q0);
        break;
      }
      case OpCode::Fixed1q:
        sv.apply_1q(matrices_[static_cast<std::size_t>(op.matrix)], op.q0);
        break;
      case OpCode::Fixed2q:
        sv.apply_2q(matrices_[static_cast<std::size_t>(op.matrix)], op.q0,
                    op.q1);
        break;
      case OpCode::FixedK:
        sv.apply_matrix(matrices_[static_cast<std::size_t>(op.matrix)],
                        op.qubits);
        break;
      case OpCode::Rot1q: {
        const double angle = slot_angles[static_cast<std::size_t>(op.slot)];
        if (op.kind == GateKind::Rz || op.kind == GateKind::Phase) {
          cplx m[4];
          rot1q_entries(op.kind, angle, m);
          sv.apply_diag_1q(m[0], m[3], op.q0);
        } else {
          cplx m[4];
          rot1q_entries(op.kind, angle, m);
          sv.apply_1q(m, op.q0);
        }
        break;
      }
      case OpCode::Rot2q: {
        const double angle = slot_angles[static_cast<std::size_t>(op.slot)];
        if (is_diag_2q_kind(op.kind)) {
          cplx d[4];
          rot2q_diag_entries(op.kind, angle, d);
          sv.apply_diag_2q(d[0], d[1], d[2], d[3], op.q0, op.q1);
        } else {
          cplx m[16];
          rot2q_entries(op.kind, angle, m);
          sv.apply_2q(m, op.q0, op.q1);
        }
        break;
      }
      case OpCode::Fused1q: {
        const auto [begin, end] = groups_[static_cast<std::size_t>(op.group)];
        cplx prod[4], elem[4], tmp[4];
        for (std::int32_t e = begin; e < end; ++e) {
          const FusedElem& f = fused_[static_cast<std::size_t>(e)];
          cplx* dst = (e == begin) ? prod : elem;
          if (f.slot >= 0) {
            rot1q_entries(f.kind, slot_angles[static_cast<std::size_t>(f.slot)],
                          dst);
          } else {
            const Matrix& m = matrices_[static_cast<std::size_t>(f.matrix)];
            dst[0] = m(0, 0);
            dst[1] = m(0, 1);
            dst[2] = m(1, 0);
            dst[3] = m(1, 1);
          }
          if (e != begin) {
            matmul_2x2(prod, elem, tmp);
            for (int k = 0; k < 4; ++k) prod[k] = tmp[k];
          }
        }
        sv.apply_1q(prod, op.q0);
        break;
      }
    }
  }
}

void CompiledCircuit::resolve_slots_lanes(std::span<const Evaluation> evals,
                                          std::vector<double>& out) const {
  const std::size_t k = evals.size();
  for (const auto& e : evals) {
    if (e.shift_op != Evaluation::kNoShift) {
      if (e.shift_op >= source_.num_ops())
        throw std::out_of_range("resolve_slots_lanes: shift op index");
      if (slot_of_src_op_[e.shift_op] < 0)
        throw std::invalid_argument(
            "resolve_slots_lanes: shift op not parameterised");
    }
  }
  out.resize(slots_.size() * k);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    for (std::size_t l = 0; l < k; ++l) {
      const Evaluation& e = evals[l];
      ParamRef ref = slots_[i].ref;
      if (slots_[i].src_op == e.shift_op) ref.value += e.shift;
      out[i * k + l] = circuit::resolve_angle(ref, e.theta, e.input);
    }
  }
}

namespace {

/// Ops fusable into one diagonal pass: everything whose batched arm is a
/// per-lane complex *multiply* (PauliZ / Cz negate instead, so folding
/// them into a product chain would perturb signed zeros).
bool is_mult_diag_op(const CompiledOp& op) {
  switch (op.code) {
    case OpCode::Diag1q:
      return true;
    case OpCode::Rot1q:
      return op.kind == GateKind::Rz || op.kind == GateKind::Phase;
    case OpCode::Rot2q:
      return is_diag_2q_kind(op.kind);
    default:
      return false;
  }
}

// Ops the batched path lowers to a dense per-lane 2x2 (candidates for
// the fused pair pass; see BatchedStatevector::apply_1q_pair_lanes).
bool is_dense_1q_op(const CompiledOp& op) {
  switch (op.code) {
    case OpCode::Fixed1q:
    case OpCode::Fused1q:
      return true;
    case OpCode::Rot1q:
      return !(op.kind == GateKind::Rz || op.kind == GateKind::Phase);
    default:
      return false;
  }
}

}  // namespace

void CompiledCircuit::apply_batched(sim::BatchedStatevector& sv,
                                    std::span<const double> slot_angles) const {
  const std::size_t k = sv.lanes();
  // Entry-major per-lane scratch; 16 entries covers the dense 2q case.
  // buf2 holds the second matrix of a fused dense pair.
  std::vector<cplx> buf(16 * k);
  std::vector<cplx> buf2(4 * k);
  const auto angle_at = [&](std::int32_t slot, std::size_t lane) {
    return slot_angles[static_cast<std::size_t>(slot) * k + lane];
  };

  // Lower one dense 1q op (see is_dense_1q_op) to its entry-major
  // per-lane matrix. Entry construction is byte-for-byte the switch arms
  // below, so routing an op through the fused pair pass cannot perturb
  // its lane matrices.
  const auto build_dense_1q = [&](const CompiledOp& op, cplx* out) {
    switch (op.code) {
      case OpCode::Fixed1q: {
        const Matrix& m = matrices_[static_cast<std::size_t>(op.matrix)];
        for (std::size_t l = 0; l < k; ++l) {
          out[0 * k + l] = m(0, 0);
          out[1 * k + l] = m(0, 1);
          out[2 * k + l] = m(1, 0);
          out[3 * k + l] = m(1, 1);
        }
        break;
      }
      case OpCode::Rot1q: {
        cplx m[4];
        for (std::size_t l = 0; l < k; ++l) {
          rot1q_entries(op.kind, angle_at(op.slot, l), m);
          for (int e = 0; e < 4; ++e)
            out[static_cast<std::size_t>(e) * k + l] = m[e];
        }
        break;
      }
      default: {  // Fused1q
        const auto [begin, end] = groups_[static_cast<std::size_t>(op.group)];
        cplx prod[4], elem[4], tmp[4];
        for (std::size_t l = 0; l < k; ++l) {
          for (std::int32_t e = begin; e < end; ++e) {
            const FusedElem& f = fused_[static_cast<std::size_t>(e)];
            cplx* dst = (e == begin) ? prod : elem;
            if (f.slot >= 0) {
              rot1q_entries(f.kind, angle_at(f.slot, l), dst);
            } else {
              const Matrix& m = matrices_[static_cast<std::size_t>(f.matrix)];
              dst[0] = m(0, 0);
              dst[1] = m(0, 1);
              dst[2] = m(1, 0);
              dst[3] = m(1, 1);
            }
            if (e != begin) {
              matmul_2x2(prod, elem, tmp);
              for (int i = 0; i < 4; ++i) prod[i] = tmp[i];
            }
          }
          for (int e = 0; e < 4; ++e)
            out[static_cast<std::size_t>(e) * k + l] = prod[e];
        }
        break;
      }
    }
  };

  // Scratch for fused diagonal runs: entry buffers (4 entries x k per op)
  // plus the op descriptors handed to the kernel.
  std::vector<cplx> diag_buf;
  std::vector<sim::BatchedStatevector::DiagRunOp> diag_run;
  // Scratch for dense pair runs (8 entries x k per pair).
  std::vector<cplx> pair_buf;
  std::vector<sim::BatchedStatevector::Pair1qOp> pair_run;
  // Lower ops_[begin, end) -- all multiplicative diagonals -- into the
  // entry buffers one fused pass consumes. Entry construction per op is
  // byte-for-byte the switch arms below; only the number of sweeps over
  // the state changes.
  const auto build_diag_run = [&](std::size_t begin, std::size_t end) {
    const std::size_t len = end - begin;
    diag_buf.resize(len * 4 * k);
    diag_run.resize(len);
    for (std::size_t r = 0; r < len; ++r) {
      const CompiledOp& op = ops_[begin + r];
      cplx* d = diag_buf.data() + r * 4 * k;
      auto& out = diag_run[r];
      out.d = d;
      out.qubit_a = op.q0;
      out.qubit_b = -1;
      switch (op.code) {
        case OpCode::Diag1q: {
          const Matrix& m = matrices_[static_cast<std::size_t>(op.matrix)];
          std::fill_n(d, k, m(0, 0));
          std::fill_n(d + k, k, m(1, 1));
          break;
        }
        case OpCode::Rot1q: {
          cplx m[4];
          for (std::size_t l = 0; l < k; ++l) {
            rot1q_entries(op.kind, angle_at(op.slot, l), m);
            d[l] = m[0];
            d[k + l] = m[3];
          }
          break;
        }
        default: {  // Rot2q, diagonal kind
          out.qubit_b = op.q1;
          cplx e[4];
          for (std::size_t l = 0; l < k; ++l) {
            rot2q_diag_entries(op.kind, angle_at(op.slot, l), e);
            for (int j = 0; j < 4; ++j)
              d[static_cast<std::size_t>(j) * k + l] = e[j];
          }
          break;
        }
      }
    }
  };

  for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
    const auto& op = ops_[oi];
    if (is_mult_diag_op(op)) {
      std::size_t end = oi + 1;
      while (end < ops_.size() && is_mult_diag_op(ops_[end])) ++end;
      if (end - oi >= 2) {
        build_diag_run(oi, end);
        // When the run butts into a dense pair (an entangling ring
        // followed by the next rotation layer), fuse the run into the
        // pair's pass -- one sweep fewer per ring, bit-identical.
        if (end + 1 < ops_.size() && is_dense_1q_op(ops_[end]) &&
            is_dense_1q_op(ops_[end + 1]) && ops_[end].q0 != ops_[end + 1].q0) {
          build_dense_1q(ops_[end], buf.data());
          build_dense_1q(ops_[end + 1], buf2.data());
          sv.apply_diag_run_then_1q_pair_lanes(diag_run.data(), end - oi,
                                               buf.data(), ops_[end].q0,
                                               buf2.data(), ops_[end + 1].q0);
          oi = end + 1;
          continue;
        }
        sv.apply_diag_run_lanes(diag_run.data(), end - oi);
        oi = end - 1;
        continue;
      }
    }
    if (is_dense_1q_op(op) && oi + 1 < ops_.size()) {
      // Fuse adjacent dense 1q gates on distinct qubits into pair
      // passes (a rotation layer pairs up completely; the greedy
      // adjacent pairing is bit-identical to gate-at-a-time), and hand
      // the whole run of pairs to the tiled driver so the small-stride
      // tail of a layer is cache-blocked into one sweep. Wider
      // register-level fusion (16-row quad blocks) was measured
      // slower -- the block-local vector array spills and the
      // scattered 16-row gather cost more than the saved pass.
      std::size_t np = 0;
      std::size_t j = oi;
      while (j + 1 < ops_.size() && is_dense_1q_op(ops_[j]) &&
             is_dense_1q_op(ops_[j + 1]) && ops_[j + 1].q0 != ops_[j].q0) {
        ++np;
        j += 2;
      }
      if (np >= 1) {
        pair_buf.resize(np * 8 * k);
        pair_run.resize(np);
        for (std::size_t p = 0; p < np; ++p) {
          const auto& a = ops_[oi + 2 * p];
          const auto& b = ops_[oi + 2 * p + 1];
          cplx* ma = pair_buf.data() + p * 8 * k;
          cplx* mb = ma + 4 * k;
          build_dense_1q(a, ma);
          build_dense_1q(b, mb);
          pair_run[p] = {ma, a.q0, mb, b.q0};
        }
        if (np == 1)
          sv.apply_1q_pair_lanes(pair_run[0].m_a, pair_run[0].qubit_a,
                                 pair_run[0].m_b, pair_run[0].qubit_b);
        else
          sv.apply_1q_pair_run_lanes(pair_run.data(), np);
        oi += 2 * np - 1;
        continue;
      }
    }
    switch (op.code) {
      case OpCode::PauliX:
        sv.apply_pauli_x(op.q0);
        break;
      case OpCode::PauliY:
        sv.apply_pauli_y(op.q0);
        break;
      case OpCode::PauliZ:
        sv.apply_pauli_z(op.q0);
        break;
      case OpCode::Cx:
        sv.apply_cx(op.q0, op.q1);
        break;
      case OpCode::Cz:
        sv.apply_cz(op.q0, op.q1);
        break;
      case OpCode::Swap:
        sv.apply_swap(op.q0, op.q1);
        break;
      case OpCode::Diag1q: {
        const Matrix& m = matrices_[static_cast<std::size_t>(op.matrix)];
        sv.apply_diag_1q(m(0, 0), m(1, 1), op.q0);
        break;
      }
      case OpCode::Fixed1q:
        sv.apply_1q(matrices_[static_cast<std::size_t>(op.matrix)], op.q0);
        break;
      case OpCode::Fixed2q:
        sv.apply_2q(matrices_[static_cast<std::size_t>(op.matrix)], op.q0,
                    op.q1);
        break;
      case OpCode::FixedK:
        sv.apply_matrix(matrices_[static_cast<std::size_t>(op.matrix)],
                        op.qubits);
        break;
      case OpCode::Rot1q: {
        cplx m[4];
        if (op.kind == GateKind::Rz || op.kind == GateKind::Phase) {
          for (std::size_t l = 0; l < k; ++l) {
            rot1q_entries(op.kind, angle_at(op.slot, l), m);
            buf[l] = m[0];
            buf[k + l] = m[3];
          }
          sv.apply_diag_1q_lanes(buf.data(), op.q0);
        } else {
          build_dense_1q(op, buf.data());
          sv.apply_1q_lanes(buf.data(), op.q0);
        }
        break;
      }
      case OpCode::Rot2q: {
        if (is_diag_2q_kind(op.kind)) {
          cplx d[4];
          for (std::size_t l = 0; l < k; ++l) {
            rot2q_diag_entries(op.kind, angle_at(op.slot, l), d);
            for (int e = 0; e < 4; ++e) buf[static_cast<std::size_t>(e) * k + l] = d[e];
          }
          sv.apply_diag_2q_lanes(buf.data(), op.q0, op.q1);
        } else {
          cplx m[16];
          for (std::size_t l = 0; l < k; ++l) {
            rot2q_entries(op.kind, angle_at(op.slot, l), m);
            for (int e = 0; e < 16; ++e) buf[static_cast<std::size_t>(e) * k + l] = m[e];
          }
          sv.apply_2q_lanes(buf.data(), op.q0, op.q1);
        }
        break;
      }
      case OpCode::Fused1q: {
        build_dense_1q(op, buf.data());
        sv.apply_1q_lanes(buf.data(), op.q0);
        break;
      }
    }
  }
}

std::vector<double> CompiledCircuit::expectations(
    std::span<const double> theta, std::span<const double> input,
    std::size_t shift_op, double shift) const {
  std::vector<double> angles;
  resolve_slots(theta, input, shift_op, shift, angles);
  sim::Statevector sv(num_qubits());
  apply(sv, angles);
  return sv.expectation_z_all();
}

}  // namespace qoc::exec
