#include "qoc/exec/observable.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "qoc/sim/batched_statevector.hpp"
#include "qoc/sim/gates.hpp"

namespace qoc::exec {

namespace {

bool qwc_compatible(const std::string& basis, const std::string& paulis) {
  for (std::size_t q = 0; q < basis.size(); ++q) {
    const char b = basis[q];
    const char p = paulis[q];
    if (b != 'I' && p != 'I' && b != p) return false;
  }
  return true;
}

// Basis-change entries hoisted to namespace scope so apply_suffix does
// not rebuild a heap Matrix per (evaluation, group) pair. Values are
// exactly the sim::gate_h() / sim::gate_sdg() matrix entries, and
// Statevector::apply_1q(const Matrix&) only copies entries to the stack
// before dispatching, so this is bit-identical to the Matrix path.
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
const linalg::cplx kHEntries[4] = {kInvSqrt2, kInvSqrt2, kInvSqrt2,
                                   -kInvSqrt2};
const linalg::cplx kSdgEntries[4] = {1.0, 0.0, 0.0, -linalg::kI};

}  // namespace

CompiledObservable CompiledObservable::compile(
    int n_qubits, std::span<const ObservableTerm> terms) {
  if (n_qubits < 1 || n_qubits > 30)
    throw std::invalid_argument("CompiledObservable: n_qubits out of [1,30]");
  CompiledObservable obs;
  obs.n_qubits_ = n_qubits;
  obs.terms_.assign(terms.begin(), terms.end());

  for (std::size_t t = 0; t < obs.terms_.size(); ++t) {
    const auto& term = obs.terms_[t];
    if (static_cast<int>(term.paulis.size()) != n_qubits)
      throw std::invalid_argument(
          "CompiledObservable: term length must equal n_qubits");

    std::uint64_t z_mask = 0;
    for (int q = 0; q < n_qubits; ++q) {
      const char c = term.paulis[static_cast<std::size_t>(q)];
      if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z')
        throw std::invalid_argument(
            std::string("CompiledObservable: bad Pauli '") + c + "'");
      if (c != 'I') z_mask |= qubit_bit(q, n_qubits);
    }
    if (z_mask == 0) {
      obs.constant_ += term.coeff;
      continue;
    }

    // Greedy qubit-wise-commuting packing: first compatible group wins.
    Group* home = nullptr;
    for (auto& g : obs.groups_)
      if (qwc_compatible(g.basis, term.paulis)) {
        home = &g;
        break;
      }
    if (home == nullptr) {
      obs.groups_.emplace_back();
      home = &obs.groups_.back();
      home->basis.assign(static_cast<std::size_t>(n_qubits), 'I');
    }
    for (int q = 0; q < n_qubits; ++q) {
      const char c = term.paulis[static_cast<std::size_t>(q)];
      if (c != 'I') home->basis[static_cast<std::size_t>(q)] = c;
    }
    home->measured_mask |= z_mask;
    home->terms.push_back({z_mask, term.coeff, t});
  }

  // Compile each group's merged basis into its measurement suffix.
  for (auto& g : obs.groups_) {
    for (int q = 0; q < n_qubits; ++q) {
      const char c = g.basis[static_cast<std::size_t>(q)];
      if (c == 'X') g.suffix.push_back({q, false});
      else if (c == 'Y') g.suffix.push_back({q, true});
    }
  }
  return obs;
}

double CompiledObservable::expectation(const sim::Statevector& psi) const {
  if (psi.num_qubits() != n_qubits_)
    throw std::invalid_argument("CompiledObservable: state size mismatch");
  // Mirrors vqe::Hamiltonian::expectation term by term (same kernels,
  // same accumulation order) so exact-mode results stay bit-identical to
  // the pre-batching per-term loop.
  double e = 0.0;
  for (const auto& term : terms_) {
    sim::Statevector scratch = psi;
    for (int q = 0; q < n_qubits_; ++q) {
      switch (term.paulis[static_cast<std::size_t>(q)]) {
        case 'X': scratch.apply_pauli_x(q); break;
        case 'Y': scratch.apply_pauli_y(q); break;
        case 'Z': scratch.apply_pauli_z(q); break;
        default: break;
      }
    }
    double acc = 0.0;
    const auto& a = psi.amplitudes();
    const auto& b = scratch.amplitudes();
    for (std::size_t i = 0; i < a.size(); ++i)
      acc += (std::conj(a[i]) * b[i]).real();
    e += term.coeff * acc;
  }
  return e;
}

void CompiledObservable::expectation_lanes(const sim::BatchedStatevector& psi,
                                           std::span<double> out) const {
  if (psi.num_qubits() != n_qubits_)
    throw std::invalid_argument("CompiledObservable: state size mismatch");
  const std::size_t k = psi.lanes();
  if (out.size() != k)
    throw std::invalid_argument("expectation_lanes: out size != lanes");
  for (std::size_t l = 0; l < k; ++l) out[l] = 0.0;
  for (const auto& term : terms_) {
    sim::BatchedStatevector scratch = psi;
    for (int q = 0; q < n_qubits_; ++q) {
      switch (term.paulis[static_cast<std::size_t>(q)]) {
        case 'X': scratch.apply_pauli_x(q); break;
        case 'Y': scratch.apply_pauli_y(q); break;
        case 'Z': scratch.apply_pauli_z(q); break;
        default: break;
      }
    }
    const auto& a = psi.amplitudes();
    const auto& b = scratch.amplitudes();
    const std::size_t dim = psi.dim();
    for (std::size_t l = 0; l < k; ++l) {
      double acc = 0.0;
      for (std::size_t i = 0; i < dim; ++i)
        acc += (std::conj(a[i * k + l]) * b[i * k + l]).real();
      out[l] += term.coeff * acc;
    }
  }
}

void CompiledObservable::apply_suffix(sim::Statevector& psi, std::size_t g,
                                      std::span<const int> layout) const {
  for (const auto& bc : groups_[g].suffix) {
    const int q = layout.empty()
                      ? bc.qubit
                      : layout[static_cast<std::size_t>(bc.qubit)];
    if (bc.y) psi.apply_1q(kSdgEntries, q);
    psi.apply_1q(kHEntries, q);
  }
}

void CompiledObservable::apply_suffix_lanes(sim::BatchedStatevector& psi,
                                            std::size_t g,
                                            std::span<const int> layout) const {
  for (const auto& bc : groups_[g].suffix) {
    const int q = layout.empty()
                      ? bc.qubit
                      : layout[static_cast<std::size_t>(bc.qubit)];
    if (bc.y) psi.apply_1q(kSdgEntries, q);
    psi.apply_1q(kHEntries, q);
  }
}

double CompiledObservable::group_energy_from_samples(
    std::span<const std::uint64_t> samples, std::size_t g, int shots) const {
  double e = 0.0;
  for (const auto& term : groups_[g].terms) {
    double parity_sum = 0.0;
    for (const auto s : samples)
      parity_sum += (std::popcount(s & term.z_mask) & 1) ? -1.0 : 1.0;
    e += term.coeff * (parity_sum / shots);
  }
  return e;
}

double CompiledObservable::group_energy_exact(const sim::Statevector& psi,
                                              std::size_t g) const {
  double e = 0.0;
  const auto& amps = psi.amplitudes();
  for (const auto& term : groups_[g].terms) {
    double acc = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
      const double p = std::norm(amps[i]);
      acc += (std::popcount(i & term.z_mask) & 1) ? -p : p;
    }
    e += term.coeff * acc;
  }
  return e;
}

}  // namespace qoc::exec
