#include "qoc/linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qoc::linalg {

namespace {

double off_diagonal_norm(const std::vector<double>& a, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
  return std::sqrt(2.0 * s);
}

}  // namespace

SymEigenResult sym_eigen(const std::vector<double>& a_in, std::size_t n,
                         int max_sweeps) {
  if (a_in.size() != n * n)
    throw std::invalid_argument("sym_eigen: size mismatch");

  std::vector<double> a = a_in;
  // V accumulates the rotations; starts as identity.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const double tol = 1e-13 * std::max(1.0, off_diagonal_norm(a_in, n));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(a, n) <= tol) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        // Classic Jacobi rotation angle selection (Golub & Van Loan 8.4).
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // A <- J^T A J ; update rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // V <- V J.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a[i * n + i];
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  SymEigenResult res;
  res.values.resize(n);
  res.vectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    res.values[k] = diag[src];
    for (std::size_t i = 0; i < n; ++i) res.vectors[k][i] = v[i * n + src];
  }
  return res;
}

double hermitian_min_eigenvalue(const Matrix& h) {
  if (h.rows() != h.cols())
    throw std::invalid_argument("hermitian_min_eigenvalue: non-square");
  const std::size_t n = h.rows();
  const std::size_t m = 2 * n;
  // Embedding: H = A + iB (A symmetric, B antisymmetric) maps to the real
  // symmetric [A -B; B A], whose spectrum is that of H, doubled.
  std::vector<double> real(m * m, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const double re = h(r, c).real();
      const double im = h(r, c).imag();
      real[r * m + c] = re;
      real[(r + n) * m + (c + n)] = re;
      real[r * m + (c + n)] = -im;
      real[(r + n) * m + c] = im;
    }
  }
  const SymEigenResult res = sym_eigen(real, m);
  return res.values.back();
}

}  // namespace qoc::linalg
