#include "qoc/linalg/matrix.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace qoc::linalg {

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::operator*: inner dim mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx aik = (*this)(i, k);
      if (aik == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out(i, j) += aik * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::operator*(cplx scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  *this = *this + rhs;
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  *this = *this - rhs;
  return *this;
}

Matrix& Matrix::operator*=(cplx scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out(c, r) = std::conj((*this)(r, c));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::conj() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = std::conj(data_[i]);
  return out;
}

cplx Matrix::trace() const {
  cplx t{0.0, 0.0};
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

std::vector<cplx> Matrix::apply(const std::vector<cplx>& vec) const {
  if (vec.size() != cols_)
    throw std::invalid_argument("Matrix::apply: dim mismatch");
  std::vector<cplx> out(rows_, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * vec[c];
    out[r] = acc;
  }
  return out;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx v = (*this)(r, c);
      os << v.real();
      os << (v.imag() >= 0 ? "+" : "-") << std::abs(v.imag()) << "i ";
    }
    os << "]\n";
  }
  return os.str();
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar)
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const cplx v = a(ar, ac);
      if (v == cplx{0.0, 0.0}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br)
        for (std::size_t bc = 0; bc < b.cols(); ++bc)
          out(ar * b.rows() + br, ac * b.cols() + bc) = v * b(br, bc);
    }
  return out;
}

Matrix kron_all(const std::vector<Matrix>& ms) {
  if (ms.empty()) return Matrix::identity(1);
  Matrix out = ms.front();
  for (std::size_t i = 1; i < ms.size(); ++i) out = kron(out, ms[i]);
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::abs(a(r, c) - b(r, c)));
  return m;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  return max_abs_diff(a, b) <= tol;
}

bool is_unitary(const Matrix& m, double tol) {
  if (m.rows() != m.cols()) return false;
  return approx_equal(m * m.adjoint(), Matrix::identity(m.rows()), tol);
}

bool is_hermitian(const Matrix& m, double tol) {
  if (m.rows() != m.cols()) return false;
  return approx_equal(m, m.adjoint(), tol);
}

bool equal_up_to_global_phase(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  // Find the largest-magnitude entry of b to extract the phase robustly.
  std::size_t br = 0, bc = 0;
  double best = -1.0;
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c)
      if (std::abs(b(r, c)) > best) {
        best = std::abs(b(r, c));
        br = r;
        bc = c;
      }
  if (best < tol) return max_abs_diff(a, b) <= tol;  // b ~ 0
  if (std::abs(a(br, bc)) < tol) return false;
  const cplx phase = a(br, bc) / b(br, bc);
  if (std::abs(std::abs(phase) - 1.0) > 1e-6) return false;
  return approx_equal(a, b * phase, tol);
}

}  // namespace qoc::linalg
