#include "qoc/sim/gates.hpp"

#include <cmath>
#include <stdexcept>

namespace qoc::sim {

using linalg::kI;
using linalg::kPi;

Matrix gate_i() { return Matrix{{1, 0}, {0, 1}}; }

Matrix gate_x() { return Matrix{{0, 1}, {1, 0}}; }

Matrix gate_y() { return Matrix{{0, -kI}, {kI, 0}}; }

Matrix gate_z() { return Matrix{{1, 0}, {0, -1}}; }

Matrix gate_h() {
  const double s = 1.0 / std::sqrt(2.0);
  return Matrix{{s, s}, {s, -s}};
}

Matrix gate_s() { return Matrix{{1, 0}, {0, kI}}; }

Matrix gate_sdg() { return Matrix{{1, 0}, {0, -kI}}; }

Matrix gate_t() {
  return Matrix{{1, 0}, {0, std::exp(kI * (kPi / 4.0))}};
}

Matrix gate_tdg() {
  return Matrix{{1, 0}, {0, std::exp(-kI * (kPi / 4.0))}};
}

Matrix gate_sx() {
  // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
  const cplx a{0.5, 0.5};
  const cplx b{0.5, -0.5};
  return Matrix{{a, b}, {b, a}};
}

Matrix gate_rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix{{c, -kI * s}, {-kI * s, c}};
}

Matrix gate_ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix{{c, -s}, {s, c}};
}

Matrix gate_rz(double theta) {
  return Matrix{{std::exp(-kI * (theta / 2.0)), 0},
                {0, std::exp(kI * (theta / 2.0))}};
}

Matrix gate_p(double lambda) {
  return Matrix{{1, 0}, {0, std::exp(kI * lambda)}};
}

Matrix gate_u3(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix{{c, -std::exp(kI * lambda) * s},
                {std::exp(kI * phi) * s, std::exp(kI * (phi + lambda)) * c}};
}

Matrix gate_cx() {
  return Matrix{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
}

Matrix gate_cz() {
  return Matrix{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
}

Matrix gate_swap() {
  return Matrix{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
}

namespace {

/// exp(-i theta/2 * P) for a two-qubit Pauli-product generator P with
/// P^2 = I: cos(theta/2) I - i sin(theta/2) P.
Matrix two_qubit_rotation(const Matrix& generator, double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  Matrix out = Matrix::identity(4) * cplx{c, 0.0};
  out -= generator * (kI * s);
  return out;
}

}  // namespace

Matrix gate_rxx(double theta) {
  return two_qubit_rotation(linalg::kron(gate_x(), gate_x()), theta);
}

Matrix gate_ryy(double theta) {
  return two_qubit_rotation(linalg::kron(gate_y(), gate_y()), theta);
}

Matrix gate_rzz(double theta) {
  return two_qubit_rotation(linalg::kron(gate_z(), gate_z()), theta);
}

Matrix gate_rzx(double theta) {
  return two_qubit_rotation(linalg::kron(gate_z(), gate_x()), theta);
}

namespace {

/// Embed a 2x2 single-qubit gate as its controlled version on 2 qubits
/// (control = higher bit).
Matrix controlled(const Matrix& u) {
  Matrix out = Matrix::identity(4);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) out(2 + r, 2 + c) = u(r, c);
  return out;
}

}  // namespace

Matrix gate_crx(double theta) { return controlled(gate_rx(theta)); }
Matrix gate_cry(double theta) { return controlled(gate_ry(theta)); }
Matrix gate_crz(double theta) { return controlled(gate_rz(theta)); }
Matrix gate_cp(double lambda) { return controlled(gate_p(lambda)); }

Matrix gate_ccx() {
  Matrix out = Matrix::identity(8);
  out(6, 6) = 0.0;
  out(7, 7) = 0.0;
  out(6, 7) = 1.0;
  out(7, 6) = 1.0;
  return out;
}

Matrix pauli(int index) {
  switch (index) {
    case 0: return gate_i();
    case 1: return gate_x();
    case 2: return gate_y();
    case 3: return gate_z();
    default: throw std::invalid_argument("pauli: index must be 0..3");
  }
}

}  // namespace qoc::sim
