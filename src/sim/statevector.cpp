#include "qoc/sim/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qoc/sim/kernels.hpp"

namespace qoc::sim {

namespace {
constexpr int kMaxQubits = 30;
}

Statevector::Statevector(int n_qubits) : n_qubits_(n_qubits) {
  if (n_qubits < 1 || n_qubits > kMaxQubits)
    throw std::invalid_argument("Statevector: n_qubits out of range [1,30]");
  amps_.assign(std::size_t{1} << n_qubits, cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::set_amplitudes(std::vector<cplx> amps) {
  if (amps.size() != amps_.size())
    throw std::invalid_argument("Statevector::set_amplitudes: dim mismatch");
  amps_ = std::move(amps);
}

void Statevector::apply_1q(const Matrix& m, int qubit) {
  if (m.rows() != 2 || m.cols() != 2)
    throw std::invalid_argument("apply_1q: matrix must be 2x2");
  const cplx mm[4] = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
  apply_1q(mm, qubit);
}

void Statevector::apply_1q(const cplx* m, int qubit) {
  if (qubit < 0 || qubit >= n_qubits_)
    throw std::out_of_range("apply_1q: qubit index");
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  kernels::apply_1q(amps_.data(), amps_.size(), stride, m);
}

void Statevector::apply_2q(const Matrix& m, int qubit_a, int qubit_b) {
  if (m.rows() != 4 || m.cols() != 4)
    throw std::invalid_argument("apply_2q: matrix must be 4x4");
  cplx mm[16];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) mm[r * 4 + c] = m(r, c);
  apply_2q(mm, qubit_a, qubit_b);
}

void Statevector::apply_2q(const cplx* m, int qubit_a, int qubit_b) {
  if (qubit_a == qubit_b)
    throw std::invalid_argument("apply_2q: duplicate qubit");
  if (qubit_a < 0 || qubit_a >= n_qubits_ || qubit_b < 0 ||
      qubit_b >= n_qubits_)
    throw std::out_of_range("apply_2q: qubit index");

  const std::size_t sa = std::size_t{1} << (n_qubits_ - 1 - qubit_a);
  const std::size_t sb = std::size_t{1} << (n_qubits_ - 1 - qubit_b);
  kernels::apply_2q(amps_.data(), amps_.size(), sa, sb, m);
}

void Statevector::apply_diag_1q(cplx d0, cplx d1, int qubit) {
  if (qubit < 0 || qubit >= n_qubits_)
    throw std::out_of_range("apply_diag_1q: qubit index");
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  kernels::apply_diag_1q(amps_.data(), amps_.size(), stride, d0, d1);
}

void Statevector::apply_diag_2q(cplx d00, cplx d01, cplx d10, cplx d11,
                                int qubit_a, int qubit_b) {
  if (qubit_a == qubit_b)
    throw std::invalid_argument("apply_diag_2q: duplicate qubit");
  if (qubit_a < 0 || qubit_a >= n_qubits_ || qubit_b < 0 ||
      qubit_b >= n_qubits_)
    throw std::out_of_range("apply_diag_2q: qubit index");
  const std::size_t sa = std::size_t{1} << (n_qubits_ - 1 - qubit_a);
  const std::size_t sb = std::size_t{1} << (n_qubits_ - 1 - qubit_b);
  const cplx d[4] = {d00, d01, d10, d11};
  kernels::apply_diag_2q(amps_.data(), amps_.size(), sa, sb, d);
}

void Statevector::apply_cx(int control, int target) {
  if (control == target)
    throw std::invalid_argument("apply_cx: duplicate qubit");
  if (control < 0 || control >= n_qubits_ || target < 0 ||
      target >= n_qubits_)
    throw std::out_of_range("apply_cx: qubit index");
  const std::size_t sc = std::size_t{1} << (n_qubits_ - 1 - control);
  const std::size_t st = std::size_t{1} << (n_qubits_ - 1 - target);
  kernels::apply_cx(amps_.data(), amps_.size(), sc, st);
}

void Statevector::apply_cz(int qubit_a, int qubit_b) {
  if (qubit_a == qubit_b)
    throw std::invalid_argument("apply_cz: duplicate qubit");
  if (qubit_a < 0 || qubit_a >= n_qubits_ || qubit_b < 0 ||
      qubit_b >= n_qubits_)
    throw std::out_of_range("apply_cz: qubit index");
  const std::size_t sa = std::size_t{1} << (n_qubits_ - 1 - qubit_a);
  const std::size_t sb = std::size_t{1} << (n_qubits_ - 1 - qubit_b);
  kernels::apply_cz(amps_.data(), amps_.size(), sa, sb);
}

void Statevector::apply_swap(int qubit_a, int qubit_b) {
  if (qubit_a == qubit_b)
    throw std::invalid_argument("apply_swap: duplicate qubit");
  if (qubit_a < 0 || qubit_a >= n_qubits_ || qubit_b < 0 ||
      qubit_b >= n_qubits_)
    throw std::out_of_range("apply_swap: qubit index");
  const std::size_t sa = std::size_t{1} << (n_qubits_ - 1 - qubit_a);
  const std::size_t sb = std::size_t{1} << (n_qubits_ - 1 - qubit_b);
  kernels::apply_swap(amps_.data(), amps_.size(), sa, sb);
}

void Statevector::apply_matrix(const Matrix& m, const std::vector<int>& qubits) {
  const std::size_t k = qubits.size();
  if (k == 1) {
    apply_1q(m, qubits[0]);
    return;
  }
  if (k == 2) {
    apply_2q(m, qubits[0], qubits[1]);
    return;
  }
  if (k == 0 || k > 6)
    throw std::invalid_argument("apply_matrix: supports 1..6 qubits");
  const std::size_t sub = std::size_t{1} << k;
  if (m.rows() != sub || m.cols() != sub)
    throw std::invalid_argument("apply_matrix: matrix dim mismatch");
  for (std::size_t i = 0; i < k; ++i) {
    if (qubits[i] < 0 || qubits[i] >= n_qubits_)
      throw std::out_of_range("apply_matrix: qubit index");
    for (std::size_t j = i + 1; j < k; ++j)
      if (qubits[i] == qubits[j])
        throw std::invalid_argument("apply_matrix: duplicate qubit");
  }

  // Strides: qubits[0] is the highest bit of the sub-index.
  std::vector<std::size_t> stride(k);
  std::size_t mask = 0;
  for (std::size_t i = 0; i < k; ++i) {
    stride[i] = std::size_t{1} << (n_qubits_ - 1 - qubits[i]);
    mask |= stride[i];
  }

  std::vector<cplx> in(sub), out(sub);
  const std::size_t dim = amps_.size();
  for (std::size_t base = 0; base < dim; ++base) {
    if (base & mask) continue;
    for (std::size_t s = 0; s < sub; ++s) {
      std::size_t idx = base;
      for (std::size_t b = 0; b < k; ++b)
        if (s & (sub >> 1 >> b)) idx |= stride[b];
      in[s] = amps_[idx];
    }
    for (std::size_t r = 0; r < sub; ++r) {
      cplx acc{0.0, 0.0};
      for (std::size_t c = 0; c < sub; ++c) acc += m(r, c) * in[c];
      out[r] = acc;
    }
    for (std::size_t s = 0; s < sub; ++s) {
      std::size_t idx = base;
      for (std::size_t b = 0; b < k; ++b)
        if (s & (sub >> 1 >> b)) idx |= stride[b];
      amps_[idx] = out[s];
    }
  }
}

void Statevector::apply_pauli_x(int qubit) {
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  kernels::apply_pauli_x(amps_.data(), amps_.size(), stride);
}

void Statevector::apply_pauli_y(int qubit) {
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  kernels::apply_pauli_y(amps_.data(), amps_.size(), stride);
}

void Statevector::apply_pauli_z(int qubit) {
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  kernels::apply_pauli_z(amps_.data(), amps_.size(), stride);
}

double Statevector::expectation_z(int qubit) const {
  if (qubit < 0 || qubit >= n_qubits_)
    throw std::out_of_range("expectation_z: qubit index");
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  double acc = 0.0;
  const std::size_t dim = amps_.size();
  for (std::size_t i = 0; i < dim; ++i) {
    const double p = std::norm(amps_[i]);
    acc += (i & stride) ? -p : p;
  }
  return acc;
}

std::vector<double> Statevector::expectation_z_all() const {
  std::vector<double> out(n_qubits_, 0.0);
  const std::size_t dim = amps_.size();
  for (std::size_t i = 0; i < dim; ++i) {
    const double p = std::norm(amps_[i]);
    if (p == 0.0) continue;
    for (int q = 0; q < n_qubits_; ++q) {
      const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - q);
      out[q] += (i & stride) ? -p : p;
    }
  }
  return out;
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

double Statevector::probability_one(int qubit) const {
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i)
    if (i & stride) acc += std::norm(amps_[i]);
  return acc;
}

std::vector<std::uint64_t> Statevector::sample(int shots, Prng& rng) const {
  // Inverse-CDF sampling over the (small) basis; O(dim + shots log dim).
  std::vector<double> cdf(amps_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    cdf[i] = acc;
  }
  const double total = acc;
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    out.push_back(static_cast<std::uint64_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1)));
  }
  return out;
}

int Statevector::measure_qubit(int qubit, Prng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.bernoulli(p1) ? 1 : 0;
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool bit = (i & stride) != 0;
    if (bit != (outcome == 1)) amps_[i] = cplx{0.0, 0.0};
  }
  normalize();
  return outcome;
}

double Statevector::norm_squared() const {
  double s = 0.0;
  for (const auto& a : amps_) s += std::norm(a);
  return s;
}

double Statevector::norm() const { return std::sqrt(norm_squared()); }

void Statevector::normalize() {
  const double n = norm();
  if (n < 1e-300) throw std::runtime_error("Statevector::normalize: zero norm");
  const double inv = 1.0 / n;
  for (auto& a : amps_) a *= inv;
}

double Statevector::fidelity(const Statevector& other) const {
  if (other.dim() != dim())
    throw std::invalid_argument("fidelity: dim mismatch");
  cplx ip{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i)
    ip += std::conj(other.amps_[i]) * amps_[i];
  return std::norm(ip);
}

}  // namespace qoc::sim
