// Evaluation-major statevector. Deliberately compiled with the DEFAULT
// flags (not the kernel TUs' -ffp-contract=off): the measurement loops
// below must contract exactly like their Statevector counterparts in
// statevector.cpp -- same flags, same expression trees -- while all
// amplitude arithmetic dispatches into the no-FMA kernel TUs.

#include "qoc/sim/batched_statevector.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "qoc/sim/kernels.hpp"

namespace qoc::sim {

namespace {
constexpr int kMaxQubits = 30;

// Accumulate <Z> for a block of NQ qubits over the |amp|^2 buffer with
// K compile-time lanes. The NQ * K accumulators live in registers and
// every chain advances once per row, so the FP add latency that
// serializes a per-lane sweep is hidden across lanes *and* qubits.
// Bit-exactness: each (qubit, lane) accumulator still receives exactly
// the scalar loop's +-p sequence in i-ascending order -- multiplying by
// +-1.0 is an exact sign flip (so contraction of the multiply-add is
// harmless: the product needs no rounding), and the scalar path's
// skip-zero branch is unobservable because adding +-0 never changes an
// accumulator that cannot itself be -0 (sums of +-p with p >= +0 round
// any exact zero to +0).
template <int NQ, int K>
void z_accumulate_block(const double* pn, std::size_t dim, const int* shifts,
                        double* out) {
  double acc[NQ * K] = {};
  for (std::size_t i = 0; i < dim; ++i) {
    const double* row = pn + i * K;
    for (int b = 0; b < NQ; ++b) {
      const double sgn = ((i >> shifts[b]) & 1U) ? -1.0 : 1.0;
      for (int l = 0; l < K; ++l) acc[b * K + l] += row[l] * sgn;
    }
  }
  for (int j = 0; j < NQ * K; ++j) out[j] = acc[j];
}

// Runtime-lane fallback for pinned non-default widths; same arithmetic,
// memory accumulators.
void z_accumulate_generic(const double* pn, std::size_t dim, std::size_t k,
                          int shift, double* out) {
  for (std::size_t i = 0; i < dim; ++i) {
    const double sgn = ((i >> shift) & 1U) ? -1.0 : 1.0;
    const double* row = pn + i * k;
    for (std::size_t l = 0; l < k; ++l) out[l] += row[l] * sgn;
  }
}

// All qubits at compile-time width K, four-qubit blocks.
template <int K>
void z_accumulate_all(const double* pn, std::size_t dim, int n_qubits,
                      std::size_t lanes, double* out) {
  int q = 0;
  while (q < n_qubits) {
    const int blk = std::min(4, n_qubits - q);
    int shifts[4] = {};
    for (int b = 0; b < blk; ++b) shifts[b] = n_qubits - 1 - (q + b);
    double* oq = out + static_cast<std::size_t>(q) * lanes;
    switch (blk) {
      case 4: z_accumulate_block<4, K>(pn, dim, shifts, oq); break;
      case 3: z_accumulate_block<3, K>(pn, dim, shifts, oq); break;
      case 2: z_accumulate_block<2, K>(pn, dim, shifts, oq); break;
      default: z_accumulate_block<1, K>(pn, dim, shifts, oq); break;
    }
    q += blk;
  }
}

}  // namespace

BatchedStatevector::BatchedStatevector(int n_qubits, std::size_t lanes)
    : n_qubits_(n_qubits), lanes_(lanes) {
  if (n_qubits < 1 || n_qubits > kMaxQubits)
    throw std::invalid_argument(
        "BatchedStatevector: n_qubits out of range [1,30]");
  if (lanes < 2 || lanes > kMaxLanes || (lanes % 2) != 0)
    throw std::invalid_argument(
        "BatchedStatevector: lanes must be even, in [2,32]");
  dim_ = std::size_t{1} << n_qubits;
  amps_.assign(dim_ * lanes_, cplx{0.0, 0.0});
  bcast_.resize(16 * lanes_);
  for (std::size_t l = 0; l < lanes_; ++l) amps_[l] = 1.0;
}

void BatchedStatevector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  for (std::size_t l = 0; l < lanes_; ++l) amps_[l] = 1.0;
}

void BatchedStatevector::check_qubit(int qubit, const char* what) const {
  if (qubit < 0 || qubit >= n_qubits_) throw std::out_of_range(what);
}

void BatchedStatevector::check_pair(int qubit_a, int qubit_b,
                                    const char* what) const {
  if (qubit_a == qubit_b) throw std::invalid_argument(what);
  check_qubit(qubit_a, what);
  check_qubit(qubit_b, what);
}

// ---- Uniform gates ---------------------------------------------------------
// Entries broadcast into the entry-major scratch once per call; the cost
// is O(entries * lanes) against O(2^n * lanes) kernel work.

void BatchedStatevector::apply_1q(const Matrix& m, int qubit) {
  if (m.rows() != 2 || m.cols() != 2)
    throw std::invalid_argument("apply_1q: matrix must be 2x2");
  const cplx mm[4] = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
  apply_1q(mm, qubit);
}

void BatchedStatevector::apply_1q(const cplx* m, int qubit) {
  check_qubit(qubit, "apply_1q: qubit index");
  for (int e = 0; e < 4; ++e)
    std::fill_n(bcast_.data() + e * lanes_, lanes_, m[e]);
  kernels::batched_apply_1q(amps_.data(), dim_, stride_of(qubit), lanes_,
                            bcast_.data());
}

void BatchedStatevector::apply_2q(const Matrix& m, int qubit_a, int qubit_b) {
  if (m.rows() != 4 || m.cols() != 4)
    throw std::invalid_argument("apply_2q: matrix must be 4x4");
  cplx mm[16];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) mm[r * 4 + c] = m(r, c);
  apply_2q(mm, qubit_a, qubit_b);
}

void BatchedStatevector::apply_2q(const cplx* m, int qubit_a, int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_2q: qubit pair");
  for (int e = 0; e < 16; ++e)
    std::fill_n(bcast_.data() + e * lanes_, lanes_, m[e]);
  kernels::batched_apply_2q(amps_.data(), dim_, stride_of(qubit_a),
                            stride_of(qubit_b), lanes_, bcast_.data());
}

void BatchedStatevector::apply_diag_1q(cplx d0, cplx d1, int qubit) {
  check_qubit(qubit, "apply_diag_1q: qubit index");
  std::fill_n(bcast_.data(), lanes_, d0);
  std::fill_n(bcast_.data() + lanes_, lanes_, d1);
  kernels::batched_apply_diag_1q(amps_.data(), dim_, stride_of(qubit), lanes_,
                                 bcast_.data());
}

void BatchedStatevector::apply_diag_2q(cplx d00, cplx d01, cplx d10, cplx d11,
                                       int qubit_a, int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_diag_2q: qubit pair");
  const cplx d[4] = {d00, d01, d10, d11};
  for (int e = 0; e < 4; ++e)
    std::fill_n(bcast_.data() + e * lanes_, lanes_, d[e]);
  kernels::batched_apply_diag_2q(amps_.data(), dim_, stride_of(qubit_a),
                                 stride_of(qubit_b), lanes_, bcast_.data());
}

void BatchedStatevector::apply_cx(int control, int target) {
  check_pair(control, target, "apply_cx: qubit pair");
  kernels::batched_apply_cx(amps_.data(), dim_, stride_of(control),
                            stride_of(target), lanes_);
}

void BatchedStatevector::apply_cz(int qubit_a, int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_cz: qubit pair");
  kernels::batched_apply_cz(amps_.data(), dim_, stride_of(qubit_a),
                            stride_of(qubit_b), lanes_);
}

void BatchedStatevector::apply_swap(int qubit_a, int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_swap: qubit pair");
  kernels::batched_apply_swap(amps_.data(), dim_, stride_of(qubit_a),
                              stride_of(qubit_b), lanes_);
}

void BatchedStatevector::apply_pauli_x(int qubit) {
  check_qubit(qubit, "apply_pauli_x: qubit index");
  kernels::batched_apply_pauli_x(amps_.data(), dim_, stride_of(qubit), lanes_);
}

void BatchedStatevector::apply_pauli_y(int qubit) {
  check_qubit(qubit, "apply_pauli_y: qubit index");
  kernels::batched_apply_pauli_y(amps_.data(), dim_, stride_of(qubit), lanes_);
}

void BatchedStatevector::apply_pauli_z(int qubit) {
  check_qubit(qubit, "apply_pauli_z: qubit index");
  kernels::batched_apply_pauli_z(amps_.data(), dim_, stride_of(qubit), lanes_);
}

void BatchedStatevector::apply_matrix(const Matrix& m,
                                      const std::vector<int>& qubits) {
  const std::size_t k = qubits.size();
  if (k == 1) {
    apply_1q(m, qubits[0]);
    return;
  }
  if (k == 2) {
    apply_2q(m, qubits[0], qubits[1]);
    return;
  }
  if (k == 0 || k > 6)
    throw std::invalid_argument("apply_matrix: supports 1..6 qubits");
  const std::size_t sub = std::size_t{1} << k;
  if (m.rows() != sub || m.cols() != sub)
    throw std::invalid_argument("apply_matrix: matrix dim mismatch");
  for (std::size_t i = 0; i < k; ++i) {
    check_qubit(qubits[i], "apply_matrix: qubit index");
    for (std::size_t j = i + 1; j < k; ++j)
      if (qubits[i] == qubits[j])
        throw std::invalid_argument("apply_matrix: duplicate qubit");
  }

  std::vector<std::size_t> stride(k);
  std::size_t mask = 0;
  for (std::size_t i = 0; i < k; ++i) {
    stride[i] = stride_of(qubits[i]);
    mask |= stride[i];
  }

  // Per-lane gather/matmul/scatter with the Statevector arithmetic
  // (acc += m(r,c) * in[c], c ascending).
  std::vector<cplx> in(sub), out(sub);
  for (std::size_t base = 0; base < dim_; ++base) {
    if (base & mask) continue;
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      for (std::size_t s = 0; s < sub; ++s) {
        std::size_t idx = base;
        for (std::size_t b = 0; b < k; ++b)
          if (s & (sub >> 1 >> b)) idx |= stride[b];
        in[s] = amps_[idx * lanes_ + lane];
      }
      for (std::size_t r = 0; r < sub; ++r) {
        cplx acc{0.0, 0.0};
        for (std::size_t c = 0; c < sub; ++c) acc += m(r, c) * in[c];
        out[r] = acc;
      }
      for (std::size_t s = 0; s < sub; ++s) {
        std::size_t idx = base;
        for (std::size_t b = 0; b < k; ++b)
          if (s & (sub >> 1 >> b)) idx |= stride[b];
        amps_[idx * lanes_ + lane] = out[s];
      }
    }
  }
}

// ---- Per-lane gates --------------------------------------------------------

void BatchedStatevector::apply_1q_lanes(const cplx* m, int qubit) {
  check_qubit(qubit, "apply_1q_lanes: qubit index");
  kernels::batched_apply_1q(amps_.data(), dim_, stride_of(qubit), lanes_, m);
}

void BatchedStatevector::apply_1q_pair_lanes(const cplx* m_a, int qubit_a,
                                             const cplx* m_b, int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_1q_pair_lanes: qubit pair");
  kernels::batched_apply_1q_pair(amps_.data(), dim_, stride_of(qubit_a), m_a,
                                 stride_of(qubit_b), m_b, lanes_);
}

void BatchedStatevector::apply_1q_pair_run_lanes(const Pair1qOp* ops,
                                                 std::size_t count) {
  std::array<kernels::BatchedPairOp, kernels::kMaxPairRun> run;
  std::size_t done = 0;
  while (done < count) {
    const std::size_t n = std::min(count - done, run.size());
    for (std::size_t r = 0; r < n; ++r) {
      const Pair1qOp& op = ops[done + r];
      check_pair(op.qubit_a, op.qubit_b,
                 "apply_1q_pair_run_lanes: qubit pair");
      run[r] = {stride_of(op.qubit_a), stride_of(op.qubit_b), op.m_a,
                op.m_b};
    }
    kernels::batched_apply_1q_pair_run(amps_.data(), dim_, run.data(), n,
                                       lanes_);
    done += n;
  }
}

void BatchedStatevector::apply_2q_lanes(const cplx* m, int qubit_a,
                                        int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_2q_lanes: qubit pair");
  kernels::batched_apply_2q(amps_.data(), dim_, stride_of(qubit_a),
                            stride_of(qubit_b), lanes_, m);
}

void BatchedStatevector::apply_diag_1q_lanes(const cplx* d, int qubit) {
  check_qubit(qubit, "apply_diag_1q_lanes: qubit index");
  kernels::batched_apply_diag_1q(amps_.data(), dim_, stride_of(qubit), lanes_,
                                 d);
}

void BatchedStatevector::apply_diag_2q_lanes(const cplx* d, int qubit_a,
                                             int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_diag_2q_lanes: qubit pair");
  kernels::batched_apply_diag_2q(amps_.data(), dim_, stride_of(qubit_a),
                                 stride_of(qubit_b), lanes_, d);
}

void BatchedStatevector::apply_diag_run_lanes(const DiagRunOp* ops,
                                              std::size_t count) {
  std::array<kernels::BatchedDiagOp, kernels::kMaxDiagRun> run;
  std::size_t fill = 0;
  for (std::size_t r = 0; r < count; ++r) {
    const DiagRunOp& op = ops[r];
    kernels::BatchedDiagOp out;
    out.d = op.d;
    if (op.qubit_b >= 0) {
      check_pair(op.qubit_a, op.qubit_b, "apply_diag_run_lanes: qubit pair");
      out.sa = stride_of(op.qubit_a);
      out.sb = stride_of(op.qubit_b);
    } else {
      check_qubit(op.qubit_a, "apply_diag_run_lanes: qubit index");
      out.sa = stride_of(op.qubit_a);
      out.sb = 0;
    }
    run[fill++] = out;
    if (fill == run.size()) {
      kernels::batched_apply_diag_run(amps_.data(), dim_, run.data(), fill,
                                      lanes_);
      fill = 0;
    }
  }
  if (fill > 0)
    kernels::batched_apply_diag_run(amps_.data(), dim_, run.data(), fill,
                                    lanes_);
}

void BatchedStatevector::apply_diag_run_then_1q_pair_lanes(
    const DiagRunOp* ops, std::size_t count, const cplx* m_a, int qubit_a,
    const cplx* m_b, int qubit_b) {
  check_pair(qubit_a, qubit_b, "apply_diag_run_then_1q_pair_lanes: qubit pair");
  std::array<kernels::BatchedDiagOp, kernels::kMaxDiagRun> run;
  std::size_t done = 0;
  // Full chunks go through the plain run kernel; only the final chunk
  // (or an empty run) fuses with the dense pair. Chunk boundaries don't
  // change any amplitude's product chain, so this is invisible in the
  // results.
  do {
    const std::size_t n = std::min(count - done, run.size());
    for (std::size_t r = 0; r < n; ++r) {
      const DiagRunOp& op = ops[done + r];
      kernels::BatchedDiagOp out;
      out.d = op.d;
      if (op.qubit_b >= 0) {
        check_pair(op.qubit_a, op.qubit_b,
                   "apply_diag_run_then_1q_pair_lanes: qubit pair");
        out.sa = stride_of(op.qubit_a);
        out.sb = stride_of(op.qubit_b);
      } else {
        check_qubit(op.qubit_a,
                    "apply_diag_run_then_1q_pair_lanes: qubit index");
        out.sa = stride_of(op.qubit_a);
        out.sb = 0;
      }
      run[r] = out;
    }
    done += n;
    if (done == count) {
      kernels::batched_apply_diag_run_then_1q_pair(
          amps_.data(), dim_, run.data(), n, stride_of(qubit_a), m_a,
          stride_of(qubit_b), m_b, lanes_);
    } else {
      kernels::batched_apply_diag_run(amps_.data(), dim_, run.data(), n,
                                      lanes_);
    }
  } while (done < count);
}

// ---- Single-lane mutation (trajectory noise) -------------------------------

void BatchedStatevector::apply_pauli_x_lane(int qubit, std::size_t lane) {
  check_qubit(qubit, "apply_pauli_x_lane: qubit index");
  if (lane >= lanes_) throw std::out_of_range("apply_pauli_x_lane: lane");
  kernels::lane_apply_pauli_x(amps_.data(), dim_, stride_of(qubit), lanes_,
                              lane);
}

void BatchedStatevector::apply_pauli_y_lane(int qubit, std::size_t lane) {
  check_qubit(qubit, "apply_pauli_y_lane: qubit index");
  if (lane >= lanes_) throw std::out_of_range("apply_pauli_y_lane: lane");
  kernels::lane_apply_pauli_y(amps_.data(), dim_, stride_of(qubit), lanes_,
                              lane);
}

void BatchedStatevector::apply_pauli_z_lane(int qubit, std::size_t lane) {
  check_qubit(qubit, "apply_pauli_z_lane: qubit index");
  if (lane >= lanes_) throw std::out_of_range("apply_pauli_z_lane: lane");
  kernels::lane_apply_pauli_z(amps_.data(), dim_, stride_of(qubit), lanes_,
                              lane);
}

double BatchedStatevector::norm_squared(std::size_t lane) const {
  if (lane >= lanes_) throw std::out_of_range("norm_squared: lane index");
  // Same std::norm accumulation (and same TU / default contraction
  // flags) as Statevector::norm_squared, row-ascending.
  double s = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) s += std::norm(amps_[i * lanes_ + lane]);
  return s;
}

void BatchedStatevector::normalize_lanes() {
  // k-wide per-lane norm sums: lane L receives the same std::norm terms
  // in the same row-ascending order as Statevector::norm_squared, just
  // interleaved with the other lanes' independent accumulators; the
  // scale pass multiplies by the reciprocal exactly as
  // Statevector::normalize. Both passes run in the kernel layer (AVX2
  // forms when available), since this is the trajectory-noise hot loop.
  std::array<double, kMaxLanes> sums{};
  kernels::batched_norms(amps_.data(), dim_, lanes_, sums.data());
  std::array<double, kMaxLanes> inv{};
  for (std::size_t l = 0; l < lanes_; ++l) {
    const double n = std::sqrt(sums[l]);
    if (n < 1e-300)
      throw std::runtime_error("BatchedStatevector::normalize_lanes: zero norm");
    inv[l] = 1.0 / n;
  }
  kernels::batched_scale(amps_.data(), dim_, lanes_, inv.data());
}

// ---- Per-lane measurement --------------------------------------------------

std::vector<double> BatchedStatevector::expectation_z_all(
    std::size_t lane) const {
  if (lane >= lanes_)
    throw std::out_of_range("expectation_z_all: lane index");
  std::vector<double> out(n_qubits_, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double p = std::norm(amps_[i * lanes_ + lane]);
    if (p == 0.0) continue;
    for (int q = 0; q < n_qubits_; ++q) {
      const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - q);
      out[q] += (i & stride) ? -p : p;
    }
  }
  return out;
}

void BatchedStatevector::expectation_z_all_lanes(std::vector<double>& out) {
  const std::size_t nq = static_cast<std::size_t>(n_qubits_);
  out.assign(nq * lanes_, 0.0);
  norm_scratch_.resize(dim_ * lanes_);
  double* pn = norm_scratch_.data();
  const std::size_t total = dim_ * lanes_;
  // Same std::norm expression (and same TU / default contraction flags)
  // as the per-lane loop above, so each buffered p is bit-identical to
  // the one the scalar path computes on the fly.
  for (std::size_t j = 0; j < total; ++j) pn[j] = std::norm(amps_[j]);
  switch (lanes_) {
    case 8: z_accumulate_all<8>(pn, dim_, n_qubits_, lanes_, out.data()); break;
    case 4: z_accumulate_all<4>(pn, dim_, n_qubits_, lanes_, out.data()); break;
    case 2: z_accumulate_all<2>(pn, dim_, n_qubits_, lanes_, out.data()); break;
    default:
      for (int q = 0; q < n_qubits_; ++q)
        z_accumulate_generic(pn, dim_, lanes_, n_qubits_ - 1 - q,
                             out.data() + static_cast<std::size_t>(q) * lanes_);
      break;
  }
}

std::vector<std::uint64_t> BatchedStatevector::sample(std::size_t lane,
                                                      int shots,
                                                      Prng& rng) const {
  if (lane >= lanes_) throw std::out_of_range("sample: lane index");
  std::vector<double> cdf(dim_);
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    acc += std::norm(amps_[i * lanes_ + lane]);
    cdf[i] = acc;
  }
  const double total = acc;
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    out.push_back(static_cast<std::uint64_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1)));
  }
  return out;
}

}  // namespace qoc::sim
