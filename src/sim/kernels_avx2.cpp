// AVX2 statevector kernels. CMake compiles this TU with -mavx2 (and
// -ffp-contract=off) when the compiler supports it; without __AVX2__ the
// file contributes only a null vtable, and the dispatcher falls back to
// the portable blocked loops.
//
// Every vector expression mirrors the scalar reference arithmetic
// operation-for-operation: complex products expand to mul/mul/addsub
// (never FMA), and sums keep the reference's left-to-right association.
// Only independent amplitude groups are batched into lanes, so results
// are bit-identical to KernelMode::Scalar (see kernels.hpp).

#include "qoc/sim/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace qoc::sim::kernels {
namespace {

/// Per-lane complex product a*b of two packed [re, im, re, im] vectors.
/// Lane arithmetic: re = a.re*b.re - a.im*b.im; im = a.im*b.re + a.re*b.im
/// -- the scalar operator* products and sum order, commuted per factor
/// (IEEE mul/add are commutative bitwise for finite values).
inline __m256d cmul(__m256d a, __m256d b) {
  const __m256d b_re = _mm256_movedup_pd(b);       // [b.re, b.re] per lane
  const __m256d b_im = _mm256_permute_pd(b, 0xF);  // [b.im, b.im] per lane
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);  // [a.im, a.re] per lane
  return _mm256_addsub_pd(_mm256_mul_pd(a, b_re), _mm256_mul_pd(a_sw, b_im));
}

/// One complex scalar broadcast to both lanes.
inline __m256d bcast(const cplx* p) {
  return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(p));
}

/// Two complex scalars packed as [lo | hi].
inline __m256d pack2(const cplx* lo, const cplx* hi) {
  return _mm256_set_m128d(_mm_loadu_pd(reinterpret_cast<const double*>(hi)),
                          _mm_loadu_pd(reinterpret_cast<const double*>(lo)));
}

inline __m256d load2(const cplx* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void store2(cplx* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

inline __m256d dup_lo(__m256d v) { return _mm256_permute2f128_pd(v, v, 0x00); }
inline __m256d dup_hi(__m256d v) { return _mm256_permute2f128_pd(v, v, 0x11); }

void avx2_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                   const cplx* m) {
  if (stride == 1) {
    // Lowest qubit: each 32-byte load holds one full (a0, a1) group.
    const __m256d c0 = pack2(&m[0], &m[2]);  // [m00 | m10]
    const __m256d c1 = pack2(&m[1], &m[3]);  // [m01 | m11]
    for (std::size_t base = 0; base < dim; base += 2) {
      const __m256d v = load2(amps + base);
      const __m256d r =
          _mm256_add_pd(cmul(dup_lo(v), c0), cmul(dup_hi(v), c1));
      store2(amps + base, r);
    }
    return;
  }
  const __m256d m00 = bcast(&m[0]), m01 = bcast(&m[1]);
  const __m256d m10 = bcast(&m[2]), m11 = bcast(&m[3]);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; off += 2) {
      cplx* p0 = amps + base + off;
      cplx* p1 = p0 + stride;
      const __m256d a0 = load2(p0);
      const __m256d a1 = load2(p1);
      store2(p0, _mm256_add_pd(cmul(a0, m00), cmul(a1, m01)));
      store2(p1, _mm256_add_pd(cmul(a0, m10), cmul(a1, m11)));
    }
  }
}

void avx2_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                   std::size_t sb, const cplx* m) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);

  if (s1 == 1) {
    // One operand is the lowest qubit: each group is two adjacent pairs
    // at i and i + s2. Pair memory order depends on which operand has
    // stride 1 (sb == 1: pairs are (a00,a01)/(a10,a11); sa == 1:
    // (a00,a10)/(a01,a11)). Row/column packing below follows that map.
    const bool b_low = (sb == 1);
    const int p0r0 = 0, p0r1 = b_low ? 1 : 2;
    const int p1r0 = b_low ? 2 : 1, p1r1 = 3;
    __m256d m_p0[4], m_p1[4];  // per-column matrix entries for each pair
    for (int c = 0; c < 4; ++c) {
      m_p0[c] = pack2(&m[p0r0 * 4 + c], &m[p0r1 * 4 + c]);
      m_p1[c] = pack2(&m[p1r0 * 4 + c], &m[p1r1 * 4 + c]);
    }
    for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
      for (std::size_t i = b2; i < b2 + s2; i += 2) {
        const __m256d pair0 = load2(amps + i);
        const __m256d pair1 = load2(amps + i + s2);
        // Column amplitudes broadcast to both lanes, in matrix order.
        const __m256d a0 = dup_lo(pair0);
        const __m256d a1 = b_low ? dup_hi(pair0) : dup_lo(pair1);
        const __m256d a2 = b_low ? dup_lo(pair1) : dup_hi(pair0);
        const __m256d a3 = dup_hi(pair1);
        const __m256d r0 = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(cmul(a0, m_p0[0]), cmul(a1, m_p0[1])),
                cmul(a2, m_p0[2])),
            cmul(a3, m_p0[3]));
        const __m256d r1 = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(cmul(a0, m_p1[0]), cmul(a1, m_p1[1])),
                cmul(a2, m_p1[2])),
            cmul(a3, m_p1[3]));
        store2(amps + i, r0);
        store2(amps + i + s2, r1);
      }
    }
    return;
  }

  __m256d mm[16];
  for (int e = 0; e < 16; ++e) mm[e] = bcast(&m[e]);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; i += 2) {
        cplx* p00 = amps + i;
        cplx* p01 = amps + i + sb;
        cplx* p10 = amps + i + sa;
        cplx* p11 = amps + i + sa + sb;
        const __m256d a00 = load2(p00), a01 = load2(p01);
        const __m256d a10 = load2(p10), a11 = load2(p11);
        store2(p00, _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(a00, mm[0]), cmul(a01, mm[1])),
                            cmul(a10, mm[2])),
                        cmul(a11, mm[3])));
        store2(p01, _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(a00, mm[4]), cmul(a01, mm[5])),
                            cmul(a10, mm[6])),
                        cmul(a11, mm[7])));
        store2(p10, _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(a00, mm[8]), cmul(a01, mm[9])),
                            cmul(a10, mm[10])),
                        cmul(a11, mm[11])));
        store2(p11,
               _mm256_add_pd(
                   _mm256_add_pd(
                       _mm256_add_pd(cmul(a00, mm[12]), cmul(a01, mm[13])),
                       cmul(a10, mm[14])),
                   cmul(a11, mm[15])));
      }
    }
  }
}

void avx2_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                        cplx d0, cplx d1) {
  if (stride == 1) {
    const __m256d d01 = pack2(&d0, &d1);
    for (std::size_t base = 0; base < dim; base += 2)
      store2(amps + base, cmul(load2(amps + base), d01));
    return;
  }
  const __m256d v0 = bcast(&d0), v1 = bcast(&d1);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; i += 2)
      store2(amps + i, cmul(load2(amps + i), v0));
    for (std::size_t i = base + stride; i < base + 2 * stride; i += 2)
      store2(amps + i, cmul(load2(amps + i), v1));
  }
}

void avx2_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                        std::size_t sb, const cplx* d) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  if (s1 == 1) {
    const bool b_low = (sb == 1);
    const __m256d p0d = b_low ? pack2(&d[0], &d[1]) : pack2(&d[0], &d[2]);
    const __m256d p1d = b_low ? pack2(&d[2], &d[3]) : pack2(&d[1], &d[3]);
    for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
      for (std::size_t i = b2; i < b2 + s2; i += 2) {
        store2(amps + i, cmul(load2(amps + i), p0d));
        store2(amps + i + s2, cmul(load2(amps + i + s2), p1d));
      }
    }
    return;
  }
  const __m256d v0 = bcast(&d[0]), v1 = bcast(&d[1]);
  const __m256d v2 = bcast(&d[2]), v3 = bcast(&d[3]);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v0));
      for (std::size_t i = b1 + sb; i < b1 + sb + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v1));
      for (std::size_t i = b1 + sa; i < b1 + sa + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v2));
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v3));
    }
  }
}

void avx2_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride) {
  const cplx neg_i{0.0, -1.0};
  const cplx pos_i{0.0, 1.0};
  if (stride == 1) {
    // out = [-i*a1, i*a0]: swap the halves, multiply by [-i | i].
    const __m256d f = pack2(&neg_i, &pos_i);
    for (std::size_t base = 0; base < dim; base += 2) {
      const __m256d v = load2(amps + base);
      store2(amps + base,
             cmul(_mm256_permute2f128_pd(v, v, 0x01), f));
    }
    return;
  }
  const __m256d vneg = bcast(&neg_i), vpos = bcast(&pos_i);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; off += 2) {
      cplx* p0 = amps + base + off;
      cplx* p1 = p0 + stride;
      const __m256d a0 = load2(p0);
      const __m256d a1 = load2(p1);
      store2(p0, cmul(a1, vneg));
      store2(p1, cmul(a0, vpos));
    }
  }
}

const detail::SimdVTable kAvx2VTable = {
    "avx2",          avx2_apply_1q,      avx2_apply_2q,
    avx2_apply_diag_1q, avx2_apply_diag_2q, avx2_apply_pauli_y,
};

}  // namespace

namespace detail {
const SimdVTable* avx2_vtable() { return &kAvx2VTable; }
}  // namespace detail

}  // namespace qoc::sim::kernels

#else  // !defined(__AVX2__)

namespace qoc::sim::kernels::detail {
const SimdVTable* avx2_vtable() { return nullptr; }
}  // namespace qoc::sim::kernels::detail

#endif
