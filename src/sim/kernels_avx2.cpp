// AVX2 statevector kernels. CMake compiles this TU with -mavx2 (and
// -ffp-contract=off) when the compiler supports it; without __AVX2__ the
// file contributes only a null vtable, and the dispatcher falls back to
// the portable blocked loops.
//
// Every vector expression mirrors the scalar reference arithmetic
// operation-for-operation: complex products expand to mul/mul/addsub
// (never FMA), and sums keep the reference's left-to-right association.
// Only independent amplitude groups are batched into lanes, so results
// are bit-identical to KernelMode::Scalar (see kernels.hpp).

#include "qoc/sim/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <vector>

namespace qoc::sim::kernels {
namespace {

/// Per-lane complex product a*b of two packed [re, im, re, im] vectors.
/// Lane arithmetic: re = a.re*b.re - a.im*b.im; im = a.im*b.re + a.re*b.im
/// -- the scalar operator* products and sum order, commuted per factor
/// (IEEE mul/add are commutative bitwise for finite values).
inline __m256d cmul(__m256d a, __m256d b) {
  const __m256d b_re = _mm256_movedup_pd(b);       // [b.re, b.re] per lane
  const __m256d b_im = _mm256_permute_pd(b, 0xF);  // [b.im, b.im] per lane
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);  // [a.im, a.re] per lane
  return _mm256_addsub_pd(_mm256_mul_pd(a, b_re), _mm256_mul_pd(a_sw, b_im));
}

/// One complex scalar broadcast to both lanes.
inline __m256d bcast(const cplx* p) {
  return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(p));
}

/// Two complex scalars packed as [lo | hi].
inline __m256d pack2(const cplx* lo, const cplx* hi) {
  return _mm256_set_m128d(_mm_loadu_pd(reinterpret_cast<const double*>(hi)),
                          _mm_loadu_pd(reinterpret_cast<const double*>(lo)));
}

inline __m256d load2(const cplx* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void store2(cplx* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

inline __m256d dup_lo(__m256d v) { return _mm256_permute2f128_pd(v, v, 0x00); }
inline __m256d dup_hi(__m256d v) { return _mm256_permute2f128_pd(v, v, 0x11); }

/// cmul with the second factor pre-split into [re, re] / [im, im]
/// vectors and the swapped first factor supplied by the caller. This is
/// cmul(a, b) expression-for-expression -- the b shuffles just run once
/// per kernel call and the a swap once per amplitude vector instead of
/// once per product -- so results are bit-identical; it exists because
/// the expanded form saturates the shuffle port in the evaluation-major
/// kernels, where one amplitude vector meets several matrix entries.
inline __m256d cmul_pre(__m256d a, __m256d a_sw, __m256d b_re, __m256d b_im) {
  return _mm256_addsub_pd(_mm256_mul_pd(a, b_re), _mm256_mul_pd(a_sw, b_im));
}

inline __m256d swap_ri(__m256d a) { return _mm256_permute_pd(a, 0x5); }

// True when every entry's imaginary part is (+/-)0 -- gates whose
// complex products reduce to componentwise scaling (ry, h). The dense
// kernels use this to pick real-matrix butterflies; the dropped
// im-part products are exact zeros, so only zero signs can change
// (see kernels.hpp).
inline bool entries_real(const cplx* m, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (m[i].imag() != 0.0) return false;
  return true;
}

/// Pre-split one entry-major lane row (d[e * k + lane], lane pair l)
/// into its re/im broadcast halves.
inline void split_entry(const cplx* d, std::size_t l, __m256d& re,
                        __m256d& im) {
  const __m256d v = load2(d + l);
  re = _mm256_movedup_pd(v);
  im = _mm256_permute_pd(v, 0xF);
}

void avx2_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                   const cplx* m) {
  if (stride == 1) {
    // Lowest qubit: each 32-byte load holds one full (a0, a1) group.
    const __m256d c0 = pack2(&m[0], &m[2]);  // [m00 | m10]
    const __m256d c1 = pack2(&m[1], &m[3]);  // [m01 | m11]
    for (std::size_t base = 0; base < dim; base += 2) {
      const __m256d v = load2(amps + base);
      const __m256d r =
          _mm256_add_pd(cmul(dup_lo(v), c0), cmul(dup_hi(v), c1));
      store2(amps + base, r);
    }
    return;
  }
  const __m256d m00 = bcast(&m[0]), m01 = bcast(&m[1]);
  const __m256d m10 = bcast(&m[2]), m11 = bcast(&m[3]);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; off += 2) {
      cplx* p0 = amps + base + off;
      cplx* p1 = p0 + stride;
      const __m256d a0 = load2(p0);
      const __m256d a1 = load2(p1);
      store2(p0, _mm256_add_pd(cmul(a0, m00), cmul(a1, m01)));
      store2(p1, _mm256_add_pd(cmul(a0, m10), cmul(a1, m11)));
    }
  }
}

void avx2_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                   std::size_t sb, const cplx* m) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);

  if (s1 == 1) {
    // One operand is the lowest qubit: each group is two adjacent pairs
    // at i and i + s2. Pair memory order depends on which operand has
    // stride 1 (sb == 1: pairs are (a00,a01)/(a10,a11); sa == 1:
    // (a00,a10)/(a01,a11)). Row/column packing below follows that map.
    const bool b_low = (sb == 1);
    const int p0r0 = 0, p0r1 = b_low ? 1 : 2;
    const int p1r0 = b_low ? 2 : 1, p1r1 = 3;
    __m256d m_p0[4], m_p1[4];  // per-column matrix entries for each pair
    for (int c = 0; c < 4; ++c) {
      m_p0[c] = pack2(&m[p0r0 * 4 + c], &m[p0r1 * 4 + c]);
      m_p1[c] = pack2(&m[p1r0 * 4 + c], &m[p1r1 * 4 + c]);
    }
    for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
      for (std::size_t i = b2; i < b2 + s2; i += 2) {
        const __m256d pair0 = load2(amps + i);
        const __m256d pair1 = load2(amps + i + s2);
        // Column amplitudes broadcast to both lanes, in matrix order.
        const __m256d a0 = dup_lo(pair0);
        const __m256d a1 = b_low ? dup_hi(pair0) : dup_lo(pair1);
        const __m256d a2 = b_low ? dup_lo(pair1) : dup_hi(pair0);
        const __m256d a3 = dup_hi(pair1);
        const __m256d r0 = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(cmul(a0, m_p0[0]), cmul(a1, m_p0[1])),
                cmul(a2, m_p0[2])),
            cmul(a3, m_p0[3]));
        const __m256d r1 = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(cmul(a0, m_p1[0]), cmul(a1, m_p1[1])),
                cmul(a2, m_p1[2])),
            cmul(a3, m_p1[3]));
        store2(amps + i, r0);
        store2(amps + i + s2, r1);
      }
    }
    return;
  }

  __m256d mm[16];
  for (int e = 0; e < 16; ++e) mm[e] = bcast(&m[e]);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; i += 2) {
        cplx* p00 = amps + i;
        cplx* p01 = amps + i + sb;
        cplx* p10 = amps + i + sa;
        cplx* p11 = amps + i + sa + sb;
        const __m256d a00 = load2(p00), a01 = load2(p01);
        const __m256d a10 = load2(p10), a11 = load2(p11);
        store2(p00, _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(a00, mm[0]), cmul(a01, mm[1])),
                            cmul(a10, mm[2])),
                        cmul(a11, mm[3])));
        store2(p01, _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(a00, mm[4]), cmul(a01, mm[5])),
                            cmul(a10, mm[6])),
                        cmul(a11, mm[7])));
        store2(p10, _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(a00, mm[8]), cmul(a01, mm[9])),
                            cmul(a10, mm[10])),
                        cmul(a11, mm[11])));
        store2(p11,
               _mm256_add_pd(
                   _mm256_add_pd(
                       _mm256_add_pd(cmul(a00, mm[12]), cmul(a01, mm[13])),
                       cmul(a10, mm[14])),
                   cmul(a11, mm[15])));
      }
    }
  }
}

void avx2_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                        cplx d0, cplx d1) {
  if (stride == 1) {
    const __m256d d01 = pack2(&d0, &d1);
    for (std::size_t base = 0; base < dim; base += 2)
      store2(amps + base, cmul(load2(amps + base), d01));
    return;
  }
  const __m256d v0 = bcast(&d0), v1 = bcast(&d1);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; i += 2)
      store2(amps + i, cmul(load2(amps + i), v0));
    for (std::size_t i = base + stride; i < base + 2 * stride; i += 2)
      store2(amps + i, cmul(load2(amps + i), v1));
  }
}

void avx2_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                        std::size_t sb, const cplx* d) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  if (s1 == 1) {
    const bool b_low = (sb == 1);
    const __m256d p0d = b_low ? pack2(&d[0], &d[1]) : pack2(&d[0], &d[2]);
    const __m256d p1d = b_low ? pack2(&d[2], &d[3]) : pack2(&d[1], &d[3]);
    for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
      for (std::size_t i = b2; i < b2 + s2; i += 2) {
        store2(amps + i, cmul(load2(amps + i), p0d));
        store2(amps + i + s2, cmul(load2(amps + i + s2), p1d));
      }
    }
    return;
  }
  const __m256d v0 = bcast(&d[0]), v1 = bcast(&d[1]);
  const __m256d v2 = bcast(&d[2]), v3 = bcast(&d[3]);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v0));
      for (std::size_t i = b1 + sb; i < b1 + sb + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v1));
      for (std::size_t i = b1 + sa; i < b1 + sa + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v2));
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; i += 2)
        store2(amps + i, cmul(load2(amps + i), v3));
    }
  }
}

void avx2_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride) {
  const cplx neg_i{0.0, -1.0};
  const cplx pos_i{0.0, 1.0};
  if (stride == 1) {
    // out = [-i*a1, i*a0]: swap the halves, multiply by [-i | i].
    const __m256d f = pack2(&neg_i, &pos_i);
    for (std::size_t base = 0; base < dim; base += 2) {
      const __m256d v = load2(amps + base);
      store2(amps + base,
             cmul(_mm256_permute2f128_pd(v, v, 0x01), f));
    }
    return;
  }
  const __m256d vneg = bcast(&neg_i), vpos = bcast(&pos_i);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; off += 2) {
      cplx* p0 = amps + base + off;
      cplx* p1 = p0 + stride;
      const __m256d a0 = load2(p0);
      const __m256d a1 = load2(p1);
      store2(p0, cmul(a1, vneg));
      store2(p1, cmul(a0, vpos));
    }
  }
}

// ---- Evaluation-major (batched) forms --------------------------------------
// Rows are k lanes contiguous (k even), so every kernel walks the lane
// axis two complex lanes per register -- no stride-1 special cases
// needed, and per-lane matrix entries are plain vector loads from the
// entry-major buffer (m[e * k + lane]). The arithmetic per lane matches
// the scalar reference exactly as above (cmul commuted per factor).

void avx2_batched_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k, const cplx* m) {
  // Matrix entries split into re/im halves once per call; the row loop
  // then spends its shuffle budget on one swap per amplitude vector.
  // All-real matrices (per-lane RY columns, picked relaxation Kraus
  // branches) take the real-butterfly path -- componentwise scaling, as
  // in the pair kernels; the dropped im-part products are exact zeros,
  // so only zero signs can change (see kernels.hpp).
  constexpr std::size_t kMaxLp = 16;  // BatchedStatevector::kMaxLanes / 2
  __m256d re[4][kMaxLp], im[4][kMaxLp];
  const std::size_t lp = k / 2;
  for (int e = 0; e < 4; ++e)
    for (std::size_t l = 0; l < lp; ++l)
      split_entry(m + static_cast<std::size_t>(e) * k, 2 * l, re[e][l],
                  im[e][l]);
  const __m256d sign = _mm256_set1_pd(-0.0);
  if (entries_real(m, 4 * k)) {
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
      for (std::size_t off = 0; off < stride; ++off) {
        cplx* p0 = amps + (base + off) * k;
        cplx* p1 = p0 + stride * k;
        for (std::size_t l = 0; l < lp; ++l) {
          const __m256d a0 = load2(p0 + 2 * l);
          const __m256d a1 = load2(p1 + 2 * l);
          const __m256d mag = _mm256_andnot_pd(sign, _mm256_or_pd(a0, a1));
          if (_mm256_testz_si256(_mm256_castpd_si256(mag),
                                 _mm256_castpd_si256(mag)))
            continue;
          store2(p0 + 2 * l, _mm256_add_pd(_mm256_mul_pd(a0, re[0][l]),
                                           _mm256_mul_pd(a1, re[1][l])));
          store2(p1 + 2 * l, _mm256_add_pd(_mm256_mul_pd(a0, re[2][l]),
                                           _mm256_mul_pd(a1, re[3][l])));
        }
      }
    }
    return;
  }
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      cplx* p0 = amps + (base + off) * k;
      cplx* p1 = p0 + stride * k;
      for (std::size_t l = 0; l < lp; ++l) {
        const __m256d a0 = load2(p0 + 2 * l);
        const __m256d a1 = load2(p1 + 2 * l);
        // All-zero pair block: the butterfly would only write (+/-)0
        // back; leave the zeros that are already there (see kernels.hpp
        // on the zero-sign caveat).
        const __m256d mag = _mm256_andnot_pd(sign, _mm256_or_pd(a0, a1));
        if (_mm256_testz_si256(_mm256_castpd_si256(mag),
                               _mm256_castpd_si256(mag)))
          continue;
        const __m256d a0s = swap_ri(a0);
        const __m256d a1s = swap_ri(a1);
        store2(p0 + 2 * l,
               _mm256_add_pd(cmul_pre(a0, a0s, re[0][l], im[0][l]),
                             cmul_pre(a1, a1s, re[1][l], im[1][l])));
        store2(p1 + 2 * l,
               _mm256_add_pd(cmul_pre(a0, a0s, re[2][l], im[2][l]),
                             cmul_pre(a1, a1s, re[3][l], im[3][l])));
      }
    }
  }
}

void avx2_batched_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                           std::size_t sb, std::size_t k, const cplx* m) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) {
        cplx* p00 = amps + i * k;
        cplx* p01 = amps + (i + sb) * k;
        cplx* p10 = amps + (i + sa) * k;
        cplx* p11 = amps + (i + sa + sb) * k;
        for (std::size_t l = 0; l < k; l += 2) {
          const __m256d a00 = load2(p00 + l), a01 = load2(p01 + l);
          const __m256d a10 = load2(p10 + l), a11 = load2(p11 + l);
          store2(p00 + l,
                 _mm256_add_pd(
                     _mm256_add_pd(
                         _mm256_add_pd(cmul(a00, load2(m + 0 * k + l)),
                                       cmul(a01, load2(m + 1 * k + l))),
                         cmul(a10, load2(m + 2 * k + l))),
                     cmul(a11, load2(m + 3 * k + l))));
          store2(p01 + l,
                 _mm256_add_pd(
                     _mm256_add_pd(
                         _mm256_add_pd(cmul(a00, load2(m + 4 * k + l)),
                                       cmul(a01, load2(m + 5 * k + l))),
                         cmul(a10, load2(m + 6 * k + l))),
                     cmul(a11, load2(m + 7 * k + l))));
          store2(p10 + l,
                 _mm256_add_pd(
                     _mm256_add_pd(
                         _mm256_add_pd(cmul(a00, load2(m + 8 * k + l)),
                                       cmul(a01, load2(m + 9 * k + l))),
                         cmul(a10, load2(m + 10 * k + l))),
                     cmul(a11, load2(m + 11 * k + l))));
          store2(p11 + l,
                 _mm256_add_pd(
                     _mm256_add_pd(
                         _mm256_add_pd(cmul(a00, load2(m + 12 * k + l)),
                                       cmul(a01, load2(m + 13 * k + l))),
                         cmul(a10, load2(m + 14 * k + l))),
                     cmul(a11, load2(m + 15 * k + l))));
        }
      }
    }
  }
}

void avx2_batched_apply_diag_1q(cplx* amps, std::size_t dim,
                                std::size_t stride, std::size_t k,
                                const cplx* d) {
  constexpr std::size_t kMaxLp = 16;
  __m256d re[2][kMaxLp], im[2][kMaxLp];
  const std::size_t lp = k / 2;
  for (int e = 0; e < 2; ++e)
    for (std::size_t l = 0; l < lp; ++l)
      split_entry(d + static_cast<std::size_t>(e) * k, 2 * l, re[e][l],
                  im[e][l]);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      cplx* p = amps + i * k;
      for (std::size_t l = 0; l < lp; ++l) {
        const __m256d a = load2(p + 2 * l);
        store2(p + 2 * l, cmul_pre(a, swap_ri(a), re[0][l], im[0][l]));
      }
    }
    for (std::size_t i = base + stride; i < base + 2 * stride; ++i) {
      cplx* p = amps + i * k;
      for (std::size_t l = 0; l < lp; ++l) {
        const __m256d a = load2(p + 2 * l);
        store2(p + 2 * l, cmul_pre(a, swap_ri(a), re[1][l], im[1][l]));
      }
    }
  }
}

void avx2_batched_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                                std::size_t sb, std::size_t k,
                                const cplx* d) {
  constexpr std::size_t kMaxLp = 16;
  __m256d re[4][kMaxLp], im[4][kMaxLp];
  const std::size_t lp = k / 2;
  for (int e = 0; e < 4; ++e)
    for (std::size_t l = 0; l < lp; ++l)
      split_entry(d + static_cast<std::size_t>(e) * k, 2 * l, re[e][l],
                  im[e][l]);
  const auto sweep = [&](std::size_t lo, std::size_t hi, int e) {
    for (std::size_t i = lo; i < hi; ++i) {
      cplx* p = amps + i * k;
      for (std::size_t l = 0; l < lp; ++l) {
        const __m256d a = load2(p + 2 * l);
        store2(p + 2 * l, cmul_pre(a, swap_ri(a), re[e][l], im[e][l]));
      }
    }
  };
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      sweep(b1, b1 + s1, 0);
      sweep(b1 + sb, b1 + sb + s1, 1);
      sweep(b1 + sa, b1 + sa + s1, 2);
      sweep(b1 + sa + sb, b1 + sa + sb + s1, 3);
    }
  }
}

void avx2_batched_apply_diag_run(cplx* amps, std::size_t dim,
                                 const BatchedDiagOp* ops, std::size_t count,
                                 std::size_t k) {
  // Every op's entries are pre-split into re/im halves once per call
  // (layout [op][entry][lanepair][re|im]), the per-row entry offsets are
  // resolved once per row, and two rows run interleaved: the product
  // chain of one amplitude is serial by construction (that's what makes
  // it bit-identical to `count` separate passes), so a second row's
  // chains are what keeps the multiply units busy during each step's
  // latency.
  const std::size_t lp = k / 2;
  std::vector<__m256d> pre(count * 4 * lp * 2);
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t entries = ops[r].sb != 0 ? 4 : 2;
    for (std::size_t e = 0; e < entries; ++e)
      for (std::size_t l = 0; l < lp; ++l) {
        __m256d* slot = pre.data() + ((r * 4 + e) * lp + l) * 2;
        split_entry(ops[r].d + e * k, 2 * l, slot[0], slot[1]);
      }
  }
  const auto entry_base = [&](std::size_t i, std::size_t r) {
    const BatchedDiagOp& op = ops[r];
    std::size_t e = (i & op.sa) ? 1 : 0;
    if (op.sb != 0) e = 2 * e + ((i & op.sb) ? 1 : 0);
    return (r * 4 + e) * lp * 2;
  };
  std::size_t eoff0[kMaxDiagRun], eoff1[kMaxDiagRun];
  for (std::size_t i = 0; i < dim; i += 2) {
    for (std::size_t r = 0; r < count; ++r) {
      eoff0[r] = entry_base(i, r);
      eoff1[r] = entry_base(i + 1, r);
    }
    cplx* p0 = amps + i * k;
    cplx* p1 = p0 + k;
    for (std::size_t l = 0; l < lp; ++l) {
      __m256d a0 = load2(p0 + 2 * l);
      __m256d a1 = load2(p1 + 2 * l);
      for (std::size_t r = 0; r < count; ++r) {
        const __m256d* d0 = pre.data() + eoff0[r] + 2 * l;
        const __m256d* d1 = pre.data() + eoff1[r] + 2 * l;
        a0 = cmul_pre(a0, swap_ri(a0), d0[0], d0[1]);
        a1 = cmul_pre(a1, swap_ri(a1), d1[0], d1[1]);
      }
      store2(p0 + 2 * l, a0);
      store2(p1 + 2 * l, a1);
    }
  }
}

void avx2_batched_apply_pauli_y(cplx* amps, std::size_t dim,
                                std::size_t stride, std::size_t k) {
  const cplx neg_i{0.0, -1.0};
  const cplx pos_i{0.0, 1.0};
  const __m256d vneg = bcast(&neg_i), vpos = bcast(&pos_i);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      cplx* p0 = amps + (base + off) * k;
      cplx* p1 = p0 + stride * k;
      for (std::size_t l = 0; l < k; l += 2) {
        const __m256d a0 = load2(p0 + l);
        const __m256d a1 = load2(p1 + l);
        store2(p0 + l, cmul(a1, vneg));
        store2(p1 + l, cmul(a0, vpos));
      }
    }
  }
}


void avx2_batched_apply_1q_pair(cplx* amps, std::size_t dim, std::size_t sa,
                                const cplx* m_a, std::size_t sb,
                                const cplx* m_b, std::size_t k) {
  // Both matrices pre-split once per call (as avx2_batched_apply_1q);
  // each 4-row block then chains gate A's and gate B's butterflies in
  // registers -- one sweep over the lane group instead of two. Per lane
  // this is the identical operation sequence to two separate passes
  // (cmul_pre == cmul expression-for-expression, intermediates held in
  // registers round-trip exactly), so results stay bit-identical.
  constexpr std::size_t kMaxLp = 16;  // BatchedStatevector::kMaxLanes / 2
  __m256d rea[4][kMaxLp], ima[4][kMaxLp], reb[4][kMaxLp], imb[4][kMaxLp];
  const std::size_t lp = k / 2;
  for (int e = 0; e < 4; ++e) {
    for (std::size_t l = 0; l < lp; ++l) {
      split_entry(m_a + static_cast<std::size_t>(e) * k, 2 * l, rea[e][l],
                  ima[e][l]);
      split_entry(m_b + static_cast<std::size_t>(e) * k, 2 * l, reb[e][l],
                  imb[e][l]);
    }
  }
  const std::size_t hi = sa > sb ? sa : sb;
  const std::size_t lo = sa > sb ? sb : sa;
  const __m256d sign = _mm256_set1_pd(-0.0);
  for (std::size_t base = 0; base < dim; base += 2 * hi) {
    for (std::size_t mid = base; mid < base + hi; mid += 2 * lo) {
      for (std::size_t off = 0; off < lo; ++off) {
        cplx* p00 = amps + (mid + off) * k;
        cplx* p01 = p00 + sb * k;
        cplx* p10 = p00 + sa * k;
        cplx* p11 = p10 + sb * k;
        for (std::size_t l = 0; l < lp; ++l) {
          const __m256d a00 = load2(p00 + 2 * l);
          const __m256d a01 = load2(p01 + 2 * l);
          const __m256d a10 = load2(p10 + 2 * l);
          const __m256d a11 = load2(p11 + 2 * l);
          // All-zero 4-row block: both butterflies would only write
          // (+/-)0 back; skip the arithmetic and the four stores (see
          // kernels.hpp on the zero-sign caveat). On |0...0> the first
          // rotation layer's support grows 4x per pair pass, so its
          // early passes touch almost nothing.
          const __m256d mag = _mm256_andnot_pd(
              sign, _mm256_or_pd(_mm256_or_pd(a00, a01),
                                 _mm256_or_pd(a10, a11)));
          if (_mm256_testz_si256(_mm256_castpd_si256(mag),
                                 _mm256_castpd_si256(mag)))
            continue;
          const __m256d a00s = swap_ri(a00);
          const __m256d a01s = swap_ri(a01);
          const __m256d a10s = swap_ri(a10);
          const __m256d a11s = swap_ri(a11);
          // Gate A: stride-sa pairs (a00, a10) and (a01, a11).
          const __m256d b00 =
              _mm256_add_pd(cmul_pre(a00, a00s, rea[0][l], ima[0][l]),
                            cmul_pre(a10, a10s, rea[1][l], ima[1][l]));
          const __m256d b10 =
              _mm256_add_pd(cmul_pre(a00, a00s, rea[2][l], ima[2][l]),
                            cmul_pre(a10, a10s, rea[3][l], ima[3][l]));
          const __m256d b01 =
              _mm256_add_pd(cmul_pre(a01, a01s, rea[0][l], ima[0][l]),
                            cmul_pre(a11, a11s, rea[1][l], ima[1][l]));
          const __m256d b11 =
              _mm256_add_pd(cmul_pre(a01, a01s, rea[2][l], ima[2][l]),
                            cmul_pre(a11, a11s, rea[3][l], ima[3][l]));
          const __m256d b00s = swap_ri(b00);
          const __m256d b01s = swap_ri(b01);
          const __m256d b10s = swap_ri(b10);
          const __m256d b11s = swap_ri(b11);
          // Gate B: stride-sb pairs (b00, b01) and (b10, b11).
          store2(p00 + 2 * l,
                 _mm256_add_pd(cmul_pre(b00, b00s, reb[0][l], imb[0][l]),
                               cmul_pre(b01, b01s, reb[1][l], imb[1][l])));
          store2(p01 + 2 * l,
                 _mm256_add_pd(cmul_pre(b00, b00s, reb[2][l], imb[2][l]),
                               cmul_pre(b01, b01s, reb[3][l], imb[3][l])));
          store2(p10 + 2 * l,
                 _mm256_add_pd(cmul_pre(b10, b10s, reb[0][l], imb[0][l]),
                               cmul_pre(b11, b11s, reb[1][l], imb[1][l])));
          store2(p11 + 2 * l,
                 _mm256_add_pd(cmul_pre(b10, b10s, reb[2][l], imb[2][l]),
                               cmul_pre(b11, b11s, reb[3][l], imb[3][l])));
        }
      }
    }
  }
}



void avx2_batched_apply_1q_pair_run(cplx* amps, std::size_t dim,
                                    const BatchedPairOp* pairs,
                                    std::size_t count, std::size_t k) {
  // Every pair's matrices pre-split once; large-span pairs then stream
  // the buffer once each, and the trailing small-span pairs are
  // cache-blocked: an aligned tile (<= kPairTileBytes) contains whole
  // 4-row blocks of every remaining pair, so it takes all their passes
  // while L2-resident. Only the iteration order of disjoint blocks
  // changes relative to pair-at-a-time application, so results stay
  // bit-identical.
  const std::size_t lp = k / 2;
  constexpr std::size_t kMaxLp = 16;  // BatchedStatevector::kMaxLanes / 2
  __m256d rea[kMaxPairRun][4][kMaxLp], ima[kMaxPairRun][4][kMaxLp];
  __m256d reb[kMaxPairRun][4][kMaxLp], imb[kMaxPairRun][4][kMaxLp];
  for (std::size_t p = 0; p < count; ++p) {
    for (int e = 0; e < 4; ++e) {
      for (std::size_t l = 0; l < lp; ++l) {
        split_entry(pairs[p].m_a + static_cast<std::size_t>(e) * k, 2 * l,
                    rea[p][e][l], ima[p][e][l]);
        split_entry(pairs[p].m_b + static_cast<std::size_t>(e) * k, 2 * l,
                    reb[p][e][l], imb[p][e][l]);
      }
    }
  }
  bool realp[kMaxPairRun];
  for (std::size_t p = 0; p < count; ++p)
    realp[p] = entries_real(pairs[p].m_a, 4 * k) &&
               entries_real(pairs[p].m_b, 4 * k);
  const __m256d sign = _mm256_set1_pd(-0.0);
  // Pair p over rows [row0, row1) -- the avx2_batched_apply_1q_pair
  // body, restricted to a block-aligned subrange. kReal selects the
  // real-matrix butterflies: both gate matrices purely real (rotation
  // layers: ry, h), so each component just scales -- the dropped
  // im-part products are exact zeros whose only effect is the sign of
  // zero results (the documented caveat), at less than half the vector
  // ops of the complex form.
  const auto sweep_impl = [&]<bool kReal>(std::size_t p, std::size_t row0,
                                          std::size_t row1) {
    const std::size_t sa = pairs[p].sa;
    const std::size_t sb = pairs[p].sb;
    const std::size_t hi = sa > sb ? sa : sb;
    const std::size_t lo = sa > sb ? sb : sa;
    for (std::size_t base = row0; base < row1; base += 2 * hi) {
      for (std::size_t mid = base; mid < base + hi; mid += 2 * lo) {
        for (std::size_t off = 0; off < lo; ++off) {
          cplx* p00 = amps + (mid + off) * k;
          cplx* p01 = p00 + sb * k;
          cplx* p10 = p00 + sa * k;
          cplx* p11 = p10 + sb * k;
          for (std::size_t l = 0; l < lp; ++l) {
            const __m256d a00 = load2(p00 + 2 * l);
            const __m256d a01 = load2(p01 + 2 * l);
            const __m256d a10 = load2(p10 + 2 * l);
            const __m256d a11 = load2(p11 + 2 * l);
            // All-zero block skip, as avx2_batched_apply_1q_pair.
            const __m256d mag = _mm256_andnot_pd(
                sign, _mm256_or_pd(_mm256_or_pd(a00, a01),
                                   _mm256_or_pd(a10, a11)));
            if (_mm256_testz_si256(_mm256_castpd_si256(mag),
                                   _mm256_castpd_si256(mag)))
              continue;
            if constexpr (kReal) {
              // Gate A: stride-sa pairs (a00, a10) and (a01, a11).
              const __m256d b00 =
                  _mm256_add_pd(_mm256_mul_pd(a00, rea[p][0][l]),
                                _mm256_mul_pd(a10, rea[p][1][l]));
              const __m256d b10 =
                  _mm256_add_pd(_mm256_mul_pd(a00, rea[p][2][l]),
                                _mm256_mul_pd(a10, rea[p][3][l]));
              const __m256d b01 =
                  _mm256_add_pd(_mm256_mul_pd(a01, rea[p][0][l]),
                                _mm256_mul_pd(a11, rea[p][1][l]));
              const __m256d b11 =
                  _mm256_add_pd(_mm256_mul_pd(a01, rea[p][2][l]),
                                _mm256_mul_pd(a11, rea[p][3][l]));
              // Gate B: stride-sb pairs (b00, b01) and (b10, b11).
              store2(p00 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b00, reb[p][0][l]),
                                   _mm256_mul_pd(b01, reb[p][1][l])));
              store2(p01 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b00, reb[p][2][l]),
                                   _mm256_mul_pd(b01, reb[p][3][l])));
              store2(p10 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b10, reb[p][0][l]),
                                   _mm256_mul_pd(b11, reb[p][1][l])));
              store2(p11 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b10, reb[p][2][l]),
                                   _mm256_mul_pd(b11, reb[p][3][l])));
            } else {
              const __m256d a00s = swap_ri(a00);
              const __m256d a01s = swap_ri(a01);
              const __m256d a10s = swap_ri(a10);
              const __m256d a11s = swap_ri(a11);
              // Gate A: stride-sa pairs (a00, a10) and (a01, a11).
              const __m256d b00 = _mm256_add_pd(
                  cmul_pre(a00, a00s, rea[p][0][l], ima[p][0][l]),
                  cmul_pre(a10, a10s, rea[p][1][l], ima[p][1][l]));
              const __m256d b10 = _mm256_add_pd(
                  cmul_pre(a00, a00s, rea[p][2][l], ima[p][2][l]),
                  cmul_pre(a10, a10s, rea[p][3][l], ima[p][3][l]));
              const __m256d b01 = _mm256_add_pd(
                  cmul_pre(a01, a01s, rea[p][0][l], ima[p][0][l]),
                  cmul_pre(a11, a11s, rea[p][1][l], ima[p][1][l]));
              const __m256d b11 = _mm256_add_pd(
                  cmul_pre(a01, a01s, rea[p][2][l], ima[p][2][l]),
                  cmul_pre(a11, a11s, rea[p][3][l], ima[p][3][l]));
              const __m256d b00s = swap_ri(b00);
              const __m256d b01s = swap_ri(b01);
              const __m256d b10s = swap_ri(b10);
              const __m256d b11s = swap_ri(b11);
              // Gate B: stride-sb pairs (b00, b01) and (b10, b11).
              store2(p00 + 2 * l,
                     _mm256_add_pd(
                         cmul_pre(b00, b00s, reb[p][0][l], imb[p][0][l]),
                         cmul_pre(b01, b01s, reb[p][1][l], imb[p][1][l])));
              store2(p01 + 2 * l,
                     _mm256_add_pd(
                         cmul_pre(b00, b00s, reb[p][2][l], imb[p][2][l]),
                         cmul_pre(b01, b01s, reb[p][3][l], imb[p][3][l])));
              store2(p10 + 2 * l,
                     _mm256_add_pd(
                         cmul_pre(b10, b10s, reb[p][0][l], imb[p][0][l]),
                         cmul_pre(b11, b11s, reb[p][1][l], imb[p][1][l])));
              store2(p11 + 2 * l,
                     _mm256_add_pd(
                         cmul_pre(b10, b10s, reb[p][2][l], imb[p][2][l]),
                         cmul_pre(b11, b11s, reb[p][3][l], imb[p][3][l])));
            }
          }
        }
      }
    }
  };
  const auto sweep = [&](std::size_t p, std::size_t row0, std::size_t row1) {
    if (realp[p])
      sweep_impl.template operator()<true>(p, row0, row1);
    else
      sweep_impl.template operator()<false>(p, row0, row1);
  };
  const auto span = [&](std::size_t p) {
    return 2 * std::max(pairs[p].sa, pairs[p].sb);
  };
  // t0 = start of the longest suffix whose spans all fit in one tile.
  const std::size_t tile_rows = kPairTileBytes / (k * sizeof(cplx));
  std::size_t t0 = count;
  while (t0 > 0 && span(t0 - 1) <= tile_rows) --t0;
  for (std::size_t p = 0; p < t0; ++p) sweep(p, 0, dim);
  if (count - t0 >= 2) {
    std::size_t tile = 0;
    for (std::size_t p = t0; p < count; ++p) tile = std::max(tile, span(p));
    for (std::size_t base = 0; base < dim; base += tile)
      for (std::size_t p = t0; p < count; ++p) sweep(p, base, base + tile);
  } else if (t0 < count) {
    sweep(t0, 0, dim);
  }
}

void avx2_batched_apply_diag_run_then_1q_pair(cplx* amps, std::size_t dim,
                                              const BatchedDiagOp* ops,
                                              std::size_t count,
                                              std::size_t sa, const cplx* m_a,
                                              std::size_t sb, const cplx* m_b,
                                              std::size_t k) {
  // avx2_batched_apply_diag_run's pre-split entry table and per-row
  // entry selection, welded onto avx2_batched_apply_1q_pair's 4-row
  // block walk: each amplitude runs its diag product chain in registers
  // (serial per amplitude, four chains in flight) and feeds straight
  // into the two butterflies. Per amplitude the operation sequence is
  // identical to the two separate kernels, so results stay
  // bit-identical; the k-wide buffer streams once instead of twice.
  const std::size_t lp = k / 2;
  std::vector<__m256d> pre(count * 4 * lp * 2);
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t entries = ops[r].sb != 0 ? 4 : 2;
    for (std::size_t e = 0; e < entries; ++e)
      for (std::size_t l = 0; l < lp; ++l) {
        __m256d* slot = pre.data() + ((r * 4 + e) * lp + l) * 2;
        split_entry(ops[r].d + e * k, 2 * l, slot[0], slot[1]);
      }
  }
  const auto entry_base = [&](std::size_t i, std::size_t r) {
    const BatchedDiagOp& op = ops[r];
    std::size_t e = (i & op.sa) ? 1 : 0;
    if (op.sb != 0) e = 2 * e + ((i & op.sb) ? 1 : 0);
    return (r * 4 + e) * lp * 2;
  };
  constexpr std::size_t kMaxLp = 16;  // BatchedStatevector::kMaxLanes / 2
  __m256d rea[4][kMaxLp], ima[4][kMaxLp], reb[4][kMaxLp], imb[4][kMaxLp];
  for (int e = 0; e < 4; ++e) {
    for (std::size_t l = 0; l < lp; ++l) {
      split_entry(m_a + static_cast<std::size_t>(e) * k, 2 * l, rea[e][l],
                  ima[e][l]);
      split_entry(m_b + static_cast<std::size_t>(e) * k, 2 * l, reb[e][l],
                  imb[e][l]);
    }
  }
  const std::size_t hi = sa > sb ? sa : sb;
  const std::size_t lo = sa > sb ? sb : sa;
  const __m256d sign = _mm256_set1_pd(-0.0);
  const bool realp =
      entries_real(m_a, 4 * k) && entries_real(m_b, 4 * k);
  std::size_t e00[kMaxDiagRun], e01[kMaxDiagRun];
  std::size_t e10[kMaxDiagRun], e11[kMaxDiagRun];
  // kReal: real-matrix butterflies for purely real gate matrices (the
  // diag chain stays complex); see avx2_batched_apply_1q_pair_run.
  const auto run = [&]<bool kReal>() {
    for (std::size_t base = 0; base < dim; base += 2 * hi) {
      for (std::size_t mid = base; mid < base + hi; mid += 2 * lo) {
        for (std::size_t off = 0; off < lo; ++off) {
          const std::size_t i00 = mid + off;
          for (std::size_t r = 0; r < count; ++r) {
            e00[r] = entry_base(i00, r);
            e01[r] = entry_base(i00 + sb, r);
            e10[r] = entry_base(i00 + sa, r);
            e11[r] = entry_base(i00 + sa + sb, r);
          }
          cplx* p00 = amps + i00 * k;
          cplx* p01 = p00 + sb * k;
          cplx* p10 = p00 + sa * k;
          cplx* p11 = p10 + sb * k;
          for (std::size_t l = 0; l < lp; ++l) {
            __m256d a00 = load2(p00 + 2 * l);
            __m256d a01 = load2(p01 + 2 * l);
            __m256d a10 = load2(p10 + 2 * l);
            __m256d a11 = load2(p11 + 2 * l);
            // All-zero block: diag chains and butterflies would only
            // write (+/-)0 back (see kernels.hpp on the zero-sign
            // caveat).
            const __m256d mag = _mm256_andnot_pd(
                sign, _mm256_or_pd(_mm256_or_pd(a00, a01),
                                   _mm256_or_pd(a10, a11)));
            if (_mm256_testz_si256(_mm256_castpd_si256(mag),
                                   _mm256_castpd_si256(mag)))
              continue;
            for (std::size_t r = 0; r < count; ++r) {
              const __m256d* d00 = pre.data() + e00[r] + 2 * l;
              const __m256d* d01 = pre.data() + e01[r] + 2 * l;
              const __m256d* d10 = pre.data() + e10[r] + 2 * l;
              const __m256d* d11 = pre.data() + e11[r] + 2 * l;
              a00 = cmul_pre(a00, swap_ri(a00), d00[0], d00[1]);
              a01 = cmul_pre(a01, swap_ri(a01), d01[0], d01[1]);
              a10 = cmul_pre(a10, swap_ri(a10), d10[0], d10[1]);
              a11 = cmul_pre(a11, swap_ri(a11), d11[0], d11[1]);
            }
            if constexpr (kReal) {
              // Gate A: stride-sa pairs (a00, a10) and (a01, a11).
              const __m256d b00 =
                  _mm256_add_pd(_mm256_mul_pd(a00, rea[0][l]),
                                _mm256_mul_pd(a10, rea[1][l]));
              const __m256d b10 =
                  _mm256_add_pd(_mm256_mul_pd(a00, rea[2][l]),
                                _mm256_mul_pd(a10, rea[3][l]));
              const __m256d b01 =
                  _mm256_add_pd(_mm256_mul_pd(a01, rea[0][l]),
                                _mm256_mul_pd(a11, rea[1][l]));
              const __m256d b11 =
                  _mm256_add_pd(_mm256_mul_pd(a01, rea[2][l]),
                                _mm256_mul_pd(a11, rea[3][l]));
              // Gate B: stride-sb pairs (b00, b01) and (b10, b11).
              store2(p00 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b00, reb[0][l]),
                                   _mm256_mul_pd(b01, reb[1][l])));
              store2(p01 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b00, reb[2][l]),
                                   _mm256_mul_pd(b01, reb[3][l])));
              store2(p10 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b10, reb[0][l]),
                                   _mm256_mul_pd(b11, reb[1][l])));
              store2(p11 + 2 * l,
                     _mm256_add_pd(_mm256_mul_pd(b10, reb[2][l]),
                                   _mm256_mul_pd(b11, reb[3][l])));
            } else {
              const __m256d a00s = swap_ri(a00);
              const __m256d a01s = swap_ri(a01);
              const __m256d a10s = swap_ri(a10);
              const __m256d a11s = swap_ri(a11);
              // Gate A: stride-sa pairs (a00, a10) and (a01, a11).
              const __m256d b00 =
                  _mm256_add_pd(cmul_pre(a00, a00s, rea[0][l], ima[0][l]),
                                cmul_pre(a10, a10s, rea[1][l], ima[1][l]));
              const __m256d b10 =
                  _mm256_add_pd(cmul_pre(a00, a00s, rea[2][l], ima[2][l]),
                                cmul_pre(a10, a10s, rea[3][l], ima[3][l]));
              const __m256d b01 =
                  _mm256_add_pd(cmul_pre(a01, a01s, rea[0][l], ima[0][l]),
                                cmul_pre(a11, a11s, rea[1][l], ima[1][l]));
              const __m256d b11 =
                  _mm256_add_pd(cmul_pre(a01, a01s, rea[2][l], ima[2][l]),
                                cmul_pre(a11, a11s, rea[3][l], ima[3][l]));
              const __m256d b00s = swap_ri(b00);
              const __m256d b01s = swap_ri(b01);
              const __m256d b10s = swap_ri(b10);
              const __m256d b11s = swap_ri(b11);
              // Gate B: stride-sb pairs (b00, b01) and (b10, b11).
              store2(p00 + 2 * l,
                     _mm256_add_pd(cmul_pre(b00, b00s, reb[0][l], imb[0][l]),
                                   cmul_pre(b01, b01s, reb[1][l], imb[1][l])));
              store2(p01 + 2 * l,
                     _mm256_add_pd(cmul_pre(b00, b00s, reb[2][l], imb[2][l]),
                                   cmul_pre(b01, b01s, reb[3][l], imb[3][l])));
              store2(p10 + 2 * l,
                     _mm256_add_pd(cmul_pre(b10, b10s, reb[0][l], imb[0][l]),
                                   cmul_pre(b11, b11s, reb[1][l], imb[1][l])));
              store2(p11 + 2 * l,
                     _mm256_add_pd(cmul_pre(b10, b10s, reb[2][l], imb[2][l]),
                                   cmul_pre(b11, b11s, reb[3][l], imb[3][l])));
            }
          }
        }
      }
    }
  };
  if (realp)
    run.template operator()<true>();
  else
    run.template operator()<false>();
}

// ---- Trajectory-noise weight / renormalization kernels ---------------------
// Per-lane weight and norm accumulator chains must match the portable
// reference exactly. The real (diag / anti-diag) forms and the norm pass
// pack FOUR lanes per accumulator register: hadd of two adjacent
// lane-pair squares collapses each lane's re^2 + im^2 in one op,
// yielding [l0, l2, l1, l3] slot order (unpermuted at extraction), so
// no per-element permute/duplicate work is spent on horizontal
// reduction. Each slot's chain is still term-by-term the scalar sum.
// The dense form and any k % 4 tail pair keep the two-lane scheme: one
// lane pair's sums duplicated per 128-bit half ([w_l0, w_l0, w_l1,
// w_l1]), hadd collapsing per half, the duplicate slot receiving the
// same additions with operands commuted (bitwise-equal sums).
// Structural classification duplicates kernels.cpp's exact-zero tests,
// so both TUs always agree on the shortcut taken.

inline bool kraus_entries_real(const cplx* m) {
  return m[0].imag() == 0.0 && m[1].imag() == 0.0 && m[2].imag() == 0.0 &&
         m[3].imag() == 0.0;
}

void avx2_batched_kraus_weight(const cplx* amps, std::size_t dim,
                               std::size_t stride, std::size_t k,
                               const cplx* m, double* w) {
  constexpr std::size_t kMaxLp = 16;
  const std::size_t lp = k / 2;
  __m256d acc[kMaxLp];
  for (std::size_t l = 0; l < lp; ++l) acc[l] = _mm256_setzero_pd();

  // Quad-lane layout for the real forms: q4 four-lane accumulators in
  // [l0, l2, l1, l3] slot order, plus one duplicated-pair accumulator
  // (at index q4) when k % 4 == 2.
  const std::size_t q4 = k / 4;
  const bool pair_tail = (k % 4) != 0;

  const bool real = kraus_entries_real(m);
  if (real && m[1] == cplx{} && m[2] == cplx{}) {
    // Real diagonal: b0 = m00 * a0, b1 = m11 * a1 componentwise.
    const __m256d m00 = _mm256_set1_pd(m[0].real());
    const __m256d m11 = _mm256_set1_pd(m[3].real());
    for (std::size_t base = 0; base < dim; base += 2 * stride)
      for (std::size_t off = 0; off < stride; ++off) {
        const cplx* r0 = amps + (base + off) * k;
        const cplx* r1 = r0 + stride * k;
        for (std::size_t q = 0; q < q4; ++q) {
          const __m256d b0x = _mm256_mul_pd(load2(r0 + 4 * q), m00);
          const __m256d b0y = _mm256_mul_pd(load2(r0 + 4 * q + 2), m00);
          const __m256d b1x = _mm256_mul_pd(load2(r1 + 4 * q), m11);
          const __m256d b1y = _mm256_mul_pd(load2(r1 + 4 * q + 2), m11);
          const __m256d n0 = _mm256_hadd_pd(_mm256_mul_pd(b0x, b0x),
                                            _mm256_mul_pd(b0y, b0y));
          const __m256d n1 = _mm256_hadd_pd(_mm256_mul_pd(b1x, b1x),
                                            _mm256_mul_pd(b1y, b1y));
          acc[q] = _mm256_add_pd(acc[q], _mm256_add_pd(n0, n1));
        }
        if (pair_tail) {
          const __m256d b0 = _mm256_mul_pd(load2(r0 + 4 * q4), m00);
          const __m256d b1 = _mm256_mul_pd(load2(r1 + 4 * q4), m11);
          const __m256d t0 = _mm256_mul_pd(b0, b0);
          const __m256d t1 = _mm256_mul_pd(b1, b1);
          const __m256d u = _mm256_hadd_pd(t0, t1);
          const __m256d term = _mm256_add_pd(u, _mm256_permute_pd(u, 0x5));
          acc[q4] = _mm256_add_pd(acc[q4], term);
        }
      }
  } else if (real && m[0] == cplx{} && m[2] == cplx{} && m[3] == cplx{}) {
    // Real upper anti-diagonal (amplitude damping): only b0 = m01 * a1.
    const __m256d m01 = _mm256_set1_pd(m[1].real());
    for (std::size_t base = 0; base < dim; base += 2 * stride)
      for (std::size_t off = 0; off < stride; ++off) {
        const cplx* r1 = amps + (base + off + stride) * k;
        for (std::size_t q = 0; q < q4; ++q) {
          const __m256d b0x = _mm256_mul_pd(load2(r1 + 4 * q), m01);
          const __m256d b0y = _mm256_mul_pd(load2(r1 + 4 * q + 2), m01);
          const __m256d n0 = _mm256_hadd_pd(_mm256_mul_pd(b0x, b0x),
                                            _mm256_mul_pd(b0y, b0y));
          acc[q] = _mm256_add_pd(acc[q], n0);
        }
        if (pair_tail) {
          const __m256d b0 = _mm256_mul_pd(load2(r1 + 4 * q4), m01);
          const __m256d t0 = _mm256_mul_pd(b0, b0);
          acc[q4] = _mm256_add_pd(acc[q4], _mm256_hadd_pd(t0, t0));
        }
      }
  } else {
    // Dense 2x2: the full per-element expression, entries pre-split.
    __m256d re[4], im[4];
    for (int e = 0; e < 4; ++e) {
      re[e] = _mm256_set1_pd(m[e].real());
      im[e] = _mm256_set1_pd(m[e].imag());
    }
    for (std::size_t base = 0; base < dim; base += 2 * stride)
      for (std::size_t off = 0; off < stride; ++off) {
        const cplx* r0 = amps + (base + off) * k;
        const cplx* r1 = r0 + stride * k;
        for (std::size_t l = 0; l < lp; ++l) {
          const __m256d a0 = load2(r0 + 2 * l);
          const __m256d a1 = load2(r1 + 2 * l);
          const __m256d a0s = swap_ri(a0);
          const __m256d a1s = swap_ri(a1);
          const __m256d b0 = _mm256_add_pd(cmul_pre(a0, a0s, re[0], im[0]),
                                           cmul_pre(a1, a1s, re[1], im[1]));
          const __m256d b1 = _mm256_add_pd(cmul_pre(a0, a0s, re[2], im[2]),
                                           cmul_pre(a1, a1s, re[3], im[3]));
          const __m256d t0 = _mm256_mul_pd(b0, b0);
          const __m256d t1 = _mm256_mul_pd(b1, b1);
          const __m256d u = _mm256_hadd_pd(t0, t1);
          const __m256d term = _mm256_add_pd(u, _mm256_permute_pd(u, 0x5));
          acc[l] = _mm256_add_pd(acc[l], term);
        }
      }
    // Dense used the two-lane duplicated-pair layout throughout.
    for (std::size_t l = 0; l < lp; ++l) {
      alignas(32) double out[4];
      _mm256_store_pd(out, acc[l]);
      w[2 * l] = out[0];
      w[2 * l + 1] = out[2];
    }
    return;
  }

  // Real forms: unpermute the quad accumulators, then the tail pair.
  for (std::size_t q = 0; q < q4; ++q) {
    alignas(32) double out[4];
    _mm256_store_pd(out, acc[q]);
    w[4 * q] = out[0];
    w[4 * q + 1] = out[2];
    w[4 * q + 2] = out[1];
    w[4 * q + 3] = out[3];
  }
  if (pair_tail) {
    alignas(32) double out[4];
    _mm256_store_pd(out, acc[q4]);
    w[k - 2] = out[0];
    w[k - 1] = out[2];
  }
}

void avx2_batched_norms(const cplx* amps, std::size_t dim, std::size_t k,
                        double* sums) {
  constexpr std::size_t kMaxLp = 16;
  const std::size_t lp = k / 2;
  const std::size_t q4 = k / 4;
  const bool pair_tail = (k % 4) != 0;
  __m256d acc[kMaxLp];
  for (std::size_t l = 0; l < lp; ++l) acc[l] = _mm256_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const cplx* row = amps + i * k;
    for (std::size_t q = 0; q < q4; ++q) {
      const __m256d vx = load2(row + 4 * q);
      const __m256d vy = load2(row + 4 * q + 2);
      const __m256d n = _mm256_hadd_pd(_mm256_mul_pd(vx, vx),
                                       _mm256_mul_pd(vy, vy));
      acc[q] = _mm256_add_pd(acc[q], n);
    }
    if (pair_tail) {
      const __m256d v = load2(row + 4 * q4);
      const __m256d t = _mm256_mul_pd(v, v);
      acc[q4] = _mm256_add_pd(acc[q4], _mm256_hadd_pd(t, t));
    }
  }
  for (std::size_t q = 0; q < q4; ++q) {
    alignas(32) double out[4];
    _mm256_store_pd(out, acc[q]);
    sums[4 * q] = out[0];
    sums[4 * q + 1] = out[2];
    sums[4 * q + 2] = out[1];
    sums[4 * q + 3] = out[3];
  }
  if (pair_tail) {
    alignas(32) double out[4];
    _mm256_store_pd(out, acc[q4]);
    sums[k - 2] = out[0];
    sums[k - 1] = out[2];
  }
}

void avx2_batched_scale(cplx* amps, std::size_t dim, std::size_t k,
                        const double* scale) {
  constexpr std::size_t kMaxLp = 16;
  const std::size_t lp = k / 2;
  __m256d sc[kMaxLp];
  for (std::size_t l = 0; l < lp; ++l)
    sc[l] = _mm256_set_pd(scale[2 * l + 1], scale[2 * l + 1], scale[2 * l],
                          scale[2 * l]);
  for (std::size_t i = 0; i < dim; ++i) {
    cplx* row = amps + i * k;
    for (std::size_t l = 0; l < lp; ++l)
      store2(row + 2 * l, _mm256_mul_pd(load2(row + 2 * l), sc[l]));
  }
}

const detail::SimdVTable kAvx2VTable = {
    .name = "avx2",
    .apply_1q = avx2_apply_1q,
    .apply_2q = avx2_apply_2q,
    .apply_diag_1q = avx2_apply_diag_1q,
    .apply_diag_2q = avx2_apply_diag_2q,
    .apply_pauli_y = avx2_apply_pauli_y,
    .batched_apply_1q = avx2_batched_apply_1q,
    .batched_apply_1q_pair = avx2_batched_apply_1q_pair,
    .batched_apply_1q_pair_run = avx2_batched_apply_1q_pair_run,
    .batched_apply_2q = avx2_batched_apply_2q,
    .batched_apply_diag_1q = avx2_batched_apply_diag_1q,
    .batched_apply_diag_2q = avx2_batched_apply_diag_2q,
    .batched_apply_diag_run_then_1q_pair =
        avx2_batched_apply_diag_run_then_1q_pair,
    .batched_apply_diag_run = avx2_batched_apply_diag_run,
    .batched_apply_pauli_y = avx2_batched_apply_pauli_y,
    .batched_kraus_weight = avx2_batched_kraus_weight,
    .batched_norms = avx2_batched_norms,
    .batched_scale = avx2_batched_scale,
};

}  // namespace

namespace detail {
const SimdVTable* avx2_vtable() { return &kAvx2VTable; }
}  // namespace detail

}  // namespace qoc::sim::kernels

#else  // !defined(__AVX2__)

namespace qoc::sim::kernels::detail {
const SimdVTable* avx2_vtable() { return nullptr; }
}  // namespace qoc::sim::kernels::detail

#endif
