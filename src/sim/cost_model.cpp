#include "qoc/sim/cost_model.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "qoc/common/env.hpp"
#include "qoc/common/mutex.hpp"
#include "qoc/obs/clock.hpp"
#include "qoc/obs/metrics.hpp"
#include "qoc/sim/batched_statevector.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::sim {

namespace {
double pow2(int n) { return std::ldexp(1.0, n); }
}  // namespace

unsigned parse_batch_lanes(const char* s) {
  const unsigned v = static_cast<unsigned>(common::parse_env_uint(s, 32));
  if (v > 1 && (v % 2) != 0) return 0;  // AVX2 forms need even lanes
  return v;
}

// ---- LaneCalibration -------------------------------------------------------

LaneCalibration LaneCalibration::flat(int max_wide_qubits,
                                      std::size_t lanes) {
  LaneCalibration cal;
  cal.width.fill(1);
  cal.width[0] = 0;  // index 0 unused
  for (int n = 1; n <= kMaxQubits && n <= max_wide_qubits; ++n)
    cal.width[n] = static_cast<std::uint8_t>(lanes);
  return cal;
}

int LaneCalibration::max_wide_qubits() const {
  for (int n = kMaxQubits; n >= 1; --n)
    if (width[n] > 1) return n;
  return 0;
}

std::string LaneCalibration::serialize() const {
  std::string out = "v1;";
  bool first = true;
  int n = 1;
  while (n <= kMaxQubits) {
    if (width[n] <= 1) {
      ++n;
      continue;
    }
    int hi = n;
    while (hi + 1 <= kMaxQubits && width[hi + 1] == width[n]) ++hi;
    if (!first) out += ',';
    first = false;
    out += std::to_string(n);
    if (hi != n) out += '-' + std::to_string(hi);
    out += ':' + std::to_string(width[n]);
    n = hi + 1;
  }
  return out;  // bare "v1;" means all-scalar
}

namespace {

// Strict string_view wrapper over the shared env-int core (same "what
// counts as a number" rules as every other qoc knob).
bool parse_cal_uint(std::string_view t, unsigned long max_value,
                    unsigned long* out) {
  const std::string buf(t);
  *out = common::parse_env_uint(buf.c_str(), max_value);
  return *out != 0;
}

}  // namespace

std::optional<LaneCalibration> LaneCalibration::parse(std::string_view s) {
  constexpr std::string_view kPrefix = "v1;";
  if (s.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  s.remove_prefix(kPrefix.size());

  LaneCalibration cal;
  cal.width.fill(1);
  cal.width[0] = 0;
  std::array<bool, kMaxQubits + 1> seen{};

  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view token = s.substr(0, comma);
    s.remove_prefix(comma == std::string_view::npos ? s.size() : comma + 1);

    const std::size_t colon = token.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string_view range = token.substr(0, colon);
    const std::string_view kstr = token.substr(colon + 1);

    unsigned long k = 0;
    if (!parse_cal_uint(kstr, 32, &k)) return std::nullopt;
    if (k > 1 && (k % 2) != 0) return std::nullopt;  // even lanes only

    unsigned long lo = 0;
    unsigned long hi = 0;
    const std::size_t dash = range.find('-');
    if (dash == std::string_view::npos) {
      if (!parse_cal_uint(range, kMaxQubits, &lo)) return std::nullopt;
      hi = lo;
    } else {
      if (!parse_cal_uint(range.substr(0, dash), kMaxQubits, &lo) ||
          !parse_cal_uint(range.substr(dash + 1), kMaxQubits, &hi))
        return std::nullopt;
    }
    if (lo > hi) return std::nullopt;
    for (unsigned long n = lo; n <= hi; ++n) {
      if (seen[n]) return std::nullopt;  // overlapping ranges fail loudly
      seen[n] = true;
      cal.width[n] = static_cast<std::uint8_t>(k);
    }
  }
  return cal;
}

// ---- Micro-probe -----------------------------------------------------------

namespace {

// The probe times the representative layered evaluation of the batch
// paths -- a dense 1q rotation layer, an entangling diagonal ring, a
// full <Z> readout -- scalar vs k-wide at a small (n, k) grid, and
// keeps k-wide only where it measures faster PER EVALUATION. Timing
// here is pure observation: the calibration picks which lane width a
// dispatch uses, and per-lane results are bit-identical across widths,
// so a noisy measurement can cost performance but never determinism.

// Row budget per timed measurement. Each measurement runs enough
// repetitions that ~this many (row, lane) updates happen, so the whole
// first-dispatch probe stays in the tens of milliseconds.
constexpr std::size_t kProbeRowBudget = std::size_t{1} << 16;
constexpr int kProbeGrid[] = {6, 8, 10, 12, 14};
constexpr std::size_t kProbeWidths[] = {4, 8};

// Arbitrary unit-modulus gate constants: the probe measures memory
// traffic and butterfly arithmetic, not any particular angles.
constexpr double kProbeCos = 0.9887710779360422;  // cos(0.15)
constexpr double kProbeSin = 0.1494381324735992;  // sin(0.15)

// Defeats dead-code elimination of the probe's readouts.
volatile double g_probe_sink = 0.0;

std::size_t probe_reps(int n, std::size_t k) {
  const std::size_t dim = std::size_t{1} << n;
  const std::size_t rows_per_rep =
      dim * k * (2 * static_cast<std::size_t>(n) + 1);
  const std::size_t reps = kProbeRowBudget / rows_per_rep;
  return reps > 0 ? reps : 1;
}

std::uint64_t probe_scalar_ns(int n, std::size_t reps) {
  Statevector sv(n);
  const cplx ry[4] = {cplx(kProbeCos, 0.0), cplx(-kProbeSin, 0.0),
                      cplx(kProbeSin, 0.0), cplx(kProbeCos, 0.0)};
  const cplx zz0(kProbeCos, -kProbeSin);
  const cplx zz1(kProbeCos, kProbeSin);
  double acc = 0.0;
  const std::uint64_t t0 = obs::now_ns();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    sv.reset();
    for (int q = 0; q < n; ++q) sv.apply_1q(ry, q);
    for (int q = 0; q < n; ++q)
      sv.apply_diag_2q(zz0, zz1, zz1, zz0, q, (q + 1) % n);
    const std::vector<double> z = sv.expectation_z_all();
    acc += z[0];
  }
  const std::uint64_t elapsed = obs::now_ns() - t0;
  g_probe_sink = g_probe_sink + acc;
  return elapsed;
}

std::uint64_t probe_wide_ns(int n, std::size_t k, std::size_t reps) {
  BatchedStatevector bsv(n, k);
  const cplx ry[4] = {cplx(kProbeCos, 0.0), cplx(-kProbeSin, 0.0),
                      cplx(kProbeSin, 0.0), cplx(kProbeCos, 0.0)};
  const cplx zz0(kProbeCos, -kProbeSin);
  const cplx zz1(kProbeCos, kProbeSin);
  std::vector<double> z(static_cast<std::size_t>(n) * k);
  double acc = 0.0;
  const std::uint64_t t0 = obs::now_ns();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    bsv.reset();
    for (int q = 0; q < n; ++q) bsv.apply_1q(ry, q);
    for (int q = 0; q < n; ++q)
      bsv.apply_diag_2q(zz0, zz1, zz1, zz0, q, (q + 1) % n);
    bsv.expectation_z_all_lanes(z);
    acc += z[0];
  }
  const std::uint64_t elapsed = obs::now_ns() - t0;
  g_probe_sink = g_probe_sink + acc;
  return elapsed;
}

LaneCalibration run_probe() {
  LaneCalibration cal;
  cal.width.fill(1);
  cal.width[0] = 0;
  cal.source = LaneCalibrationSource::kMeasured;

  constexpr int kGridMax = kProbeGrid[std::size(kProbeGrid) - 1];
  std::array<std::uint8_t, kGridMax + 1> grid_width{};
  for (const int n : kProbeGrid) {
    const std::size_t reps1 = probe_reps(n, 1);
    const double t_scalar =
        static_cast<double>(probe_scalar_ns(n, reps1)) /
        static_cast<double>(reps1);
    std::size_t best_k = 1;
    // 3% hysteresis: a k-wide width must beat scalar clearly, so timing
    // jitter near the crossover degrades to the safe scalar path.
    double best_t = t_scalar * 0.97;
    for (const std::size_t k : kProbeWidths) {
      const std::size_t reps = probe_reps(n, k);
      const double t_wide = static_cast<double>(probe_wide_ns(n, k, reps)) /
                            static_cast<double>(reps * k);
      if (t_wide < best_t) {
        best_t = t_wide;
        best_k = k;
      }
    }
    grid_width[n] = static_cast<std::uint8_t>(best_k);
  }

  // Fill the full table from the grid: below the grid small states take
  // the smallest probed point's verdict, between points the nearest
  // probed n below, beyond the grid scalar (unprobed territory -- the
  // L2-spill regime the static rule already excluded).
  int floor_n = kProbeGrid[0];
  for (int n = 1; n <= LaneCalibration::kMaxQubits; ++n) {
    if (n > kGridMax) break;  // leave width 1
    if (grid_width[n] != 0) floor_n = n;
    cal.width[n] = grid_width[floor_n] != 0 ? grid_width[floor_n]
                                            : std::uint8_t{1};
  }
  return cal;
}

// Process-wide cached calibration. Reads and writes go through g_mu:
// batch_lane_width runs once per batch dispatch (against ~2^n work per
// evaluation the lock is noise), and tests repin concurrently under
// TSAN.
common::Mutex g_cal_mu;
LaneCalibration g_cal QOC_GUARDED_BY(g_cal_mu);
bool g_cal_valid QOC_GUARDED_BY(g_cal_mu) = false;

void install_calibration(const LaneCalibration& cal)
    QOC_REQUIRES(g_cal_mu) {
  g_cal = cal;
  g_cal_valid = true;
  QOC_METRIC_GAUGE_SET("qoc_sim_lane_calibration_source",
                       static_cast<double>(static_cast<int>(cal.source)));
  QOC_METRIC_GAUGE_SET("qoc_sim_lane_calibration_max_wide_qubits",
                       static_cast<double>(cal.max_wide_qubits()));
  QOC_METRIC_GAUGE_SET("qoc_sim_lane_calibration_width_n10",
                       static_cast<double>(cal.width[10]));
}

LaneCalibration resolve_calibration() {
  // QOC_LANE_CALIBRATION: inline serialized table, or "@/path" naming a
  // file holding one. Unparseable values follow the repo's env-knob
  // convention (garbage means "no override") and fall through to the
  // probe.
  if (const char* env = std::getenv("QOC_LANE_CALIBRATION");
      env != nullptr && *env != '\0') {
    if (*env == '@') {
      std::ifstream in(env + 1);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r' ||
                text.back() == ' ' || text.back() == '\t'))
          text.pop_back();
        if (auto cal = LaneCalibration::parse(text)) {
          cal->source = LaneCalibrationSource::kFile;
          return *cal;
        }
      }
    } else if (auto cal = LaneCalibration::parse(env)) {
      cal->source = LaneCalibrationSource::kEnv;
      return *cal;
    }
  }
  return run_probe();
}

}  // namespace

LaneCalibration lane_calibration() {
  common::MutexLock lock(g_cal_mu);
  if (!g_cal_valid) install_calibration(resolve_calibration());
  return g_cal;
}

LaneCalibration calibrate() {
  LaneCalibration cal = run_probe();  // probe outside the lock
  common::MutexLock lock(g_cal_mu);
  install_calibration(cal);
  return cal;
}

void set_lane_calibration(const LaneCalibration& cal) {
  LaneCalibration pinned = cal;
  pinned.source = LaneCalibrationSource::kPinned;
  common::MutexLock lock(g_cal_mu);
  install_calibration(pinned);
}

void reset_lane_calibration() {
  common::MutexLock lock(g_cal_mu);
  g_cal_valid = false;
}

std::size_t batch_lane_width(int n_qubits, std::size_t batch_size,
                             int pinned_lanes) {
  // getenv is re-read per dispatch (not latched) so tests and benches can
  // flip the override; a batch dispatch costs ~2^n work, the lookup is
  // noise against that.
  long want = -1;  // -1: defer to the calibrated model
  if (const unsigned env = parse_batch_lanes(std::getenv("QOC_BATCH_LANES")))
    want = static_cast<long>(env);
  else if (pinned_lanes >= 0)
    want = pinned_lanes;

  if (want == 0 || want == 1) return 1;

  std::size_t k = 0;
  if (want > 1) {
    k = static_cast<std::size_t>(want);
    if (k % 2) --k;  // even lanes only
    if (k > BatchedStatevector::kMaxLanes) k = BatchedStatevector::kMaxLanes;
  } else {
    const LaneCalibration cal = lane_calibration();
    k = (n_qubits >= 1 && n_qubits <= LaneCalibration::kMaxQubits)
            ? cal.width[static_cast<std::size_t>(n_qubits)]
            : 1;
  }

  // Ragged-tail compaction makes a part-filled group profitable once it
  // is at least half full, so a width no longer needs k full
  // evaluations -- half of them suffice.
  return (k >= 2 && 2 * batch_size >= k) ? k : 1;
}

LanePartition partition_lanes(int n_qubits, std::size_t batch_size,
                              int pinned_lanes) {
  LanePartition p;
  p.lanes = batch_lane_width(n_qubits, batch_size, pinned_lanes);
  if (p.lanes <= 1) {
    p.lanes = 1;
    return p;  // tail_start 0: the whole batch runs scalar
  }
  p.full_groups = batch_size / p.lanes;
  const std::size_t rem = batch_size % p.lanes;
  if (rem > 0 && 2 * rem >= p.lanes) {
    // Compact the tail into one padded group: its padding lanes repeat
    // the last real evaluation and cost lanes/speedup scalar-equivalents,
    // which beats `rem` scalar evaluations once the group is half full.
    p.padded_evals = rem;
    p.tail_start = batch_size;
  } else {
    p.tail_start = p.full_groups * p.lanes;
  }
  return p;
}

double classical_ops(int n_qubits, const ScalingWorkload& w) {
  // 2^1-dim gate update costs 2 MACs per amplitude pair -> 2 * 2^n;
  // 4x4 update costs 4 MACs per group of 4 amplitudes -> 4 * 2^n.
  const double per_circuit =
      (2.0 * w.n_rot_1q + 4.0 * w.n_rot_2q) * pow2(n_qubits);
  return per_circuit * w.n_circuits;
}

double classical_regs(int n_qubits) { return pow2(n_qubits); }

double classical_memory_gb(int n_qubits) {
  return classical_regs(n_qubits) * 16.0 / 1e9;
}

double classical_runtime_s(int n_qubits, const ScalingWorkload& w,
                           double macs_per_second) {
  return classical_ops(n_qubits, w) / macs_per_second;
}

double quantum_ops(int n_qubits, const ScalingWorkload& w) {
  // Routing overhead grows mildly with device size: assume a linear chain
  // in the worst case adds ~n/8 SWAPs (3 CX each) per two-qubit gate.
  const double routing_factor = 1.0 + n_qubits / 8.0 * 3.0 / 10.0;
  const double per_circuit = w.n_rot_1q + w.n_rot_2q * routing_factor;
  return per_circuit * w.n_circuits;
}

double quantum_regs(int n_qubits) { return n_qubits; }

double quantum_runtime_s(int n_qubits, const ScalingWorkload& w) {
  constexpr double t_1q = 35e-9;
  constexpr double t_2q = 300e-9;
  constexpr double t_readout = 5e-6;
  constexpr double t_reset = 250e-6;
  constexpr double t_job_overhead = 8.0;  // queue/compile per job
  const double routing_factor = 1.0 + n_qubits / 8.0 * 3.0 / 10.0;
  const double circuit_time = w.n_rot_1q * t_1q +
                              w.n_rot_2q * routing_factor * t_2q +
                              n_qubits * t_readout + t_reset;
  return circuit_time * w.shots * w.n_circuits + t_job_overhead;
}

double quantum_memory_gb(int n_qubits, const ScalingWorkload& w) {
  // Counts histogram: at most shots distinct bitstrings of n bits.
  const double bytes = static_cast<double>(w.shots) * (n_qubits / 8.0 + 8.0);
  return bytes * w.n_circuits / 1e9;
}

}  // namespace qoc::sim
