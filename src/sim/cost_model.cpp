#include "qoc/sim/cost_model.hpp"

#include <cmath>
#include <cstdlib>

#include "qoc/common/env.hpp"

namespace qoc::sim {

namespace {
double pow2(int n) { return std::ldexp(1.0, n); }
}  // namespace

unsigned parse_batch_lanes(const char* s) {
  const unsigned v = static_cast<unsigned>(common::parse_env_uint(s, 32));
  if (v > 1 && (v % 2) != 0) return 0;  // AVX2 forms need even lanes
  return v;
}

std::size_t batch_lane_width(int n_qubits, std::size_t batch_size,
                             int pinned_lanes) {
  // getenv is re-read per dispatch (not latched) so tests and benches can
  // flip the override; a batch dispatch costs ~2^n work, the lookup is
  // noise against that.
  long want = -1;  // -1: defer to the cost model
  if (const unsigned env = parse_batch_lanes(std::getenv("QOC_BATCH_LANES")))
    want = static_cast<long>(env);
  else if (pinned_lanes >= 0)
    want = pinned_lanes;

  if (want == 0 || want == 1) return 1;
  if (want > 1) {
    std::size_t k = static_cast<std::size_t>(want);
    if (k % 2) --k;           // even lanes only
    if (k > 32) k = 32;
    return (k >= 2 && batch_size >= k) ? k : 1;
  }

  // Cost model: lane grouping wins when the whole lane group's working
  // set stays L2-resident (2^14 rows * 8 lanes * 16 bytes = 2 MiB, the
  // L2 of the parts this targets) and there are enough bindings to fill
  // the lanes. Measured on the gate mix of BM_RunBatchDistinctBindings,
  // the full width beats narrower groups across n = 10..14; above
  // kBatchedLaneMaxQubits the group spills L2 and the scalar path's
  // within-state kernels win.
  if (n_qubits > kBatchedLaneMaxQubits) return 1;
  return batch_size >= kBatchedLanes ? kBatchedLanes : 1;
}

double classical_ops(int n_qubits, const ScalingWorkload& w) {
  // 2^1-dim gate update costs 2 MACs per amplitude pair -> 2 * 2^n;
  // 4x4 update costs 4 MACs per group of 4 amplitudes -> 4 * 2^n.
  const double per_circuit =
      (2.0 * w.n_rot_1q + 4.0 * w.n_rot_2q) * pow2(n_qubits);
  return per_circuit * w.n_circuits;
}

double classical_regs(int n_qubits) { return pow2(n_qubits); }

double classical_memory_gb(int n_qubits) {
  return classical_regs(n_qubits) * 16.0 / 1e9;
}

double classical_runtime_s(int n_qubits, const ScalingWorkload& w,
                           double macs_per_second) {
  return classical_ops(n_qubits, w) / macs_per_second;
}

double quantum_ops(int n_qubits, const ScalingWorkload& w) {
  // Routing overhead grows mildly with device size: assume a linear chain
  // in the worst case adds ~n/8 SWAPs (3 CX each) per two-qubit gate.
  const double routing_factor = 1.0 + n_qubits / 8.0 * 3.0 / 10.0;
  const double per_circuit = w.n_rot_1q + w.n_rot_2q * routing_factor;
  return per_circuit * w.n_circuits;
}

double quantum_regs(int n_qubits) { return n_qubits; }

double quantum_runtime_s(int n_qubits, const ScalingWorkload& w) {
  constexpr double t_1q = 35e-9;
  constexpr double t_2q = 300e-9;
  constexpr double t_readout = 5e-6;
  constexpr double t_reset = 250e-6;
  constexpr double t_job_overhead = 8.0;  // queue/compile per job
  const double routing_factor = 1.0 + n_qubits / 8.0 * 3.0 / 10.0;
  const double circuit_time = w.n_rot_1q * t_1q +
                              w.n_rot_2q * routing_factor * t_2q +
                              n_qubits * t_readout + t_reset;
  return circuit_time * w.shots * w.n_circuits + t_job_overhead;
}

double quantum_memory_gb(int n_qubits, const ScalingWorkload& w) {
  // Counts histogram: at most shots distinct bitstrings of n bits.
  const double bytes = static_cast<double>(w.shots) * (n_qubits / 8.0 + 8.0);
  return bytes * w.n_circuits / 1e9;
}

}  // namespace qoc::sim
