#include "qoc/sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace qoc::sim {

using linalg::cplx;
using linalg::Matrix;

namespace {
constexpr int kMaxQubits = 12;
}

DensityMatrix::DensityMatrix(int n_qubits) : n_qubits_(n_qubits) {
  if (n_qubits < 1 || n_qubits > kMaxQubits)
    throw std::invalid_argument("DensityMatrix: n_qubits out of [1,12]");
  dim_ = std::size_t{1} << n_qubits;
  rho_.assign(dim_ * dim_, cplx{0.0, 0.0});
  rho_[0] = 1.0;
}

DensityMatrix DensityMatrix::from_statevector(const Statevector& psi) {
  DensityMatrix dm(psi.num_qubits());
  const auto& amps = psi.amplitudes();
  for (std::size_t r = 0; r < dm.dim_; ++r)
    for (std::size_t c = 0; c < dm.dim_; ++c)
      dm.rho_[r * dm.dim_ + c] = amps[r] * std::conj(amps[c]);
  return dm;
}

void DensityMatrix::reset() {
  std::fill(rho_.begin(), rho_.end(), cplx{0.0, 0.0});
  rho_[0] = 1.0;
}

void DensityMatrix::apply_one_side(const Matrix& m,
                                   const std::vector<int>& qubits,
                                   bool left) {
  const std::size_t k = qubits.size();
  const std::size_t sub = std::size_t{1} << k;
  if (m.rows() != sub || m.cols() != sub)
    throw std::invalid_argument("DensityMatrix: operator dim mismatch");
  for (std::size_t i = 0; i < k; ++i) {
    if (qubits[i] < 0 || qubits[i] >= n_qubits_)
      throw std::out_of_range("DensityMatrix: qubit index");
    for (std::size_t j = i + 1; j < k; ++j)
      if (qubits[i] == qubits[j])
        throw std::invalid_argument("DensityMatrix: duplicate qubit");
  }

  std::vector<std::size_t> stride(k);
  std::size_t mask = 0;
  for (std::size_t i = 0; i < k; ++i) {
    stride[i] = std::size_t{1} << (n_qubits_ - 1 - qubits[i]);
    mask |= stride[i];
  }

  // Left:  rho'[r, c] = sum_s M[r_sub, s] rho[r(s), c]   for every c.
  // Right: rho'[r, c] = sum_s rho[r, c(s)] conj(M[c_sub, s]) for every r.
  std::vector<cplx> in(sub), out(sub);
  const std::size_t fixed_count = dim_;  // iterate the untouched index fully
  for (std::size_t fixed = 0; fixed < fixed_count; ++fixed) {
    for (std::size_t base = 0; base < dim_; ++base) {
      if (base & mask) continue;
      // Gather the sub-vector along the varying index.
      for (std::size_t s = 0; s < sub; ++s) {
        std::size_t idx = base;
        for (std::size_t b = 0; b < k; ++b)
          if (s & (sub >> 1 >> b)) idx |= stride[b];
        in[s] = left ? rho_[idx * dim_ + fixed] : rho_[fixed * dim_ + idx];
      }
      for (std::size_t r = 0; r < sub; ++r) {
        cplx acc{0.0, 0.0};
        for (std::size_t s = 0; s < sub; ++s)
          acc += (left ? m(r, s) : std::conj(m(r, s))) * in[s];
        out[r] = acc;
      }
      for (std::size_t s = 0; s < sub; ++s) {
        std::size_t idx = base;
        for (std::size_t b = 0; b < k; ++b)
          if (s & (sub >> 1 >> b)) idx |= stride[b];
        if (left)
          rho_[idx * dim_ + fixed] = out[s];
        else
          rho_[fixed * dim_ + idx] = out[s];
      }
    }
  }
}

void DensityMatrix::apply_unitary(const Matrix& u,
                                  const std::vector<int>& qubits) {
  apply_one_side(u, qubits, /*left=*/true);
  apply_one_side(u, qubits, /*left=*/false);
}

void DensityMatrix::apply_channel(const std::vector<Matrix>& kraus,
                                  const std::vector<int>& qubits) {
  if (kraus.empty())
    throw std::invalid_argument("DensityMatrix: empty Kraus set");
  std::vector<cplx> acc(dim_ * dim_, cplx{0.0, 0.0});
  const std::vector<cplx> original = rho_;
  for (const auto& k : kraus) {
    rho_ = original;
    apply_one_side(k, qubits, /*left=*/true);
    apply_one_side(k, qubits, /*left=*/false);
    for (std::size_t i = 0; i < rho_.size(); ++i) acc[i] += rho_[i];
  }
  rho_ = std::move(acc);
}

double DensityMatrix::trace_real() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) t += rho_[i * dim_ + i].real();
  return t;
}

double DensityMatrix::purity() const {
  // Tr(rho^2) = sum_{r,c} rho_{rc} rho_{cr} = sum |rho_{rc}|^2 (Hermitian).
  double p = 0.0;
  for (const auto& v : rho_) p += std::norm(v);
  return p;
}

double DensityMatrix::expectation_z(int qubit) const {
  if (qubit < 0 || qubit >= n_qubits_)
    throw std::out_of_range("DensityMatrix::expectation_z: qubit");
  const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - qubit);
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double p = rho_[i * dim_ + i].real();
    acc += (i & stride) ? -p : p;
  }
  return acc;
}

std::vector<double> DensityMatrix::expectation_z_all() const {
  std::vector<double> out(static_cast<std::size_t>(n_qubits_), 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double p = rho_[i * dim_ + i].real();
    for (int q = 0; q < n_qubits_; ++q) {
      const std::size_t stride = std::size_t{1} << (n_qubits_ - 1 - q);
      out[static_cast<std::size_t>(q)] += (i & stride) ? -p : p;
    }
  }
  return out;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) p[i] = rho_[i * dim_ + i].real();
  return p;
}

}  // namespace qoc::sim
