// Statevector kernel dispatch: scalar reference loops (the parity oracle)
// and the portable blocked implementations. This TU and kernels_avx2.cpp
// are compiled with -ffp-contract=off so every mode performs literally
// the same IEEE operations (see the contract in kernels.hpp).

#include "qoc/sim/kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace qoc::sim::kernels {

namespace {

std::atomic<KernelMode> g_mode{KernelMode::Auto};

/// The active SIMD table: compiled in AND supported by this CPU.
const detail::SimdVTable* active_simd() {
  static const detail::SimdVTable* table = [] {
    const detail::SimdVTable* t = detail::avx2_vtable();
#if defined(__x86_64__) || defined(__i386__)
    if (t != nullptr && __builtin_cpu_supports("avx2")) return t;
#endif
    return static_cast<const detail::SimdVTable*>(nullptr);
  }();
  return table;
}

enum class Path { Scalar, Blocked, Simd };

Path resolve_path() {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case KernelMode::Scalar:
      return Path::Scalar;
    case KernelMode::Blocked:
      return Path::Blocked;
    case KernelMode::Simd:
    case KernelMode::Auto:
      return active_simd() ? Path::Simd : Path::Blocked;
  }
  return Path::Blocked;
}

// ---- Scalar reference ------------------------------------------------------
// These are the pre-SIMD Statevector loops, verbatim. They define the
// arithmetic every other path must reproduce bit-for-bit.

void scalar_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                     const cplx* m) {
  const cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const cplx a0 = amps[i0];
      const cplx a1 = amps[i1];
      amps[i0] = m00 * a0 + m01 * a1;
      amps[i1] = m10 * a0 + m11 * a1;
    }
  }
}

void scalar_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                     std::size_t sb, const cplx* m) {
  const std::size_t mask = sa | sb;
  for (std::size_t i = 0; i < dim; ++i) {
    if (i & mask) continue;  // visit each group once, via its 00 member
    const std::size_t i00 = i;
    const std::size_t i01 = i | sb;
    const std::size_t i10 = i | sa;
    const std::size_t i11 = i | sa | sb;
    const cplx a00 = amps[i00], a01 = amps[i01], a10 = amps[i10],
               a11 = amps[i11];
    amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void scalar_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                          cplx d0, cplx d1) {
  for (std::size_t i = 0; i < dim; ++i)
    amps[i] = ((i & stride) ? d1 : d0) * amps[i];
}

void scalar_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                          std::size_t sb, const cplx* d) {
  for (std::size_t i = 0; i < dim; ++i) {
    const std::size_t idx = (((i & sa) ? 2u : 0u) | ((i & sb) ? 1u : 0u));
    amps[i] = d[idx] * amps[i];
  }
}

void scalar_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                     std::size_t st) {
  for (std::size_t i = 0; i < dim; ++i)
    if ((i & sc) && !(i & st)) std::swap(amps[i], amps[i | st]);
}

void scalar_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                     std::size_t sb) {
  const std::size_t both = sa | sb;
  for (std::size_t i = 0; i < dim; ++i)
    if ((i & both) == both) amps[i] = -amps[i];
}

void scalar_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                       std::size_t sb) {
  for (std::size_t i = 0; i < dim; ++i)
    if ((i & sa) && !(i & sb)) std::swap(amps[i], amps[(i ^ sa) | sb]);
}

void scalar_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off)
      std::swap(amps[base + off], amps[base + off + stride]);
}

void scalar_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride) {
  const cplx i{0.0, 1.0};
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const cplx a0 = amps[i0];
      const cplx a1 = amps[i1];
      amps[i0] = -i * a1;
      amps[i1] = i * a0;
    }
}

void scalar_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = stride; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off)
      amps[base + off] = -amps[base + off];
}

// ---- Portable blocked ------------------------------------------------------
// Group enumeration by nested base blocks: the inner index runs over the
// bits below the smallest operand stride, so every memory access is a
// contiguous run and the skip-mask branch of the scalar 2q/diag/cz loops
// disappears. Per-element arithmetic is written with the exact same
// complex expressions as the scalar reference.

void blocked_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb, const cplx* m) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) {
        const std::size_t i01 = i + sb;
        const std::size_t i10 = i + sa;
        const std::size_t i11 = i + sa + sb;
        const cplx a00 = amps[i], a01 = amps[i01], a10 = amps[i10],
                   a11 = amps[i11];
        amps[i] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
        amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
        amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
        amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
      }
    }
  }
}

void blocked_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                           cplx d0, cplx d1) {
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) amps[i] = d0 * amps[i];
    for (std::size_t i = base + stride; i < base + 2 * stride; ++i)
      amps[i] = d1 * amps[i];
  }
}

void blocked_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                           std::size_t sb, const cplx* d) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) amps[i] = d[0] * amps[i];
      for (std::size_t i = b1 + sb; i < b1 + sb + s1; ++i)
        amps[i] = d[1] * amps[i];
      for (std::size_t i = b1 + sa; i < b1 + sa + s1; ++i)
        amps[i] = d[2] * amps[i];
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; ++i)
        amps[i] = d[3] * amps[i];
    }
  }
}

void blocked_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                      std::size_t st) {
  const std::size_t s1 = std::min(sc, st);
  const std::size_t s2 = std::max(sc, st);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      std::swap_ranges(amps + b1 + sc, amps + b1 + sc + s1,
                       amps + b1 + sc + st);
}

void blocked_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; ++i)
        amps[i] = -amps[i];
}

void blocked_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                        std::size_t sb) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      std::swap_ranges(amps + b1 + sa, amps + b1 + sa + s1, amps + b1 + sb);
}

void blocked_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    std::swap_ranges(amps + base, amps + base + stride, amps + base + stride);
}

void blocked_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = stride; base < dim; base += 2 * stride)
    for (std::size_t i = base; i < base + stride; ++i) amps[i] = -amps[i];
}

// ---- Portable batched (evaluation-major) -----------------------------------
// Row enumeration is the blocked form above with every row index scaled
// by k; the inner lane loop is the scalar reference expression per lane,
// so lane L is bit-identical to running the scalar kernel on state L.
// The lane loop is over contiguous memory and auto-vectorizes; the AVX2
// TU provides hand-tuned forms for the arithmetic-heavy kernels.

void portable_batched_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                               std::size_t k, const cplx* m) {
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      cplx* p0 = amps + (base + off) * k;
      cplx* p1 = p0 + stride * k;
      for (std::size_t l = 0; l < k; ++l) {
        const cplx a0 = p0[l];
        const cplx a1 = p1[l];
        p0[l] = m[0 * k + l] * a0 + m[1 * k + l] * a1;
        p1[l] = m[2 * k + l] * a0 + m[3 * k + l] * a1;
      }
    }
  }
}

void portable_batched_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                               std::size_t sb, std::size_t k, const cplx* m) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) {
        cplx* p00 = amps + i * k;
        cplx* p01 = amps + (i + sb) * k;
        cplx* p10 = amps + (i + sa) * k;
        cplx* p11 = amps + (i + sa + sb) * k;
        for (std::size_t l = 0; l < k; ++l) {
          const cplx a00 = p00[l], a01 = p01[l], a10 = p10[l], a11 = p11[l];
          p00[l] = m[0 * k + l] * a00 + m[1 * k + l] * a01 +
                   m[2 * k + l] * a10 + m[3 * k + l] * a11;
          p01[l] = m[4 * k + l] * a00 + m[5 * k + l] * a01 +
                   m[6 * k + l] * a10 + m[7 * k + l] * a11;
          p10[l] = m[8 * k + l] * a00 + m[9 * k + l] * a01 +
                   m[10 * k + l] * a10 + m[11 * k + l] * a11;
          p11[l] = m[12 * k + l] * a00 + m[13 * k + l] * a01 +
                   m[14 * k + l] * a10 + m[15 * k + l] * a11;
        }
      }
    }
  }
}

void portable_batched_apply_diag_1q(cplx* amps, std::size_t dim,
                                    std::size_t stride, std::size_t k,
                                    const cplx* d) {
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      cplx* p = amps + i * k;
      for (std::size_t l = 0; l < k; ++l) p[l] = d[l] * p[l];
    }
    for (std::size_t i = base + stride; i < base + 2 * stride; ++i) {
      cplx* p = amps + i * k;
      for (std::size_t l = 0; l < k; ++l) p[l] = d[k + l] * p[l];
    }
  }
}

void portable_batched_apply_diag_2q(cplx* amps, std::size_t dim,
                                    std::size_t sa, std::size_t sb,
                                    std::size_t k, const cplx* d) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) {
        cplx* p = amps + i * k;
        for (std::size_t l = 0; l < k; ++l) p[l] = d[l] * p[l];
      }
      for (std::size_t i = b1 + sb; i < b1 + sb + s1; ++i) {
        cplx* p = amps + i * k;
        for (std::size_t l = 0; l < k; ++l) p[l] = d[k + l] * p[l];
      }
      for (std::size_t i = b1 + sa; i < b1 + sa + s1; ++i) {
        cplx* p = amps + i * k;
        for (std::size_t l = 0; l < k; ++l) p[l] = d[2 * k + l] * p[l];
      }
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; ++i) {
        cplx* p = amps + i * k;
        for (std::size_t l = 0; l < k; ++l) p[l] = d[3 * k + l] * p[l];
      }
    }
  }
}

void portable_batched_apply_diag_run(cplx* amps, std::size_t dim,
                                     const BatchedDiagOp* ops,
                                     std::size_t count, std::size_t k) {
  // Row-sequential: every op's entry index depends only on the row, so
  // each amplitude chains its whole product without touching memory
  // between ops. Operand order (d * a) matches the standalone portable
  // diag kernels, keeping the chain bit-identical to separate passes.
  std::size_t eoff[kMaxDiagRun];
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t r = 0; r < count; ++r) {
      const BatchedDiagOp& op = ops[r];
      std::size_t e = (i & op.sa) ? 1 : 0;
      if (op.sb != 0) e = 2 * e + ((i & op.sb) ? 1 : 0);
      eoff[r] = e * k;
    }
    cplx* p = amps + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      cplx a = p[l];
      for (std::size_t r = 0; r < count; ++r) a = ops[r].d[eoff[r] + l] * a;
      p[l] = a;
    }
  }
}

void portable_batched_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                               std::size_t st, std::size_t k) {
  const std::size_t s1 = std::min(sc, st);
  const std::size_t s2 = std::max(sc, st);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      std::swap_ranges(amps + (b1 + sc) * k, amps + (b1 + sc + s1) * k,
                       amps + (b1 + sc + st) * k);
}

void portable_batched_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                               std::size_t sb, std::size_t k) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      for (std::size_t i = (b1 + sa + sb) * k; i < (b1 + sa + sb + s1) * k;
           ++i)
        amps[i] = -amps[i];
}

void portable_batched_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                                 std::size_t sb, std::size_t k) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      std::swap_ranges(amps + (b1 + sa) * k, amps + (b1 + sa + s1) * k,
                       amps + (b1 + sb) * k);
}

void portable_batched_apply_pauli_x(cplx* amps, std::size_t dim,
                                    std::size_t stride, std::size_t k) {
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    std::swap_ranges(amps + base * k, amps + (base + stride) * k,
                     amps + (base + stride) * k);
}

void portable_batched_apply_pauli_y(cplx* amps, std::size_t dim,
                                    std::size_t stride, std::size_t k) {
  const cplx i{0.0, 1.0};
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      cplx* p0 = amps + (base + off) * k;
      cplx* p1 = p0 + stride * k;
      for (std::size_t l = 0; l < k; ++l) {
        const cplx a0 = p0[l];
        const cplx a1 = p1[l];
        p0[l] = -i * a1;
        p1[l] = i * a0;
      }
    }
}

void portable_batched_apply_pauli_z(cplx* amps, std::size_t dim,
                                    std::size_t stride, std::size_t k) {
  for (std::size_t base = stride; base < dim; base += 2 * stride)
    for (std::size_t i = base * k; i < (base + stride) * k; ++i)
      amps[i] = -amps[i];
}

/// Batched dispatch: the AVX2 forms need an even lane count (two complex
/// lanes per register); otherwise -- and for Scalar/Blocked modes, where
/// the portable loop already IS the per-lane scalar reference -- the
/// portable form runs.
bool use_batched_simd(std::size_t k) {
  return resolve_path() == Path::Simd && (k % 2) == 0;
}

}  // namespace

void set_kernel_mode(KernelMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

KernelMode kernel_mode() { return g_mode.load(std::memory_order_relaxed); }

const char* simd_backend() {
  const detail::SimdVTable* t = active_simd();
  return t != nullptr ? t->name : "portable";
}

void apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
              const cplx* m) {
  const Path p = resolve_path();
  if (p == Path::Simd) {
    if (const auto* t = active_simd(); t->apply_1q != nullptr) {
      t->apply_1q(amps, dim, stride, m);
      return;
    }
  }
  // The scalar 1q loop is already the blocked enumeration (contiguous
  // runs, no skip mask), so Blocked shares it.
  scalar_apply_1q(amps, dim, stride, m);
}

void apply_2q(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb,
              const cplx* m) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_2q(amps, dim, sa, sb, m);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_2q != nullptr) {
        t->apply_2q(amps, dim, sa, sb, m);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      blocked_apply_2q(amps, dim, sa, sb, m);
      return;
  }
}

void apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride, cplx d0,
                   cplx d1) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_diag_1q(amps, dim, stride, d0, d1);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_diag_1q != nullptr) {
        t->apply_diag_1q(amps, dim, stride, d0, d1);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      blocked_apply_diag_1q(amps, dim, stride, d0, d1);
      return;
  }
}

void apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                   std::size_t sb, const cplx* d) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_diag_2q(amps, dim, sa, sb, d);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_diag_2q != nullptr) {
        t->apply_diag_2q(amps, dim, sa, sb, d);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      blocked_apply_diag_2q(amps, dim, sa, sb, d);
      return;
  }
}

void apply_cx(cplx* amps, std::size_t dim, std::size_t sc, std::size_t st) {
  // Pure data movement: the blocked swap_ranges form auto-vectorizes, so
  // no ISA-specific variant exists.
  if (resolve_path() == Path::Scalar)
    scalar_apply_cx(amps, dim, sc, st);
  else
    blocked_apply_cx(amps, dim, sc, st);
}

void apply_cz(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_cz(amps, dim, sa, sb);
  else
    blocked_apply_cz(amps, dim, sa, sb);
}

void apply_swap(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_swap(amps, dim, sa, sb);
  else
    blocked_apply_swap(amps, dim, sa, sb);
}

void apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_pauli_x(amps, dim, stride);
  else
    blocked_apply_pauli_x(amps, dim, stride);
}

void apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_pauli_y(amps, dim, stride);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_pauli_y != nullptr) {
        t->apply_pauli_y(amps, dim, stride);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      scalar_apply_pauli_y(amps, dim, stride);  // already blocked form
      return;
  }
}

void apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_pauli_z(amps, dim, stride);
  else
    blocked_apply_pauli_z(amps, dim, stride);
}

// ---- Batched dispatch ------------------------------------------------------

void batched_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                      std::size_t k, const cplx* m) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_1q != nullptr) {
      t->batched_apply_1q(amps, dim, stride, k, m);
      return;
    }
  }
  portable_batched_apply_1q(amps, dim, stride, k, m);
}

namespace {

void portable_batched_apply_1q_pair(cplx* amps, std::size_t dim,
                                    std::size_t sa, const cplx* m_a,
                                    std::size_t sb, const cplx* m_b,
                                    std::size_t k) {
  // Enumerate rows with both the sa and sb bits clear; each names the
  // 4-row block the two butterflies close over. Per lane the arithmetic
  // below is expression-for-expression two portable_batched_apply_1q
  // passes (gate A then gate B) with the intermediates kept in locals.
  const std::size_t hi = sa > sb ? sa : sb;
  const std::size_t lo = sa > sb ? sb : sa;
  for (std::size_t base = 0; base < dim; base += 2 * hi) {
    for (std::size_t mid = base; mid < base + hi; mid += 2 * lo) {
      for (std::size_t off = 0; off < lo; ++off) {
        const std::size_t row = mid + off;
        cplx* p00 = amps + row * k;
        cplx* p01 = p00 + sb * k;
        cplx* p10 = p00 + sa * k;
        cplx* p11 = p10 + sb * k;
        for (std::size_t l = 0; l < k; ++l) {
          const cplx a00 = p00[l];
          const cplx a01 = p01[l];
          const cplx a10 = p10[l];
          const cplx a11 = p11[l];
          // Gate A: stride-sa pairs (a00, a10) and (a01, a11).
          const cplx b00 = m_a[0 * k + l] * a00 + m_a[1 * k + l] * a10;
          const cplx b10 = m_a[2 * k + l] * a00 + m_a[3 * k + l] * a10;
          const cplx b01 = m_a[0 * k + l] * a01 + m_a[1 * k + l] * a11;
          const cplx b11 = m_a[2 * k + l] * a01 + m_a[3 * k + l] * a11;
          // Gate B: stride-sb pairs (b00, b01) and (b10, b11).
          p00[l] = m_b[0 * k + l] * b00 + m_b[1 * k + l] * b01;
          p01[l] = m_b[2 * k + l] * b00 + m_b[3 * k + l] * b01;
          p10[l] = m_b[0 * k + l] * b10 + m_b[1 * k + l] * b11;
          p11[l] = m_b[2 * k + l] * b10 + m_b[3 * k + l] * b11;
        }
      }
    }
  }
}


}  // namespace

void batched_apply_1q_pair(cplx* amps, std::size_t dim, std::size_t sa,
                           const cplx* m_a, std::size_t sb, const cplx* m_b,
                           std::size_t k) {
  if (sa == sb)
    throw std::invalid_argument(
        "batched_apply_1q_pair: gates must act on distinct qubits");
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_1q_pair != nullptr) {
      t->batched_apply_1q_pair(amps, dim, sa, m_a, sb, m_b, k);
      return;
    }
  }
  portable_batched_apply_1q_pair(amps, dim, sa, m_a, sb, m_b, k);
}

void batched_apply_1q_pair_run(cplx* amps, std::size_t dim,
                               const BatchedPairOp* pairs, std::size_t count,
                               std::size_t k) {
  if (count > kMaxPairRun)
    throw std::invalid_argument("batched_apply_1q_pair_run: run too long");
  for (std::size_t p = 0; p < count; ++p)
    if (pairs[p].sa == pairs[p].sb)
      throw std::invalid_argument(
          "batched_apply_1q_pair_run: gates must act on distinct qubits");
  if (count > 0 && use_batched_simd(k)) {
    if (const auto* t = active_simd();
        t->batched_apply_1q_pair_run != nullptr) {
      t->batched_apply_1q_pair_run(amps, dim, pairs, count, k);
      return;
    }
  }
  // Pair-at-a-time reference form (the tiled kernel's bitwise oracle).
  for (std::size_t p = 0; p < count; ++p)
    portable_batched_apply_1q_pair(amps, dim, pairs[p].sa, pairs[p].m_a,
                                   pairs[p].sb, pairs[p].m_b, k);
}


void batched_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb, std::size_t k, const cplx* m) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_2q != nullptr) {
      t->batched_apply_2q(amps, dim, sa, sb, k, m);
      return;
    }
  }
  portable_batched_apply_2q(amps, dim, sa, sb, k, m);
}

void batched_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k, const cplx* d) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_diag_1q != nullptr) {
      t->batched_apply_diag_1q(amps, dim, stride, k, d);
      return;
    }
  }
  portable_batched_apply_diag_1q(amps, dim, stride, k, d);
}

void batched_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                           std::size_t sb, std::size_t k, const cplx* d) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_diag_2q != nullptr) {
      t->batched_apply_diag_2q(amps, dim, sa, sb, k, d);
      return;
    }
  }
  portable_batched_apply_diag_2q(amps, dim, sa, sb, k, d);
}

void batched_apply_diag_run(cplx* amps, std::size_t dim,
                            const BatchedDiagOp* ops, std::size_t count,
                            std::size_t k) {
  if (count == 0) return;
  if (count > kMaxDiagRun)
    throw std::invalid_argument("batched_apply_diag_run: run too long");
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_diag_run != nullptr) {
      t->batched_apply_diag_run(amps, dim, ops, count, k);
      return;
    }
  }
  portable_batched_apply_diag_run(amps, dim, ops, count, k);
}

void batched_apply_diag_run_then_1q_pair(cplx* amps, std::size_t dim,
                                         const BatchedDiagOp* ops,
                                         std::size_t count, std::size_t sa,
                                         const cplx* m_a, std::size_t sb,
                                         const cplx* m_b, std::size_t k) {
  if (count > kMaxDiagRun)
    throw std::invalid_argument(
        "batched_apply_diag_run_then_1q_pair: run too long");
  if (sa == sb)
    throw std::invalid_argument(
        "batched_apply_diag_run_then_1q_pair: gates must act on distinct "
        "qubits");
  if (count > 0 && use_batched_simd(k)) {
    if (const auto* t = active_simd();
        t->batched_apply_diag_run_then_1q_pair != nullptr) {
      t->batched_apply_diag_run_then_1q_pair(amps, dim, ops, count, sa, m_a,
                                             sb, m_b, k);
      return;
    }
  }
  // Two-pass reference form (the fused kernel's bit-exactness oracle).
  batched_apply_diag_run(amps, dim, ops, count, k);
  batched_apply_1q_pair(amps, dim, sa, m_a, sb, m_b, k);
}

void batched_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                      std::size_t st, std::size_t k) {
  // Pure data movement; the swap_ranges form auto-vectorizes.
  portable_batched_apply_cx(amps, dim, sc, st, k);
}

void batched_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb, std::size_t k) {
  portable_batched_apply_cz(amps, dim, sa, sb, k);
}

void batched_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                        std::size_t sb, std::size_t k) {
  portable_batched_apply_swap(amps, dim, sa, sb, k);
}

void batched_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k) {
  portable_batched_apply_pauli_x(amps, dim, stride, k);
}

void batched_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_apply_pauli_y != nullptr) {
      t->batched_apply_pauli_y(amps, dim, stride, k);
      return;
    }
  }
  portable_batched_apply_pauli_y(amps, dim, stride, k);
}

void batched_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride,
                           std::size_t k) {
  portable_batched_apply_pauli_z(amps, dim, stride, k);
}

// ---- Single-lane kernels ---------------------------------------------------
// One trajectory lane of the SoA buffer; same (base, off) enumeration
// and per-element expressions as the scalar pauli loops above, with
// every row index scaled by k and offset by the lane.

void lane_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride,
                        std::size_t k, std::size_t lane) {
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      std::swap(amps[i0 * k + lane], amps[(i0 + stride) * k + lane]);
    }
}

void lane_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride,
                        std::size_t k, std::size_t lane) {
  const cplx i{0.0, 1.0};
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      cplx* p0 = amps + (base + off) * k + lane;
      cplx* p1 = p0 + stride * k;
      const cplx a0 = *p0;
      const cplx a1 = *p1;
      *p0 = -i * a1;
      *p1 = i * a0;
    }
}

void lane_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride,
                        std::size_t k, std::size_t lane) {
  for (std::size_t base = stride; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      cplx& a = amps[(base + off) * k + lane];
      a = -a;
    }
}

// ---- Trajectory-noise weight / renormalization kernels ---------------------

namespace {

/// Largest lane count the batched weight/norm accumulators size for
/// (BatchedStatevector::kMaxLanes; kernels.hpp keeps no dependency on
/// the statevector headers).
constexpr std::size_t kMaxWeightLanes = 32;

/// Weight-pass structure classes (see kernels.hpp): the relaxation
/// channels' Kraus operators are real diagonal (thermal K0, phase
/// damping) or real upper-anti-diagonal (amplitude damping). Exact-zero
/// tests, so every form and ISA classifies identically; dropping a
/// structurally-zero product cannot change even a zero sign here, since
/// each dropped term is squared or added to a square.
enum class KrausForm { kRealDiag, kRealUpper, kDense };

KrausForm classify_kraus(const cplx* m) {
  const bool real = m[0].imag() == 0.0 && m[1].imag() == 0.0 &&
                    m[2].imag() == 0.0 && m[3].imag() == 0.0;
  if (real && m[1] == cplx{} && m[2] == cplx{}) return KrausForm::kRealDiag;
  if (real && m[0] == cplx{} && m[2] == cplx{} && m[3] == cplx{})
    return KrausForm::kRealUpper;
  return KrausForm::kDense;
}

// Per-element weight terms, one per form. These inline helpers ARE the
// reference expression trees: the scalar and batched portable passes
// call them verbatim, and the AVX2 forms mirror them vector-op for
// scalar-op (commuted multiplication operands only).
inline double kraus_term_dense(const double* c, cplx a0, cplx a1) {
  // c = {m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i}
  const double a0r = a0.real(), a0i = a0.imag();
  const double a1r = a1.real(), a1i = a1.imag();
  const double b0r = (c[0] * a0r - c[1] * a0i) + (c[2] * a1r - c[3] * a1i);
  const double b0i = (c[0] * a0i + c[1] * a0r) + (c[2] * a1i + c[3] * a1r);
  const double b1r = (c[4] * a0r - c[5] * a0i) + (c[6] * a1r - c[7] * a1i);
  const double b1i = (c[4] * a0i + c[5] * a0r) + (c[6] * a1i + c[7] * a1r);
  return (b0r * b0r + b0i * b0i) + (b1r * b1r + b1i * b1i);
}

inline double kraus_term_real_diag(double m00, double m11, cplx a0, cplx a1) {
  const double b0r = m00 * a0.real(), b0i = m00 * a0.imag();
  const double b1r = m11 * a1.real(), b1i = m11 * a1.imag();
  return (b0r * b0r + b0i * b0i) + (b1r * b1r + b1i * b1i);
}

inline double kraus_term_real_upper(double m01, cplx a1) {
  const double b0r = m01 * a1.real(), b0i = m01 * a1.imag();
  return b0r * b0r + b0i * b0i;
}

template <typename Term>
double kraus_weight_loop(const cplx* amps, std::size_t dim,
                         std::size_t stride, Term term) {
  double w = 0.0;
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off)
      w += term(amps[base + off], amps[base + off + stride]);
  return w;
}

template <typename Term>
void batched_kraus_weight_loop(const cplx* amps, std::size_t dim,
                               std::size_t stride, std::size_t k, double* w,
                               Term term) {
  std::array<double, kMaxWeightLanes> acc{};
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      const cplx* r0 = amps + (base + off) * k;
      const cplx* r1 = r0 + stride * k;
      for (std::size_t l = 0; l < k; ++l) acc[l] += term(r0[l], r1[l]);
    }
  for (std::size_t l = 0; l < k; ++l) w[l] = acc[l];
}

void portable_batched_kraus_weight(const cplx* amps, std::size_t dim,
                                   std::size_t stride, std::size_t k,
                                   const cplx* m, double* w) {
  switch (classify_kraus(m)) {
    case KrausForm::kRealDiag: {
      const double m00 = m[0].real(), m11 = m[3].real();
      batched_kraus_weight_loop(amps, dim, stride, k, w,
                                [=](cplx a0, cplx a1) {
                                  return kraus_term_real_diag(m00, m11, a0,
                                                              a1);
                                });
      return;
    }
    case KrausForm::kRealUpper: {
      const double m01 = m[1].real();
      batched_kraus_weight_loop(
          amps, dim, stride, k, w,
          [=](cplx, cplx a1) { return kraus_term_real_upper(m01, a1); });
      return;
    }
    case KrausForm::kDense: {
      const double c[8] = {m[0].real(), m[0].imag(), m[1].real(), m[1].imag(),
                           m[2].real(), m[2].imag(), m[3].real(), m[3].imag()};
      batched_kraus_weight_loop(
          amps, dim, stride, k, w,
          [&](cplx a0, cplx a1) { return kraus_term_dense(c, a0, a1); });
      return;
    }
  }
}

void portable_batched_norms(const cplx* amps, std::size_t dim, std::size_t k,
                            double* sums) {
  std::array<double, kMaxWeightLanes> acc{};
  for (std::size_t i = 0; i < dim; ++i) {
    const cplx* row = amps + i * k;
    for (std::size_t l = 0; l < k; ++l) acc[l] += std::norm(row[l]);
  }
  for (std::size_t l = 0; l < k; ++l) sums[l] = acc[l];
}

void portable_batched_scale(cplx* amps, std::size_t dim, std::size_t k,
                            const double* scale) {
  for (std::size_t i = 0; i < dim; ++i) {
    cplx* row = amps + i * k;
    for (std::size_t l = 0; l < k; ++l) row[l] *= scale[l];
  }
}

}  // namespace

double kraus_weight(const cplx* amps, std::size_t dim, std::size_t stride,
                    const cplx* m) {
  // Single accumulator chain: no SIMD form (vectorizing the sum would
  // re-associate it); the structural shortcuts carry the speedup.
  switch (classify_kraus(m)) {
    case KrausForm::kRealDiag: {
      const double m00 = m[0].real(), m11 = m[3].real();
      return kraus_weight_loop(amps, dim, stride, [=](cplx a0, cplx a1) {
        return kraus_term_real_diag(m00, m11, a0, a1);
      });
    }
    case KrausForm::kRealUpper: {
      const double m01 = m[1].real();
      return kraus_weight_loop(amps, dim, stride, [=](cplx, cplx a1) {
        return kraus_term_real_upper(m01, a1);
      });
    }
    case KrausForm::kDense:
    default: {
      const double c[8] = {m[0].real(), m[0].imag(), m[1].real(), m[1].imag(),
                           m[2].real(), m[2].imag(), m[3].real(), m[3].imag()};
      return kraus_weight_loop(amps, dim, stride, [&](cplx a0, cplx a1) {
        return kraus_term_dense(c, a0, a1);
      });
    }
  }
}

void batched_kraus_weight(const cplx* amps, std::size_t dim,
                          std::size_t stride, std::size_t k, const cplx* m,
                          double* w) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_kraus_weight != nullptr) {
      t->batched_kraus_weight(amps, dim, stride, k, m, w);
      return;
    }
  }
  portable_batched_kraus_weight(amps, dim, stride, k, m, w);
}

void batched_norms(const cplx* amps, std::size_t dim, std::size_t k,
                   double* sums) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_norms != nullptr) {
      t->batched_norms(amps, dim, k, sums);
      return;
    }
  }
  portable_batched_norms(amps, dim, k, sums);
}

void batched_scale(cplx* amps, std::size_t dim, std::size_t k,
                   const double* scale) {
  if (use_batched_simd(k)) {
    if (const auto* t = active_simd(); t->batched_scale != nullptr) {
      t->batched_scale(amps, dim, k, scale);
      return;
    }
  }
  portable_batched_scale(amps, dim, k, scale);
}

}  // namespace qoc::sim::kernels
