// Statevector kernel dispatch: scalar reference loops (the parity oracle)
// and the portable blocked implementations. This TU and kernels_avx2.cpp
// are compiled with -ffp-contract=off so every mode performs literally
// the same IEEE operations (see the contract in kernels.hpp).

#include "qoc/sim/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace qoc::sim::kernels {

namespace {

std::atomic<KernelMode> g_mode{KernelMode::Auto};

/// The active SIMD table: compiled in AND supported by this CPU.
const detail::SimdVTable* active_simd() {
  static const detail::SimdVTable* table = [] {
    const detail::SimdVTable* t = detail::avx2_vtable();
#if defined(__x86_64__) || defined(__i386__)
    if (t != nullptr && __builtin_cpu_supports("avx2")) return t;
#endif
    return static_cast<const detail::SimdVTable*>(nullptr);
  }();
  return table;
}

enum class Path { Scalar, Blocked, Simd };

Path resolve_path() {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case KernelMode::Scalar:
      return Path::Scalar;
    case KernelMode::Blocked:
      return Path::Blocked;
    case KernelMode::Simd:
    case KernelMode::Auto:
      return active_simd() ? Path::Simd : Path::Blocked;
  }
  return Path::Blocked;
}

// ---- Scalar reference ------------------------------------------------------
// These are the pre-SIMD Statevector loops, verbatim. They define the
// arithmetic every other path must reproduce bit-for-bit.

void scalar_apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
                     const cplx* m) {
  const cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const cplx a0 = amps[i0];
      const cplx a1 = amps[i1];
      amps[i0] = m00 * a0 + m01 * a1;
      amps[i1] = m10 * a0 + m11 * a1;
    }
  }
}

void scalar_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                     std::size_t sb, const cplx* m) {
  const std::size_t mask = sa | sb;
  for (std::size_t i = 0; i < dim; ++i) {
    if (i & mask) continue;  // visit each group once, via its 00 member
    const std::size_t i00 = i;
    const std::size_t i01 = i | sb;
    const std::size_t i10 = i | sa;
    const std::size_t i11 = i | sa | sb;
    const cplx a00 = amps[i00], a01 = amps[i01], a10 = amps[i10],
               a11 = amps[i11];
    amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void scalar_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                          cplx d0, cplx d1) {
  for (std::size_t i = 0; i < dim; ++i)
    amps[i] = ((i & stride) ? d1 : d0) * amps[i];
}

void scalar_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                          std::size_t sb, const cplx* d) {
  for (std::size_t i = 0; i < dim; ++i) {
    const std::size_t idx = (((i & sa) ? 2u : 0u) | ((i & sb) ? 1u : 0u));
    amps[i] = d[idx] * amps[i];
  }
}

void scalar_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                     std::size_t st) {
  for (std::size_t i = 0; i < dim; ++i)
    if ((i & sc) && !(i & st)) std::swap(amps[i], amps[i | st]);
}

void scalar_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                     std::size_t sb) {
  const std::size_t both = sa | sb;
  for (std::size_t i = 0; i < dim; ++i)
    if ((i & both) == both) amps[i] = -amps[i];
}

void scalar_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                       std::size_t sb) {
  for (std::size_t i = 0; i < dim; ++i)
    if ((i & sa) && !(i & sb)) std::swap(amps[i], amps[(i ^ sa) | sb]);
}

void scalar_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off)
      std::swap(amps[base + off], amps[base + off + stride]);
}

void scalar_apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride) {
  const cplx i{0.0, 1.0};
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const cplx a0 = amps[i0];
      const cplx a1 = amps[i1];
      amps[i0] = -i * a1;
      amps[i1] = i * a0;
    }
}

void scalar_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = stride; base < dim; base += 2 * stride)
    for (std::size_t off = 0; off < stride; ++off)
      amps[base + off] = -amps[base + off];
}

// ---- Portable blocked ------------------------------------------------------
// Group enumeration by nested base blocks: the inner index runs over the
// bits below the smallest operand stride, so every memory access is a
// contiguous run and the skip-mask branch of the scalar 2q/diag/cz loops
// disappears. Per-element arithmetic is written with the exact same
// complex expressions as the scalar reference.

void blocked_apply_2q(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb, const cplx* m) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) {
        const std::size_t i01 = i + sb;
        const std::size_t i10 = i + sa;
        const std::size_t i11 = i + sa + sb;
        const cplx a00 = amps[i], a01 = amps[i01], a10 = amps[i10],
                   a11 = amps[i11];
        amps[i] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
        amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
        amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
        amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
      }
    }
  }
}

void blocked_apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride,
                           cplx d0, cplx d1) {
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) amps[i] = d0 * amps[i];
    for (std::size_t i = base + stride; i < base + 2 * stride; ++i)
      amps[i] = d1 * amps[i];
  }
}

void blocked_apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                           std::size_t sb, const cplx* d) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2) {
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1) {
      for (std::size_t i = b1; i < b1 + s1; ++i) amps[i] = d[0] * amps[i];
      for (std::size_t i = b1 + sb; i < b1 + sb + s1; ++i)
        amps[i] = d[1] * amps[i];
      for (std::size_t i = b1 + sa; i < b1 + sa + s1; ++i)
        amps[i] = d[2] * amps[i];
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; ++i)
        amps[i] = d[3] * amps[i];
    }
  }
}

void blocked_apply_cx(cplx* amps, std::size_t dim, std::size_t sc,
                      std::size_t st) {
  const std::size_t s1 = std::min(sc, st);
  const std::size_t s2 = std::max(sc, st);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      std::swap_ranges(amps + b1 + sc, amps + b1 + sc + s1,
                       amps + b1 + sc + st);
}

void blocked_apply_cz(cplx* amps, std::size_t dim, std::size_t sa,
                      std::size_t sb) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      for (std::size_t i = b1 + sa + sb; i < b1 + sa + sb + s1; ++i)
        amps[i] = -amps[i];
}

void blocked_apply_swap(cplx* amps, std::size_t dim, std::size_t sa,
                        std::size_t sb) {
  const std::size_t s1 = std::min(sa, sb);
  const std::size_t s2 = std::max(sa, sb);
  for (std::size_t b2 = 0; b2 < dim; b2 += 2 * s2)
    for (std::size_t b1 = b2; b1 < b2 + s2; b1 += 2 * s1)
      std::swap_ranges(amps + b1 + sa, amps + b1 + sa + s1, amps + b1 + sb);
}

void blocked_apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = 0; base < dim; base += 2 * stride)
    std::swap_ranges(amps + base, amps + base + stride, amps + base + stride);
}

void blocked_apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride) {
  for (std::size_t base = stride; base < dim; base += 2 * stride)
    for (std::size_t i = base; i < base + stride; ++i) amps[i] = -amps[i];
}

}  // namespace

void set_kernel_mode(KernelMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

KernelMode kernel_mode() { return g_mode.load(std::memory_order_relaxed); }

const char* simd_backend() {
  const detail::SimdVTable* t = active_simd();
  return t != nullptr ? t->name : "portable";
}

void apply_1q(cplx* amps, std::size_t dim, std::size_t stride,
              const cplx* m) {
  const Path p = resolve_path();
  if (p == Path::Simd) {
    if (const auto* t = active_simd(); t->apply_1q != nullptr) {
      t->apply_1q(amps, dim, stride, m);
      return;
    }
  }
  // The scalar 1q loop is already the blocked enumeration (contiguous
  // runs, no skip mask), so Blocked shares it.
  scalar_apply_1q(amps, dim, stride, m);
}

void apply_2q(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb,
              const cplx* m) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_2q(amps, dim, sa, sb, m);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_2q != nullptr) {
        t->apply_2q(amps, dim, sa, sb, m);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      blocked_apply_2q(amps, dim, sa, sb, m);
      return;
  }
}

void apply_diag_1q(cplx* amps, std::size_t dim, std::size_t stride, cplx d0,
                   cplx d1) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_diag_1q(amps, dim, stride, d0, d1);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_diag_1q != nullptr) {
        t->apply_diag_1q(amps, dim, stride, d0, d1);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      blocked_apply_diag_1q(amps, dim, stride, d0, d1);
      return;
  }
}

void apply_diag_2q(cplx* amps, std::size_t dim, std::size_t sa,
                   std::size_t sb, const cplx* d) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_diag_2q(amps, dim, sa, sb, d);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_diag_2q != nullptr) {
        t->apply_diag_2q(amps, dim, sa, sb, d);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      blocked_apply_diag_2q(amps, dim, sa, sb, d);
      return;
  }
}

void apply_cx(cplx* amps, std::size_t dim, std::size_t sc, std::size_t st) {
  // Pure data movement: the blocked swap_ranges form auto-vectorizes, so
  // no ISA-specific variant exists.
  if (resolve_path() == Path::Scalar)
    scalar_apply_cx(amps, dim, sc, st);
  else
    blocked_apply_cx(amps, dim, sc, st);
}

void apply_cz(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_cz(amps, dim, sa, sb);
  else
    blocked_apply_cz(amps, dim, sa, sb);
}

void apply_swap(cplx* amps, std::size_t dim, std::size_t sa, std::size_t sb) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_swap(amps, dim, sa, sb);
  else
    blocked_apply_swap(amps, dim, sa, sb);
}

void apply_pauli_x(cplx* amps, std::size_t dim, std::size_t stride) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_pauli_x(amps, dim, stride);
  else
    blocked_apply_pauli_x(amps, dim, stride);
}

void apply_pauli_y(cplx* amps, std::size_t dim, std::size_t stride) {
  switch (resolve_path()) {
    case Path::Scalar:
      scalar_apply_pauli_y(amps, dim, stride);
      return;
    case Path::Simd:
      if (const auto* t = active_simd(); t->apply_pauli_y != nullptr) {
        t->apply_pauli_y(amps, dim, stride);
        return;
      }
      [[fallthrough]];
    case Path::Blocked:
      scalar_apply_pauli_y(amps, dim, stride);  // already blocked form
      return;
  }
}

void apply_pauli_z(cplx* amps, std::size_t dim, std::size_t stride) {
  if (resolve_path() == Path::Scalar)
    scalar_apply_pauli_z(amps, dim, stride);
  else
    blocked_apply_pauli_z(amps, dim, stride);
}

}  // namespace qoc::sim::kernels
