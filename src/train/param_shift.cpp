#include "qoc/train/param_shift.hpp"

#include <stdexcept>

#include "qoc/autodiff/loss.hpp"

namespace qoc::train {

namespace {
constexpr double kHalfPi = 1.5707963267948966;
}

circuit::Circuit with_op_offset(const circuit::Circuit& c,
                                std::size_t op_index, double delta) {
  if (op_index >= c.num_ops())
    throw std::out_of_range("with_op_offset: op index");
  circuit::Circuit out(c.num_qubits());
  for (std::size_t i = 0; i < c.num_ops(); ++i) {
    const auto& op = c.op(i);
    circuit::ParamRef p = op.param;
    if (i == op_index) {
      if (!circuit::gate_is_parameterised(op.kind))
        throw std::invalid_argument("with_op_offset: op not parameterised");
      p.value += delta;
    }
    out.add(op.kind, op.qubits, p);
  }
  return out;
}

ParameterShiftEngine::ParameterShiftEngine(backend::Backend& backend,
                                           const qml::QnnModel& model)
    : backend_(backend), model_(model) {
  const int n = model_.num_params();
  param_ops_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    param_ops_[static_cast<std::size_t>(i)] = model_.circuit().ops_for_param(i);
    for (std::size_t op_idx : param_ops_[static_cast<std::size_t>(i)]) {
      const auto& op = model_.circuit().op(op_idx);
      if (!circuit::gate_supports_parameter_shift(op.kind))
        throw std::invalid_argument(
            "ParameterShiftEngine: gate '" + circuit::gate_name(op.kind) +
            "' does not satisfy the +-1-eigenvalue parameter-shift rule");
    }
  }
}

std::vector<std::pair<int, std::size_t>> ParameterShiftEngine::shift_list(
    const std::vector<bool>* mask) const {
  std::vector<std::pair<int, std::size_t>> shifts;
  for (int i = 0; i < model_.num_params(); ++i) {
    if (mask && !(*mask)[static_cast<std::size_t>(i)]) continue;
    for (const std::size_t op_idx : param_ops_[static_cast<std::size_t>(i)])
      shifts.emplace_back(i, op_idx);
  }
  return shifts;
}

std::vector<std::vector<double>> ParameterShiftEngine::jacobian(
    std::span<const double> theta, std::span<const double> input) {
  const int n_qubits = model_.circuit().num_qubits();
  const int n_params = model_.num_params();

  // Eq. 2 for every parameter occurrence, submitted as ONE batch against
  // the model's compiled plan: +-pi/2 shifts are slot offsets, so no
  // circuit is copied and no structure is re-lowered.
  const auto shifts = shift_list(nullptr);
  std::vector<exec::Evaluation> evals;
  evals.reserve(2 * shifts.size());
  for (const auto& [i, op_idx] : shifts) {
    evals.push_back({theta, input, op_idx, kHalfPi});
    evals.push_back({theta, input, op_idx, -kHalfPi});
  }
  const auto f = backend_.run_batch(model_.plan(), evals, threads_);

  std::vector<std::vector<double>> jac(
      static_cast<std::size_t>(n_qubits),
      std::vector<double>(static_cast<std::size_t>(n_params), 0.0));
  for (std::size_t s = 0; s < shifts.size(); ++s) {
    const auto i = static_cast<std::size_t>(shifts[s].first);
    const auto& f_plus = f[2 * s];
    const auto& f_minus = f[2 * s + 1];
    for (int q = 0; q < n_qubits; ++q)
      jac[static_cast<std::size_t>(q)][i] +=
          0.5 * (f_plus[static_cast<std::size_t>(q)] -
                 f_minus[static_cast<std::size_t>(q)]);
  }
  return jac;
}

BatchGradient ParameterShiftEngine::batch_gradient(
    std::span<const double> theta, const data::Dataset& dataset,
    std::span<const std::size_t> batch, const std::vector<bool>* mask) {
  const int n_params = model_.num_params();
  if (mask && static_cast<int>(mask->size()) != n_params)
    throw std::invalid_argument("batch_gradient: mask size mismatch");
  if (batch.empty())
    throw std::invalid_argument("batch_gradient: empty batch");

  BatchGradient out;
  out.grad.assign(static_cast<std::size_t>(n_params), 0.0);
  const std::uint64_t inf_before = backend_.inference_count();

  for (const std::size_t idx : batch)
    if (idx >= dataset.size())
      throw std::out_of_range("batch_gradient: batch index");

  // One batched submission for the whole step: per example, the
  // unshifted run (loss + dL/df) followed by the +-pi/2 pair of every
  // active parameter occurrence, all against the model's compiled plan.
  // The backend fans evaluations over threads; results come back indexed,
  // so the combination below is fixed in batch order and the final
  // gradient is thread-count invariant.
  const auto shifts = shift_list(mask);
  const std::size_t per_example = 1 + 2 * shifts.size();
  std::vector<exec::Evaluation> evals;
  evals.reserve(batch.size() * per_example);
  for (const std::size_t idx : batch) {
    const auto& x = dataset.features[idx];
    evals.push_back({theta, x, exec::Evaluation::kNoShift, 0.0});
    for (const auto& [i, op_idx] : shifts) {
      evals.push_back({theta, x, op_idx, kHalfPi});
      evals.push_back({theta, x, op_idx, -kHalfPi});
    }
  }
  const auto f = backend_.run_batch(model_.plan(), evals, threads_);

  const std::size_t n_qubits =
      static_cast<std::size_t>(model_.circuit().num_qubits());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const std::size_t base = k * per_example;
    const int y = dataset.labels[batch[k]];

    // Loss + downstream gradients dL/df from the unshifted run (Fig. 4,
    // right).
    const auto logits = model_.head().forward(f[base]);
    out.loss += autodiff::cross_entropy(logits, y);
    const auto grad_logits = autodiff::cross_entropy_grad(logits, y);
    const auto grad_f = model_.head().backward(grad_logits);

    // Upstream Jacobian via parameter shift (Fig. 4, left), then the dot
    // product dL/dtheta_i = sum_q dL/df_q * df_q/dtheta_i. Occurrences of
    // one parameter are contiguous in the shift list.
    std::size_t pos = base + 1;
    std::size_t s = 0;
    while (s < shifts.size()) {
      const int i = shifts[s].first;
      std::vector<double> dfi(n_qubits, 0.0);
      while (s < shifts.size() && shifts[s].first == i) {
        const auto& f_plus = f[pos];
        const auto& f_minus = f[pos + 1];
        pos += 2;
        ++s;
        for (std::size_t q = 0; q < n_qubits; ++q)
          dfi[q] += 0.5 * (f_plus[q] - f_minus[q]);
      }
      double dot = 0.0;
      for (std::size_t q = 0; q < n_qubits; ++q) dot += grad_f[q] * dfi[q];
      out.grad[static_cast<std::size_t>(i)] += dot;
    }
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  for (auto& g : out.grad) g *= inv;
  out.loss *= inv;
  out.inferences = backend_.inference_count() - inf_before;
  return out;
}

double ParameterShiftEngine::batch_loss(std::span<const double> theta,
                                        const data::Dataset& dataset,
                                        std::span<const std::size_t> batch) {
  if (batch.empty()) throw std::invalid_argument("batch_loss: empty batch");
  for (const std::size_t idx : batch)
    if (idx >= dataset.size())
      throw std::out_of_range("batch_loss: batch index");
  std::vector<exec::Evaluation> evals(batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    evals[k].theta = theta;
    evals[k].input = dataset.features[batch[k]];
  }
  const auto f = backend_.run_batch(model_.plan(), evals, threads_);
  double loss = 0.0;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const auto logits = model_.head().forward(f[k]);
    loss += autodiff::cross_entropy(logits, dataset.labels[batch[k]]);
  }
  return loss / static_cast<double>(batch.size());
}

}  // namespace qoc::train
