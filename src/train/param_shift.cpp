#include "qoc/train/param_shift.hpp"

#include <stdexcept>

#include "qoc/autodiff/loss.hpp"
#include "qoc/common/parallel.hpp"

namespace qoc::train {

namespace {
constexpr double kHalfPi = 1.5707963267948966;
}

circuit::Circuit with_op_offset(const circuit::Circuit& c,
                                std::size_t op_index, double delta) {
  if (op_index >= c.num_ops())
    throw std::out_of_range("with_op_offset: op index");
  circuit::Circuit out(c.num_qubits());
  for (std::size_t i = 0; i < c.num_ops(); ++i) {
    const auto& op = c.op(i);
    circuit::ParamRef p = op.param;
    if (i == op_index) {
      if (!circuit::gate_is_parameterised(op.kind))
        throw std::invalid_argument("with_op_offset: op not parameterised");
      p.value += delta;
    }
    out.add(op.kind, op.qubits, p);
  }
  return out;
}

ParameterShiftEngine::ParameterShiftEngine(backend::Backend& backend,
                                           const qml::QnnModel& model)
    : backend_(backend), model_(model) {
  const int n = model_.num_params();
  param_ops_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    param_ops_[static_cast<std::size_t>(i)] = model_.circuit().ops_for_param(i);
    for (std::size_t op_idx : param_ops_[static_cast<std::size_t>(i)]) {
      const auto& op = model_.circuit().op(op_idx);
      if (!circuit::gate_supports_parameter_shift(op.kind))
        throw std::invalid_argument(
            "ParameterShiftEngine: gate '" + circuit::gate_name(op.kind) +
            "' does not satisfy the +-1-eigenvalue parameter-shift rule");
    }
  }
}

std::vector<double> ParameterShiftEngine::param_gradient(
    std::span<const double> theta, std::span<const double> input,
    int param_index) {
  const auto& ops = param_ops_[static_cast<std::size_t>(param_index)];
  std::vector<double> grad(
      static_cast<std::size_t>(model_.circuit().num_qubits()), 0.0);
  for (std::size_t op_idx : ops) {
    // Eq. 2: shift this occurrence by +-pi/2 and take half the difference.
    const auto plus_circuit = with_op_offset(model_.circuit(), op_idx, kHalfPi);
    const auto minus_circuit =
        with_op_offset(model_.circuit(), op_idx, -kHalfPi);
    const auto f_plus = backend_.run(plus_circuit, theta, input);
    const auto f_minus = backend_.run(minus_circuit, theta, input);
    for (std::size_t q = 0; q < grad.size(); ++q)
      grad[q] += 0.5 * (f_plus[q] - f_minus[q]);
  }
  return grad;
}

std::vector<std::vector<double>> ParameterShiftEngine::jacobian(
    std::span<const double> theta, std::span<const double> input) {
  const int n_qubits = model_.circuit().num_qubits();
  const int n_params = model_.num_params();
  std::vector<std::vector<double>> jac(
      static_cast<std::size_t>(n_qubits),
      std::vector<double>(static_cast<std::size_t>(n_params), 0.0));
  for (int i = 0; i < n_params; ++i) {
    const auto dfi = param_gradient(theta, input, i);
    for (int q = 0; q < n_qubits; ++q)
      jac[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] =
          dfi[static_cast<std::size_t>(q)];
  }
  return jac;
}

BatchGradient ParameterShiftEngine::batch_gradient(
    std::span<const double> theta, const data::Dataset& dataset,
    std::span<const std::size_t> batch, const std::vector<bool>* mask) {
  const int n_params = model_.num_params();
  if (mask && static_cast<int>(mask->size()) != n_params)
    throw std::invalid_argument("batch_gradient: mask size mismatch");
  if (batch.empty())
    throw std::invalid_argument("batch_gradient: empty batch");

  BatchGradient out;
  out.grad.assign(static_cast<std::size_t>(n_params), 0.0);
  const std::uint64_t inf_before = backend_.inference_count();

  for (const std::size_t idx : batch)
    if (idx >= dataset.size())
      throw std::out_of_range("batch_gradient: batch index");

  // Per-example work is independent; results are accumulated afterwards
  // in batch order so the floating-point sum is thread-count invariant.
  std::vector<double> losses(batch.size(), 0.0);
  std::vector<std::vector<double>> grads(
      batch.size(), std::vector<double>(static_cast<std::size_t>(n_params),
                                        0.0));
  auto example_gradient = [&](std::size_t k) {
    const std::size_t idx = batch[k];
    const auto& x = dataset.features[idx];
    const int y = dataset.labels[idx];

    // Unshifted run: loss + downstream gradients dL/df (Fig. 4, right).
    const auto expvals = backend_.run(model_.circuit(), theta, x);
    const auto logits = model_.head().forward(expvals);
    losses[k] = autodiff::cross_entropy(logits, y);
    const auto grad_logits = autodiff::cross_entropy_grad(logits, y);
    const auto grad_f = model_.head().backward(grad_logits);

    // Upstream Jacobian via parameter shift, masked (Fig. 4, left), then
    // the dot product dL/dtheta_i = sum_q dL/df_q * df_q/dtheta_i.
    for (int i = 0; i < n_params; ++i) {
      if (mask && !(*mask)[static_cast<std::size_t>(i)]) continue;
      const auto dfi = param_gradient(theta, x, i);
      double dot = 0.0;
      for (std::size_t q = 0; q < dfi.size(); ++q) dot += grad_f[q] * dfi[q];
      grads[k][static_cast<std::size_t>(i)] = dot;
    }
  };
  if (threads_ == 1) {
    for (std::size_t k = 0; k < batch.size(); ++k) example_gradient(k);
  } else {
    parallel_for(0, batch.size(), example_gradient, threads_);
  }

  for (std::size_t k = 0; k < batch.size(); ++k) {
    out.loss += losses[k];
    for (std::size_t i = 0; i < out.grad.size(); ++i)
      out.grad[i] += grads[k][i];
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  for (auto& g : out.grad) g *= inv;
  out.loss *= inv;
  out.inferences = backend_.inference_count() - inf_before;
  return out;
}

double ParameterShiftEngine::batch_loss(std::span<const double> theta,
                                        const data::Dataset& dataset,
                                        std::span<const std::size_t> batch) {
  if (batch.empty()) throw std::invalid_argument("batch_loss: empty batch");
  double loss = 0.0;
  for (const std::size_t idx : batch) {
    const auto expvals = backend_.run(model_.circuit(), theta,
                                      dataset.features[idx]);
    const auto logits = model_.head().forward(expvals);
    loss += autodiff::cross_entropy(logits, dataset.labels[idx]);
  }
  return loss / static_cast<double>(batch.size());
}

}  // namespace qoc::train
