#include "qoc/train/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace qoc::train {

namespace {

void check_sizes(const std::vector<double>& theta,
                 std::span<const double> grad,
                 const std::vector<bool>* mask) {
  if (grad.size() != theta.size())
    throw std::invalid_argument("Optimizer::step: grad size mismatch");
  if (mask && mask->size() != theta.size())
    throw std::invalid_argument("Optimizer::step: mask size mismatch");
}

bool active(const std::vector<bool>* mask, std::size_t i) {
  return mask == nullptr || (*mask)[i];
}

}  // namespace

void Sgd::do_step(std::vector<double>& theta, std::span<const double> grad,
               const std::vector<bool>* mask) {
  check_sizes(theta, grad, mask);
  for (std::size_t i = 0; i < theta.size(); ++i)
    if (active(mask, i)) theta[i] -= lr_ * grad[i];
}

void Momentum::do_step(std::vector<double>& theta, std::span<const double> grad,
                    const std::vector<bool>* mask) {
  check_sizes(theta, grad, mask);
  if (velocity_.size() != theta.size()) velocity_.assign(theta.size(), 0.0);
  for (std::size_t i = 0; i < theta.size(); ++i) {
    if (!active(mask, i)) continue;
    velocity_[i] = momentum_ * velocity_[i] + grad[i];
    theta[i] -= lr_ * velocity_[i];
  }
}

void Adam::do_step(std::vector<double>& theta, std::span<const double> grad,
                const std::vector<bool>* mask) {
  check_sizes(theta, grad, mask);
  if (m_.size() != theta.size()) {
    m_.assign(theta.size(), 0.0);
    v_.assign(theta.size(), 0.0);
    t_.assign(theta.size(), 0);
  }
  for (std::size_t i = 0; i < theta.size(); ++i) {
    if (!active(mask, i)) continue;
    ++t_[i];
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / (1.0 - std::pow(beta1_, t_[i]));
    const double v_hat = v_[i] / (1.0 - std::pow(beta2_, t_[i]));
    theta[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double lr) {
  switch (kind) {
    case OptimizerKind::Sgd: return std::make_unique<Sgd>(lr);
    case OptimizerKind::Momentum: return std::make_unique<Momentum>(lr);
    case OptimizerKind::Adam: return std::make_unique<Adam>(lr);
  }
  throw std::logic_error("make_optimizer: unknown kind");
}

std::string optimizer_name(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::Sgd: return "sgd";
    case OptimizerKind::Momentum: return "momentum";
    case OptimizerKind::Adam: return "adam";
  }
  return "?";
}

CosineScheduler::CosineScheduler(double lr_start, double lr_end,
                                 int total_steps)
    : lr_start_(lr_start), lr_end_(lr_end), total_steps_(total_steps) {
  if (total_steps < 1)
    throw std::invalid_argument("CosineScheduler: total_steps < 1");
}

double CosineScheduler::at(int step) const {
  if (step < 0) step = 0;
  if (step > total_steps_) step = total_steps_;
  const double frac = static_cast<double>(step) / total_steps_;
  return lr_end_ +
         0.5 * (lr_start_ - lr_end_) * (1.0 + std::cos(3.14159265358979 * frac));
}

}  // namespace qoc::train
