#include "qoc/train/training_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace qoc::train {

void TrainingConfig::validate() const {
  if (steps < 1) throw std::invalid_argument("TrainingConfig: steps < 1");
  if (batch_size == 0)
    throw std::invalid_argument("TrainingConfig: batch_size == 0");
  if (lr_start <= 0.0 || lr_end < 0.0)
    throw std::invalid_argument("TrainingConfig: bad learning rates");
  if (eval_every < 0)
    throw std::invalid_argument("TrainingConfig: eval_every < 0");
  if (use_pruning) pruner.validate();
}

TrainingEngine::TrainingEngine(const qml::QnnModel& model,
                               backend::Backend& train_backend,
                               backend::Backend& eval_backend,
                               const data::Dataset& train,
                               const data::Dataset& val,
                               TrainingConfig config)
    : model_(model), train_backend_(train_backend),
      eval_backend_(eval_backend), train_(train), val_(val),
      config_(config) {
  config_.validate();
  train_.validate();
  val_.validate();
  if (train_.feature_dim() != static_cast<std::size_t>(model_.num_inputs()))
    throw std::invalid_argument(
        "TrainingEngine: dataset feature dim does not match model inputs");
}

double TrainingEngine::evaluate(std::span<const double> theta, Prng& rng) {
  const data::Dataset* eval_set = &val_;
  data::Dataset subsampled;
  if (config_.max_eval_examples > 0 &&
      val_.size() > config_.max_eval_examples) {
    subsampled = val_.sample(config_.max_eval_examples, rng);
    eval_set = &subsampled;
  }
  return model_.accuracy(eval_backend_, theta, *eval_set, config_.threads);
}

TrainingResult TrainingEngine::run(std::vector<double> theta_init) {
  Prng rng(config_.seed);
  std::vector<double> theta = theta_init.empty()
                                  ? model_.init_params(rng)
                                  : std::move(theta_init);
  if (static_cast<int>(theta.size()) != model_.num_params())
    throw std::invalid_argument("TrainingEngine::run: theta size mismatch");

  ParameterShiftEngine shift_engine(train_backend_, model_);
  shift_engine.set_threads(config_.threads);
  auto optimizer = make_optimizer(config_.optimizer, config_.lr_start);
  CosineScheduler scheduler(config_.lr_start, config_.lr_end, config_.steps);
  data::BatchSampler sampler(train_, config_.batch_size, rng());

  // Pruning disabled == one infinite accumulation phase.
  PrunerConfig pcfg = config_.pruner;
  if (!config_.use_pruning) {
    pcfg = PrunerConfig{};
    pcfg.pruning_window = 0;
    pcfg.ratio = 0.0;
  }
  GradientPruner pruner(model_.num_params(), pcfg, rng());

  TrainingResult result;
  Prng eval_rng(rng());

  for (int step = 1; step <= config_.steps; ++step) {
    optimizer->set_learning_rate(scheduler.at(step - 1));

    const auto batch = sampler.next();
    const auto mask = pruner.next_mask();

    const BatchGradient bg =
        shift_engine.batch_gradient(theta, train_, batch, &mask);
    pruner.observe(bg.grad);
    optimizer->step(theta, bg.grad, &mask);

    const bool eval_now =
        (config_.eval_every > 0 && step % config_.eval_every == 0) ||
        step == config_.steps;
    if (eval_now) {
      TrainingRecord rec;
      rec.step = step;
      rec.inferences = train_backend_.inference_count();
      rec.train_loss = bg.loss;
      rec.val_accuracy = evaluate(theta, eval_rng);
      rec.learning_rate = optimizer->learning_rate();
      result.best_val_accuracy =
          std::max(result.best_val_accuracy, rec.val_accuracy);
      if (step_callback_) step_callback_(rec);
      result.history.push_back(rec);
    }
  }

  result.theta = std::move(theta);
  result.final_val_accuracy =
      result.history.empty() ? 0.0 : result.history.back().val_accuracy;
  result.total_inferences = train_backend_.inference_count();
  return result;
}

}  // namespace qoc::train
