#include "qoc/train/checkpoint.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace qoc::train {

void save_theta(const std::string& path, const std::vector<double>& theta) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_theta: cannot open " + path);
  out << "qoc-theta v1 " << theta.size() << "\n";
  out << std::setprecision(17);
  for (const double t : theta) out << t << "\n";
  if (!out) throw std::runtime_error("save_theta: write failed for " + path);
}

std::vector<double> load_theta(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_theta: cannot open " + path);
  std::string magic, version;
  std::size_t n = 0;
  in >> magic >> version >> n;
  if (!in || magic != "qoc-theta" || version != "v1")
    throw std::runtime_error("load_theta: bad header in " + path);
  std::vector<double> theta(n);
  for (auto& t : theta) {
    in >> t;
    if (!in) throw std::runtime_error("load_theta: truncated file " + path);
  }
  return theta;
}

void save_history_csv(const std::string& path,
                      const std::vector<TrainingRecord>& history) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_history_csv: cannot open " + path);
  out << "step,inferences,train_loss,val_accuracy,learning_rate\n";
  out << std::setprecision(10);
  for (const auto& rec : history)
    out << rec.step << ',' << rec.inferences << ',' << rec.train_loss << ','
        << rec.val_accuracy << ',' << rec.learning_rate << "\n";
  if (!out)
    throw std::runtime_error("save_history_csv: write failed for " + path);
}

}  // namespace qoc::train
