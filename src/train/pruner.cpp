#include "qoc/train/pruner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace qoc::train {

void PrunerConfig::validate() const {
  if (accumulation_window < 1)
    throw std::invalid_argument("PrunerConfig: accumulation_window < 1");
  if (pruning_window < 0)
    throw std::invalid_argument("PrunerConfig: pruning_window < 0");
  if (ratio < 0.0 || ratio > 1.0)
    throw std::invalid_argument("PrunerConfig: ratio out of [0,1]");
}

double PrunerConfig::savings_fraction() const {
  return ratio * pruning_window /
         static_cast<double>(accumulation_window + pruning_window);
}

GradientPruner::GradientPruner(int n_params, PrunerConfig config,
                               std::uint64_t seed)
    : n_params_(n_params), config_(config), rng_(seed),
      accum_(static_cast<std::size_t>(n_params), 0.0) {
  if (n_params < 1) throw std::invalid_argument("GradientPruner: n_params");
  config_.validate();
}

bool GradientPruner::in_accumulation_phase() const {
  const int stage_len = config_.accumulation_window + config_.pruning_window;
  // A full stage boundary wraps to position 0 (accumulation) on the next
  // next_mask() call; report the phase of the step about to be taken.
  const int pos = stage_pos_ >= stage_len ? 0 : stage_pos_;
  return pos < config_.accumulation_window;
}

std::vector<bool> GradientPruner::next_mask() {
  const int stage_len = config_.accumulation_window + config_.pruning_window;
  if (stage_pos_ >= stage_len) {
    // New stage: reset the accumulator (Alg. 1: "Initialize gradient
    // magnitude accumulator M <- 0").
    stage_pos_ = 0;
    std::fill(accum_.begin(), accum_.end(), 0.0);
  }

  std::vector<bool> mask;
  if (in_accumulation_phase()) {
    mask.assign(static_cast<std::size_t>(n_params_), true);
    last_was_accum_ = true;
  } else {
    mask = sample_mask();
    last_was_accum_ = false;
  }
  ++stage_pos_;
  ++step_;
  return mask;
}

std::vector<bool> GradientPruner::sample_mask() {
  const auto n = static_cast<std::size_t>(n_params_);
  const std::size_t keep = static_cast<std::size_t>(
      std::ceil((1.0 - config_.ratio) * n_params_));
  std::vector<bool> mask(n, false);
  if (keep == 0) return mask;
  if (keep >= n) {
    mask.assign(n, true);
    return mask;
  }

  if (config_.deterministic) {
    // Table 2 baseline: keep the top-k by accumulated magnitude.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep),
                      order.end(), [this](std::size_t a, std::size_t b) {
                        return accum_[a] > accum_[b];
                      });
    for (std::size_t i = 0; i < keep; ++i) mask[order[i]] = true;
    return mask;
  }

  const auto picked =
      weighted_sample_without_replacement(accum_, keep, rng_);
  for (std::size_t idx : picked) mask[idx] = true;
  return mask;
}

void GradientPruner::observe(std::span<const double> grad) {
  if (static_cast<int>(grad.size()) != n_params_)
    throw std::invalid_argument("GradientPruner::observe: size mismatch");
  if (!last_was_accum_) return;  // pruning-phase gradients are not recorded
  for (std::size_t i = 0; i < grad.size(); ++i)
    accum_[i] += std::abs(grad[i]);
}

std::vector<std::size_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k, Prng& rng) {
  const std::size_t n = weights.size();
  if (k > n)
    throw std::invalid_argument(
        "weighted_sample_without_replacement: k > n");
  for (const double w : weights)
    if (w < 0.0 || !std::isfinite(w))
      throw std::invalid_argument(
          "weighted_sample_without_replacement: bad weight");

  // Efraimidis-Spirakis: key_i = -Exp(1)/w_i (log-space variant of
  // u^{1/w}); take the k largest keys. Zero weights get -inf keys and a
  // uniform tiebreak, so they are only used when positive weights run out.
  struct Keyed {
    double key;
    double tiebreak;
    std::size_t idx;
  };
  std::vector<Keyed> keyed(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = std::max(rng.uniform(), 1e-300);
    const double key = weights[i] > 0.0
                           ? std::log(u) / weights[i]
                           : -std::numeric_limits<double>::infinity();
    keyed[i] = {key, rng.uniform(), i};
  }
  std::partial_sort(keyed.begin(),
                    keyed.begin() + static_cast<std::ptrdiff_t>(k),
                    keyed.end(), [](const Keyed& a, const Keyed& b) {
                      if (a.key != b.key) return a.key > b.key;
                      return a.tiebreak > b.tiebreak;
                    });
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = keyed[i].idx;
  return out;
}

}  // namespace qoc::train
