#include "qoc/serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <list>
#include <map>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "qoc/common/mutex.hpp"
#include "qoc/common/thread_annotations.hpp"
#include "qoc/common/thread_pool.hpp"
#include "qoc/obs/obs.hpp"

namespace qoc::serve {
namespace detail {

using Clock = obs::Clock;

namespace {

/// Gauge update helper for per-lane gauges (names are dynamic, so the
/// static-caching QOC_METRIC_* macros cannot serve them; the session
/// resolves each lane's gauge once at construction). Compiles to
/// nothing at QOC_OBS=0.
inline void set_gauge(obs::Gauge* g, std::int64_t v) noexcept {
#if QOC_OBS
  if (g != nullptr) g->set(v);
#else
  (void)g;
  (void)v;
#endif
}

}  // namespace

struct CircuitEntry {
  const SessionState* owner = nullptr;
  std::uint64_t id = 0;
  exec::CompileOptions options;
  exec::CompiledCircuit plan;
};

struct ObservableEntry {
  const SessionState* owner = nullptr;
  std::uint64_t id = 0;
  exec::CompiledObservable observable;
};

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Bitwise hash of a job's cache identity. Doubles are hashed (and later
/// compared) bit-for-bit: the cache must never unify bindings that merely
/// compare equal (e.g. -0.0 vs 0.0 steer sign-sensitive paths apart).
std::uint64_t binding_hash(std::uint64_t circuit_id, std::uint64_t obs_id,
                           std::span<const double> theta,
                           std::span<const double> input) {
  std::uint64_t h = mix(mix(0x5E4EC0DEULL, circuit_id), obs_id);
  for (const double d : theta) h = mix(h, std::bit_cast<std::uint64_t>(d));
  h = mix(h, 0xB1D1B0DAULL);  // theta/input boundary marker
  for (const double d : input) h = mix(h, std::bit_cast<std::uint64_t>(d));
  return h;
}

bool spans_equal_bitwise(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

/// Observable identity for registry dedup: the (qubit count, term list)
/// pair fully determines a CompiledObservable (constant and groups are
/// derived from it deterministically). Coefficients compare bitwise.
std::uint64_t observable_hash(const exec::CompiledObservable& o) {
  std::uint64_t h = mix(0x0B5E7FULL, static_cast<std::uint64_t>(o.num_qubits()));
  for (const auto& t : o.terms()) {
    for (const char ch : t.paulis)
      h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
    h = mix(h, std::bit_cast<std::uint64_t>(t.coeff));
    h = mix(h, 0x7E53ULL);  // term separator
  }
  return h;
}

bool observable_equal(const exec::CompiledObservable& a,
                      const exec::CompiledObservable& b) {
  if (a.num_qubits() != b.num_qubits() ||
      a.terms().size() != b.terms().size())
    return false;
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    if (a.terms()[i].paulis != b.terms()[i].paulis ||
        std::bit_cast<std::uint64_t>(a.terms()[i].coeff) !=
            std::bit_cast<std::uint64_t>(b.terms()[i].coeff))
      return false;
  }
  return true;
}

}  // namespace

/// One queued evaluation. Bindings are owned copies, so client buffers
/// are free the moment submit() returns; the promise is fulfilled by the
/// dispatcher after the coalesced batch runs.
struct Job {
  std::vector<double> theta, input;
  std::uint64_t stream = 0;
  std::uint64_t key_hash = 0;  // result-cache key (0 when cache disabled)
  Clock::time_point enqueued;
  bool is_expect = false;
  std::promise<std::vector<double>> run_promise;
  std::promise<double> expect_promise;
};

/// All jobs queued for one (circuit structure, observable) pair --
/// exactly the granularity one run_batch / expect_batch call serves.
/// Jobs live in per-client FIFO lanes; extraction round-robins across
/// lanes so a full batch always carries every waiting client.
struct Bucket {
  std::shared_ptr<const CircuitEntry> circuit;
  std::shared_ptr<const ObservableEntry> observable;  // null for run jobs
  std::map<std::uint32_t, std::deque<Job>> lanes;
  std::size_t size = 0;
  Clock::time_point oldest;   // enqueue time of the oldest queued job
  std::uint32_t next_lane = 0;  // fairness cursor across drains
};

struct CacheEntry {
  std::uint64_t key_hash = 0;
  std::uint64_t circuit_id = 0, obs_id = 0;
  std::vector<double> theta, input;
  bool is_expect = false;
  std::vector<double> run_result;
  double expect_result = 0.0;
};

/// Why the dispatcher flushed a batch; carried to the lane so batch and
/// flush-cause counters commit at completion (a routed-but-queued batch
/// must not inflate a replica's occupancy before it executed).
enum class FlushCause { kSize, kDeadline, kShutdown };

/// One coalesced batch handed from the dispatcher to a replica's drain
/// lane: everything the lane needs to execute, account and fulfil it.
struct ReadyBatch {
  std::shared_ptr<const CircuitEntry> circuit;
  std::shared_ptr<const ObservableEntry> observable;  // null for run jobs
  std::vector<Job> jobs;
  FlushCause cause = FlushCause::kDeadline;
};

/// One replica's drain lane: a worker thread pulling routed batches off
/// a private queue, so batches execute concurrently across replicas.
/// `inflight_jobs` (atomic: read lock-free by the routing pass and by
/// metrics) counts jobs routed here but not yet completed -- the
/// least-queued-work signal. The lane's counter slice lives in
/// SessionState::lane_stats[index], guarded by the session mutex (see
/// LaneCounters).
struct ReplicaLane {
  backend::Backend* replica = nullptr;
  std::size_t index = 0;  // slot in SessionState::lane_stats
  common::Mutex mutex;
  common::CondVar cv;
  std::deque<ReadyBatch> queue QOC_GUARDED_BY(mutex);
  bool stop QOC_GUARDED_BY(mutex) = false;
  std::thread worker;
  std::atomic<std::size_t> inflight_jobs{0};
  // Per-lane occupancy gauge ("qoc_serve_lane<i>_inflight_jobs"),
  // resolved once at session construction; null at QOC_OBS=0.
  obs::Gauge* inflight_gauge = nullptr;
};

/// Per-replica counter slice, indexed by ReplicaLane::index. Owned by
/// SessionState rather than the lane so every counter sits under the
/// one session mutex its writers already hold -- the routing counters
/// are written by the dispatcher at routing time, everything else by
/// the lane at completion -- and the thread-safety analysis can name
/// the guarding capability (it cannot express "guarded by another
/// object's mutex" on a ReplicaLane member).
struct LaneCounters {
  std::uint64_t batches = 0, coalesced_jobs = 0, executed_jobs = 0;
  std::uint64_t size_flushes = 0, deadline_flushes = 0;
  std::uint64_t affinity_routes = 0, assigned_structures = 0;
};

struct SessionState {
  const BackendPool pool;
  const ServeOptions options;
  const bool cache_enabled;
  const bool fold_possible;  // any replica could fold duplicates
  const Clock::time_point started = Clock::now();

  // ---- job queue + metrics (mutex) ----
  mutable common::Mutex mutex;
  common::CondVar cv;        // wakes the dispatcher
  common::CondVar space_cv;  // wakes blocked submitters
  bool stop QOC_GUARDED_BY(mutex) = false;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Bucket> buckets
      QOC_GUARDED_BY(mutex);
  // Jobs coalescing in buckets.
  std::size_t total_queued QOC_GUARDED_BY(mutex) = 0;
  // Admitted jobs not yet fulfilled (buckets + lanes + executing); the
  // quantity max_queue bounds.
  std::size_t in_flight QOC_GUARDED_BY(mutex) = 0;

  // Sticky structure -> replica assignment (outlives the buckets, which
  // are erased when drained: affinity must survive sparse traffic or
  // the per-replica transpile/pattern caches go cold on every flush).
  std::unordered_map<std::uint64_t, std::size_t> structure_affinity
      QOC_GUARDED_BY(mutex);

  std::uint64_t submitted QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t completed QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t failed QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t cache_hits QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t folded_jobs QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t shed_jobs QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t batches QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t coalesced_jobs QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t size_flushes QOC_GUARDED_BY(mutex) = 0;
  std::uint64_t deadline_flushes QOC_GUARDED_BY(mutex) = 0;
  std::size_t peak_queue_depth QOC_GUARDED_BY(mutex) = 0;
  // Full-history submit->fulfil latency histogram (wait-free atomics,
  // deliberately outside the mutex): feeds the metrics() percentiles,
  // replacing the former 8192-sample ring window and its sorted copy.
  obs::Histogram latency_hist;
  // Per-replica counter slices, one per lane (ReplicaLane::index).
  std::vector<LaneCounters> lane_stats QOC_GUARDED_BY(mutex);

  // ---- per-replica drain lanes (vector immutable after construction;
  // each lane's queue/stop sit under its own lane mutex) ----
  std::vector<std::unique_ptr<ReplicaLane>> lanes;
  std::atomic<unsigned> active_drains{0};  // lanes inside a backend call

  // ---- circuit / observable registry (registry_mutex) ----
  common::Mutex registry_mutex;
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<const CircuitEntry>>>
      registry QOC_GUARDED_BY(registry_mutex);
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<const ObservableEntry>>>
      obs_registry QOC_GUARDED_BY(registry_mutex);
  std::uint64_t next_circuit_id QOC_GUARDED_BY(registry_mutex) = 1;
  std::uint64_t next_observable_id QOC_GUARDED_BY(registry_mutex) = 1;
  std::atomic<std::uint32_t> next_client{0};

  // ---- bounded LRU result cache (cache_mutex) ----
  common::Mutex cache_mutex;
  std::list<CacheEntry> lru QOC_GUARDED_BY(cache_mutex);  // front = MRU
  std::unordered_map<std::uint64_t,
                     std::vector<std::list<CacheEntry>::iterator>>
      cache_index QOC_GUARDED_BY(cache_mutex);

  // ---- dispatcher (join_mutex serialises concurrent shutdown()s) ----
  common::Mutex join_mutex;
  std::thread dispatcher;

  static bool any_replica_deterministic(const BackendPool& p) {
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p.replica(i).deterministic()) return true;
    return false;
  }

  SessionState(BackendPool p, ServeOptions o)
      : pool(std::move(p)),
        options(o),
        cache_enabled(o.result_cache_capacity > 0 && pool.deterministic()),
        fold_possible(o.fold_duplicates && any_replica_deterministic(pool)) {
    lane_stats.resize(pool.size());
    lanes.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      lanes.push_back(std::make_unique<ReplicaLane>());
      lanes.back()->replica = &pool.replica(i);
      lanes.back()->index = i;
#if QOC_OBS
      lanes.back()->inflight_gauge = &obs::Registry::global().gauge(
          "qoc_serve_lane" + std::to_string(i) + "_inflight_jobs");
#endif
    }
  }

  // Drain concurrency: the requested fan-out, capped at a fair share of
  // what the shared thread pool can actually supply across every lane
  // currently inside a backend call (each lane's own thread counts as
  // one unit of supply). Thread count never affects results (the
  // run_batch determinism contract), so reading stale occupancy is
  // harmless.
  unsigned drain_threads(unsigned drains_now) const {
    const unsigned requested = options.exec_threads == 0
                                   ? hardware_threads()
                                   : options.exec_threads;
    return common::ThreadPool::global().fair_share(requested, drains_now);
  }

  void record_latency(Clock::time_point enqueued, Clock::time_point now) {
    const auto d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - enqueued);
    const std::uint64_t ns =
        d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count());
    latency_hist.record(ns);
    QOC_METRIC_HISTOGRAM_NS("qoc_serve_latency_ns", ns);
  }

  // ---- result cache -------------------------------------------------------

  const CacheEntry* cache_find_locked(std::uint64_t key_hash,
                                      std::uint64_t circuit_id,
                                      std::uint64_t obs_id,
                                      std::span<const double> theta,
                                      std::span<const double> input)
      QOC_REQUIRES(cache_mutex) {
    const auto it = cache_index.find(key_hash);
    if (it == cache_index.end()) return nullptr;
    for (const auto& entry_it : it->second) {
      if (entry_it->circuit_id != circuit_id || entry_it->obs_id != obs_id)
        continue;
      if (!spans_equal_bitwise(entry_it->theta, theta) ||
          !spans_equal_bitwise(entry_it->input, input))
        continue;
      lru.splice(lru.begin(), lru, entry_it);  // refresh recency
      return &*entry_it;
    }
    return nullptr;
  }

  void cache_insert(CacheEntry entry) QOC_EXCLUDES(cache_mutex) {
    const common::MutexLock lock(cache_mutex);
    if (cache_find_locked(entry.key_hash, entry.circuit_id, entry.obs_id,
                          entry.theta, entry.input) != nullptr)
      return;  // a concurrent duplicate already landed; keep it fresh
    while (lru.size() >= options.result_cache_capacity) {
      const auto victim = std::prev(lru.end());
      auto& bucket = cache_index[victim->key_hash];
      std::erase(bucket, victim);
      if (bucket.empty()) cache_index.erase(victim->key_hash);
      lru.pop_back();
    }
    lru.push_front(std::move(entry));
    cache_index[lru.front().key_hash].push_back(lru.begin());
  }

  // ---- queue --------------------------------------------------------------

  /// Remove up to `max` jobs from `b`, one per client lane per round.
  std::vector<Job> extract_locked(Bucket& b, std::size_t max)
      QOC_REQUIRES(mutex) {
    std::vector<Job> out;
    out.reserve(std::min(b.size, max));
    while (out.size() < max && b.size > 0) {
      auto it = b.lanes.lower_bound(b.next_lane);
      if (it == b.lanes.end()) it = b.lanes.begin();
      out.push_back(std::move(it->second.front()));
      it->second.pop_front();
      --b.size;
      --total_queued;
      b.next_lane = it->first + 1;
      if (it->second.empty()) b.lanes.erase(it);
    }
    if (b.size > 0) {
      b.oldest = Clock::time_point::max();
      for (const auto& [client, lane] : b.lanes)
        b.oldest = std::min(b.oldest, lane.front().enqueued);
    }
    return out;
  }

  /// Commits one drained batch to the aggregate and per-replica batch /
  /// occupancy / flush-cause counters. Called by the lane at completion
  /// (success or failure) -- never at routing time, so a batch queued
  /// behind a busy replica is not reported as executed.
  void commit_batch_locked(const ReplicaLane& lane, FlushCause cause,
                           std::size_t jobs) QOC_REQUIRES(mutex) {
    LaneCounters& slice = lane_stats[lane.index];
    ++batches;
    ++slice.batches;
    coalesced_jobs += jobs;
    slice.coalesced_jobs += jobs;
    QOC_METRIC_COUNTER_ADD("qoc_serve_batches_total", 1);
    QOC_METRIC_COUNTER_ADD("qoc_serve_coalesced_jobs_total", jobs);
    switch (cause) {
      case FlushCause::kSize:
        ++size_flushes;
        ++slice.size_flushes;
        QOC_METRIC_COUNTER_ADD("qoc_serve_size_flushes_total", 1);
        break;
      case FlushCause::kDeadline:
        ++deadline_flushes;
        ++slice.deadline_flushes;
        QOC_METRIC_COUNTER_ADD("qoc_serve_deadline_flushes_total", 1);
        break;
      case FlushCause::kShutdown:
        break;
    }
  }

  /// Occupies one drain slot for the lifetime of a backend call, so
  /// fair_share sees how many lanes compete for the shared thread pool
  /// no matter how the call exits.
  struct DrainSlot {
    std::atomic<unsigned>& drains;
    const unsigned now;  // count including this slot
    explicit DrainSlot(std::atomic<unsigned>& d)
        : drains(d),
          now(d.fetch_add(1, std::memory_order_relaxed) + 1) {}
    ~DrainSlot() { drains.fetch_sub(1, std::memory_order_relaxed); }
  };

  /// Run one coalesced batch through `lane`'s replica and fulfil every
  /// promise. Called by the lane's worker thread with no lock held.
  void execute(ReplicaLane& lane, ReadyBatch ready) QOC_EXCLUDES(mutex) {
    const auto& circuit = ready.circuit;
    const auto& observable = ready.observable;
    std::vector<Job>& batch = ready.jobs;
    // One complete span per drained batch; the per-job async spans
    // opened at submission close inside it, linking each job's
    // timeline to the batch that served it.
    QOC_TRACE_SPAN_NAMED(drain_span, "serve", "drain");
    drain_span.annotate("jobs", static_cast<std::int64_t>(batch.size()));

    // In-flight duplicate folding: on a deterministic replica,
    // bitwise-identical bindings in this batch collapse to one
    // evaluation whose result fans out to every duplicate. Stochastic
    // replicas never fold -- each job owns a distinct pinned PRNG
    // stream, so duplicates are distinct draws by contract. eval_of[i]
    // maps job i to its evaluation; leaders[e] is the job that
    // contributed evaluation e.
    const bool fold =
        fold_possible && batch.size() > 1 && lane.replica->deterministic();
    std::vector<std::size_t> eval_of(batch.size());
    std::vector<std::size_t> leaders;
    leaders.reserve(batch.size());
    if (fold) {
      // Group by the bitwise binding hash -- the job's cache key when
      // the cache is enabled, computed here otherwise so the submit
      // hot path never pays for hashing it may not need.
      const std::uint64_t obs_id = observable == nullptr ? 0 : observable->id;
      std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::uint64_t h =
            cache_enabled ? batch[i].key_hash
                          : binding_hash(circuit->id, obs_id, batch[i].theta,
                                         batch[i].input);
        auto& mates = groups[h];
        std::size_t found = static_cast<std::size_t>(-1);
        for (const std::size_t j : mates) {
          if (spans_equal_bitwise(batch[j].theta, batch[i].theta) &&
              spans_equal_bitwise(batch[j].input, batch[i].input)) {
            found = eval_of[j];
            break;
          }
        }
        if (found == static_cast<std::size_t>(-1)) {
          eval_of[i] = leaders.size();
          leaders.push_back(i);
          mates.push_back(i);
        } else {
          eval_of[i] = found;
        }
      }
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        eval_of[i] = i;
        leaders.push_back(i);
      }
    }

    std::vector<exec::Evaluation> evals;
    evals.reserve(leaders.size());
    for (const std::size_t i : leaders)
      evals.push_back({batch[i].theta, batch[i].input,
                       exec::Evaluation::kNoShift, 0.0, batch[i].stream});

    // Only the backend call itself can fail a job. Counters and
    // latencies are committed BEFORE any promise is fulfilled, so a
    // client that observes its future ready also observes metrics that
    // count it; fulfilment afterwards is nothrow (fresh promises,
    // nothrow payload moves), and cache insertion swallows its own
    // failures -- a job whose result was computed must not be failed
    // retroactively because memoising it ran out of memory.
    std::vector<std::vector<double>> run_results;
    std::vector<double> expect_results;
    try {
      const DrainSlot slot(active_drains);
      const unsigned threads = drain_threads(slot.now);
      if (observable == nullptr)
        run_results = lane.replica->run_batch(circuit->plan, evals, threads);
      else
        expect_results = lane.replica->expect_batch(
            circuit->plan, observable->observable, evals, threads);
    } catch (...) {
      const auto error = std::current_exception();
      {
        const common::MutexLock lock(mutex);
        commit_batch_locked(lane, ready.cause, batch.size());
        failed += batch.size();
        in_flight -= batch.size();
      }
      QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_failed_total", batch.size());
      const std::size_t left_failed =
          lane.inflight_jobs.fetch_sub(batch.size(),
                                       std::memory_order_relaxed) -
          batch.size();
      set_gauge(lane.inflight_gauge, static_cast<std::int64_t>(left_failed));
      space_cv.notify_all();
      for (Job& j : batch) {
        QOC_TRACE_ASYNC_END("serve", "job", j.stream);
        if (j.is_expect)
          j.expect_promise.set_exception(error);
        else
          j.run_promise.set_exception(error);
      }
      return;
    }

    {
      const auto now = Clock::now();
      const common::MutexLock lock(mutex);
      commit_batch_locked(lane, ready.cause, batch.size());
      completed += batch.size();
      folded_jobs += batch.size() - leaders.size();
      lane_stats[lane.index].executed_jobs += leaders.size();
      in_flight -= batch.size();
      for (const Job& j : batch) record_latency(j.enqueued, now);
    }
    QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_completed_total", batch.size());
    QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_folded_total",
                           batch.size() - leaders.size());
    const std::size_t left =
        lane.inflight_jobs.fetch_sub(batch.size(), std::memory_order_relaxed) -
        batch.size();
    set_gauge(lane.inflight_gauge, static_cast<std::int64_t>(left));
    space_cv.notify_all();

    // Result records: one per fulfilled job, folded duplicates included
    // (each reports its fanned-out copy under its own stream). Recorded
    // before fulfilment so a trace snapshot taken after every future
    // resolved is guaranteed complete.
    if (auto* sink = options.trace_sink.get()) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::size_t e = eval_of[i];
        if (observable == nullptr)
          sink->on_run_result(batch[i].stream, run_results[e]);
        else
          sink->on_expect_result(batch[i].stream, expect_results[e]);
      }
    }

    if (cache_enabled) {
      for (const std::size_t i : leaders) {
        const std::size_t e = eval_of[i];
        try {
          if (observable == nullptr)
            cache_insert({batch[i].key_hash, circuit->id, 0, batch[i].theta,
                          batch[i].input, false, run_results[e], 0.0});
          else
            cache_insert({batch[i].key_hash, circuit->id, observable->id,
                          batch[i].theta, batch[i].input, true, {},
                          expect_results[e]});
        } catch (...) {
        }
      }
    }

    // Fulfil duplicates with copies; the last job referencing an
    // evaluation takes the result by move (the common unfolded case
    // moves every result exactly as before).
    std::vector<std::size_t> last_user(leaders.size());
    for (std::size_t i = 0; i < batch.size(); ++i) last_user[eval_of[i]] = i;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t e = eval_of[i];
      QOC_TRACE_ASYNC_END("serve", "job", batch[i].stream);
      if (observable == nullptr) {
        if (last_user[e] == i)
          batch[i].run_promise.set_value(std::move(run_results[e]));
        else
          batch[i].run_promise.set_value(run_results[e]);
      } else {
        batch[i].expect_promise.set_value(expect_results[e]);
      }
    }
  }

  /// Lane worker: pull routed batches off this replica's queue and
  /// execute them. Exits once stop is set AND the queue is drained --
  /// shutdown sets lane stops only after the dispatcher has routed
  /// every remaining job, so no future is ever abandoned.
  void lane_loop(ReplicaLane& lane) QOC_EXCLUDES(mutex, lane.mutex) {
    common::UniqueLock lock(lane.mutex);
    for (;;) {
      if (lane.queue.empty()) {
        if (lane.stop) return;
        lane.cv.wait(lane.mutex);
        continue;
      }
      ReadyBatch batch = std::move(lane.queue.front());
      lane.queue.pop_front();
      lock.unlock();
      execute(lane, std::move(batch));
      lock.lock();
    }
  }

  /// Pick the lane for a flushed batch of `circuit_id`. Structure
  /// affinity first: a structure that has routed before goes back to
  /// its replica, keeping that replica's transpile / lowered-pattern
  /// caches hot. New structures are placed on the lane with the least
  /// in-flight work (ties break to the lowest index, so single-replica
  /// sessions and idle pools route deterministically).
  ReplicaLane& route_locked(std::uint64_t circuit_id, bool& was_affinity)
      QOC_REQUIRES(mutex) {
    const auto it = structure_affinity.find(circuit_id);
    if (it != structure_affinity.end()) {
      was_affinity = true;
      return *lanes[it->second];
    }
    std::size_t best = 0;
    std::size_t best_load =
        lanes[0]->inflight_jobs.load(std::memory_order_relaxed);
    for (std::size_t i = 1; i < lanes.size(); ++i) {
      const std::size_t load =
          lanes[i]->inflight_jobs.load(std::memory_order_relaxed);
      if (load < best_load) {
        best = i;
        best_load = load;
      }
    }
    structure_affinity.emplace(circuit_id, best);
    was_affinity = false;
    return *lanes[best];
  }

  /// Coalescer loop: wait until some bucket is full (size flush) or its
  /// oldest job's deadline passed (deadline flush), extract one batch
  /// and route it to a replica's drain lane, repeat. Execution happens
  /// on the lane threads, so flush decisions never wait on a backend
  /// call and batches for different replicas run concurrently. After
  /// stop() every remaining job routes immediately, so shutdown never
  /// abandons a future.
  void dispatcher_loop() QOC_EXCLUDES(mutex) {
    common::UniqueLock lock(mutex);
    for (;;) {
      if (total_queued == 0) {
        if (stop) return;
        cv.wait(mutex);
        continue;
      }
      // Expired deadlines outrank size-full buckets: under sustained
      // full-batch traffic on one structure, other structures' jobs
      // must still flush within max_delay (no cross-structure
      // starvation). Size flushes only apply while every deadline is
      // still in the future.
      const auto now = Clock::now();
      auto pick = buckets.end();
      bool by_size = false;
      auto earliest = Clock::time_point::max();
      auto earliest_it = buckets.end();
      auto full_it = buckets.end();
      for (auto it = buckets.begin(); it != buckets.end(); ++it) {
        if (it->second.size == 0) continue;
        if (full_it == buckets.end() && it->second.size >= options.max_batch)
          full_it = it;
        const auto deadline = it->second.oldest + options.max_delay;
        if (deadline < earliest) {
          earliest = deadline;
          earliest_it = it;
        }
      }
      if (stop || earliest <= now) {
        pick = earliest_it;
      } else if (full_it != buckets.end()) {
        pick = full_it;
        by_size = true;
      } else {
        cv.wait_until(mutex, earliest);
        continue;
      }

      auto& bucket = pick->second;
      const auto circuit = bucket.circuit;
      const auto observable = bucket.observable;
      std::vector<Job> batch = extract_locked(bucket, options.max_batch);
      if (bucket.size == 0) buckets.erase(pick);

      bool was_affinity = false;
      ReplicaLane& lane = route_locked(circuit->id, was_affinity);
      if (was_affinity) {
        ++lane_stats[lane.index].affinity_routes;
        QOC_METRIC_COUNTER_ADD("qoc_serve_affinity_routes_total", 1);
      } else {
        ++lane_stats[lane.index].assigned_structures;
        QOC_METRIC_COUNTER_ADD("qoc_serve_assigned_structures_total", 1);
      }
      const FlushCause cause = by_size   ? FlushCause::kSize
                               : !stop   ? FlushCause::kDeadline
                                         : FlushCause::kShutdown;
      QOC_TRACE_SPAN_ARG("serve", "route", "lane",
                         static_cast<std::int64_t>(lane.index));
      QOC_TRACE_COUNTER("qoc_serve_queue_depth", total_queued);
      const std::size_t routed =
          lane.inflight_jobs.fetch_add(batch.size(),
                                       std::memory_order_relaxed) +
          batch.size();
      set_gauge(lane.inflight_gauge, static_cast<std::int64_t>(routed));
      {
        // Lock order session mutex -> lane mutex, everywhere: lanes
        // only take the session mutex with their own mutex released.
        const common::MutexLock lane_lock(lane.mutex);
        lane.queue.push_back(
            ReadyBatch{circuit, observable, std::move(batch), cause});
      }
      lane.cv.notify_one();
    }
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// BackendPool
// ---------------------------------------------------------------------------

BackendPool::BackendPool(backend::Backend& primary, std::size_t replicas) {
  if (replicas == 0)
    throw std::invalid_argument("BackendPool: replicas == 0");
  replicas_.reserve(replicas);
  replicas_.push_back(&primary);
  for (std::size_t i = 1; i < replicas; ++i) {
    auto clone = primary.clone_replica();
    if (clone == nullptr)
      throw std::invalid_argument("BackendPool: backend '" + primary.name() +
                                  "' does not support clone_replica()");
    replicas_.push_back(clone.get());
    owned_.push_back(std::move(clone));
  }
}

BackendPool::BackendPool(std::vector<backend::Backend*> replicas)
    : replicas_(std::move(replicas)) {
  if (replicas_.empty())
    throw std::invalid_argument("BackendPool: empty replica list");
  for (const auto* b : replicas_)
    if (b == nullptr)
      throw std::invalid_argument("BackendPool: null replica");
}

bool BackendPool::deterministic() const {
  for (const auto* b : replicas_)
    if (!b->deterministic()) return false;
  return !replicas_.empty();
}

std::uint64_t BackendPool::total_inference_count() const {
  std::uint64_t total = 0;
  for (const auto* b : replicas_) total += b->inference_count();
  return total;
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

const exec::CompiledCircuit& CircuitHandle::plan() const {
  if (!entry_) throw std::logic_error("CircuitHandle: empty handle");
  return entry_->plan;
}

std::uint64_t CircuitHandle::id() const {
  if (!entry_) throw std::logic_error("CircuitHandle: empty handle");
  return entry_->id;
}

const exec::CompiledObservable& ObservableHandle::observable() const {
  if (!entry_) throw std::logic_error("ObservableHandle: empty handle");
  return entry_->observable;
}

std::uint64_t ObservableHandle::id() const {
  if (!entry_) throw std::logic_error("ObservableHandle: empty handle");
  return entry_->id;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

std::future<std::vector<double>> Client::submit(const CircuitHandle& circuit,
                                                std::span<const double> theta,
                                                std::span<const double> input) {
  if (session_ == nullptr)
    throw std::logic_error("serve::Client: default-constructed client");
  return session_->submit_run(*this, circuit, theta, input);
}

std::future<double> Client::submit_expect(const CircuitHandle& circuit,
                                          const ObservableHandle& observable,
                                          std::span<const double> theta,
                                          std::span<const double> input) {
  if (session_ == nullptr)
    throw std::logic_error("serve::Client: default-constructed client");
  return session_->submit_expect(*this, circuit, observable, theta, input);
}

// ---------------------------------------------------------------------------
// ServeSession
// ---------------------------------------------------------------------------

ServeSession::ServeSession(BackendPool pool, ServeOptions options)
    : options_(options) {
  if (pool.size() == 0)
    throw std::invalid_argument("ServeSession: empty BackendPool");
  if (options_.max_batch == 0)
    throw std::invalid_argument("ServeSession: max_batch == 0");
  if (options_.max_delay.count() < 0)
    throw std::invalid_argument("ServeSession: negative max_delay");
  state_ = std::make_shared<detail::SessionState>(std::move(pool), options_);
  state_->dispatcher =
      std::thread([s = state_.get()] { s->dispatcher_loop(); });
  for (auto& lane : state_->lanes)
    lane->worker = std::thread(
        [s = state_.get(), l = lane.get()] { s->lane_loop(*l); });
}

ServeSession::~ServeSession() { shutdown(); }

const BackendPool& ServeSession::pool() const { return state_->pool; }

void ServeSession::shutdown() {
  {
    const common::MutexLock lock(state_->mutex);
    state_->stop = true;
  }
  state_->cv.notify_all();
  state_->space_cv.notify_all();
  const common::MutexLock lock(state_->join_mutex);
  // Join order is the drain order: the dispatcher first (it routes
  // every remaining bucket to a lane before exiting), then the lanes
  // (each drains its queue before honouring stop).
  if (state_->dispatcher.joinable()) state_->dispatcher.join();
  for (auto& lane : state_->lanes) {
    {
      const common::MutexLock lane_lock(lane->mutex);
      lane->stop = true;
    }
    lane->cv.notify_all();
  }
  for (auto& lane : state_->lanes)
    if (lane->worker.joinable()) lane->worker.join();
}

CircuitHandle ServeSession::register_circuit(const circuit::Circuit& c,
                                             exec::CompileOptions options) {
  auto* s = state_.get();
  const std::uint64_t h = exec::structure_hash(c);
  const common::MutexLock lock(s->registry_mutex);
  auto& bucket = s->registry[h];
  std::erase_if(bucket, [](const auto& w) { return w.expired(); });
  for (const auto& weak : bucket) {
    if (const auto entry = weak.lock()) {
      if (entry->options.fuse_1q == options.fuse_1q &&
          exec::structure_equal(c, entry->plan.source()))
        return CircuitHandle(entry);
    }
  }
  auto entry = std::make_shared<const detail::CircuitEntry>(detail::CircuitEntry{
      s, s->next_circuit_id++, options,
      exec::CompiledCircuit::compile(c, options)});
  bucket.push_back(entry);
  // Fresh entries only: a dedup hit above returned without reaching
  // here, so a trace carries each structure exactly once.
  if (auto* sink = s->options.trace_sink.get())
    sink->on_circuit(entry->id, h, c, options);
  return CircuitHandle(std::move(entry));
}

ObservableHandle ServeSession::register_observable(
    exec::CompiledObservable observable) {
  // Dedup like register_circuit: identical observables must share one
  // id, or jobs from different clients would land in different
  // coalescing buckets (and result-cache keys) and never batch.
  auto* s = state_.get();
  const std::uint64_t h = detail::observable_hash(observable);
  const common::MutexLock lock(s->registry_mutex);
  auto& bucket = s->obs_registry[h];
  std::erase_if(bucket, [](const auto& w) { return w.expired(); });
  for (const auto& weak : bucket) {
    if (const auto entry = weak.lock()) {
      if (detail::observable_equal(entry->observable, observable))
        return ObservableHandle(entry);
    }
  }
  auto entry = std::make_shared<const detail::ObservableEntry>(
      detail::ObservableEntry{s, s->next_observable_id++,
                              std::move(observable)});
  bucket.push_back(entry);
  if (auto* sink = s->options.trace_sink.get())
    sink->on_observable(entry->id, entry->observable);
  return ObservableHandle(std::move(entry));
}

Client ServeSession::client() {
  return Client(this, state_->next_client.fetch_add(1));
}

namespace {

void validate_submission(const detail::SessionState* owner,
                         const detail::CircuitEntry* entry,
                         std::span<const double> theta,
                         std::span<const double> input) {
  if (entry == nullptr)
    throw std::invalid_argument("serve: submit with an empty CircuitHandle");
  if (entry->owner != owner)
    throw std::invalid_argument(
        "serve: CircuitHandle belongs to a different session");
  if (theta.size() < static_cast<std::size_t>(entry->plan.num_trainable()))
    throw std::invalid_argument("serve: theta shorter than the plan's "
                                "trainable-parameter count");
  if (input.size() < static_cast<std::size_t>(entry->plan.num_inputs()))
    throw std::invalid_argument(
        "serve: input shorter than the plan's feature count");
}

/// Shared submission path for run and expect jobs (they differ only in
/// result type, promise member and observable id): cache probe,
/// job construction, stop check, bucket enqueue and dispatcher nudge
/// all live here exactly once. `observable` is null for run jobs.
template <typename Result>
std::future<Result> submit_impl(
    detail::SessionState* s, std::uint32_t client_id, std::uint64_t seq,
    const std::shared_ptr<const detail::CircuitEntry>& circuit,
    const std::shared_ptr<const detail::ObservableEntry>& observable,
    std::span<const double> theta, std::span<const double> input) {
  constexpr bool kExpect = std::is_same_v<Result, double>;
  QOC_TRACE_SPAN("serve", "submit");
  const auto now = detail::Clock::now();
  const std::uint64_t stream = ServeSession::client_stream(client_id, seq);
  const std::uint64_t obs_id = kExpect ? observable->id : 0;
  // Hashed only for the cache probe: the duplicate-folding identity is
  // the same hash, but lanes compute it at grouping time so the submit
  // hot path never pays for it when the cache is off.
  const std::uint64_t key_hash =
      s->cache_enabled
          ? detail::binding_hash(circuit->id, obs_id, theta, input)
          : 0;

  if (s->cache_enabled) {
    Result hit{};
    bool found = false;
    {
      const common::MutexLock lock(s->cache_mutex);
      if (const auto* entry = s->cache_find_locked(key_hash, circuit->id,
                                                   obs_id, theta, input)) {
        if constexpr (kExpect)
          hit = entry->expect_result;
        else
          hit = entry->run_result;
        found = true;
      }
    }
    if (found) {
      {
        const common::MutexLock lock(s->mutex);
        if (s->stop) throw std::runtime_error("ServeSession: shut down");
        ++s->submitted;
        ++s->completed;
        ++s->cache_hits;
        s->record_latency(now, detail::Clock::now());
      }
      QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_submitted_total", 1);
      QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_completed_total", 1);
      QOC_METRIC_COUNTER_ADD("qoc_serve_cache_hits_total", 1);
      // Cache hits are admitted, completed jobs: the trace records them
      // like any other (submission immediately followed by its result),
      // so a replay against a cache-less session reproduces them.
      if (auto* sink = s->options.trace_sink.get()) {
        const auto since = std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - s->started);
        sink->on_submit(client_id, seq, circuit->id, obs_id, theta, input,
                        since, stream);
        if constexpr (kExpect)
          sink->on_expect_result(stream, hit);
        else
          sink->on_run_result(stream, hit);
      }
      std::promise<Result> p;
      auto f = p.get_future();
      p.set_value(std::move(hit));
      return f;
    }
  }

  detail::Job job;
  job.theta.assign(theta.begin(), theta.end());
  job.input.assign(input.begin(), input.end());
  job.stream = stream;
  job.key_hash = key_hash;
  job.enqueued = now;
  job.is_expect = kExpect;
  auto future = [&job] {
    if constexpr (kExpect)
      return job.expect_promise.get_future();
    else
      return job.run_promise.get_future();
  }();

  {
    common::UniqueLock lock(s->mutex);
    if (s->stop) throw std::runtime_error("ServeSession: shut down");
    // Admission control: `in_flight` counts every admitted job until
    // its future is fulfilled (coalescing, routed to a lane, or
    // executing), so the bound caps the whole backlog, not just the
    // buckets the dispatcher has not flushed yet.
    if (s->options.max_queue > 0 && s->in_flight >= s->options.max_queue) {
      if (s->options.overload == OverloadPolicy::Shed) {
        ++s->shed_jobs;
        QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_shed_total", 1);
        lock.unlock();
        std::promise<Result> p;
        auto rejected = p.get_future();
        p.set_exception(std::make_exception_ptr(QueueFullError(
            "ServeSession: queue full (max_queue reached), job shed")));
        return rejected;
      }
      while (!s->stop && s->in_flight >= s->options.max_queue)
        s->space_cv.wait(s->mutex);
      if (s->stop) throw std::runtime_error("ServeSession: shut down");
    }
    ++s->in_flight;
    // Admission record, under the queue lock: the dispatcher needs this
    // same lock to extract the job, so the sink always observes the
    // submission before the job's result. Shed jobs returned above are
    // never recorded -- they consumed a sequence number but produced
    // nothing a replay could check.
    if (auto* sink = s->options.trace_sink.get())
      sink->on_submit(client_id, seq, circuit->id, obs_id, theta, input,
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          now - s->started),
                      stream);
    auto& bucket = s->buckets[{circuit->id, obs_id}];
    if (bucket.circuit == nullptr) {
      bucket.circuit = circuit;
      bucket.observable = observable;
    }
    if (bucket.size == 0) bucket.oldest = now;
    bucket.lanes[client_id].push_back(std::move(job));
    ++bucket.size;
    ++s->total_queued;
    ++s->submitted;
    s->peak_queue_depth = std::max(s->peak_queue_depth, s->total_queued);
    QOC_METRIC_COUNTER_ADD("qoc_serve_jobs_submitted_total", 1);
    // Per-job async span: begins at admission, ends when the drain
    // lane fulfils the promise; the stable PRNG stream id links the
    // two sides across threads.
    QOC_TRACE_ASYNC_BEGIN("serve", "job", stream);
    // A job never shortens an existing bucket's deadline, so the
    // dispatcher only needs a nudge when a new deadline appears or a
    // size flush becomes possible.
    if (bucket.size == 1 || bucket.size >= s->options.max_batch)
      s->cv.notify_all();
  }
  return future;
}

}  // namespace

std::future<std::vector<double>> ServeSession::submit_run(
    Client& c, const CircuitHandle& circuit, std::span<const double> theta,
    std::span<const double> input) {
  auto* s = state_.get();
  validate_submission(s, circuit.entry_.get(), theta, input);
  return submit_impl<std::vector<double>>(s, c.id_, c.seq_++, circuit.entry_,
                                          nullptr, theta, input);
}

std::future<double> ServeSession::submit_expect(
    Client& c, const CircuitHandle& circuit, const ObservableHandle& observable,
    std::span<const double> theta, std::span<const double> input) {
  auto* s = state_.get();
  validate_submission(s, circuit.entry_.get(), theta, input);
  if (!observable.valid())
    throw std::invalid_argument("serve: submit with an empty ObservableHandle");
  if (observable.entry_->owner != s)
    throw std::invalid_argument(
        "serve: ObservableHandle belongs to a different session");
  if (observable.entry_->observable.num_qubits() !=
      circuit.entry_->plan.num_qubits())
    throw std::invalid_argument("serve: observable qubit count mismatch");
  return submit_impl<double>(s, c.id_, c.seq_++, circuit.entry_,
                             observable.entry_, theta, input);
}

std::future<std::vector<double>> ServeSession::submit_pinned(
    std::uint32_t client_id, std::uint64_t seq, const CircuitHandle& circuit,
    std::span<const double> theta, std::span<const double> input) {
  auto* s = state_.get();
  validate_submission(s, circuit.entry_.get(), theta, input);
  return submit_impl<std::vector<double>>(s, client_id, seq, circuit.entry_,
                                          nullptr, theta, input);
}

std::future<double> ServeSession::submit_expect_pinned(
    std::uint32_t client_id, std::uint64_t seq, const CircuitHandle& circuit,
    const ObservableHandle& observable, std::span<const double> theta,
    std::span<const double> input) {
  auto* s = state_.get();
  validate_submission(s, circuit.entry_.get(), theta, input);
  if (!observable.valid())
    throw std::invalid_argument("serve: submit with an empty ObservableHandle");
  if (observable.entry_->owner != s)
    throw std::invalid_argument(
        "serve: ObservableHandle belongs to a different session");
  if (observable.entry_->observable.num_qubits() !=
      circuit.entry_->plan.num_qubits())
    throw std::invalid_argument("serve: observable qubit count mismatch");
  return submit_impl<double>(s, client_id, seq, circuit.entry_,
                             observable.entry_, theta, input);
}

MetricsSnapshot ServeSession::metrics() const {
  const auto* s = state_.get();
  MetricsSnapshot m;
  {
    const common::MutexLock lock(s->mutex);
    m.submitted = s->submitted;
    m.completed = s->completed;
    m.failed = s->failed;
    m.cache_hits = s->cache_hits;
    m.folded_jobs = s->folded_jobs;
    m.shed_jobs = s->shed_jobs;
    m.batches = s->batches;
    m.coalesced_jobs = s->coalesced_jobs;
    m.size_flushes = s->size_flushes;
    m.deadline_flushes = s->deadline_flushes;
    m.queue_depth = s->total_queued;
    m.peak_queue_depth = s->peak_queue_depth;
    m.in_flight = s->in_flight;
    m.replicas.reserve(s->lanes.size());
    for (const auto& lane : s->lanes) {
      ReplicaMetrics r;
      r.backend_name = lane->replica->name();
      const detail::LaneCounters& slice = s->lane_stats[lane->index];
      r.batches = slice.batches;
      r.coalesced_jobs = slice.coalesced_jobs;
      r.executed_jobs = slice.executed_jobs;
      r.size_flushes = slice.size_flushes;
      r.deadline_flushes = slice.deadline_flushes;
      r.affinity_routes = slice.affinity_routes;
      r.assigned_structures = slice.assigned_structures;
      r.inflight_jobs =
          lane->inflight_jobs.load(std::memory_order_relaxed);
      if (r.batches > 0)
        r.mean_batch_occupancy = static_cast<double>(r.coalesced_jobs) /
                                 static_cast<double>(r.batches);
      m.replicas.push_back(std::move(r));
    }
  }
  if (m.batches > 0)
    m.mean_batch_occupancy = static_cast<double>(m.coalesced_jobs) /
                             static_cast<double>(m.batches);
  // Percentiles come from the session's full-history log-scale
  // histogram (exact below 8ns, <=6.25% relative error above; same
  // rank convention as indexing the sorted window this replaced). The
  // histogram is lock-free, so no mutex hold and no O(n log n) sort on
  // the metrics path.
  if (s->latency_hist.count() > 0) {
    m.p50_latency_us =
        static_cast<double>(s->latency_hist.quantile_ns(0.50)) / 1000.0;
    m.p99_latency_us =
        static_cast<double>(s->latency_hist.quantile_ns(0.99)) / 1000.0;
  }
  const double elapsed_s = std::chrono::duration<double>(
                               detail::Clock::now() - s->started)
                               .count();
  if (elapsed_s > 0.0)
    m.throughput_per_s = static_cast<double>(m.completed) / elapsed_s;
  const auto pool = common::ThreadPool::global().stats();
  m.pool_workers = pool.workers;
  m.pool_pending = pool.pending_tickets;
  return m;
}

}  // namespace qoc::serve
