#include "qoc/serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "qoc/common/thread_pool.hpp"

namespace qoc::serve {
namespace detail {

using Clock = std::chrono::steady_clock;

struct CircuitEntry {
  const SessionState* owner = nullptr;
  std::uint64_t id = 0;
  exec::CompileOptions options;
  exec::CompiledCircuit plan;
};

struct ObservableEntry {
  const SessionState* owner = nullptr;
  std::uint64_t id = 0;
  exec::CompiledObservable observable;
};

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Bitwise hash of a job's cache identity. Doubles are hashed (and later
/// compared) bit-for-bit: the cache must never unify bindings that merely
/// compare equal (e.g. -0.0 vs 0.0 steer sign-sensitive paths apart).
std::uint64_t binding_hash(std::uint64_t circuit_id, std::uint64_t obs_id,
                           std::span<const double> theta,
                           std::span<const double> input) {
  std::uint64_t h = mix(mix(0x5E4EC0DEULL, circuit_id), obs_id);
  for (const double d : theta) h = mix(h, std::bit_cast<std::uint64_t>(d));
  h = mix(h, 0xB1D1B0DAULL);  // theta/input boundary marker
  for (const double d : input) h = mix(h, std::bit_cast<std::uint64_t>(d));
  return h;
}

bool spans_equal_bitwise(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

/// Observable identity for registry dedup: the (qubit count, term list)
/// pair fully determines a CompiledObservable (constant and groups are
/// derived from it deterministically). Coefficients compare bitwise.
std::uint64_t observable_hash(const exec::CompiledObservable& o) {
  std::uint64_t h = mix(0x0B5E7FULL, static_cast<std::uint64_t>(o.num_qubits()));
  for (const auto& t : o.terms()) {
    for (const char ch : t.paulis)
      h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
    h = mix(h, std::bit_cast<std::uint64_t>(t.coeff));
    h = mix(h, 0x7E53ULL);  // term separator
  }
  return h;
}

bool observable_equal(const exec::CompiledObservable& a,
                      const exec::CompiledObservable& b) {
  if (a.num_qubits() != b.num_qubits() ||
      a.terms().size() != b.terms().size())
    return false;
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    if (a.terms()[i].paulis != b.terms()[i].paulis ||
        std::bit_cast<std::uint64_t>(a.terms()[i].coeff) !=
            std::bit_cast<std::uint64_t>(b.terms()[i].coeff))
      return false;
  }
  return true;
}

}  // namespace

/// One queued evaluation. Bindings are owned copies, so client buffers
/// are free the moment submit() returns; the promise is fulfilled by the
/// dispatcher after the coalesced batch runs.
struct Job {
  std::vector<double> theta, input;
  std::uint64_t stream = 0;
  std::uint64_t key_hash = 0;  // result-cache key (0 when cache disabled)
  Clock::time_point enqueued;
  bool is_expect = false;
  std::promise<std::vector<double>> run_promise;
  std::promise<double> expect_promise;
};

/// All jobs queued for one (circuit structure, observable) pair --
/// exactly the granularity one run_batch / expect_batch call serves.
/// Jobs live in per-client FIFO lanes; extraction round-robins across
/// lanes so a full batch always carries every waiting client.
struct Bucket {
  std::shared_ptr<const CircuitEntry> circuit;
  std::shared_ptr<const ObservableEntry> observable;  // null for run jobs
  std::map<std::uint32_t, std::deque<Job>> lanes;
  std::size_t size = 0;
  Clock::time_point oldest;   // enqueue time of the oldest queued job
  std::uint32_t next_lane = 0;  // fairness cursor across drains
};

struct CacheEntry {
  std::uint64_t key_hash = 0;
  std::uint64_t circuit_id = 0, obs_id = 0;
  std::vector<double> theta, input;
  bool is_expect = false;
  std::vector<double> run_result;
  double expect_result = 0.0;
};

struct SessionState {
  backend::Backend& backend;
  const ServeOptions options;
  const bool cache_enabled;
  const Clock::time_point started = Clock::now();

  // ---- job queue + metrics (mutex) ----
  mutable std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Bucket> buckets;
  std::size_t total_queued = 0;

  std::uint64_t submitted = 0, completed = 0, failed = 0, cache_hits = 0;
  std::uint64_t batches = 0, coalesced_jobs = 0;
  std::uint64_t size_flushes = 0, deadline_flushes = 0;
  std::size_t peak_queue_depth = 0;
  static constexpr std::size_t kLatencyWindow = 8192;
  std::vector<double> latency_us = std::vector<double>(kLatencyWindow, 0.0);
  std::size_t latency_pos = 0;

  // ---- circuit / observable registry (registry_mutex) ----
  std::mutex registry_mutex;
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<const CircuitEntry>>>
      registry;
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<const ObservableEntry>>>
      obs_registry;
  std::uint64_t next_circuit_id = 1;
  std::uint64_t next_observable_id = 1;
  std::atomic<std::uint32_t> next_client{0};

  // ---- bounded LRU result cache (cache_mutex) ----
  std::mutex cache_mutex;
  std::list<CacheEntry> lru;  // front = most recently used
  std::unordered_map<std::uint64_t,
                     std::vector<std::list<CacheEntry>::iterator>>
      cache_index;

  // ---- dispatcher ----
  std::mutex join_mutex;
  std::thread dispatcher;

  SessionState(backend::Backend& b, ServeOptions o)
      : backend(b),
        options(o),
        cache_enabled(o.result_cache_capacity > 0 && b.deterministic()) {}

  // Drain concurrency: the requested fan-out, capped at what the shared
  // pool can actually supply right now (workers + the dispatcher
  // itself). Thread count never affects results (the run_batch
  // determinism contract), so reading a stale snapshot is harmless.
  unsigned drain_threads() const {
    unsigned t = options.exec_threads == 0 ? hardware_threads()
                                           : options.exec_threads;
    const auto pool = common::ThreadPool::global().stats();
    return std::min<unsigned>(t, pool.workers + 1);
  }

  void record_latency(Clock::time_point enqueued, Clock::time_point now) {
    const double us =
        std::chrono::duration<double, std::micro>(now - enqueued).count();
    latency_us[latency_pos % kLatencyWindow] = us;
    ++latency_pos;
  }

  // ---- result cache -------------------------------------------------------

  const CacheEntry* cache_find_locked(std::uint64_t key_hash,
                                      std::uint64_t circuit_id,
                                      std::uint64_t obs_id,
                                      std::span<const double> theta,
                                      std::span<const double> input) {
    const auto it = cache_index.find(key_hash);
    if (it == cache_index.end()) return nullptr;
    for (const auto& entry_it : it->second) {
      if (entry_it->circuit_id != circuit_id || entry_it->obs_id != obs_id)
        continue;
      if (!spans_equal_bitwise(entry_it->theta, theta) ||
          !spans_equal_bitwise(entry_it->input, input))
        continue;
      lru.splice(lru.begin(), lru, entry_it);  // refresh recency
      return &*entry_it;
    }
    return nullptr;
  }

  void cache_insert(CacheEntry entry) {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    if (cache_find_locked(entry.key_hash, entry.circuit_id, entry.obs_id,
                          entry.theta, entry.input) != nullptr)
      return;  // a concurrent duplicate already landed; keep it fresh
    while (lru.size() >= options.result_cache_capacity) {
      const auto victim = std::prev(lru.end());
      auto& bucket = cache_index[victim->key_hash];
      std::erase(bucket, victim);
      if (bucket.empty()) cache_index.erase(victim->key_hash);
      lru.pop_back();
    }
    lru.push_front(std::move(entry));
    cache_index[lru.front().key_hash].push_back(lru.begin());
  }

  // ---- queue --------------------------------------------------------------

  /// Remove up to `max` jobs from `b`, one per client lane per round.
  /// Caller holds `mutex`.
  std::vector<Job> extract_locked(Bucket& b, std::size_t max) {
    std::vector<Job> out;
    out.reserve(std::min(b.size, max));
    while (out.size() < max && b.size > 0) {
      auto it = b.lanes.lower_bound(b.next_lane);
      if (it == b.lanes.end()) it = b.lanes.begin();
      out.push_back(std::move(it->second.front()));
      it->second.pop_front();
      --b.size;
      --total_queued;
      b.next_lane = it->first + 1;
      if (it->second.empty()) b.lanes.erase(it);
    }
    if (b.size > 0) {
      b.oldest = Clock::time_point::max();
      for (const auto& [client, lane] : b.lanes)
        b.oldest = std::min(b.oldest, lane.front().enqueued);
    }
    return out;
  }

  /// Run one coalesced batch through the backend and fulfil every
  /// promise. Called by the dispatcher with `mutex` released.
  void execute(const std::shared_ptr<const CircuitEntry>& circuit,
               const std::shared_ptr<const ObservableEntry>& observable,
               std::vector<Job> batch) {
    std::vector<exec::Evaluation> evals;
    evals.reserve(batch.size());
    for (const Job& j : batch)
      evals.push_back({j.theta, j.input, exec::Evaluation::kNoShift, 0.0,
                       j.stream});
    const unsigned threads = drain_threads();

    // Only the backend call itself can fail a job. Counters and
    // latencies are committed BEFORE any promise is fulfilled, so a
    // client that observes its future ready also observes metrics that
    // count it; fulfilment afterwards is nothrow (fresh promises,
    // nothrow payload moves), and cache insertion swallows its own
    // failures -- a job whose result was computed must not be failed
    // retroactively because memoising it ran out of memory.
    std::vector<std::vector<double>> run_results;
    std::vector<double> expect_results;
    try {
      if (observable == nullptr)
        run_results = backend.run_batch(circuit->plan, evals, threads);
      else
        expect_results = backend.expect_batch(circuit->plan,
                                              observable->observable, evals,
                                              threads);
    } catch (...) {
      const auto error = std::current_exception();
      {
        const std::lock_guard<std::mutex> lock(mutex);
        failed += batch.size();
      }
      for (Job& j : batch) {
        if (j.is_expect)
          j.expect_promise.set_exception(error);
        else
          j.run_promise.set_exception(error);
      }
      return;
    }

    {
      const auto now = Clock::now();
      const std::lock_guard<std::mutex> lock(mutex);
      completed += batch.size();
      for (const Job& j : batch) record_latency(j.enqueued, now);
    }
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (cache_enabled) {
        try {
          if (observable == nullptr)
            cache_insert({batch[k].key_hash, circuit->id, 0, batch[k].theta,
                          batch[k].input, false, run_results[k], 0.0});
          else
            cache_insert({batch[k].key_hash, circuit->id, observable->id,
                          batch[k].theta, batch[k].input, true, {},
                          expect_results[k]});
        } catch (...) {
        }
      }
      if (observable == nullptr)
        batch[k].run_promise.set_value(std::move(run_results[k]));
      else
        batch[k].expect_promise.set_value(expect_results[k]);
    }
  }

  /// Coalescer loop: wait until some bucket is full (size flush) or its
  /// oldest job's deadline passed (deadline flush), drain it through one
  /// backend call, repeat. After stop() every remaining job drains
  /// immediately, so shutdown never abandons a future.
  void dispatcher_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      if (total_queued == 0) {
        if (stop) return;
        cv.wait(lock);
        continue;
      }
      // Expired deadlines outrank size-full buckets: under sustained
      // full-batch traffic on one structure, other structures' jobs
      // must still flush within max_delay (no cross-structure
      // starvation). Size flushes only apply while every deadline is
      // still in the future.
      const auto now = Clock::now();
      auto pick = buckets.end();
      bool by_size = false;
      auto earliest = Clock::time_point::max();
      auto earliest_it = buckets.end();
      auto full_it = buckets.end();
      for (auto it = buckets.begin(); it != buckets.end(); ++it) {
        if (it->second.size == 0) continue;
        if (full_it == buckets.end() && it->second.size >= options.max_batch)
          full_it = it;
        const auto deadline = it->second.oldest + options.max_delay;
        if (deadline < earliest) {
          earliest = deadline;
          earliest_it = it;
        }
      }
      if (stop || earliest <= now) {
        pick = earliest_it;
      } else if (full_it != buckets.end()) {
        pick = full_it;
        by_size = true;
      } else {
        cv.wait_until(lock, earliest);
        continue;
      }

      auto& bucket = pick->second;
      const auto circuit = bucket.circuit;
      const auto observable = bucket.observable;
      std::vector<Job> batch = extract_locked(bucket, options.max_batch);
      if (bucket.size == 0) buckets.erase(pick);
      ++batches;
      coalesced_jobs += batch.size();
      if (by_size)
        ++size_flushes;
      else if (!stop)
        ++deadline_flushes;

      lock.unlock();
      execute(circuit, observable, std::move(batch));
      lock.lock();
    }
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

const exec::CompiledCircuit& CircuitHandle::plan() const {
  if (!entry_) throw std::logic_error("CircuitHandle: empty handle");
  return entry_->plan;
}

std::uint64_t CircuitHandle::id() const {
  if (!entry_) throw std::logic_error("CircuitHandle: empty handle");
  return entry_->id;
}

const exec::CompiledObservable& ObservableHandle::observable() const {
  if (!entry_) throw std::logic_error("ObservableHandle: empty handle");
  return entry_->observable;
}

std::uint64_t ObservableHandle::id() const {
  if (!entry_) throw std::logic_error("ObservableHandle: empty handle");
  return entry_->id;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

std::future<std::vector<double>> Client::submit(const CircuitHandle& circuit,
                                                std::span<const double> theta,
                                                std::span<const double> input) {
  if (session_ == nullptr)
    throw std::logic_error("serve::Client: default-constructed client");
  return session_->submit_run(*this, circuit, theta, input);
}

std::future<double> Client::submit_expect(const CircuitHandle& circuit,
                                          const ObservableHandle& observable,
                                          std::span<const double> theta,
                                          std::span<const double> input) {
  if (session_ == nullptr)
    throw std::logic_error("serve::Client: default-constructed client");
  return session_->submit_expect(*this, circuit, observable, theta, input);
}

// ---------------------------------------------------------------------------
// ServeSession
// ---------------------------------------------------------------------------

ServeSession::ServeSession(backend::Backend& backend, ServeOptions options)
    : backend_(backend), options_(options) {
  if (options_.max_batch == 0)
    throw std::invalid_argument("ServeSession: max_batch == 0");
  if (options_.max_delay.count() < 0)
    throw std::invalid_argument("ServeSession: negative max_delay");
  state_ = std::make_shared<detail::SessionState>(backend_, options_);
  state_->dispatcher =
      std::thread([s = state_.get()] { s->dispatcher_loop(); });
}

ServeSession::~ServeSession() { shutdown(); }

void ServeSession::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->cv.notify_all();
  const std::lock_guard<std::mutex> lock(state_->join_mutex);
  if (state_->dispatcher.joinable()) state_->dispatcher.join();
}

CircuitHandle ServeSession::register_circuit(const circuit::Circuit& c,
                                             exec::CompileOptions options) {
  auto* s = state_.get();
  const std::uint64_t h = exec::structure_hash(c);
  const std::lock_guard<std::mutex> lock(s->registry_mutex);
  auto& bucket = s->registry[h];
  std::erase_if(bucket, [](const auto& w) { return w.expired(); });
  for (const auto& weak : bucket) {
    if (const auto entry = weak.lock()) {
      if (entry->options.fuse_1q == options.fuse_1q &&
          exec::structure_equal(c, entry->plan.source()))
        return CircuitHandle(entry);
    }
  }
  auto entry = std::make_shared<const detail::CircuitEntry>(detail::CircuitEntry{
      s, s->next_circuit_id++, options,
      exec::CompiledCircuit::compile(c, options)});
  bucket.push_back(entry);
  return CircuitHandle(std::move(entry));
}

ObservableHandle ServeSession::register_observable(
    exec::CompiledObservable observable) {
  // Dedup like register_circuit: identical observables must share one
  // id, or jobs from different clients would land in different
  // coalescing buckets (and result-cache keys) and never batch.
  auto* s = state_.get();
  const std::uint64_t h = detail::observable_hash(observable);
  const std::lock_guard<std::mutex> lock(s->registry_mutex);
  auto& bucket = s->obs_registry[h];
  std::erase_if(bucket, [](const auto& w) { return w.expired(); });
  for (const auto& weak : bucket) {
    if (const auto entry = weak.lock()) {
      if (detail::observable_equal(entry->observable, observable))
        return ObservableHandle(entry);
    }
  }
  auto entry = std::make_shared<const detail::ObservableEntry>(
      detail::ObservableEntry{s, s->next_observable_id++,
                              std::move(observable)});
  bucket.push_back(entry);
  return ObservableHandle(std::move(entry));
}

Client ServeSession::client() {
  return Client(this, state_->next_client.fetch_add(1));
}

namespace {

void validate_submission(const detail::SessionState* owner,
                         const detail::CircuitEntry* entry,
                         std::span<const double> theta,
                         std::span<const double> input) {
  if (entry == nullptr)
    throw std::invalid_argument("serve: submit with an empty CircuitHandle");
  if (entry->owner != owner)
    throw std::invalid_argument(
        "serve: CircuitHandle belongs to a different session");
  if (theta.size() < static_cast<std::size_t>(entry->plan.num_trainable()))
    throw std::invalid_argument("serve: theta shorter than the plan's "
                                "trainable-parameter count");
  if (input.size() < static_cast<std::size_t>(entry->plan.num_inputs()))
    throw std::invalid_argument(
        "serve: input shorter than the plan's feature count");
}

/// Shared submission path for run and expect jobs (they differ only in
/// result type, promise member and observable id): cache probe,
/// job construction, stop check, bucket enqueue and dispatcher nudge
/// all live here exactly once. `observable` is null for run jobs.
template <typename Result>
std::future<Result> submit_impl(
    detail::SessionState* s, std::uint32_t client_id, std::uint64_t seq,
    const std::shared_ptr<const detail::CircuitEntry>& circuit,
    const std::shared_ptr<const detail::ObservableEntry>& observable,
    std::span<const double> theta, std::span<const double> input) {
  constexpr bool kExpect = std::is_same_v<Result, double>;
  const auto now = detail::Clock::now();
  const std::uint64_t stream = ServeSession::client_stream(client_id, seq);
  const std::uint64_t obs_id = kExpect ? observable->id : 0;
  const std::uint64_t key_hash =
      s->cache_enabled
          ? detail::binding_hash(circuit->id, obs_id, theta, input)
          : 0;

  if (s->cache_enabled) {
    Result hit{};
    bool found = false;
    {
      const std::lock_guard<std::mutex> lock(s->cache_mutex);
      if (const auto* entry = s->cache_find_locked(key_hash, circuit->id,
                                                   obs_id, theta, input)) {
        if constexpr (kExpect)
          hit = entry->expect_result;
        else
          hit = entry->run_result;
        found = true;
      }
    }
    if (found) {
      {
        const std::lock_guard<std::mutex> lock(s->mutex);
        if (s->stop) throw std::runtime_error("ServeSession: shut down");
        ++s->submitted;
        ++s->completed;
        ++s->cache_hits;
        s->record_latency(now, detail::Clock::now());
      }
      std::promise<Result> p;
      auto f = p.get_future();
      p.set_value(std::move(hit));
      return f;
    }
  }

  detail::Job job;
  job.theta.assign(theta.begin(), theta.end());
  job.input.assign(input.begin(), input.end());
  job.stream = stream;
  job.key_hash = key_hash;
  job.enqueued = now;
  job.is_expect = kExpect;
  auto future = [&job] {
    if constexpr (kExpect)
      return job.expect_promise.get_future();
    else
      return job.run_promise.get_future();
  }();

  {
    const std::lock_guard<std::mutex> lock(s->mutex);
    if (s->stop) throw std::runtime_error("ServeSession: shut down");
    auto& bucket = s->buckets[{circuit->id, obs_id}];
    if (bucket.circuit == nullptr) {
      bucket.circuit = circuit;
      bucket.observable = observable;
    }
    if (bucket.size == 0) bucket.oldest = now;
    bucket.lanes[client_id].push_back(std::move(job));
    ++bucket.size;
    ++s->total_queued;
    ++s->submitted;
    s->peak_queue_depth = std::max(s->peak_queue_depth, s->total_queued);
    // A job never shortens an existing bucket's deadline, so the
    // dispatcher only needs a nudge when a new deadline appears or a
    // size flush becomes possible.
    if (bucket.size == 1 || bucket.size >= s->options.max_batch)
      s->cv.notify_all();
  }
  return future;
}

}  // namespace

std::future<std::vector<double>> ServeSession::submit_run(
    Client& c, const CircuitHandle& circuit, std::span<const double> theta,
    std::span<const double> input) {
  auto* s = state_.get();
  validate_submission(s, circuit.entry_.get(), theta, input);
  return submit_impl<std::vector<double>>(s, c.id_, c.seq_++, circuit.entry_,
                                          nullptr, theta, input);
}

std::future<double> ServeSession::submit_expect(
    Client& c, const CircuitHandle& circuit, const ObservableHandle& observable,
    std::span<const double> theta, std::span<const double> input) {
  auto* s = state_.get();
  validate_submission(s, circuit.entry_.get(), theta, input);
  if (!observable.valid())
    throw std::invalid_argument("serve: submit with an empty ObservableHandle");
  if (observable.entry_->owner != s)
    throw std::invalid_argument(
        "serve: ObservableHandle belongs to a different session");
  if (observable.entry_->observable.num_qubits() !=
      circuit.entry_->plan.num_qubits())
    throw std::invalid_argument("serve: observable qubit count mismatch");
  return submit_impl<double>(s, c.id_, c.seq_++, circuit.entry_,
                             observable.entry_, theta, input);
}

MetricsSnapshot ServeSession::metrics() const {
  const auto* s = state_.get();
  MetricsSnapshot m;
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(s->mutex);
    m.submitted = s->submitted;
    m.completed = s->completed;
    m.failed = s->failed;
    m.cache_hits = s->cache_hits;
    m.batches = s->batches;
    m.coalesced_jobs = s->coalesced_jobs;
    m.size_flushes = s->size_flushes;
    m.deadline_flushes = s->deadline_flushes;
    m.queue_depth = s->total_queued;
    m.peak_queue_depth = s->peak_queue_depth;
    const std::size_t filled =
        std::min(s->latency_pos, detail::SessionState::kLatencyWindow);
    window.assign(s->latency_us.begin(),
                  s->latency_us.begin() + static_cast<std::ptrdiff_t>(filled));
  }
  if (m.batches > 0)
    m.mean_batch_occupancy = static_cast<double>(m.coalesced_jobs) /
                             static_cast<double>(m.batches);
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    m.p50_latency_us = window[(window.size() - 1) / 2];
    m.p99_latency_us = window[(window.size() - 1) * 99 / 100];
  }
  const double elapsed_s = std::chrono::duration<double>(
                               detail::Clock::now() - s->started)
                               .count();
  if (elapsed_s > 0.0)
    m.throughput_per_s = static_cast<double>(m.completed) / elapsed_s;
  const auto pool = common::ThreadPool::global().stats();
  m.pool_workers = pool.workers;
  m.pool_pending = pool.pending_tickets;
  return m;
}

}  // namespace qoc::serve
