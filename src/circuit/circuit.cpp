#include "qoc/circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "qoc/sim/gates.hpp"
#include "qoc/sim/statevector.hpp"

namespace qoc::circuit {

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::Cx:
    case GateKind::Cz:
    case GateKind::Swap:
    case GateKind::Rxx:
    case GateKind::Ryy:
    case GateKind::Rzz:
    case GateKind::Rzx:
    case GateKind::Crx:
    case GateKind::Cry:
    case GateKind::Crz:
    case GateKind::Cp:
      return 2;
    case GateKind::Ccx:
      return 3;
    default:
      return 1;
  }
}

bool gate_is_parameterised(GateKind kind) {
  switch (kind) {
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::Phase:
    case GateKind::Rxx:
    case GateKind::Ryy:
    case GateKind::Rzz:
    case GateKind::Rzx:
    case GateKind::Crx:
    case GateKind::Cry:
    case GateKind::Crz:
    case GateKind::Cp:
      return true;
    default:
      return false;
  }
}

bool gate_supports_parameter_shift(GateKind kind) {
  switch (kind) {
    // exp(-i theta/2 H) with H in {X,Y,Z, XX,YY,ZZ,ZX}: eigenvalues +-1.
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::Rxx:
    case GateKind::Ryy:
    case GateKind::Rzz:
    case GateKind::Rzx:
      return true;
    default:
      return false;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::I: return "id";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::H: return "h";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::Sx: return "sx";
    case GateKind::Rx: return "rx";
    case GateKind::Ry: return "ry";
    case GateKind::Rz: return "rz";
    case GateKind::Phase: return "p";
    case GateKind::Cx: return "cx";
    case GateKind::Cz: return "cz";
    case GateKind::Swap: return "swap";
    case GateKind::Rxx: return "rxx";
    case GateKind::Ryy: return "ryy";
    case GateKind::Rzz: return "rzz";
    case GateKind::Rzx: return "rzx";
    case GateKind::Crx: return "crx";
    case GateKind::Cry: return "cry";
    case GateKind::Crz: return "crz";
    case GateKind::Cp: return "cp";
    case GateKind::Ccx: return "ccx";
  }
  return "?";
}

Matrix gate_matrix(GateKind kind, double angle) {
  using namespace qoc::sim;
  switch (kind) {
    case GateKind::I: return gate_i();
    case GateKind::X: return gate_x();
    case GateKind::Y: return gate_y();
    case GateKind::Z: return gate_z();
    case GateKind::H: return gate_h();
    case GateKind::S: return gate_s();
    case GateKind::Sdg: return gate_sdg();
    case GateKind::T: return gate_t();
    case GateKind::Tdg: return gate_tdg();
    case GateKind::Sx: return gate_sx();
    case GateKind::Rx: return gate_rx(angle);
    case GateKind::Ry: return gate_ry(angle);
    case GateKind::Rz: return gate_rz(angle);
    case GateKind::Phase: return gate_p(angle);
    case GateKind::Cx: return gate_cx();
    case GateKind::Cz: return gate_cz();
    case GateKind::Swap: return gate_swap();
    case GateKind::Rxx: return gate_rxx(angle);
    case GateKind::Ryy: return gate_ryy(angle);
    case GateKind::Rzz: return gate_rzz(angle);
    case GateKind::Rzx: return gate_rzx(angle);
    case GateKind::Crx: return gate_crx(angle);
    case GateKind::Cry: return gate_cry(angle);
    case GateKind::Crz: return gate_crz(angle);
    case GateKind::Cp: return gate_cp(angle);
    case GateKind::Ccx: return gate_ccx();
  }
  throw std::logic_error("gate_matrix: unknown kind");
}

double resolve_angle(const ParamRef& ref, std::span<const double> theta,
                     std::span<const double> input) {
  switch (ref.source) {
    case ParamRef::Source::None:
      return 0.0;
    case ParamRef::Source::Constant:
      return ref.value;
    case ParamRef::Source::Trainable:
      if (ref.index < 0 || static_cast<std::size_t>(ref.index) >= theta.size())
        throw std::out_of_range("resolve_angle: trainable index");
      return ref.scale * theta[ref.index] + ref.value;
    case ParamRef::Source::Input:
      if (ref.index < 0 || static_cast<std::size_t>(ref.index) >= input.size())
        throw std::out_of_range("resolve_angle: input index");
      return ref.scale * input[ref.index] + ref.value;
  }
  throw std::logic_error("resolve_angle: unknown source");
}

Circuit::Circuit(int n_qubits) : n_qubits_(n_qubits) {
  if (n_qubits < 1) throw std::invalid_argument("Circuit: n_qubits < 1");
}

void Circuit::add(GateKind kind, std::vector<int> qubits, ParamRef param) {
  const int arity = gate_arity(kind);
  if (static_cast<int>(qubits.size()) != arity)
    throw std::invalid_argument("Circuit::add: wrong qubit count for " +
                                gate_name(kind));
  for (int q : qubits)
    if (q < 0 || q >= n_qubits_)
      throw std::out_of_range("Circuit::add: qubit index");
  for (std::size_t i = 0; i < qubits.size(); ++i)
    for (std::size_t j = i + 1; j < qubits.size(); ++j)
      if (qubits[i] == qubits[j])
        throw std::invalid_argument("Circuit::add: duplicate qubit");
  if (gate_is_parameterised(kind)) {
    if (param.source == ParamRef::Source::None)
      throw std::invalid_argument("Circuit::add: " + gate_name(kind) +
                                  " requires a parameter");
  } else if (param.source != ParamRef::Source::None) {
    throw std::invalid_argument("Circuit::add: " + gate_name(kind) +
                                " takes no parameter");
  }
  if (param.source == ParamRef::Source::Trainable)
    n_trainable_ = std::max(n_trainable_, param.index + 1);
  if (param.source == ParamRef::Source::Input)
    n_inputs_ = std::max(n_inputs_, param.index + 1);
  ops_.push_back(Op{kind, std::move(qubits), param});
}

void Circuit::append(const Circuit& other) {
  if (other.n_qubits_ != n_qubits_)
    throw std::invalid_argument("Circuit::append: qubit count mismatch");
  for (const auto& op : other.ops_) add(op.kind, op.qubits, op.param);
}

std::vector<std::size_t> Circuit::ops_for_param(int idx) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops_.size(); ++i)
    if (ops_[i].param.source == ParamRef::Source::Trainable &&
        ops_[i].param.index == idx)
      out.push_back(i);
  return out;
}

std::size_t Circuit::count_1q() const {
  std::size_t n = 0;
  for (const auto& op : ops_)
    if (gate_arity(op.kind) == 1) ++n;
  return n;
}

std::size_t Circuit::count_2q() const {
  std::size_t n = 0;
  for (const auto& op : ops_)
    if (gate_arity(op.kind) == 2) ++n;
  return n;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> frontier(n_qubits_, 0);
  for (const auto& op : ops_) {
    std::size_t t = 0;
    for (int q : op.qubits) t = std::max(t, frontier[q]);
    ++t;
    for (int q : op.qubits) frontier[q] = t;
  }
  return *std::max_element(frontier.begin(), frontier.end());
}

Matrix Circuit::unitary(std::span<const double> theta,
                        std::span<const double> input) const {
  if (n_qubits_ > 10)
    throw std::invalid_argument("Circuit::unitary: too many qubits");
  const std::size_t dim = std::size_t{1} << n_qubits_;
  // Build column by column by running the statevector simulator on each
  // basis state -- O(4^n) total but trivially correct.
  Matrix u(dim, dim);
  for (std::size_t col = 0; col < dim; ++col) {
    sim::Statevector sv(n_qubits_);
    std::vector<linalg::cplx> amps(dim, linalg::cplx{0.0, 0.0});
    amps[col] = 1.0;
    sv.set_amplitudes(std::move(amps));
    for (const auto& op : ops_) {
      const double angle = resolve_angle(op.param, theta, input);
      sv.apply_matrix(gate_matrix(op.kind, angle), op.qubits);
    }
    for (std::size_t row = 0; row < dim; ++row)
      u(row, col) = sv.amplitude(row);
  }
  return u;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const auto& op : ops_) {
    os << gate_name(op.kind);
    for (int q : op.qubits) os << " q" << q;
    switch (op.param.source) {
      case ParamRef::Source::Constant:
        os << " (" << op.param.value << ")";
        break;
      case ParamRef::Source::Trainable:
        os << " (theta[" << op.param.index << "])";
        break;
      case ParamRef::Source::Input:
        os << " (x[" << op.param.index << "]*" << op.param.scale << ")";
        break;
      case ParamRef::Source::None:
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace qoc::circuit
