#include "qoc/circuit/layers.hpp"

namespace qoc::circuit {

namespace {

using AddRot1 = void (Circuit::*)(int, ParamRef);
using AddRot2 = void (Circuit::*)(int, int, ParamRef);

void rotation_layer(Circuit& c, AddRot1 add) {
  for (int q = 0; q < c.num_qubits(); ++q)
    (c.*add)(q, ParamRef::trainable(c.new_trainable()));
}

/// Ring layer per the paper: wires (0,1), (1,2), ..., (n-2,n-1) and the
/// logically farthest pair (n-1, 0) closing the ring.
void ring_layer(Circuit& c, AddRot2 add) {
  const int n = c.num_qubits();
  if (n < 2) return;
  for (int q = 0; q + 1 < n; ++q)
    (c.*add)(q, q + 1, ParamRef::trainable(c.new_trainable()));
  if (n > 2)
    (c.*add)(n - 1, 0, ParamRef::trainable(c.new_trainable()));
}

}  // namespace

void add_rx_layer(Circuit& c) { rotation_layer(c, &Circuit::rx); }
void add_ry_layer(Circuit& c) { rotation_layer(c, &Circuit::ry); }
void add_rz_layer(Circuit& c) { rotation_layer(c, &Circuit::rz); }

void add_rzz_ring_layer(Circuit& c) { ring_layer(c, &Circuit::rzz); }
void add_rxx_ring_layer(Circuit& c) { ring_layer(c, &Circuit::rxx); }
void add_rzx_ring_layer(Circuit& c) { ring_layer(c, &Circuit::rzx); }

void add_cz_chain_layer(Circuit& c) {
  for (int q = 0; q + 1 < c.num_qubits(); ++q) c.cz(q, q + 1);
}

void add_image_encoder_16(Circuit& c, double scale) {
  const int n = c.num_qubits();
  if (n != 4)
    throw std::invalid_argument("add_image_encoder_16: needs 4 qubits");
  int feature = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, ParamRef::input(feature++, scale));
  for (int q = 0; q < 4; ++q) c.rz(q, ParamRef::input(feature++, scale));
  for (int q = 0; q < 4; ++q) c.rx(q, ParamRef::input(feature++, scale));
  for (int q = 0; q < 4; ++q) c.ry(q, ParamRef::input(feature++, scale));
}

void add_vowel_encoder_10(Circuit& c, double scale) {
  const int n = c.num_qubits();
  if (n != 4)
    throw std::invalid_argument("add_vowel_encoder_10: needs 4 qubits");
  int feature = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, ParamRef::input(feature++, scale));
  for (int q = 0; q < 4; ++q) c.rz(q, ParamRef::input(feature++, scale));
  for (int q = 0; q < 2; ++q) c.rx(q, ParamRef::input(feature++, scale));
}

void add_rotation_encoder(Circuit& c, int n_features, double scale) {
  if (n_features < 0)
    throw std::invalid_argument("add_rotation_encoder: negative count");
  // Cycle RY -> RZ -> RX layers over the wires.
  const AddRot1 rots[3] = {&Circuit::ry, &Circuit::rz, &Circuit::rx};
  int feature = 0;
  int layer = 0;
  while (feature < n_features) {
    const AddRot1 add = rots[layer % 3];
    for (int q = 0; q < c.num_qubits() && feature < n_features; ++q)
      (c.*add)(q, ParamRef::input(feature++, scale));
    ++layer;
  }
}

}  // namespace qoc::circuit
