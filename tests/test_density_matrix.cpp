// Tests for the density-matrix simulator and DensityMatrixBackend,
// including the cross-validation that anchors the whole noisy substrate:
// trajectory-averaged statevector results must converge to the exact
// density-matrix channel evolution.

#include <gtest/gtest.h>

#include <cmath>

#include "qoc/backend/backend.hpp"
#include "qoc/circuit/circuit.hpp"
#include "qoc/circuit/layers.hpp"
#include "qoc/common/prng.hpp"
#include "qoc/noise/channels.hpp"
#include "qoc/sim/density_matrix.hpp"
#include "qoc/sim/gates.hpp"

namespace {

using namespace qoc;
using linalg::cplx;
using sim::DensityMatrix;
using sim::Statevector;

TEST(DensityMatrix, InitialStateIsGroundProjector) {
  DensityMatrix rho(2);
  EXPECT_NEAR(std::abs(rho.element(0, 0) - cplx{1, 0}), 0.0, 1e-15);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-15);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-15);
}

TEST(DensityMatrix, RejectsOversizedRegisters) {
  EXPECT_THROW(DensityMatrix(13), std::invalid_argument);
  EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
  Prng rng(1);
  Statevector sv(3);
  DensityMatrix rho(3);
  for (int g = 0; g < 15; ++g) {
    const int q = static_cast<int>(rng.uniform_int(3));
    const auto u1 = sim::gate_u3(rng.uniform(0, 3), rng.uniform(0, 3),
                                 rng.uniform(0, 3));
    sv.apply_1q(u1, q);
    rho.apply_unitary(u1, {q});
    const int q2 = (q + 1) % 3;
    const auto u2 = sim::gate_rzz(rng.uniform(-2, 2));
    sv.apply_2q(u2, q, q2);
    rho.apply_unitary(u2, {q, q2});
  }
  // Pure state stays pure; expectations agree.
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  const auto z_sv = sv.expectation_z_all();
  const auto z_dm = rho.expectation_z_all();
  for (int q = 0; q < 3; ++q) EXPECT_NEAR(z_dm[q], z_sv[q], 1e-10);
  // Full matrix check against the outer product.
  const DensityMatrix outer = DensityMatrix::from_statevector(sv);
  for (std::size_t r = 0; r < rho.dim(); ++r)
    for (std::size_t c = 0; c < rho.dim(); ++c)
      EXPECT_NEAR(std::abs(rho.element(r, c) - outer.element(r, c)), 0.0,
                  1e-10);
}

TEST(DensityMatrix, DepolarizingDrivesTowardMaximallyMixed) {
  DensityMatrix rho(1);
  const auto ch = noise::depolarizing_1q(1.0);  // fully depolarizing
  rho.apply_channel(ch.kraus(), {0});
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.element(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, ChannelsPreserveTrace) {
  Prng rng(2);
  DensityMatrix rho(2);
  rho.apply_unitary(sim::gate_h(), {0});
  rho.apply_unitary(sim::gate_cx(), {0, 1});
  for (const auto& ch :
       {noise::depolarizing_1q(0.1), noise::amplitude_damping(0.3),
        noise::phase_damping(0.2),
        noise::thermal_relaxation(100e-6, 80e-6, 300e-9)}) {
    rho.apply_channel(ch.kraus(), {0});
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10) << ch.name();
  }
  rho.apply_channel(noise::depolarizing_2q(0.05).kraus(), {0, 1});
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
}

TEST(DensityMatrix, PurityDecreasesUnderNoise) {
  DensityMatrix rho(2);
  rho.apply_unitary(sim::gate_h(), {0});
  const double p0 = rho.purity();
  rho.apply_channel(noise::depolarizing_1q(0.2).kraus(), {0});
  const double p1 = rho.purity();
  EXPECT_LT(p1, p0);
}

TEST(DensityMatrix, AmplitudeDampingAnalytic) {
  // |1><1| under amplitude damping gamma: population 1 -> 1 - gamma.
  DensityMatrix rho(1);
  rho.apply_unitary(sim::gate_x(), {0});
  rho.apply_channel(noise::amplitude_damping(0.3).kraus(), {0});
  EXPECT_NEAR(rho.element(1, 1).real(), 0.7, 1e-12);
  EXPECT_NEAR(rho.element(0, 0).real(), 0.3, 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherences) {
  DensityMatrix rho(1);
  rho.apply_unitary(sim::gate_h(), {0});
  const double coh_before = std::abs(rho.element(0, 1));
  rho.apply_channel(noise::phase_damping(0.5).kraus(), {0});
  EXPECT_LT(std::abs(rho.element(0, 1)), coh_before);
  // Populations untouched.
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-12);
}

// The anchor test: Monte-Carlo trajectories vs exact channel evolution.
TEST(DensityMatrix, TrajectoryAverageConvergesToExactChannel) {
  const double p_depol = 0.15;
  const double gamma = 0.2;

  // Exact: H, depolarize, RY, amplitude damp.
  DensityMatrix rho(1);
  rho.apply_unitary(sim::gate_h(), {0});
  rho.apply_channel(noise::depolarizing_1q(p_depol).kraus(), {0});
  rho.apply_unitary(sim::gate_ry(0.8), {0});
  rho.apply_channel(noise::amplitude_damping(gamma).kraus(), {0});
  const double z_exact = rho.expectation_z(0);

  // Trajectories with the same channel sequence.
  const auto depol = noise::depolarizing_1q(p_depol);
  const auto ad = noise::amplitude_damping(gamma);
  Prng rng(3);
  const int trials = 60000;
  double z_mc = 0.0;
  for (int t = 0; t < trials; ++t) {
    Statevector sv(1);
    sv.apply_1q(sim::gate_h(), 0);
    depol.sample_and_apply(sv, {0}, rng);
    sv.apply_1q(sim::gate_ry(0.8), 0);
    ad.sample_and_apply(sv, {0}, rng);
    z_mc += sv.expectation_z(0);
  }
  z_mc /= trials;
  EXPECT_NEAR(z_mc, z_exact, 0.01);
}

TEST(DensityMatrixBackend, MatchesTrajectoryBackendOnTaskCircuit) {
  // The two noisy backends share device model and transpilation; with many
  // trajectories/shots the sampled backend must approach the exact one.
  const auto device = noise::DeviceModel::ibmq_manila();
  circuit::Circuit c(4);
  circuit::add_rzz_ring_layer(c);
  circuit::add_ry_layer(c);
  std::vector<double> theta = {0.4, -0.9, 1.3, 0.2, 0.7, -0.5, 1.0, -1.2};

  backend::DensityMatrixBackend::Options dopt;
  dopt.noise_scale = 3.0;
  backend::DensityMatrixBackend exact(device, dopt);
  const auto z_exact = exact.run(c, theta, {});

  backend::NoisyBackendOptions nopt;
  nopt.trajectories = 4096;
  nopt.shots = 4096;
  nopt.noise_scale = 3.0;
  nopt.seed = 5;
  backend::NoisyBackend sampled(device, nopt);
  const auto z_mc = sampled.run(c, theta, {});

  for (std::size_t q = 0; q < 4; ++q)
    EXPECT_NEAR(z_mc[q], z_exact[q], 0.05) << "qubit " << q;
}

TEST(DensityMatrixBackend, NoiseFreeMatchesStatevector) {
  backend::DensityMatrixBackend::Options opt;
  opt.enable_gate_noise = false;
  opt.enable_relaxation = false;
  opt.enable_readout_error = false;
  backend::DensityMatrixBackend dm(noise::DeviceModel::ibmq_lima(), opt);
  backend::StatevectorBackend sv(0);

  circuit::Circuit c(4);
  circuit::add_rzz_ring_layer(c);
  std::vector<double> theta = {0.3, 0.8, -0.5, 1.1};
  const auto a = dm.run(c, theta, {});
  const auto b = sv.run(c, theta, {});
  for (std::size_t q = 0; q < 4; ++q) EXPECT_NEAR(a[q], b[q], 1e-9);
}

TEST(DensityMatrixBackend, RejectsLargeDevices) {
  EXPECT_THROW(
      backend::DensityMatrixBackend(noise::DeviceModel::ibmq_toronto()),
      std::invalid_argument);
}

}  // namespace
